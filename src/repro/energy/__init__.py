"""AccelergyLite: architecture-level energy and power estimation."""

from repro.energy.components import ComponentLibrary, UnitEnergy
from repro.energy.ert import EnergyReferenceTable, build_ert
from repro.energy.actions import ActionCounts, count_actions
from repro.energy.accelergy import (
    AccelergyLite,
    EnergyReport,
    SYSTEM_STATE_REFERENCE_MW,
    system_state_power_mw,
)

__all__ = [
    "ComponentLibrary",
    "UnitEnergy",
    "EnergyReferenceTable",
    "build_ert",
    "ActionCounts",
    "count_actions",
    "AccelergyLite",
    "EnergyReport",
    "SYSTEM_STATE_REFERENCE_MW",
    "system_state_power_mw",
]
