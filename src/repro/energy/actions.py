"""Action counting from simulation results (paper Sections VII-C/D/E).

SCALE-Sim v3 feeds Accelergy *action counts* rather than raw traces:

* **MAC** — ``mac_random = #PEs x cycles x utilization`` (== the layer's
  MAC count), the rest of the PE-cycles are ``mac_constant`` or, with
  clock gating, ``mac_gated``.
* **Scratchpads** (per Section VII-E): weights_spad writes = SRAM filter
  reads, reads = MACs; ifmap_spad writes = SRAM ifmap reads, reads =
  MACs; psum_spad reads = writes = MACs.
* **SRAM** — the repeated-access lookup: consecutive addresses within a
  'row size' block cost a cheap repeated access; with ``bank_rows`` row
  buffers the effective reuse window is ``row_size x bank_rows``.
  ``idle = cycles x array_size - accesses`` (the paper's formula).
* **DRAM** — one read/write action per word moved.
* **NoC** — one hop per SRAM<->array word.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.config.system import EnergyConfig
from repro.core.simulator import LayerResult
from repro.errors import EnergyModelError
from repro.utils.math import ceil_div


@dataclass
class ActionCounts:
    """(instance -> action -> count) for one layer or one run."""

    counts: dict[str, dict[str, int]] = field(default_factory=dict)
    cycles: int = 0

    def add(self, instance: str, action: str, count: int) -> None:
        """Accumulate ``count`` actions."""
        if count < 0:
            raise EnergyModelError(f"negative count for {instance}.{action}")
        self.counts.setdefault(instance, {})
        self.counts[instance][action] = self.counts[instance].get(action, 0) + count

    def get(self, instance: str, action: str) -> int:
        """Current count (0 if never added)."""
        return self.counts.get(instance, {}).get(action, 0)

    def merge(self, other: "ActionCounts") -> None:
        """Accumulate another layer's counts into this one."""
        for instance, actions in other.counts.items():
            for action, count in actions.items():
                self.add(instance, action, count)
        self.cycles += other.cycles


def _split_repeated(accesses: int, reuse_window: int) -> tuple[int, int]:
    """Split streaming accesses into (random, repeated).

    The first access of every ``reuse_window`` block pays the random
    cost; subsequent words in the open row are repeated accesses.
    """
    if accesses == 0:
        return 0, 0
    random = ceil_div(accesses, max(1, reuse_window))
    return random, accesses - random


def count_actions(
    result: LayerResult,
    energy: EnergyConfig,
    use_total_cycles: bool = True,
) -> ActionCounts:
    """Derive Accelergy action counts for one simulated layer."""
    compute = result.compute
    cycles = result.total_cycles if use_total_cycles else compute.compute_cycles
    cycles = max(1, cycles)
    pes = compute.array_rows * compute.array_cols
    macs = compute.macs

    counts = ActionCounts(cycles=cycles)
    pe_cycles = pes * cycles
    mac_random = min(macs, pe_cycles)
    idle_macs = pe_cycles - mac_random
    counts.add("mac", "mac_random", mac_random)
    counts.add("mac", "mac_gated" if energy.clock_gating else "mac_constant", idle_macs)

    counts.add("weights_spad", "write", compute.filter_sram_reads)
    counts.add("weights_spad", "read", macs)
    counts.add("ifmap_spad", "write", compute.ifmap_sram_reads)
    counts.add("ifmap_spad", "read", macs)
    counts.add("psum_spad", "read", macs)
    counts.add("psum_spad", "write", macs)

    reuse_window = energy.row_size_words * energy.bank_rows
    for sram, accesses, is_write in (
        ("ifmap_sram", compute.ifmap_sram_reads, False),
        ("filter_sram", compute.filter_sram_reads, False),
        ("ofmap_sram", compute.ofmap_sram_writes, True),
    ):
        random, repeated = _split_repeated(accesses, reuse_window)
        prefix = "write" if is_write else "read"
        counts.add(sram, f"{prefix}_random", random)
        counts.add(sram, f"{prefix}_repeat", repeated)
        counts.add(sram, "idle", max(0, cycles * pes - accesses))

    dram_reads = (
        compute.dram_ifmap_words
        + compute.dram_filter_words
        + compute.dram_ofmap_readback_words
    )
    counts.add("dram", "read", dram_reads)
    counts.add("dram", "write", compute.dram_ofmap_write_words)

    counts.add("noc", "hop", compute.total_sram_accesses)
    return counts
