"""Energy Reference Table generation (paper Section VII-A, Step 1).

Accelergy's ERT maps every (component instance, action) pair to a unit
energy.  :func:`build_ert` instantiates the paper's baseline template —
per-PE register files and MAC, plus three smart-buffer SRAMs — from the
high-level :class:`ArchitectureConfig`, exactly the role of the paper's
"YAML file generator".  The table serialises to Accelergy-compatible
YAML via :mod:`repro.energy.yaml_gen`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.config.system import ArchitectureConfig, EnergyConfig
from repro.energy.components import ComponentLibrary, UnitEnergy
from repro.errors import EnergyModelError


@dataclass
class EnergyReferenceTable:
    """(instance -> UnitEnergy) with instance multiplicities."""

    technology_nm: int
    entries: dict[str, UnitEnergy] = field(default_factory=dict)
    multiplicity: dict[str, int] = field(default_factory=dict)

    def add(self, instance: str, unit: UnitEnergy, count: int = 1) -> None:
        """Register a component instance appearing ``count`` times."""
        if instance in self.entries:
            raise EnergyModelError(f"duplicate ERT instance {instance!r}")
        if count < 1:
            raise EnergyModelError(f"bad multiplicity {count} for {instance!r}")
        self.entries[instance] = unit
        self.multiplicity[instance] = count

    def energy_pj(self, instance: str, action: str, count: float) -> float:
        """Dynamic energy of ``count`` actions on one instance, in pJ."""
        if instance not in self.entries:
            raise EnergyModelError(
                f"unknown ERT instance {instance!r}; have {sorted(self.entries)}"
            )
        if count < 0:
            raise EnergyModelError(f"negative action count for {instance!r}.{action}")
        return self.entries[instance].energy(action) * count

    def leakage_pj(self, instance: str, cycles: int, gated_fraction: float = 0.0) -> float:
        """Leakage over ``cycles`` for all copies of one instance.

        ``gated_fraction`` models power gating: that fraction of copies
        leaks at 15% of nominal.
        """
        if not 0.0 <= gated_fraction <= 1.0:
            raise EnergyModelError(f"gated_fraction must be in [0,1], got {gated_fraction}")
        unit = self.entries[instance]
        copies = self.multiplicity[instance]
        active = copies * (1.0 - gated_fraction)
        gated = copies * gated_fraction * 0.15
        return unit.leakage_pj_per_cycle * (active + gated) * cycles

    def total_leakage_pj(self, cycles: int) -> float:
        """Leakage of the whole design over ``cycles``."""
        return sum(self.leakage_pj(name, cycles) for name in self.entries)


def build_ert(arch: ArchitectureConfig, energy: EnergyConfig) -> EnergyReferenceTable:
    """Instantiate the baseline template for an architecture.

    Per PE: one MAC and three scratchpads (ifmap / weights / psum).
    Globally: three smart-buffer SRAMs sized per the config, the DRAM
    interface, the NoC, and (if configured) the SIMD unit.
    """
    library = ComponentLibrary(energy.technology_nm)
    ert = EnergyReferenceTable(technology_nm=energy.technology_nm)
    pes = arch.num_pes
    ert.add("mac", library.component("mac"), count=pes)
    ert.add("ifmap_spad", library.component("ifmap_spad"), count=pes)
    ert.add("weights_spad", library.component("weights_spad"), count=pes)
    ert.add("psum_spad", library.component("psum_spad"), count=pes)
    ert.add("ifmap_sram", library.sram_scaled(arch.ifmap_sram_kb))
    ert.add("filter_sram", library.sram_scaled(arch.filter_sram_kb))
    ert.add("ofmap_sram", library.sram_scaled(arch.ofmap_sram_kb))
    ert.add("dram", library.component("dram"))
    ert.add("noc", library.component("noc"))
    if arch.simd_lanes:
        ert.add("simd", library.component("simd"), count=arch.simd_lanes)
    return ert
