"""Component library: per-action unit energies (the Accelergy plug-ins).

Unit energies are in picojoules at a 65 nm reference node, drawn from
the Eyeriss/Accelergy literature's order-of-magnitude ladder:

* register/scratchpad access  ~0.03-0.1 pJ
* 16-bit integer MAC           ~2 pJ
* large SRAM word access       ~6-12 pJ (repeated ~half of random)
* DRAM word access             ~200 pJ
* NoC hop per word             ~1.5 pJ

Dynamic energy scales ~quadratically with feature size, leakage roughly
linearly; :meth:`ComponentLibrary.scaled` applies both so other nodes
can be explored.  Absolute joules are calibration-grade, but every
paper experiment compares *relative* energies (dataflows, array sizes),
which these ratios preserve.
"""

from __future__ import annotations

from dataclasses import dataclass
from types import MappingProxyType
from typing import Mapping

from repro.errors import EnergyModelError

REFERENCE_NM = 65


@dataclass(frozen=True)
class UnitEnergy:
    """Energy per action (pJ) and leakage per cycle (pJ) of a component."""

    actions_pj: Mapping[str, float]
    leakage_pj_per_cycle: float = 0.0

    def __post_init__(self) -> None:
        for action, value in self.actions_pj.items():
            if value < 0:
                raise EnergyModelError(f"negative energy for action {action!r}")
        if self.leakage_pj_per_cycle < 0:
            raise EnergyModelError("negative leakage")

    def energy(self, action: str) -> float:
        """Energy of one action, in pJ."""
        if action not in self.actions_pj:
            raise EnergyModelError(
                f"unknown action {action!r}; available: {sorted(self.actions_pj)}"
            )
        return self.actions_pj[action]


def _frozen(mapping: dict[str, float]) -> Mapping[str, float]:
    return MappingProxyType(dict(mapping))


class ComponentLibrary:
    """All primitive components available to the architecture template."""

    def __init__(self, technology_nm: int = REFERENCE_NM) -> None:
        if technology_nm < 1:
            raise EnergyModelError(f"bad technology node {technology_nm}")
        self.technology_nm = technology_nm
        dyn = (technology_nm / REFERENCE_NM) ** 2
        leak = technology_nm / REFERENCE_NM
        self._components: dict[str, UnitEnergy] = {
            "mac": UnitEnergy(
                _frozen(
                    {
                        "mac_random": 2.20 * dyn,
                        "mac_constant": 1.80 * dyn,  # clocked, stationary operands
                        "mac_gated": 0.0,  # clock gated: leakage only
                    }
                ),
                leakage_pj_per_cycle=0.078 * leak,
            ),
            "ifmap_spad": UnitEnergy(
                _frozen({"read": 0.03 * dyn, "write": 0.06 * dyn}),
                leakage_pj_per_cycle=0.005 * leak,
            ),
            "weights_spad": UnitEnergy(
                _frozen({"read": 0.06 * dyn, "write": 0.11 * dyn}),
                leakage_pj_per_cycle=0.010 * leak,
            ),
            "psum_spad": UnitEnergy(
                _frozen({"read": 0.08 * dyn, "write": 0.08 * dyn}),
                leakage_pj_per_cycle=0.010 * leak,
            ),
            "sram": UnitEnergy(
                _frozen(
                    {
                        "read_random": 6.10 * dyn,
                        "read_repeat": 2.80 * dyn,
                        "write_random": 6.80 * dyn,
                        "write_repeat": 3.10 * dyn,
                        "write_cst_data": 1.30 * dyn,
                        "idle": 0.0,
                    }
                ),
                leakage_pj_per_cycle=1.50 * leak,
            ),
            "dram": UnitEnergy(_frozen({"read": 200.0, "write": 200.0})),
            "noc": UnitEnergy(
                _frozen({"hop": 1.50 * dyn}),
                leakage_pj_per_cycle=0.043 * leak,
            ),
            "simd": UnitEnergy(
                _frozen({"op": 0.90 * dyn}),
                leakage_pj_per_cycle=0.05 * leak,
            ),
        }

    def component(self, name: str) -> UnitEnergy:
        """Look up a primitive component."""
        if name not in self._components:
            raise EnergyModelError(
                f"unknown component {name!r}; available: {sorted(self._components)}"
            )
        return self._components[name]

    def names(self) -> tuple[str, ...]:
        """All component names."""
        return tuple(sorted(self._components))

    def sram_scaled(self, capacity_kb: int) -> UnitEnergy:
        """SRAM energy grows ~sqrt(capacity) relative to a 256 kB macro."""
        if capacity_kb < 1:
            raise EnergyModelError(f"bad SRAM capacity {capacity_kb} kB")
        base = self._components["sram"]
        factor = (capacity_kb / 256) ** 0.5
        return UnitEnergy(
            _frozen({k: v * factor for k, v in base.actions_pj.items()}),
            leakage_pj_per_cycle=base.leakage_pj_per_cycle * (capacity_kb / 256),
        )
