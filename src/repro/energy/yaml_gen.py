"""Accelergy-compatible YAML artifact generation (Figure 14's files).

Two artifacts are produced per run:

* ``architecture.yaml`` — the extrapolated architecture description that
  the paper's "YAML file generator" builds from the high-level config
  plus the baseline template (three register files + integer MAC per
  PE, three smart-buffer SRAMs).
* ``action_counts.yaml`` — per-instance action counts with the
  ``data_delta`` / ``address_delta`` arguments from the paper's
  translation table (repeated accesses keep both deltas at 0; random
  accesses toggle both).
"""

from __future__ import annotations

from pathlib import Path
from typing import Any

from repro.config.system import ArchitectureConfig, EnergyConfig
from repro.energy.actions import ActionCounts
from repro.utils.yamlio import write_yaml

#: Paper Figure 14: how SCALE-Sim action types translate to Accelergy
#: action names and wire-switching arguments.
ACTION_TRANSLATION = {
    "idle": {"accelergy_action": "idle", "data_delta": 0, "address_delta": 0},
    "read_random": {"accelergy_action": "read", "data_delta": 1, "address_delta": 1},
    "read_repeat": {"accelergy_action": "read", "data_delta": 0, "address_delta": 0},
    "write_random": {"accelergy_action": "write", "data_delta": 1, "address_delta": 1},
    "write_repeat": {"accelergy_action": "write", "data_delta": 0, "address_delta": 0},
    "write_cst_data": {"accelergy_action": "write", "data_delta": 0, "address_delta": 1},
}


def architecture_description(arch: ArchitectureConfig, energy: EnergyConfig) -> dict[str, Any]:
    """Build the architecture mapping (before YAML serialisation)."""
    pe_component = {
        "name": f"pe[0..{arch.num_pes - 1}]",
        "local": [
            {"name": "ifmap_spad", "class": "regfile", "attributes": {"depth": 12, "width": 16}},
            {"name": "weights_spad", "class": "regfile", "attributes": {"depth": 192, "width": 16}},
            {"name": "psum_spad", "class": "regfile", "attributes": {"depth": 16, "width": 16}},
            {"name": "mac", "class": "intmac", "attributes": {"datawidth": 16}},
        ],
    }
    return {
        "architecture": {
            "version": "0.4",
            "subtree": [
                {
                    "name": "system",
                    "attributes": {"technology": f"{energy.technology_nm}nm"},
                    "local": [
                        {
                            "name": "ifmap_sram",
                            "class": "smartbuffer_sram",
                            "attributes": {"memory_depth": arch.ifmap_sram_kb * 1024 // 2, "width": 16},
                        },
                        {
                            "name": "filter_sram",
                            "class": "smartbuffer_sram",
                            "attributes": {"memory_depth": arch.filter_sram_kb * 1024 // 2, "width": 16},
                        },
                        {
                            "name": "ofmap_sram",
                            "class": "smartbuffer_sram",
                            "attributes": {"memory_depth": arch.ofmap_sram_kb * 1024 // 2, "width": 16},
                        },
                    ],
                    "subtree": [pe_component],
                }
            ],
        }
    }


def action_counts_description(counts: ActionCounts) -> dict[str, Any]:
    """Build the action-counts mapping with translation-table arguments."""
    entries = []
    for instance in sorted(counts.counts):
        for action in sorted(counts.counts[instance]):
            count = counts.counts[instance][action]
            entry: dict[str, Any] = {
                "name": instance,
                "action_name": action,
                "counts": count,
            }
            if action in ACTION_TRANSLATION:
                translation = ACTION_TRANSLATION[action]
                entry["arguments"] = {
                    "data_delta": translation["data_delta"],
                    "address_delta": translation["address_delta"],
                }
            entries.append(entry)
    return {"action_counts": {"version": "0.4", "local": entries}}


def write_architecture_yaml(
    arch: ArchitectureConfig, energy: EnergyConfig, out_dir: str | Path
) -> Path:
    """Emit architecture.yaml; returns the file path."""
    return write_yaml(Path(out_dir) / "architecture.yaml", architecture_description(arch, energy))


def write_action_counts_yaml(counts: ActionCounts, out_dir: str | Path) -> Path:
    """Emit action_counts.yaml; returns the file path."""
    return write_yaml(Path(out_dir) / "action_counts.yaml", action_counts_description(counts))
