"""AccelergyLite: energy / power / EdP estimation (paper Section VII).

``E = sum_over(instance, action) count x ERT[instance][action]
    + leakage_per_cycle x cycles``

Power divides by wall time (cycles / clock); EdP multiplies energy by
delay, the metric behind the paper's Table V conclusion that 64x64 beats
both 32x32 and 128x128 for ViT-base.

System-state validation (Table III)
-----------------------------------
:func:`system_state_power_mw` reproduces the paper's idle / active /
power-gated comparison.  Like Accelergy itself, the model's absolute
scale is calibrated against PnR characterisation — here the paper's
8x8-array 65 nm reference — while the *ratios* between states come from
the model (leakage vs dynamic vs gating factor).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.config.system import ArchitectureConfig, EnergyConfig
from repro.core.simulator import LayerResult, RunResult
from repro.energy.actions import ActionCounts, count_actions
from repro.energy.ert import EnergyReferenceTable, build_ert
from repro.errors import EnergyModelError


@dataclass
class EnergyReport:
    """Energy breakdown for one layer or one run.

    ``dynamic_pj``/``leakage_pj`` cover the chip (PE array, scratchpads,
    GLB SRAMs, NoC) — the scope Accelergy validates against PnR.
    Off-chip DRAM access energy is tracked separately in ``dram_pj``,
    matching the paper's GLB/NoC/PE-array breakdown.
    """

    cycles: int
    clock_ghz: float
    dynamic_pj: float
    leakage_pj: float
    dram_pj: float = 0.0
    per_instance_pj: dict[str, float] = field(default_factory=dict)

    @property
    def total_pj(self) -> float:
        """Chip energy: dynamic plus leakage, in pJ (DRAM excluded)."""
        return self.dynamic_pj + self.leakage_pj

    @property
    def total_with_dram_pj(self) -> float:
        """System energy including off-chip DRAM accesses."""
        return self.total_pj + self.dram_pj

    @property
    def total_mj(self) -> float:
        """Total energy in millijoules."""
        return self.total_pj * 1e-9

    @property
    def runtime_s(self) -> float:
        """Wall time of the simulated window."""
        return self.cycles / (self.clock_ghz * 1e9)

    @property
    def average_power_w(self) -> float:
        """Mean power over the window."""
        if self.cycles == 0:
            return 0.0
        return self.total_pj * 1e-12 / self.runtime_s

    @property
    def edp_cycles_mj(self) -> float:
        """Energy-delay product in the paper's units (cycles x mJ)."""
        return self.cycles * self.total_mj

    def merged_with(self, other: "EnergyReport") -> "EnergyReport":
        """Combine two sequential windows (cycles add, energies add)."""
        if self.clock_ghz != other.clock_ghz:
            raise EnergyModelError("cannot merge reports at different clocks")
        per_instance = dict(self.per_instance_pj)
        for name, pj in other.per_instance_pj.items():
            per_instance[name] = per_instance.get(name, 0.0) + pj
        return EnergyReport(
            cycles=self.cycles + other.cycles,
            clock_ghz=self.clock_ghz,
            dynamic_pj=self.dynamic_pj + other.dynamic_pj,
            leakage_pj=self.leakage_pj + other.leakage_pj,
            dram_pj=self.dram_pj + other.dram_pj,
            per_instance_pj=per_instance,
        )


class AccelergyLite:
    """Estimates energy for simulation results against an ERT."""

    def __init__(self, arch: ArchitectureConfig, energy: EnergyConfig) -> None:
        self.arch = arch
        self.energy_config = energy
        self.ert: EnergyReferenceTable = build_ert(arch, energy)

    def estimate_counts(self, counts: ActionCounts) -> EnergyReport:
        """Energy of an explicit action-count set."""
        dynamic = 0.0
        dram = 0.0
        per_instance: dict[str, float] = {}
        for instance, actions in counts.counts.items():
            inst_pj = 0.0
            for action, count in actions.items():
                inst_pj += self.ert.energy_pj(instance, action, count)
            per_instance[instance] = per_instance.get(instance, 0.0) + inst_pj
            if instance == "dram":
                dram += inst_pj
            else:
                dynamic += inst_pj
        leakage = self.ert.total_leakage_pj(counts.cycles)
        return EnergyReport(
            cycles=counts.cycles,
            clock_ghz=self.energy_config.clock_ghz,
            dynamic_pj=dynamic,
            leakage_pj=leakage,
            dram_pj=dram,
            per_instance_pj=per_instance,
        )

    def estimate_layer(self, result: LayerResult) -> EnergyReport:
        """Energy of one simulated layer."""
        return self.estimate_counts(count_actions(result, self.energy_config))

    def estimate_run(self, run: RunResult) -> EnergyReport:
        """Energy of a whole topology run."""
        if not run.layers:
            raise EnergyModelError(f"run {run.run_name!r} has no layers")
        report = self.estimate_layer(run.layers[0])
        for layer in run.layers[1:]:
            report = report.merged_with(self.estimate_layer(layer))
        return report


# --------------------------------------------------------------------------
# System-state validation (Table III)
# --------------------------------------------------------------------------

#: The paper's PnR (65 nm) reference powers, in mW.
SYSTEM_STATE_REFERENCE_MW = {
    "idle": 12.3,
    "active": 315.8,
    "power_gating": 4.7,
}

#: Power-gating retains ~39% of idle leakage (ungateable always-on logic).
_POWER_GATE_FACTOR = 4.9 / 12.6

_REFERENCE_ARCH = ArchitectureConfig(
    array_rows=8,
    array_cols=8,
    ifmap_sram_kb=108,
    filter_sram_kb=108,
    ofmap_sram_kb=108,
    dataflow="os",
)
_REFERENCE_ENERGY = EnergyConfig(enabled=True, technology_nm=65)


def _raw_state_pj_per_cycle(arch: ArchitectureConfig, energy: EnergyConfig) -> tuple[float, float]:
    """(dynamic, leakage) pJ per cycle of the fully active design."""
    ert = build_ert(arch, energy)
    pes = arch.num_pes
    # Per cycle at full utilisation: every PE does one MAC and its three
    # scratchpad transactions; the SRAMs stream one word per array port.
    mac = ert.energy_pj("mac", "mac_random", pes)
    spads = (
        ert.energy_pj("ifmap_spad", "read", pes)
        + ert.energy_pj("weights_spad", "read", pes)
        + ert.energy_pj("psum_spad", "read", pes)
        + ert.energy_pj("psum_spad", "write", pes)
    )
    sram = (
        ert.energy_pj("ifmap_sram", "read_random", arch.array_rows)
        + ert.energy_pj("filter_sram", "read_random", arch.array_cols)
        + ert.energy_pj("ofmap_sram", "write_random", arch.array_cols)
    )
    dynamic = mac + spads + sram
    leakage = ert.total_leakage_pj(1)
    return dynamic, leakage


_raw_dyn_ref, _raw_leak_ref = _raw_state_pj_per_cycle(_REFERENCE_ARCH, _REFERENCE_ENERGY)
# Calibrate the absolute scale against the paper's v3 column (308.5 mW
# active, 12.6 mW idle at 1 GHz); ratios across states stay model-driven.
_DYNAMIC_CAL = (308.5 - 12.6) / _raw_dyn_ref
_LEAKAGE_CAL = 12.6 / _raw_leak_ref


def system_state_power_mw(
    state: str,
    arch: ArchitectureConfig | None = None,
    energy: EnergyConfig | None = None,
    clock_ghz: float = 1.0,
) -> float:
    """Power of the design in a given system state, in mW.

    States: ``active`` (full-rate compute), ``idle`` (clock gated:
    leakage only), ``power_gating`` (most leakage eliminated).
    """
    arch = arch or _REFERENCE_ARCH
    energy = energy or _REFERENCE_ENERGY
    dynamic, leakage = _raw_state_pj_per_cycle(arch, energy)
    leak_mw = leakage * _LEAKAGE_CAL * clock_ghz
    if state == "idle":
        return leak_mw
    if state == "active":
        return dynamic * _DYNAMIC_CAL * clock_ghz + leak_mw
    if state == "power_gating":
        return leak_mw * _POWER_GATE_FACTOR
    raise EnergyModelError(
        f"unknown system state {state!r}; expected idle/active/power_gating"
    )
