"""Deterministic fault injection for the execution substrate.

Fault tolerance that has never seen a fault is a guess.  This module
lets tests (and brave operators) *schedule* faults deterministically
inside the mapped function of any executor — the exact failure modes a
distributed sweep must survive:

* ``raise`` — the unit raises mid-execution (a poison config, a flaky
  dependency);
* ``exit`` — the worker hard-exits via :func:`os._exit` (SIGKILL, OOM
  kill): no cleanup, no traceback, the claim and its lease are left
  behind;
* ``stall`` — the unit sleeps, modelling a wedged or very slow worker
  whose lease may expire under it;
* ``corrupt`` — the worker writes garbage bytes instead of its result
  pickle (a torn write on a crashed writer / flaky filesystem).  Only
  the spool protocol has a result pickle, so this kind is a no-op for
  in-memory executors.

The schedule is **armed through an environment variable**
(:data:`FAULT_PLAN_ENV`, JSON) so it crosses every process boundary the
executors do — fork pools, spawn pools, spool worker subprocesses —
without any of them cooperating.  Each :class:`FaultSpec` targets one
``(unit, attempt)`` pair, so a fault fires exactly once and the retry /
lease-reclaim machinery is observed recovering from it: a schedule that
only touches attempts below the attempt budget must converge to results
bit-identical to the fault-free run (the recovery fuzz in
``tests/run/test_fault_injection_fuzz.py`` pins exactly that).

With the environment variable unset (production), every hook in this
module is a cheap no-op.
"""

from __future__ import annotations

import dataclasses
import json
import os
import random
import time
from contextlib import contextmanager
from dataclasses import dataclass

#: Environment variable carrying the armed JSON fault schedule.
FAULT_PLAN_ENV = "REPRO_FAULT_PLAN"

#: Exit status used by the ``exit`` fault kind (distinctive in ``wait``).
HARD_EXIT_CODE = 173

#: The injectable fault kinds, in escalating order of rudeness.
FAULT_KINDS = ("raise", "stall", "corrupt", "exit")


class FaultInjected(RuntimeError):
    """Raised by an armed ``raise`` fault inside the mapped function."""


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault: fire ``kind`` on ``(unit, attempt)``.

    ``unit`` is the unit's index within its batch (the executors number
    units by position); ``attempt`` is 1-based, matching the lease /
    envelope attempt counters.  ``seconds`` only matters for ``stall``.
    """

    kind: str
    unit: int
    attempt: int = 1
    seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; one of {FAULT_KINDS}")


def arm(specs: list[FaultSpec]) -> None:
    """Install a fault schedule in this process's environment."""
    os.environ[FAULT_PLAN_ENV] = json.dumps(
        [dataclasses.asdict(spec) for spec in specs]
    )


def disarm() -> None:
    """Remove any armed fault schedule."""
    os.environ.pop(FAULT_PLAN_ENV, None)


@contextmanager
def armed(specs: list[FaultSpec]):
    """Context manager: arm ``specs`` for the block, restore after.

    Child processes started inside the block (pool workers, spool
    worker subprocesses) inherit the armed environment.
    """
    previous = os.environ.get(FAULT_PLAN_ENV)
    arm(specs)
    try:
        yield
    finally:
        if previous is None:
            disarm()
        else:
            os.environ[FAULT_PLAN_ENV] = previous


def active_plan() -> list[FaultSpec]:
    """The armed schedule, or ``[]`` when disarmed (the common case).

    Re-read from the environment on every call — it is only consulted
    around unit execution, and tests re-arm between cases.
    """
    raw = os.environ.get(FAULT_PLAN_ENV)
    if not raw:
        return []
    try:
        entries = json.loads(raw)
    except ValueError:
        return []
    return [FaultSpec(**entry) for entry in entries]


def find(unit: int, attempt: int, kind: str | None = None) -> FaultSpec | None:
    """The scheduled fault for ``(unit, attempt)``, if any."""
    for spec in active_plan():
        if spec.unit != unit or spec.attempt != attempt:
            continue
        if kind is not None and spec.kind != kind:
            continue
        return spec
    return None


def maybe_inject(unit: int, attempt: int) -> None:
    """Fire the fault scheduled for ``(unit, attempt)``, if armed.

    Called by the executors immediately before running the mapped
    function.  ``corrupt`` is not fired here — it targets the *result
    write*, so the spool worker consults :func:`corrupt_requested` at
    write time instead.
    """
    spec = find(unit, attempt)
    if spec is None or spec.kind == "corrupt":
        return
    if spec.kind == "raise":
        raise FaultInjected(f"injected fault: unit {unit}, attempt {attempt}")
    if spec.kind == "stall":
        time.sleep(spec.seconds)
        return
    if spec.kind == "exit":
        os._exit(HARD_EXIT_CODE)


def corrupt_requested(unit: int, attempt: int) -> bool:
    """Should the result pickle of ``(unit, attempt)`` be torn?"""
    return find(unit, attempt, kind="corrupt") is not None


def seeded_plan(
    seed: int,
    units: int,
    kinds: tuple[str, ...] = FAULT_KINDS,
    fault_rate: float = 0.5,
    max_attempt: int = 2,
    stall_seconds: float = 0.05,
) -> list[FaultSpec]:
    """A reproducible random fault schedule for the recovery fuzz.

    Each unit independently draws whether it faults, which kind, and on
    how many leading attempts (``1..max_attempt``).  Keeping
    ``max_attempt`` below the executor's attempt budget makes every
    schedule *recoverable by construction*: some attempt of every unit
    runs clean, so the run must converge to fault-free results.
    """
    rng = random.Random(seed)
    specs: list[FaultSpec] = []
    for unit in range(units):
        if rng.random() >= fault_rate:
            continue
        kind = kinds[rng.randrange(len(kinds))]
        for attempt in range(1, rng.randint(1, max_attempt) + 1):
            specs.append(
                FaultSpec(kind=kind, unit=unit, attempt=attempt, seconds=stall_seconds)
            )
    return specs


__all__ = [
    "FAULT_KINDS",
    "FAULT_PLAN_ENV",
    "FaultInjected",
    "FaultSpec",
    "HARD_EXIT_CODE",
    "active_plan",
    "arm",
    "armed",
    "corrupt_requested",
    "disarm",
    "find",
    "maybe_inject",
    "seeded_plan",
]
