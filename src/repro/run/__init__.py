"""High-level drivers: one-call simulation runs, sweeps, and the CLI."""

from repro.run.runner import SimulationOutputs, run_simulation
from repro.run.sweep import (
    Axis,
    ResultCache,
    SweepResult,
    SweepRunner,
    SweepSpec,
    single_point,
)

__all__ = [
    "Axis",
    "ResultCache",
    "SimulationOutputs",
    "SweepResult",
    "SweepRunner",
    "SweepSpec",
    "run_simulation",
    "single_point",
]
