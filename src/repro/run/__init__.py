"""High-level drivers: one-call simulation runs, sweeps, and the CLI."""

from repro.run.executors import make_executor, process_spool
from repro.run.runner import SimulationOutputs, run_simulation
from repro.run.sweep import (
    Axis,
    ResultCache,
    SweepFailure,
    SweepResult,
    SweepRunner,
    SweepSpec,
    single_point,
)

__all__ = [
    "Axis",
    "ResultCache",
    "SimulationOutputs",
    "SweepFailure",
    "SweepResult",
    "SweepRunner",
    "SweepSpec",
    "make_executor",
    "process_spool",
    "run_simulation",
    "single_point",
]
