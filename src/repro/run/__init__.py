"""High-level drivers: one-call simulation runs and the CLI."""

from repro.run.runner import SimulationOutputs, run_simulation

__all__ = ["SimulationOutputs", "run_simulation"]
