"""Pluggable sweep-execution backends (the executor seam).

:class:`~repro.run.sweep.SweepRunner` used to *be* a multiprocessing
pool; now the pool is one of several :class:`Executor` implementations
behind a two-method seam, so the execution substrate can change — serial
in-process, a local process pool, a spool-directory job queue, and
eventually cross-machine sharding — without touching grouping, caching
or result stitching:

* :class:`SerialExecutor` — in-process, no pool.  The executable
  specification every other executor must match result-for-result.
* :class:`PoolExecutor` — today's ``multiprocessing`` pool
  (:func:`repro.utils.pool.pool_context` fork/spawn selection),
  including the single-unit special case: a lone fan-out group would
  leave the pool idle, so it receives the executor's whole worker
  budget for its internal per-config fan-outs instead.
* :class:`QueueExecutor` — the cross-machine sharding drop-in point:
  units are pickled to a spool directory as claimable task files and
  results collected by polling.  :func:`process_spool` is the worker
  loop a remote consumer would run; the default in-process worker makes
  the executor self-contained today while pinning the on-disk protocol
  (atomic task writes, claim-by-rename, atomic result writes) that a
  distributed deployment relies on.

The mapped function contract: ``fn(unit)`` runs one simulation unit;
``fn(unit, workers=N)`` may be used by an executor that hands one unit
its entire parallelism budget.  Functions must be picklable (module
level, or :func:`functools.partial` over one) so every executor can
ship them to workers.
"""

from __future__ import annotations

import os
import pickle
import time
from collections.abc import Callable, Sequence
from pathlib import Path
from typing import Protocol, runtime_checkable

from repro.errors import ConfigError
from repro.store.artifact_store import dump_pickle_atomic, load_pickle_guarded
from repro.utils.pool import pool_context

#: Executor names selectable via the CLI's ``--executor`` flag.
AVAILABLE_EXECUTORS = ("serial", "pool", "queue")


@runtime_checkable
class Executor(Protocol):
    """Maps simulation units to payload lists on some substrate."""

    #: Parallelism the executor can offer a single unit's internal
    #: fan-outs (1 for strictly serial substrates).
    workers: int

    def map_units(self, fn: Callable, units: Sequence) -> list:
        """Run ``fn`` over every unit; results come back in unit order."""
        ...  # pragma: no cover - protocol


class SerialExecutor:
    """Run every unit in-process, one after another."""

    workers = 1

    def map_units(self, fn: Callable, units: Sequence) -> list:
        return [fn(unit) for unit in units]


class PoolExecutor:
    """Fan units out over a local ``multiprocessing`` pool.

    A single unit never pays pool overhead: it runs in-process and
    receives the executor's whole worker budget (``fn(unit,
    workers=N)``) so a lone fan-out group parallelises internally —
    exactly the pre-seam ``SweepRunner`` behaviour.
    """

    def __init__(self, workers: int) -> None:
        if workers < 1:
            raise ConfigError(f"workers must be >= 1, got {workers}")
        self.workers = workers

    def map_units(self, fn: Callable, units: Sequence) -> list:
        units = list(units)
        if not units:
            return []
        if self.workers == 1 or len(units) == 1:
            return [fn(unit, workers=self.workers) for unit in units]
        processes = min(self.workers, len(units))
        with pool_context().Pool(processes=processes) as pool:
            return pool.map(fn, units, chunksize=1)


# ------------------------------------------------------------- job queue

#: Spool-file suffixes of the queue protocol.
_TASK_SUFFIX = ".task.pkl"
_RESULT_SUFFIX = ".result.pkl"


def _spool_task_paths(batch_dir: Path, count: int) -> list[Path]:
    return [batch_dir / f"unit_{index:06d}{_TASK_SUFFIX}" for index in range(count)]


def _result_path(task_path: Path) -> Path:
    return task_path.with_name(
        task_path.name[: -len(_TASK_SUFFIX)] + _RESULT_SUFFIX
    )


def process_spool(spool_dir: str | Path, max_tasks: int | None = None) -> int:
    """One pass of the queue worker loop: claim, run, write results.

    Scans every batch directory under ``spool_dir`` for unclaimed task
    files, claims each by an atomic rename (two workers can never claim
    the same task), executes the pickled ``(fn, unit)`` pair, and
    writes the result atomically next to the task.  Returns the number
    of tasks executed.  This is exactly what a remote worker process —
    on this machine or another sharing the spool via a network
    filesystem — runs in a loop.
    """
    spool_dir = Path(spool_dir)
    executed = 0
    if not spool_dir.exists():
        return 0
    for task_path in sorted(spool_dir.glob(f"*/unit_*{_TASK_SUFFIX}")):
        if max_tasks is not None and executed >= max_tasks:
            break
        claim = task_path.with_name(task_path.name + f".claim.{os.getpid()}")
        try:
            task_path.rename(claim)
        except OSError:
            continue  # another worker won the claim
        task = load_pickle_guarded(claim)
        if task is None:
            continue  # corrupt spool entry: dropped, producer times out
        fn, unit = task
        dump_pickle_atomic(_result_path(task_path), fn(unit))
        claim.unlink(missing_ok=True)
        executed += 1
    return executed


class QueueExecutor:
    """Spool-directory executor: the sharding drop-in point.

    Every ``map_units`` call creates one batch directory under the
    spool, writes each unit as an atomic ``(fn, unit)`` task file,
    lets workers claim tasks (:func:`process_spool`), and polls for the
    result files.  With ``run_local_worker=True`` (the default) the
    executor drains its own spool in-process after enqueueing — the
    full serialize/claim/execute/collect round trip runs through disk,
    so the on-disk protocol is exercised end to end even with no
    external worker attached.

    Args:
        spool_dir: shared directory tasks and results flow through.
        run_local_worker: drain the spool in-process (default); pass
            ``False`` when external workers own execution.
        poll_interval: seconds between result-collection scans.
        timeout: seconds to wait for all results before raising
            (``None`` waits indefinitely — external-worker setups).
    """

    workers = 1

    def __init__(
        self,
        spool_dir: str | Path,
        run_local_worker: bool = True,
        poll_interval: float = 0.05,
        timeout: float | None = 300.0,
    ) -> None:
        if poll_interval <= 0:
            raise ConfigError(f"poll_interval must be > 0, got {poll_interval}")
        self.spool_dir = Path(spool_dir)
        self.spool_dir.mkdir(parents=True, exist_ok=True)
        self.run_local_worker = run_local_worker
        self.poll_interval = poll_interval
        self.timeout = timeout
        self._batch_serial = 0

    def _new_batch_dir(self) -> Path:
        # Pid + per-instance serial: unique across concurrent producers
        # sharing one spool and across calls within one producer.
        while True:
            self._batch_serial += 1
            batch = self.spool_dir / f"batch_{os.getpid()}_{self._batch_serial:04d}"
            try:
                batch.mkdir(parents=True, exist_ok=False)
                return batch
            except FileExistsError:  # pragma: no cover - pid reuse race
                continue

    def map_units(self, fn: Callable, units: Sequence) -> list:
        units = list(units)
        if not units:
            return []
        batch_dir = self._new_batch_dir()
        task_paths = _spool_task_paths(batch_dir, len(units))
        try:
            for task_path, unit in zip(task_paths, units):
                dump_pickle_atomic(task_path, (fn, unit))
            if self.run_local_worker:
                process_spool(self.spool_dir)
            return self._collect(task_paths)
        finally:
            self._cleanup(batch_dir, task_paths)

    def _collect(self, task_paths: list[Path]) -> list:
        results: dict[int, object] = {}
        deadline = None if self.timeout is None else time.monotonic() + self.timeout
        while len(results) < len(task_paths):
            for index, task_path in enumerate(task_paths):
                if index in results:
                    continue
                payload = load_pickle_guarded(_result_path(task_path))
                if payload is not None:
                    results[index] = payload
            if len(results) == len(task_paths):
                break
            if deadline is not None and time.monotonic() > deadline:
                missing = [
                    task_paths[i].name
                    for i in range(len(task_paths))
                    if i not in results
                ]
                raise TimeoutError(
                    f"queue executor: {len(missing)} unit(s) not completed "
                    f"within {self.timeout}s: {', '.join(missing[:5])}"
                )
            time.sleep(self.poll_interval)
        return [results[index] for index in range(len(task_paths))]

    def _cleanup(self, batch_dir: Path, task_paths: list[Path]) -> None:
        for task_path in task_paths:
            task_path.unlink(missing_ok=True)
            _result_path(task_path).unlink(missing_ok=True)
        try:
            batch_dir.rmdir()
        except OSError:  # pragma: no cover - stale claims left behind
            pass


def make_executor(
    name: str, workers: int = 1, spool_dir: str | Path | None = None
) -> Executor:
    """Build an executor by CLI name.

    ``serial`` ignores ``workers``; ``pool`` wraps ``workers``
    processes; ``queue`` spools through ``spool_dir`` (required).
    """
    key = name.strip().lower()
    if key == "serial":
        return SerialExecutor()
    if key == "pool":
        return PoolExecutor(workers)
    if key == "queue":
        if spool_dir is None:
            raise ConfigError("queue executor requires a spool directory")
        return QueueExecutor(spool_dir)
    raise ConfigError(
        f"unknown executor {name!r}; available: {', '.join(AVAILABLE_EXECUTORS)}"
    )


__all__ = [
    "AVAILABLE_EXECUTORS",
    "Executor",
    "PoolExecutor",
    "QueueExecutor",
    "SerialExecutor",
    "make_executor",
    "process_spool",
]
