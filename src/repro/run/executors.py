"""Pluggable sweep-execution backends (the executor seam).

:class:`~repro.run.sweep.SweepRunner` used to *be* a multiprocessing
pool; now the pool is one of several :class:`Executor` implementations
behind a two-method seam, so the execution substrate can change — serial
in-process, a local process pool, a spool-directory job queue, and
eventually cross-machine sharding — without touching grouping, caching
or result stitching:

* :class:`SerialExecutor` — in-process, no pool.  The executable
  specification every other executor must match result-for-result.
* :class:`PoolExecutor` — today's ``multiprocessing`` pool
  (:func:`repro.utils.pool.pool_context` fork/spawn selection),
  including the single-unit special case: a lone fan-out group would
  leave the pool idle, so it receives the executor's whole worker
  budget for its internal per-config fan-outs instead.
* :class:`QueueExecutor` — the cross-machine sharding drop-in point:
  units are pickled to a spool directory as claimable task files and
  results collected by polling.  :func:`process_spool` is the worker
  loop a remote consumer would run; the default in-process worker makes
  the executor self-contained today while pinning the on-disk protocol
  (atomic task writes, claim-by-rename, atomic result writes) that a
  distributed deployment relies on.

The mapped function contract: ``fn(unit)`` runs one simulation unit;
``fn(unit, workers=N)`` may be used by an executor that hands one unit
its entire parallelism budget.  Functions must be picklable (module
level, or :func:`functools.partial` over one) so every executor can
ship them to workers.

Fault tolerance (see DESIGN.md "Fault tolerance at the executor seam"):

* every attempt's outcome travels as a :class:`ResultEnvelope` — a
  success wraps its value (so legitimately-falsy payloads never look
  like "not ready" to a polling producer), a failure carries a
  structured :class:`UnitFailure` (class, message, traceback, attempt)
  instead of crashing the worker loop;
* spool claims carry a JSON **lease** sidecar (owner pid/host, claim
  and heartbeat times, TTL, attempt) refreshed by a heartbeat thread
  while the unit runs; :func:`process_spool` *reclaims* tasks whose
  lease expired — or whose same-host owner is dead — by renaming the
  claim back into a task with the attempt bumped, so a SIGKILLed
  worker's unit is simply re-run by the next worker;
* producers retry failed units with exponential backoff up to a bounded
  attempt budget, after which the unit is parked in
  ``<spool>/quarantine/`` with its last traceback alongside;
* :func:`repro.run.faults` can deterministically inject raises,
  hard-exits, stalls and torn result writes into any of the above — the
  recovery fuzz pins that recoverable schedules stay bit-identical to
  fault-free runs.
"""

from __future__ import annotations

import dataclasses
import os
import pickle
import random
import re
import socket
import threading
import time
import traceback as traceback_module
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field
from pathlib import Path
from typing import Protocol, runtime_checkable

from repro.errors import ConfigError, ExecutionError
from repro.run import faults
from repro.store.artifact_store import (
    dump_json_atomic,
    dump_pickle_atomic,
    load_json_guarded,
    load_pickle_guarded,
)
from repro.utils.pool import pool_context

#: Executor names selectable via the CLI's ``--executor`` flag.
AVAILABLE_EXECUTORS = ("serial", "pool", "queue")

#: Default per-unit attempt budget before a failure becomes terminal.
DEFAULT_MAX_ATTEMPTS = 3

#: Default seconds without a heartbeat before a claim's lease expires.
DEFAULT_LEASE_TTL = 300.0

#: Default base of the exponential retry backoff (seconds).
DEFAULT_BACKOFF_BASE = 0.05

#: Ceiling of one backoff sleep, so deep retries stay bounded.
BACKOFF_CAP = 5.0


def _backoff_seconds(
    base: float, retry_number: int, rng: random.Random | None = None
) -> float:
    """Exponential backoff before retry ``retry_number`` (1-based).

    With ``rng`` the capped exponential sleep is scaled by a uniform
    draw in ``[0.5, 1.0]`` ("equal jitter"), so many producers retrying
    against the same spool (or many clients retrying against the same
    server) spread out instead of thundering in lockstep.  Passing a
    seeded :class:`random.Random` makes the jitter sequence
    deterministic — the fault-injection fuzz stays reproducible.
    """
    seconds = min(base * (2.0 ** (retry_number - 1)), BACKOFF_CAP)
    if rng is not None:
        seconds *= 0.5 + 0.5 * rng.random()
    return seconds


def _pid_alive(pid: int) -> bool:
    """Best-effort liveness probe for a same-host pid."""
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except OSError:  # pragma: no cover - permission/race: assume alive
        return True
    return True


# -------------------------------------------------------------- envelopes


@dataclass
class UnitFailure:
    """Structured record of one unit's failed attempt.

    ``pickled_exception`` holds the original exception when it survives
    a pickle round trip, so the producer can chain it (``raise ... from``)
    with full fidelity; the traceback text is always captured.
    """

    error_class: str
    message: str
    traceback_text: str
    attempts: int
    pickled_exception: bytes | None = None

    @classmethod
    def from_exception(cls, exc: BaseException, attempt: int) -> UnitFailure:
        try:
            blob = pickle.dumps(exc)
            pickle.loads(blob)  # some exceptions pickle but fail to rebuild
        except Exception:
            blob = None
        return cls(
            error_class=type(exc).__name__,
            message=str(exc),
            traceback_text="".join(
                traceback_module.format_exception(type(exc), exc, exc.__traceback__)
            ),
            attempts=attempt,
            pickled_exception=blob,
        )

    def exception(self) -> BaseException | None:
        """Rebuild the original exception, when it was transportable."""
        if self.pickled_exception is None:
            return None
        try:
            return pickle.loads(self.pickled_exception)
        except Exception:  # pragma: no cover - env-dependent unpickle
            return None

    def raise_(self) -> None:
        """Raise an :class:`ExecutionError` carrying this failure."""
        error = ExecutionError(
            f"unit failed after {self.attempts} attempt(s): "
            f"{self.error_class}: {self.message}\n"
            f"--- last attempt traceback ---\n{self.traceback_text}"
        )
        error.failure = self
        cause = self.exception()
        if cause is not None:
            raise error from cause
        raise error


@dataclass
class ResultEnvelope:
    """One unit's terminal outcome: a value, or a structured failure.

    The envelope — not the bare payload — is what spool workers write
    and producers poll for, so a payload that pickles to ``None`` (or
    any falsy value) is still unambiguously "done".
    """

    ok: bool
    value: object = None
    failure: UnitFailure | None = None
    attempt: int = 1

    def unwrap(self) -> object:
        """The value, or raise the failure as an :class:`ExecutionError`."""
        if self.ok:
            return self.value
        assert self.failure is not None
        self.failure.raise_()


def run_attempt(
    fn: Callable, unit: object, unit_index: int, attempt: int, workers: int | None = None
) -> ResultEnvelope:
    """Run one attempt of ``fn(unit)``, capturing the outcome.

    Exceptions become error envelopes instead of propagating, so one
    poison unit can never crash a worker loop or abort its siblings.
    ``unit_index`` keys the deterministic fault-injection schedule
    (:mod:`repro.run.faults`); disarmed, the hook is a no-op.
    """
    try:
        faults.maybe_inject(unit_index, attempt)
        value = fn(unit) if workers is None else fn(unit, workers=workers)
        return ResultEnvelope(ok=True, value=value, attempt=attempt)
    except Exception as exc:
        return ResultEnvelope(
            ok=False, failure=UnitFailure.from_exception(exc, attempt), attempt=attempt
        )


@runtime_checkable
class Executor(Protocol):
    """Maps simulation units to payload lists on some substrate."""

    #: Parallelism the executor can offer a single unit's internal
    #: fan-outs (1 for strictly serial substrates).
    workers: int

    def map_units(self, fn: Callable, units: Sequence) -> list:
        """Run ``fn`` over every unit; results come back in unit order."""
        ...  # pragma: no cover - protocol


class SerialExecutor:
    """Run every unit in-process, one after another.

    ``map_units`` stays the bare loop — the executable specification —
    while :meth:`map_units_enveloped` adds the retry/envelope layer the
    sweep runner's failure policies build on.
    """

    workers = 1

    def __init__(
        self,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
        backoff_base: float = DEFAULT_BACKOFF_BASE,
        backoff_seed: int | None = None,
    ) -> None:
        if max_attempts < 1:
            raise ConfigError(f"max_attempts must be >= 1, got {max_attempts}")
        self.max_attempts = max_attempts
        self.backoff_base = backoff_base
        self._backoff_rng = random.Random(backoff_seed)

    def map_units(self, fn: Callable, units: Sequence) -> list:
        return [fn(unit) for unit in units]

    def map_units_enveloped(
        self,
        fn: Callable,
        units: Sequence,
        progress: Callable[[int, int], None] | None = None,
        unit_done: Callable[[int, ResultEnvelope], None] | None = None,
    ) -> list[ResultEnvelope]:
        """Like :meth:`map_units`, but per-unit outcomes never raise.

        ``progress(done, total)`` fires after each unit reaches its
        terminal envelope; an exception it raises aborts the map (the
        sweep service uses exactly that for cooperative cancellation).
        ``unit_done(index, envelope)`` fires once per unit with its
        terminal envelope, as soon as it exists — the sweep runner uses
        it to persist completed work before the batch finishes, so a
        crash mid-batch only loses in-flight units.
        """
        units = list(units)
        envelopes = []
        for index, unit in enumerate(units):
            envelope = run_attempt(fn, unit, index, 1)
            for attempt in range(2, self.max_attempts + 1):
                if envelope.ok:
                    break
                time.sleep(
                    _backoff_seconds(self.backoff_base, attempt - 1, self._backoff_rng)
                )
                envelope = run_attempt(fn, unit, index, attempt)
            envelopes.append(envelope)
            if unit_done is not None:
                unit_done(index, envelope)
            if progress is not None:
                progress(len(envelopes), len(units))
        return envelopes


def _pool_attempt(args: tuple) -> ResultEnvelope:
    """Pool worker entry point: one enveloped attempt (picklable)."""
    fn, index, unit, attempt = args
    return run_attempt(fn, unit, index, attempt)


class PoolExecutor:
    """Fan units out over a local ``multiprocessing`` pool.

    A single unit never pays pool overhead: it runs in-process and
    receives the executor's whole worker budget (``fn(unit,
    workers=N)``) so a lone fan-out group parallelises internally —
    exactly the pre-seam ``SweepRunner`` behaviour.

    Every attempt crosses the pool as a :class:`ResultEnvelope`, so one
    raising unit no longer aborts the map for its siblings: failed units
    are retried (with backoff) in follow-up rounds up to the attempt
    budget, and only :meth:`map_units` converts a terminal failure into
    an :class:`~repro.errors.ExecutionError`.
    """

    def __init__(
        self,
        workers: int,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
        backoff_base: float = DEFAULT_BACKOFF_BASE,
        backoff_seed: int | None = None,
    ) -> None:
        if workers < 1:
            raise ConfigError(f"workers must be >= 1, got {workers}")
        if max_attempts < 1:
            raise ConfigError(f"max_attempts must be >= 1, got {max_attempts}")
        self.workers = workers
        self.max_attempts = max_attempts
        self.backoff_base = backoff_base
        self._backoff_rng = random.Random(backoff_seed)

    def map_units(self, fn: Callable, units: Sequence) -> list:
        return [env.unwrap() for env in self.map_units_enveloped(fn, units)]

    def map_units_enveloped(
        self,
        fn: Callable,
        units: Sequence,
        progress: Callable[[int, int], None] | None = None,
        unit_done: Callable[[int, ResultEnvelope], None] | None = None,
    ) -> list[ResultEnvelope]:
        """Enveloped map: per-unit outcomes, failures retried then kept.

        ``progress(done, total)`` counts units whose envelope is
        terminal — a success, or a failure with no retry budget left.
        ``unit_done(index, envelope)`` fires once per unit the moment
        its envelope turns terminal (crash-safe incremental persistence
        in the sweep runner).
        """
        units = list(units)
        if not units:
            return []
        done = 0
        if self.workers == 1 or len(units) == 1:
            envelopes = []
            for index, unit in enumerate(units):
                envelope = self._attempts_in_process(fn, index, unit)
                envelopes.append(envelope)
                done += 1
                if unit_done is not None:
                    unit_done(index, envelope)
                if progress is not None:
                    progress(done, len(units))
            return envelopes
        envelopes: list[ResultEnvelope | None] = [None] * len(units)
        pending = list(range(len(units)))
        for attempt in range(1, self.max_attempts + 1):
            if attempt > 1:
                time.sleep(
                    _backoff_seconds(self.backoff_base, attempt - 1, self._backoff_rng)
                )
            jobs = [(fn, index, units[index], attempt) for index in pending]
            processes = min(self.workers, len(jobs))
            still_failing = []
            with pool_context().Pool(processes=processes) as pool:
                for index, envelope in zip(
                    pending, pool.imap(_pool_attempt, jobs, chunksize=1)
                ):
                    envelopes[index] = envelope
                    if not envelope.ok:
                        still_failing.append(index)
                    if envelope.ok or attempt == self.max_attempts:
                        done += 1
                        if unit_done is not None:
                            unit_done(index, envelope)
                        if progress is not None:
                            progress(done, len(units))
            pending = still_failing
            if not pending:
                break
        return envelopes  # type: ignore[return-value]

    def _attempts_in_process(
        self, fn: Callable, index: int, unit: object
    ) -> ResultEnvelope:
        # The single-unit / workers==1 special case, retried in-process.
        envelope = run_attempt(fn, unit, index, 1, workers=self.workers)
        for attempt in range(2, self.max_attempts + 1):
            if envelope.ok:
                break
            time.sleep(
                _backoff_seconds(self.backoff_base, attempt - 1, self._backoff_rng)
            )
            envelope = run_attempt(fn, unit, index, attempt, workers=self.workers)
        return envelope


# ------------------------------------------------------------- job queue

#: Spool-file suffixes of the queue protocol.
_TASK_SUFFIX = ".task.pkl"
_RESULT_SUFFIX = ".result.pkl"
_LEASE_SUFFIX = ".lease.json"

#: Spool subdirectory where exhausted units are parked.
QUARANTINE_DIRNAME = "quarantine"

#: Garbage written by the ``corrupt`` fault kind in place of a result
#: pickle (deliberately not a valid pickle stream).
_TORN_RESULT_BYTES = b"\x00torn-result-write"

_UNIT_NAME_RE = re.compile(r"unit_(\d+)\.task\.pkl")
_BATCH_NAME_RE = re.compile(r"batch_(\d+)_")


@dataclass
class TaskRecord:
    """One spooled unit: the work plus its fault-tolerance metadata.

    This is the task file's on-disk payload.  ``attempt`` is bumped on
    every producer re-enqueue and every lease reclaim, so whichever
    worker runs the unit knows which attempt it is executing (and the
    fault harness can target attempts deterministically).
    """

    fn: Callable
    unit: object
    attempt: int = 1
    max_attempts: int = DEFAULT_MAX_ATTEMPTS
    lease_ttl: float = DEFAULT_LEASE_TTL


def _spool_task_paths(batch_dir: Path, count: int) -> list[Path]:
    return [batch_dir / f"unit_{index:06d}{_TASK_SUFFIX}" for index in range(count)]


def _result_path(task_path: Path) -> Path:
    return task_path.with_name(
        task_path.name[: -len(_TASK_SUFFIX)] + _RESULT_SUFFIX
    )


def _unit_index(task_path: Path) -> int:
    """The unit's batch-local index (keys the fault schedule)."""
    match = _UNIT_NAME_RE.fullmatch(task_path.name)
    return int(match.group(1)) if match else 0


def _lease_path(claim: Path) -> Path:
    return claim.with_name(claim.name + _LEASE_SUFFIX)


def _claim_task_path(claim: Path) -> Path:
    """The task path a claim file was renamed from."""
    return claim.with_name(claim.name.split(".claim.")[0])


def _write_lease(claim: Path, attempt: int, ttl: float) -> None:
    """Write/refresh the claim's lease sidecar (atomic, failure-tolerant)."""
    now = time.time()
    dump_json_atomic(
        _lease_path(claim),
        {
            "owner_pid": os.getpid(),
            "owner_host": socket.gethostname(),
            "claimed_at": now,
            "heartbeat_at": now,
            "lease_ttl": ttl,
            "attempt": attempt,
        },
    )


class _LeaseHeartbeat:
    """Background refresh of a claim's lease while its unit runs.

    A daemon thread rewrites the sidecar every ``ttl / 4`` seconds, so
    a slow-but-alive worker keeps its lease indefinitely while a
    SIGKILLed one stops heartbeating the instant it dies.  The thread
    dies with the process — exactly the property reclaim relies on.
    """

    def __init__(self, claim: Path, attempt: int, ttl: float) -> None:
        self._claim = claim
        self._attempt = attempt
        self._ttl = ttl
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def __enter__(self) -> _LeaseHeartbeat:
        self._thread.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._stop.set()
        self._thread.join(timeout=1.0)

    def _run(self) -> None:
        interval = max(self._ttl / 4.0, 0.01)
        while not self._stop.wait(interval):
            if not self._claim.exists():
                return  # reclaimed or retired under us: stop quietly
            _write_lease(self._claim, self._attempt, self._ttl)


def _lease_expired(claim: Path, lease_ttl: float | None) -> bool:
    """Is this claim reclaimable?

    Expired means either (a) the lease sidecar's same-host owner pid is
    dead — a crashed worker is reclaimed immediately, no TTL wait — or
    (b) the last heartbeat is older than the TTL (a wedged worker whose
    heartbeat thread stopped, or a cross-host worker that vanished).  A
    claim without a readable sidecar (worker died inside the tiny
    rename-to-sidecar window, or a pre-lease legacy worker) falls back
    to the claim file's mtime.
    """
    now = time.time()
    lease = load_json_guarded(_lease_path(claim))
    if lease is not None:
        ttl = lease_ttl if lease_ttl is not None else float(
            lease.get("lease_ttl", DEFAULT_LEASE_TTL)
        )
        owner_pid = int(lease.get("owner_pid", 0))
        same_host = lease.get("owner_host") == socket.gethostname()
        if same_host and owner_pid and not _pid_alive(owner_pid):
            return True
        return now - float(lease.get("heartbeat_at", 0.0)) > ttl
    ttl = lease_ttl if lease_ttl is not None else DEFAULT_LEASE_TTL
    try:
        return now - claim.stat().st_mtime > ttl
    except OSError:
        return False  # claim vanished (owner finished) — nothing to reclaim


def _is_claim_file(path: Path) -> bool:
    """A real claim file — not its lease sidecar or a reclaim token."""
    return (
        ".claim." in path.name
        and not path.name.endswith(_LEASE_SUFFIX)
        and ".reclaim." not in path.name
        and not path.name.endswith(".tmp")
    )


def reclaim_expired(spool_dir: str | Path, lease_ttl: float | None = None) -> int:
    """Return expired claims to the spool as claimable tasks.

    The reclaim itself is claim-by-rename all over again (claim ->
    private token), so two workers can never both reclaim one task.
    The winner re-writes the task file with the attempt bumped — the
    re-run is a *new attempt* against the retry budget and the fault
    schedule.  Returns the number of tasks reclaimed.
    """
    spool_dir = Path(spool_dir)
    reclaimed = 0
    for claim in sorted(spool_dir.glob(f"*/unit_*{_TASK_SUFFIX}.claim.*")):
        if not _is_claim_file(claim) or not _lease_expired(claim, lease_ttl):
            continue
        token = claim.with_name(claim.name + f".reclaim.{os.getpid()}")
        try:
            claim.rename(token)
        except OSError:
            continue  # owner finished, or another reclaimer won
        task = load_pickle_guarded(token)
        _lease_path(claim).unlink(missing_ok=True)
        token.unlink(missing_ok=True)
        if task is None:
            continue  # corrupt task: dropped, producer's loss path handles it
        if isinstance(task, TaskRecord):
            task = dataclasses.replace(task, attempt=task.attempt + 1)
        try:
            dump_pickle_atomic(_claim_task_path(claim), task)
        except OSError:  # pragma: no cover - batch retired mid-reclaim
            continue
        reclaimed += 1
    return reclaimed


def release_claims(spool_dir: str | Path, owner_pid: int | None = None) -> int:
    """Hand this process's spool claims back as claimable tasks.

    The voluntary counterpart of :func:`reclaim_expired`: a draining
    process (the sweep service on SIGTERM) releases the claims it still
    holds so surviving workers — including cross-host ones that cannot
    observe pid death and would otherwise wait out the lease TTL — pick
    the units up immediately.  Same claim-by-rename discipline, so a
    concurrent reclaimer can never double-resurrect a task.  Returns
    the number of claims released.
    """
    spool_dir = Path(spool_dir)
    pid = os.getpid() if owner_pid is None else owner_pid
    released = 0
    for claim in sorted(spool_dir.glob(f"*/unit_*{_TASK_SUFFIX}.claim.{pid}")):
        if not _is_claim_file(claim):
            continue
        token = claim.with_name(claim.name + f".reclaim.{os.getpid()}")
        try:
            claim.rename(token)
        except OSError:
            continue  # finished or reclaimed under us
        task = load_pickle_guarded(token)
        _lease_path(claim).unlink(missing_ok=True)
        token.unlink(missing_ok=True)
        if task is None:
            continue
        if isinstance(task, TaskRecord):
            task = dataclasses.replace(task, attempt=task.attempt + 1)
        try:
            dump_pickle_atomic(_claim_task_path(claim), task)
        except OSError:  # pragma: no cover - batch retired mid-release
            continue
        released += 1
    return released


def reap_dead_batches(spool_dir: str | Path) -> int:
    """Prune batch directories whose producer can never collect them.

    A batch directory is dead when it is empty, or when the producer
    pid embedded in its name (``batch_<pid>_<serial>``) is no longer
    alive *on this host* — its results would wait forever.  Quarantine
    is never touched.  A same-host janitor pass, not safe to point at a
    spool whose producers live on other machines.
    """
    spool_dir = Path(spool_dir)
    if not spool_dir.exists():
        return 0
    reaped = 0
    for batch_dir in sorted(spool_dir.iterdir()):
        if not batch_dir.is_dir() or batch_dir.name == QUARANTINE_DIRNAME:
            continue
        try:
            entries = list(batch_dir.iterdir())
        except OSError:  # pragma: no cover - concurrent removal
            continue
        match = _BATCH_NAME_RE.match(batch_dir.name)
        producer_dead = match is not None and not _pid_alive(int(match.group(1)))
        if entries and not producer_dead:
            continue
        for entry in entries:
            entry.unlink(missing_ok=True)
        try:
            batch_dir.rmdir()
            reaped += 1
        except OSError:  # pragma: no cover - concurrent writer refilled it
            pass
    return reaped


def process_spool(
    spool_dir: str | Path,
    max_tasks: int | None = None,
    lease_ttl: float | None = None,
    reap: bool = False,
    heartbeat: bool = True,
) -> int:
    """One pass of the queue worker loop: reclaim, claim, run, write.

    First returns any expired claims to the spool
    (:func:`reclaim_expired`), then scans every batch directory under
    ``spool_dir`` for unclaimed task files, claims each by an atomic
    rename (two workers can never claim the same task), executes the
    pickled task, and writes the result atomically next to it.  Returns
    the number of tasks executed.  This is exactly what a remote worker
    process — on this machine or another sharing the spool via a
    network filesystem — runs in a loop (``scale-sim-repro worker``).

    :class:`TaskRecord` tasks run under a lease (sidecar + heartbeat)
    and produce :class:`ResultEnvelope` results — exceptions included,
    so a poison unit never kills the loop.  Bare ``(fn, unit)`` tuple
    tasks keep the original raw protocol: raw result payload, no lease
    (pre-envelope producers and tests still interoperate).

    Args:
        max_tasks: stop after executing this many tasks.
        lease_ttl: override for expiry checks (``None`` trusts each
            lease's own TTL).
        reap: prune dead batch directories after the pass
            (:func:`reap_dead_batches`).
        heartbeat: refresh leases while units run (disable only in
            tests that exercise expiry-under-execution).
    """
    spool_dir = Path(spool_dir)
    executed = 0
    if not spool_dir.exists():
        return 0
    reclaim_expired(spool_dir, lease_ttl=lease_ttl)
    for task_path in sorted(spool_dir.glob(f"*/unit_*{_TASK_SUFFIX}")):
        if spool_dir / QUARANTINE_DIRNAME in task_path.parents:
            continue  # parked units are evidence, not work
        if max_tasks is not None and executed >= max_tasks:
            break
        claim = task_path.with_name(task_path.name + f".claim.{os.getpid()}")
        try:
            task_path.rename(claim)
        except OSError:
            continue  # another worker won the claim
        task = load_pickle_guarded(claim)
        if task is None:
            continue  # corrupt spool entry: dropped, producer's loss path recovers
        if isinstance(task, TaskRecord):
            _execute_claimed(task_path, claim, task, lease_ttl, heartbeat)
        else:
            fn, unit = task
            try:
                dump_pickle_atomic(_result_path(task_path), fn(unit))
            except OSError:  # pragma: no cover - batch retired mid-run
                pass
            claim.unlink(missing_ok=True)
        executed += 1
    if reap:
        reap_dead_batches(spool_dir)
    return executed


def _execute_claimed(
    task_path: Path,
    claim: Path,
    task: TaskRecord,
    lease_ttl: float | None,
    heartbeat: bool,
) -> None:
    """Run one claimed :class:`TaskRecord` under its lease."""
    ttl = lease_ttl if lease_ttl is not None else task.lease_ttl
    _write_lease(claim, task.attempt, ttl)
    index = _unit_index(task_path)
    if heartbeat:
        with _LeaseHeartbeat(claim, task.attempt, ttl):
            envelope = run_attempt(task.fn, task.unit, index, task.attempt)
    else:
        envelope = run_attempt(task.fn, task.unit, index, task.attempt)
    try:
        if faults.corrupt_requested(index, task.attempt):
            _result_path(task_path).write_bytes(_TORN_RESULT_BYTES)
        else:
            dump_pickle_atomic(_result_path(task_path), envelope)
    except OSError:  # pragma: no cover - batch retired mid-run
        pass
    _lease_path(claim).unlink(missing_ok=True)
    claim.unlink(missing_ok=True)


class QueueExecutor:
    """Spool-directory executor: the sharding drop-in point.

    Every ``map_units`` call creates one batch directory under the
    spool, writes each unit as an atomic :class:`TaskRecord` task file,
    lets workers claim tasks (:func:`process_spool`), and supervises
    the result files: success envelopes are collected, error envelopes
    are re-enqueued with exponential backoff until the attempt budget
    runs out (then parked in ``<spool>/quarantine/`` with the last
    traceback), vanished results (torn writes) count as one more failed
    attempt, and expired leases are reclaimed so a dead worker's unit
    re-runs elsewhere.  With ``run_local_worker=True`` (the default)
    the executor drains its own spool in-process between polls — the
    full serialize/claim/execute/collect round trip runs through disk,
    so the on-disk protocol is exercised end to end even with no
    external worker attached.

    Args:
        spool_dir: shared directory tasks and results flow through.
        run_local_worker: drain the spool in-process (default); pass
            ``False`` when external workers own execution.
        poll_interval: seconds between result-collection scans.
        timeout: seconds to wait for all results before raising
            (``None`` waits indefinitely — external-worker setups).
        max_attempts: per-unit attempt budget before quarantine.
        lease_ttl: seconds without a heartbeat before a claim is
            considered abandoned and reclaimed.
        backoff_base: base of the exponential re-enqueue backoff.
    """

    workers = 1

    def __init__(
        self,
        spool_dir: str | Path,
        run_local_worker: bool = True,
        poll_interval: float = 0.05,
        timeout: float | None = 300.0,
        max_attempts: int = DEFAULT_MAX_ATTEMPTS,
        lease_ttl: float = DEFAULT_LEASE_TTL,
        backoff_base: float = DEFAULT_BACKOFF_BASE,
        backoff_seed: int | None = None,
    ) -> None:
        if poll_interval <= 0:
            raise ConfigError(f"poll_interval must be > 0, got {poll_interval}")
        if max_attempts < 1:
            raise ConfigError(f"max_attempts must be >= 1, got {max_attempts}")
        if lease_ttl <= 0:
            raise ConfigError(f"lease_ttl must be > 0, got {lease_ttl}")
        self.spool_dir = Path(spool_dir)
        self.spool_dir.mkdir(parents=True, exist_ok=True)
        self.run_local_worker = run_local_worker
        self.poll_interval = poll_interval
        self.timeout = timeout
        self.max_attempts = max_attempts
        self.lease_ttl = lease_ttl
        self.backoff_base = backoff_base
        self._backoff_rng = random.Random(backoff_seed)
        self._batch_serial = 0

    @property
    def quarantine_dir(self) -> Path:
        """Where exhausted units are parked (created on first use)."""
        return self.spool_dir / QUARANTINE_DIRNAME

    def _new_batch_dir(self) -> Path:
        # Pid + per-instance serial: unique across concurrent producers
        # sharing one spool and across calls within one producer.
        while True:
            self._batch_serial += 1
            batch = self.spool_dir / f"batch_{os.getpid()}_{self._batch_serial:04d}"
            try:
                batch.mkdir(parents=True, exist_ok=False)
                return batch
            except FileExistsError:  # pragma: no cover - pid reuse race
                continue

    def map_units(self, fn: Callable, units: Sequence) -> list:
        return [env.unwrap() for env in self.map_units_enveloped(fn, units)]

    def map_units_enveloped(
        self,
        fn: Callable,
        units: Sequence,
        progress: Callable[[int, int], None] | None = None,
        unit_done: Callable[[int, ResultEnvelope], None] | None = None,
    ) -> list[ResultEnvelope]:
        """Enveloped map: per-unit outcomes, terminal failures kept.

        ``progress(done, total)`` fires from the supervision loop on
        every poll pass (with whatever count has arrived so far), so a
        caller can use it both as a completion signal and as a
        cancellation poll while external workers hold the units.
        ``unit_done(index, envelope)`` fires once per unit as its
        terminal envelope is collected from the spool.
        """
        units = list(units)
        if not units:
            return []
        batch_dir = self._new_batch_dir()
        task_paths = _spool_task_paths(batch_dir, len(units))
        records = [
            TaskRecord(
                fn=fn,
                unit=unit,
                attempt=1,
                max_attempts=self.max_attempts,
                lease_ttl=self.lease_ttl,
            )
            for unit in units
        ]
        try:
            for task_path, record in zip(task_paths, records):
                dump_pickle_atomic(task_path, record)
            return self._supervise(
                batch_dir, task_paths, records, progress=progress, unit_done=unit_done
            )
        finally:
            self._cleanup(batch_dir, task_paths)

    def _collect(self, task_paths: list[Path]) -> list:
        """Collect raw results for externally-written tasks.

        Back-compat entry point for producers that enqueue task files
        themselves (bare ``(fn, unit)`` tuples included): supervises the
        paths with default-budget placeholder records and unwraps the
        envelopes.
        """
        records = [
            TaskRecord(
                fn=None,
                unit=None,
                max_attempts=self.max_attempts,
                lease_ttl=self.lease_ttl,
            )
            for _ in task_paths
        ]
        return [
            env.unwrap()
            for env in self._supervise(task_paths[0].parent, task_paths, records)
        ]

    # ------------------------------------------------------- supervision

    def _supervise(
        self,
        batch_dir: Path,
        task_paths: list[Path],
        records: list[TaskRecord],
        progress: Callable[[int, int], None] | None = None,
        unit_done: Callable[[int, ResultEnvelope], None] | None = None,
    ) -> list[ResultEnvelope]:
        """The producer loop: collect, retry, reclaim, quarantine."""
        envelopes: dict[int, ResultEnvelope] = {}
        announced: set[int] = set()
        enqueued_attempt = {index: 1 for index in range(len(task_paths))}
        requeue_after: dict[int, tuple[float, TaskRecord]] = {}
        deadline = (
            None if self.timeout is None else time.monotonic() + self.timeout
        )
        while len(envelopes) < len(task_paths):
            if self.run_local_worker:
                process_spool(self.spool_dir)
            for index, task_path in enumerate(task_paths):
                if index in envelopes:
                    continue
                if index in requeue_after:
                    due, record = requeue_after[index]
                    if time.monotonic() >= due:
                        del requeue_after[index]
                        dump_pickle_atomic(task_path, record)
                        enqueued_attempt[index] = record.attempt
                    continue
                self._check_unit(
                    index, task_path, records, envelopes, enqueued_attempt, requeue_after
                )
            if unit_done is not None:
                for index in sorted(envelopes.keys() - announced):
                    announced.add(index)
                    unit_done(index, envelopes[index])
            if progress is not None:
                progress(len(envelopes), len(task_paths))
            if len(envelopes) == len(task_paths):
                break
            if deadline is not None and time.monotonic() > deadline:
                missing = [
                    task_paths[i].name
                    for i in range(len(task_paths))
                    if i not in envelopes
                ]
                raise TimeoutError(
                    f"queue executor: {len(missing)} unit(s) not completed "
                    f"within {self.timeout}s: {', '.join(missing[:5])}"
                )
            time.sleep(self.poll_interval)
        return [envelopes[index] for index in range(len(task_paths))]

    def _check_unit(
        self,
        index: int,
        task_path: Path,
        records: list[TaskRecord],
        envelopes: dict[int, ResultEnvelope],
        enqueued_attempt: dict[int, int],
        requeue_after: dict[int, tuple[float, TaskRecord]],
    ) -> None:
        """Poll one unit: collect its envelope or advance its recovery."""
        payload = load_pickle_guarded(_result_path(task_path))
        if payload is None:
            # No result yet.  If the task file and every claim of it are
            # gone too, the unit vanished: a torn result write (the
            # guarded load above just unlinked the garbage) or a writer
            # that crashed between unlinks.  Re-check the result once
            # more to close the claim-unlink/result-write race window.
            if (
                task_path.exists()
                or self._in_flight(task_path)
                or load_pickle_guarded(_result_path(task_path)) is not None
            ):
                return
            failure = UnitFailure(
                error_class="ResultLost",
                message="result pickle missing or corrupt after execution",
                traceback_text="",
                attempts=enqueued_attempt[index],
            )
            self._record_failure(
                index, task_path, records, envelopes, requeue_after, failure
            )
            return
        if not isinstance(payload, ResultEnvelope):
            # Legacy raw result (bare-tuple task protocol).
            envelopes[index] = ResultEnvelope(ok=True, value=payload)
            return
        if payload.ok:
            envelopes[index] = payload
            return
        _result_path(task_path).unlink(missing_ok=True)
        assert payload.failure is not None
        self._record_failure(
            index, task_path, records, envelopes, requeue_after, payload.failure
        )

    def _record_failure(
        self,
        index: int,
        task_path: Path,
        records: list[TaskRecord],
        envelopes: dict[int, ResultEnvelope],
        requeue_after: dict[int, tuple[float, TaskRecord]],
        failure: UnitFailure,
    ) -> None:
        """Retry a failed attempt with backoff, or quarantine the unit."""
        next_attempt = failure.attempts + 1
        if next_attempt > records[index].max_attempts:
            self._quarantine(task_path, records[index], failure)
            envelopes[index] = ResultEnvelope(
                ok=False, failure=failure, attempt=failure.attempts
            )
            return
        record = dataclasses.replace(records[index], attempt=next_attempt)
        due = time.monotonic() + _backoff_seconds(
            self.backoff_base, next_attempt - 1, self._backoff_rng
        )
        requeue_after[index] = (due, record)

    def _in_flight(self, task_path: Path) -> bool:
        """Is any worker holding (or reclaiming) a claim on this unit?"""
        return any(task_path.parent.glob(task_path.name + ".claim.*"))

    def _quarantine(
        self, task_path: Path, record: TaskRecord, failure: UnitFailure
    ) -> None:
        """Park an exhausted unit beside its last traceback."""
        self.quarantine_dir.mkdir(parents=True, exist_ok=True)
        stem = f"{task_path.parent.name}_{task_path.name[: -len(_TASK_SUFFIX)]}"
        dump_pickle_atomic(
            self.quarantine_dir / f"{stem}{_TASK_SUFFIX}",
            dataclasses.replace(record, attempt=failure.attempts),
        )
        (self.quarantine_dir / f"{stem}.traceback.txt").write_text(
            f"unit: {task_path}\n"
            f"attempts: {failure.attempts}\n"
            f"error: {failure.error_class}: {failure.message}\n\n"
            f"{failure.traceback_text}"
        )

    def _cleanup(self, batch_dir: Path, task_paths: list[Path]) -> None:
        """Retire a finished batch: tasks, results, claims, leases, dir.

        Claims and lease sidecars of in-flight duplicates (a reclaimed
        unit whose original worker is still stalling) are removed too —
        the batch is decided, any straggler's write lands in a void and
        its writer is guarded against the missing directory.
        """
        for task_path in task_paths:
            task_path.unlink(missing_ok=True)
            _result_path(task_path).unlink(missing_ok=True)
        try:
            for leftover in batch_dir.iterdir():
                leftover.unlink(missing_ok=True)
            batch_dir.rmdir()
        except OSError:  # pragma: no cover - concurrent straggler write
            pass


def make_executor(
    name: str,
    workers: int = 1,
    spool_dir: str | Path | None = None,
    max_attempts: int | None = None,
    lease_ttl: float | None = None,
) -> Executor:
    """Build an executor by CLI name.

    ``serial`` ignores ``workers``; ``pool`` wraps ``workers``
    processes; ``queue`` spools through ``spool_dir`` (required).
    ``max_attempts`` / ``lease_ttl`` override the fault-tolerance
    defaults where the backend supports them.
    """
    key = name.strip().lower()
    attempts = DEFAULT_MAX_ATTEMPTS if max_attempts is None else max_attempts
    if key == "serial":
        return SerialExecutor(max_attempts=attempts)
    if key == "pool":
        return PoolExecutor(workers, max_attempts=attempts)
    if key == "queue":
        if spool_dir is None:
            raise ConfigError("queue executor requires a spool directory")
        return QueueExecutor(
            spool_dir,
            max_attempts=attempts,
            lease_ttl=DEFAULT_LEASE_TTL if lease_ttl is None else lease_ttl,
        )
    raise ConfigError(
        f"unknown executor {name!r}; available: {', '.join(AVAILABLE_EXECUTORS)}"
    )


__all__ = [
    "AVAILABLE_EXECUTORS",
    "BACKOFF_CAP",
    "DEFAULT_BACKOFF_BASE",
    "DEFAULT_LEASE_TTL",
    "DEFAULT_MAX_ATTEMPTS",
    "Executor",
    "PoolExecutor",
    "QUARANTINE_DIRNAME",
    "QueueExecutor",
    "ResultEnvelope",
    "SerialExecutor",
    "TaskRecord",
    "UnitFailure",
    "make_executor",
    "process_spool",
    "reap_dead_batches",
    "reclaim_expired",
    "release_claims",
    "run_attempt",
]
