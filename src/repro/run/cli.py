"""Command-line interface mirroring SCALE-Sim's ``scale.py``.

Usage::

    scale-sim-repro -c configs/tpu.cfg -t topologies/resnet18.csv -p outputs
    scale-sim-repro --preset google_tpu_v2 --model resnet18 --scale 8
    scale-sim-repro sweep --preset scale_sim_v2_default --model resnet18 \
        --scale 8 --set dram.channels=1,2,4,8 --workers 4

Either a ``.cfg`` file or a named preset selects the architecture, and
either a topology CSV or a built-in model name selects the workload.
The ``sweep`` subcommand crosses the selected config with one or more
``--set section.field=v1,v2,...`` axes, fans the grid out over a worker
pool (:mod:`repro.run.sweep`), and writes a sweep-report CSV.  The
``worker`` subcommand runs the spool worker loop
(:func:`repro.run.executors.process_spool`) against a shared spool
directory — the remote half of ``sweep --executor queue``.

The service subcommands turn sweeps into jobs against a long-running
server (:mod:`repro.service`): ``serve`` runs the crash-safe job server
over a durable ``--data-dir``, ``submit`` posts a sweep to it (honouring
429/503 + ``Retry-After`` with capped, jittered backoff), ``status``
inspects jobs, and ``fetch`` downloads report CSVs.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from repro.config.parser import load_config
from repro.config.presets import available_presets, get_preset
from repro.config.system import VALID_DRAM_ENGINES, VALID_LAYOUT_EVALUATORS
from repro.core.report import (
    write_failure_report,
    write_layout_sweep_report,
    write_sweep_report,
)
from repro.errors import ServiceError
from repro.run.executors import AVAILABLE_EXECUTORS, make_executor, process_spool
from repro.run.runner import run_simulation
from repro.run.sweep import (
    FAILURE_POLICIES,
    Axis,
    ResultCache,
    SweepRunner,
    SweepSpec,
)
from repro.store.artifact_store import ArtifactStore
from repro.topology.models import available_models, get_model
from repro.topology.topology import Topology


def positive_int(raw: str) -> int:
    """argparse type for options that only make sense strictly positive.

    Central validation for ``--workers``, ``--max-attempts``, ``--scale``
    and friends: a zero or negative value fails parsing with a clear
    message instead of surfacing later as a confusing deadlock, divide
    error, or silently-serial sweep.
    """
    try:
        value = int(raw)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected an integer, got {raw!r}")
    if value < 1:
        raise argparse.ArgumentTypeError(f"expected a positive integer, got {raw!r}")
    return value


def positive_float(raw: str) -> float:
    """argparse type for durations (``--lease-ttl``, ``--poll``, ...)."""
    try:
        value = float(raw)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected a number, got {raw!r}")
    if not value > 0:
        raise argparse.ArgumentTypeError(f"expected a positive number, got {raw!r}")
    return value


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser."""
    parser = argparse.ArgumentParser(
        prog="scale-sim-repro",
        description="SCALE-Sim v3 reproduction: cycle-accurate systolic simulation",
        epilog=(
            "design-space sweeps: 'scale-sim-repro sweep --help' "
            "(grid over config fields, worker pool, result cache)"
        ),
    )
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument("-c", "--config", help="path to a SCALE-Sim style .cfg file")
    source.add_argument(
        "--preset",
        choices=available_presets(),
        help="named architecture preset",
    )
    workload = parser.add_mutually_exclusive_group(required=True)
    workload.add_argument("-t", "--topology", help="path to a topology CSV")
    workload.add_argument(
        "--model",
        choices=available_models(),
        help="built-in workload model",
    )
    parser.add_argument(
        "--scale",
        type=positive_int,
        default=1,
        help="divisor shrinking built-in model dimensions (default 1)",
    )
    parser.add_argument(
        "-p",
        "--output",
        default="outputs",
        help="output directory for reports (default ./outputs)",
    )
    parser.add_argument(
        "--no-reports",
        action="store_true",
        help="simulate without writing report files",
    )
    parser.add_argument(
        "--engine",
        choices=VALID_DRAM_ENGINES,
        default=None,
        help="override the memory-datapath engine (default: config's dram.engine)",
    )
    parser.add_argument(
        "--layout-evaluator",
        choices=VALID_LAYOUT_EVALUATORS,
        default=None,
        help="override the layout bank-conflict evaluator "
        "(default: config's layout.evaluator)",
    )
    return parser


def build_sweep_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for the ``sweep`` subcommand."""
    parser = argparse.ArgumentParser(
        prog="scale-sim-repro sweep",
        description="fan a config grid out over a worker pool and report CSV",
    )
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument("-c", "--config", help="path to a SCALE-Sim style .cfg file")
    source.add_argument(
        "--preset", choices=available_presets(), help="named architecture preset"
    )
    workload = parser.add_mutually_exclusive_group(required=True)
    workload.add_argument("-t", "--topology", help="path to a topology CSV")
    workload.add_argument(
        "--model", choices=available_models(), help="built-in workload model"
    )
    parser.add_argument(
        "--scale",
        type=positive_int,
        default=1,
        help="divisor shrinking built-in model dimensions (default 1)",
    )
    parser.add_argument(
        "--set",
        dest="axes",
        action="append",
        default=[],
        metavar="FIELD=V1,V2,...",
        help="sweep axis over a dotted config field, e.g. dram.channels=1,2,4 "
        "(repeatable; axes cross-multiply)",
    )
    parser.add_argument(
        "--workers",
        type=positive_int,
        default=1,
        help="worker processes for the sweep (default 1 = serial)",
    )
    parser.add_argument(
        "--executor",
        choices=AVAILABLE_EXECUTORS,
        default=None,
        help="execution backend for simulation units (default: serial, or a "
        "process pool when --workers > 1); 'queue' spools units through "
        "<output>/spool and drains them with a local worker",
    )
    parser.add_argument(
        "-p",
        "--output",
        default="outputs",
        help="output directory for the sweep report (default ./outputs)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="persist simulated points here so repeated sweeps reuse them",
    )
    parser.add_argument(
        "--store-dir",
        default=None,
        help="content-addressed artifact store for mid-level artifacts "
        "(compute schedules, fold-demand streams, decoded line batches); "
        "warm stores skip the shared upstream work",
    )
    parser.add_argument(
        "--name", default="sweep", help="sweep name used for run names and the CSV"
    )
    parser.add_argument(
        "--engine",
        choices=VALID_DRAM_ENGINES,
        default=None,
        help="override the memory-datapath engine (default: config's dram.engine)",
    )
    parser.add_argument(
        "--layout-evaluator",
        choices=VALID_LAYOUT_EVALUATORS,
        default=None,
        help="override the layout bank-conflict evaluator "
        "(default: config's layout.evaluator)",
    )
    parser.add_argument(
        "--failure-policy",
        choices=FAILURE_POLICIES,
        default="raise",
        help="what to do when a point exhausts its attempt budget: 'raise' "
        "aborts the sweep (default); 'degrade' finishes the surviving points "
        "and writes the rest to <name>_failures.csv",
    )
    parser.add_argument(
        "--max-attempts",
        type=positive_int,
        default=None,
        help="attempt budget per simulation unit before it is quarantined "
        "(default 3)",
    )
    parser.add_argument(
        "--lease-ttl",
        type=positive_float,
        default=None,
        help="queue-executor lease time-to-live in seconds; a worker that "
        "stops heartbeating for this long forfeits its claim (default 300)",
    )
    return parser


def build_worker_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for the ``worker`` subcommand."""
    parser = argparse.ArgumentParser(
        prog="scale-sim-repro worker",
        description="drain simulation units from a shared spool directory "
        "(the remote half of 'sweep --executor queue')",
    )
    parser.add_argument(
        "--spool",
        required=True,
        help="spool directory shared with the sweep producer",
    )
    parser.add_argument(
        "--poll",
        type=positive_float,
        default=0.5,
        help="seconds to sleep between spool scans (default 0.5)",
    )
    parser.add_argument(
        "--lease-ttl",
        type=positive_float,
        default=None,
        help="override the lease TTL used when reclaiming expired claims "
        "(default: each task's own TTL)",
    )
    parser.add_argument(
        "--max-tasks",
        type=positive_int,
        default=None,
        help="stop after executing this many units (default: unlimited)",
    )
    parser.add_argument(
        "--once",
        action="store_true",
        help="make a single pass over the spool and exit instead of looping",
    )
    parser.add_argument(
        "--reap",
        action="store_true",
        help="also prune batch directories whose producer process is dead",
    )
    return parser


def build_serve_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for the ``serve`` subcommand."""
    parser = argparse.ArgumentParser(
        prog="scale-sim-repro serve",
        description="run the crash-safe sweep job server (repro.service) "
        "over a durable data directory",
    )
    parser.add_argument(
        "--data-dir",
        required=True,
        help="root of all durable state: job journals, result cache, "
        "artifact store, spool; restarting on the same directory recovers "
        "unfinished jobs",
    )
    parser.add_argument(
        "--host", default="127.0.0.1", help="bind address (default 127.0.0.1)"
    )
    parser.add_argument(
        "--port",
        type=int,
        default=8537,
        help="bind port; 0 picks an ephemeral port (default 8537)",
    )
    parser.add_argument(
        "--executor",
        choices=AVAILABLE_EXECUTORS,
        default="serial",
        help="execution backend for each job's simulation units (default "
        "serial); 'queue' spools units through <data-dir>/spool",
    )
    parser.add_argument(
        "--workers",
        type=positive_int,
        default=1,
        help="per-job unit parallelism for the pool executor (default 1)",
    )
    parser.add_argument(
        "--max-queued",
        type=positive_int,
        default=16,
        help="admission bound: queued jobs beyond this get 429 + "
        "Retry-After (default 16)",
    )
    parser.add_argument(
        "--max-active",
        type=positive_int,
        default=1,
        help="jobs running concurrently; the server's unit budget is "
        "max-active x workers (default 1)",
    )
    parser.add_argument(
        "--max-attempts",
        type=positive_int,
        default=None,
        help="attempt budget per simulation unit before it is quarantined "
        "(default 3)",
    )
    parser.add_argument(
        "--lease-ttl",
        type=positive_float,
        default=None,
        help="queue-executor lease time-to-live in seconds (default 300)",
    )
    parser.add_argument(
        "--drain-timeout",
        type=positive_float,
        default=30.0,
        help="seconds SIGTERM waits for running jobs before journaling "
        "them interrupted (default 30)",
    )
    parser.add_argument(
        "--no-store",
        action="store_true",
        help="disable the shared artifact store under <data-dir>/store",
    )
    parser.add_argument(
        "--external-workers",
        action="store_true",
        help="with --executor queue, don't drain the spool in-process; "
        "remote 'scale-sim-repro worker --spool <data-dir>/spool' "
        "processes own execution",
    )
    return parser


def build_submit_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for the ``submit`` subcommand."""
    parser = argparse.ArgumentParser(
        prog="scale-sim-repro submit",
        description="submit a sweep job to a running server; retries "
        "429/503 answers honouring Retry-After with capped jittered backoff",
    )
    parser.add_argument(
        "--url",
        default="http://127.0.0.1:8537",
        help="server base URL (default http://127.0.0.1:8537)",
    )
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument("-c", "--config", help="path to a SCALE-Sim style .cfg file")
    source.add_argument(
        "--preset", choices=available_presets(), help="named architecture preset"
    )
    workload = parser.add_mutually_exclusive_group(required=True)
    workload.add_argument("-t", "--topology", help="path to a topology CSV")
    workload.add_argument(
        "--model", choices=available_models(), help="built-in workload model"
    )
    parser.add_argument(
        "--scale",
        type=positive_int,
        default=1,
        help="divisor shrinking built-in model dimensions (default 1)",
    )
    parser.add_argument(
        "--set",
        dest="axes",
        action="append",
        default=[],
        metavar="FIELD=V1,V2,...",
        help="sweep axis over a dotted config field (repeatable)",
    )
    parser.add_argument(
        "--name", default="sweep", help="job name used for the report CSV"
    )
    parser.add_argument(
        "--failure-policy",
        choices=FAILURE_POLICIES,
        default="degrade",
        help="server-side policy when a point exhausts its attempts "
        "(default degrade: finish survivors, report the rest)",
    )
    parser.add_argument(
        "--max-attempts",
        type=positive_int,
        default=None,
        help="attempt budget per simulation unit (default: server's)",
    )
    parser.add_argument(
        "--max-retries",
        type=positive_int,
        default=5,
        help="client retries for 429/503/connection errors (default 5)",
    )
    parser.add_argument(
        "--backoff-seed",
        type=int,
        default=None,
        help="seed for deterministic retry jitter (default: OS entropy)",
    )
    parser.add_argument(
        "--wait",
        action="store_true",
        help="poll until the job finishes and print its final state",
    )
    parser.add_argument(
        "--poll",
        type=positive_float,
        default=0.5,
        help="seconds between --wait polls (default 0.5)",
    )
    parser.add_argument(
        "--timeout",
        type=positive_float,
        default=3600.0,
        help="--wait deadline in seconds (default 3600)",
    )
    return parser


def build_status_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for the ``status`` subcommand."""
    parser = argparse.ArgumentParser(
        prog="scale-sim-repro status",
        description="inspect a running server: job list, one job, or health",
    )
    parser.add_argument(
        "--url",
        default="http://127.0.0.1:8537",
        help="server base URL (default http://127.0.0.1:8537)",
    )
    parser.add_argument(
        "job_id", nargs="?", default=None, help="job id (default: list all jobs)"
    )
    parser.add_argument(
        "--health",
        action="store_true",
        help="print the /healthz document instead of job status",
    )
    return parser


def build_fetch_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for the ``fetch`` subcommand."""
    parser = argparse.ArgumentParser(
        prog="scale-sim-repro fetch",
        description="download a finished job's report CSV",
    )
    parser.add_argument(
        "--url",
        default="http://127.0.0.1:8537",
        help="server base URL (default http://127.0.0.1:8537)",
    )
    parser.add_argument("job_id", help="job id")
    parser.add_argument(
        "--failures",
        action="store_true",
        help="fetch the failure report instead of the sweep report",
    )
    parser.add_argument(
        "-o",
        "--output",
        default=None,
        help="write the CSV here (default: print to stdout)",
    )
    return parser


def _with_engine(config, engine: str | None):
    """Return ``config`` with ``dram.engine`` overridden when requested."""
    if engine is None:
        return config
    import dataclasses

    return config.replace(dram=dataclasses.replace(config.dram, engine=engine))


def _with_layout_evaluator(config, evaluator: str | None):
    """Return ``config`` with ``layout.evaluator`` overridden when requested."""
    if evaluator is None:
        return config
    import dataclasses

    return config.replace(
        layout=dataclasses.replace(config.layout, evaluator=evaluator)
    )


def _parse_axis_value(raw: str) -> object:
    text = raw.strip()
    lowered = text.lower()
    if lowered in ("true", "false"):
        return lowered == "true"
    for cast in (int, float):
        try:
            return cast(text)
        except ValueError:
            continue
    return text


def _parse_axis(option: str) -> Axis:
    field_path, sep, values = option.partition("=")
    if not sep or not values.strip():
        raise SystemExit(
            f"--set expects FIELD=V1,V2,... with at least one value, got {option!r}"
        )
    return Axis(
        field_path.strip(),
        tuple(_parse_axis_value(part) for part in values.split(",") if part.strip()),
    )


def sweep_main(argv: list[str]) -> int:
    """Entry point of the ``sweep`` subcommand."""
    args = build_sweep_parser().parse_args(argv)
    config = load_config(args.config) if args.config else get_preset(args.preset)
    config = _with_engine(config, args.engine)
    config = _with_layout_evaluator(config, args.layout_evaluator)
    if args.topology:
        topology = Topology.from_csv(args.topology)
    else:
        topology = get_model(args.model, scale=args.scale)

    spec = SweepSpec(
        base=config,
        axes=[_parse_axis(option) for option in args.axes],
        topologies=[topology],
        name=args.name,
    )
    cache = ResultCache(args.cache_dir) if args.cache_dir else None
    store = ArtifactStore(args.store_dir) if args.store_dir else None
    if args.executor is not None:
        executor = make_executor(
            args.executor,
            workers=args.workers,
            spool_dir=Path(args.output) / "spool",
            max_attempts=args.max_attempts,
            lease_ttl=args.lease_ttl,
        )
        runner = SweepRunner(
            cache=cache,
            executor=executor,
            store=store,
            failure_policy=args.failure_policy,
        )
    else:
        runner = SweepRunner(
            workers=args.workers,
            cache=cache,
            store=store,
            failure_policy=args.failure_policy,
            max_attempts=args.max_attempts,
        )
    results = runner.run(spec)

    axis_names = [axis.name for axis in spec.axes]
    print(f"sweep:    {args.name} ({len(results)} points, {args.workers} workers)")
    if runner.last_grouping is not None and runner.last_grouping[1]:
        simulated, units = runner.last_grouping
        unit_word = "unit" if units == 1 else "units"
        print(f"grouping: {simulated} points -> {units} simulation {unit_word}")
        for number, fanout in enumerate(runner.last_grouping.units):
            detail = f"  unit {number}: {fanout.points} points"
            if fanout.word_streams:
                stream_word = "stream" if fanout.word_streams == 1 else "streams"
                detail += f", {fanout.word_streams} word-size line {stream_word}"
            if fanout.grid_configs:
                detail += (
                    f", {fanout.grid_configs} DRAM configs per grid pass"
                )
            print(detail)
    for result in results:
        knobs = "  ".join(
            f"{name}={result.assignment_dict[name]}" for name in axis_names
        )
        origin = "cache" if result.from_cache else "run"
        line = (
            f"  [{result.index:03d}] {result.topology_name:16s} {knobs}  "
            f"cycles={result.total_cycles:,}  stalls={result.total_stall_cycles:,}"
        )
        if result.energy_report is not None:
            line += f"  energy={result.energy_mj:.3f}mJ"
        print(f"{line}  ({origin})")
    hit_line = f"cache:    {runner.cache.hits} hits / {runner.cache.misses} misses"
    print(hit_line)
    if store is not None:
        print(f"store:    {store.hits} hits / {store.misses} misses")
    if results:
        report = write_sweep_report(
            results, Path(args.output) / f"{args.name}_report.csv"
        )
        print(f"report:   {report}")
    if runner.last_failures:
        failure_report = write_failure_report(
            runner.last_failures, Path(args.output) / f"{args.name}_failures.csv"
        )
        count = len(runner.last_failures)
        point_word = "point" if count == 1 else "points"
        print(f"failures: {count} {point_word} -> {failure_report}")
    if any(result.layout_results for result in results):
        layout_report = write_layout_sweep_report(
            results, Path(args.output) / f"{args.name}_layout_report.csv"
        )
        print(f"layout:   {layout_report}")
    if not results:
        print("sweep produced no successful points", file=sys.stderr)
        return 1
    return 0


def worker_main(argv: list[str]) -> int:
    """Entry point of the ``worker`` subcommand.

    Loops :func:`repro.run.executors.process_spool` over a shared spool
    directory until interrupted (or, with ``--once``/``--max-tasks``,
    until a bounded amount of work is done).  Lease reclaim runs on
    every pass, so a fleet of these processes tolerates any of its
    members dying mid-unit.
    """
    args = build_worker_parser().parse_args(argv)
    spool_dir = Path(args.spool)
    spool_dir.mkdir(parents=True, exist_ok=True)
    executed = 0
    try:
        while True:
            remaining = None
            if args.max_tasks is not None:
                remaining = args.max_tasks - executed
                if remaining <= 0:
                    break
            executed += process_spool(
                spool_dir,
                max_tasks=remaining,
                lease_ttl=args.lease_ttl,
                reap=args.reap,
            )
            if args.once:
                break
            time.sleep(args.poll)
    except KeyboardInterrupt:
        pass
    print(f"worker: executed {executed} unit(s) from {spool_dir}")
    return 0


def serve_main(argv: list[str]) -> int:
    """Entry point of the ``serve`` subcommand."""
    from repro.service import JobManager, serve

    args = build_serve_parser().parse_args(argv)
    manager = JobManager(
        args.data_dir,
        executor_name=args.executor,
        workers=args.workers,
        max_queued=args.max_queued,
        max_active=args.max_active,
        max_attempts=args.max_attempts,
        lease_ttl=args.lease_ttl,
        use_store=not args.no_store,
        external_workers=args.external_workers,
    )
    return serve(
        manager, host=args.host, port=args.port, drain_timeout=args.drain_timeout
    )


def _submit_payload(args: argparse.Namespace) -> dict:
    """Build the POST /jobs payload from submit-subcommand arguments.

    File arguments are inlined (config text, topology CSV) so the
    server needs no filesystem shared with the client.
    """
    payload: dict = {"name": args.name, "failure_policy": args.failure_policy}
    if args.config:
        payload["config_text"] = Path(args.config).read_text(encoding="utf-8")
    else:
        payload["preset"] = args.preset
    if args.topology:
        topology_path = Path(args.topology)
        payload["topology_csv"] = topology_path.read_text(encoding="utf-8")
        payload["topology_name"] = topology_path.stem
    else:
        payload["model"] = args.model
    if args.scale != 1:
        payload["scale"] = args.scale
    if args.axes:
        payload["axes"] = [
            {"field": axis.name, "values": list(axis.values)}
            for axis in (_parse_axis(option) for option in args.axes)
        ]
    if args.max_attempts is not None:
        payload["max_attempts"] = args.max_attempts
    return payload


def submit_main(argv: list[str]) -> int:
    """Entry point of the ``submit`` subcommand."""
    import json

    from repro.service import ServiceClient

    args = build_submit_parser().parse_args(argv)
    client = ServiceClient(
        args.url, max_retries=args.max_retries, backoff_seed=args.backoff_seed
    )
    try:
        job = client.submit(_submit_payload(args))
    except ServiceError as exc:
        print(f"submit failed: {exc}", file=sys.stderr)
        return 1
    print(f"submitted: {job['id']} ({job['name']}, {job['state']})")
    if not args.wait:
        return 0
    final = client.wait(job["id"], timeout=args.timeout, poll=args.poll)
    progress = final["progress"]
    print(
        f"finished:  {final['id']} {final['state']} "
        f"({progress['units_done']}/{progress['units_total']} units, "
        f"{final['rows']} rows, {len(final['failures'])} failures)"
    )
    if final.get("error"):
        print(json.dumps(final["error"], indent=2), file=sys.stderr)
    return 0 if final["state"] in ("done", "degraded") else 1


def status_main(argv: list[str]) -> int:
    """Entry point of the ``status`` subcommand."""
    import json

    from repro.service import ServiceClient

    args = build_status_parser().parse_args(argv)
    client = ServiceClient(args.url, max_retries=0)
    try:
        if args.health:
            print(json.dumps(client.health(), indent=2, sort_keys=True))
            return 0
        if args.job_id is None:
            jobs = client.list_jobs()
            for job in jobs:
                done = job["units_done"]
                total = job["units_total"] if job["units_total"] is not None else "?"
                print(f"{job['id']}  {job['state']:9s}  {done}/{total}  {job['name']}")
            if not jobs:
                print("no jobs")
            return 0
        print(json.dumps(client.status(args.job_id), indent=2, sort_keys=True))
    except ServiceError as exc:
        print(f"status failed: {exc}", file=sys.stderr)
        return 1
    return 0


def fetch_main(argv: list[str]) -> int:
    """Entry point of the ``fetch`` subcommand."""
    from repro.service import ServiceClient

    args = build_fetch_parser().parse_args(argv)
    client = ServiceClient(args.url, max_retries=0)
    which = "failures" if args.failures else "report"
    try:
        body = client.fetch_report(args.job_id, which=which)
    except ServiceError as exc:
        print(f"fetch failed: {exc}", file=sys.stderr)
        return 1
    if args.output is None:
        sys.stdout.write(body.decode("utf-8"))
    else:
        out_path = Path(args.output)
        out_path.parent.mkdir(parents=True, exist_ok=True)
        out_path.write_bytes(body)
        print(f"wrote {out_path} ({len(body)} bytes)")
    return 0


_SUBCOMMANDS = {
    "sweep": sweep_main,
    "worker": worker_main,
    "serve": serve_main,
    "submit": submit_main,
    "status": status_main,
    "fetch": fetch_main,
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] in _SUBCOMMANDS:
        return _SUBCOMMANDS[argv[0]](argv[1:])
    args = build_parser().parse_args(argv)
    config = load_config(args.config) if args.config else get_preset(args.preset)
    config = _with_engine(config, args.engine)
    config = _with_layout_evaluator(config, args.layout_evaluator)
    if args.topology:
        topology = Topology.from_csv(args.topology)
    else:
        topology = get_model(args.model, scale=args.scale)

    outputs = run_simulation(
        config,
        topology,
        output_dir=args.output,
        write_reports=not args.no_reports,
    )
    result = outputs.run_result
    print(f"run:            {result.run_name}")
    print(f"topology:       {result.topology_name} ({len(result.layers)} layers)")
    print(f"compute cycles: {result.total_compute_cycles}")
    print(f"stall cycles:   {result.total_stall_cycles}")
    print(f"total cycles:   {result.total_cycles}")
    if outputs.energy_report is not None:
        print(f"energy:         {outputs.energy_report.total_mj:.4f} mJ")
        print(f"avg power:      {outputs.energy_report.average_power_w:.3f} W")
        print(f"EdP:            {outputs.edp:.3f} cycles*mJ")
    if result.dram_stats is not None:
        stats = result.dram_stats
        print(
            f"dram:           {stats.reads} reads, {stats.writes} writes, "
            f"row-hit rate {stats.row_hit_rate * 100:.1f}% "
            f"({config.dram.engine} engine)"
        )
    if outputs.layout_results:
        worst = max(outputs.layout_results, key=lambda r: r.slowdown)
        print(
            f"layout:         worst slowdown {worst.slowdown:+.4f} "
            f"({worst.layer_name}, {config.layout.num_banks} banks, "
            f"{config.layout.evaluator} evaluator)"
        )
    for path in outputs.report_paths:
        print(f"report:         {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
