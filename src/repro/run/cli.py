"""Command-line interface mirroring SCALE-Sim's ``scale.py``.

Usage::

    scale-sim-repro -c configs/tpu.cfg -t topologies/resnet18.csv -p outputs
    scale-sim-repro --preset google_tpu_v2 --model resnet18 --scale 8
    scale-sim-repro sweep --preset scale_sim_v2_default --model resnet18 \
        --scale 8 --set dram.channels=1,2,4,8 --workers 4

Either a ``.cfg`` file or a named preset selects the architecture, and
either a topology CSV or a built-in model name selects the workload.
The ``sweep`` subcommand crosses the selected config with one or more
``--set section.field=v1,v2,...`` axes, fans the grid out over a worker
pool (:mod:`repro.run.sweep`), and writes a sweep-report CSV.  The
``worker`` subcommand runs the spool worker loop
(:func:`repro.run.executors.process_spool`) against a shared spool
directory — the remote half of ``sweep --executor queue``.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from repro.config.parser import load_config
from repro.config.presets import available_presets, get_preset
from repro.config.system import VALID_DRAM_ENGINES, VALID_LAYOUT_EVALUATORS
from repro.core.report import (
    write_failure_report,
    write_layout_sweep_report,
    write_sweep_report,
)
from repro.run.executors import AVAILABLE_EXECUTORS, make_executor, process_spool
from repro.run.runner import run_simulation
from repro.run.sweep import (
    FAILURE_POLICIES,
    Axis,
    ResultCache,
    SweepRunner,
    SweepSpec,
)
from repro.store.artifact_store import ArtifactStore
from repro.topology.models import available_models, get_model
from repro.topology.topology import Topology


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser."""
    parser = argparse.ArgumentParser(
        prog="scale-sim-repro",
        description="SCALE-Sim v3 reproduction: cycle-accurate systolic simulation",
        epilog=(
            "design-space sweeps: 'scale-sim-repro sweep --help' "
            "(grid over config fields, worker pool, result cache)"
        ),
    )
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument("-c", "--config", help="path to a SCALE-Sim style .cfg file")
    source.add_argument(
        "--preset",
        choices=available_presets(),
        help="named architecture preset",
    )
    workload = parser.add_mutually_exclusive_group(required=True)
    workload.add_argument("-t", "--topology", help="path to a topology CSV")
    workload.add_argument(
        "--model",
        choices=available_models(),
        help="built-in workload model",
    )
    parser.add_argument(
        "--scale",
        type=int,
        default=1,
        help="divisor shrinking built-in model dimensions (default 1)",
    )
    parser.add_argument(
        "-p",
        "--output",
        default="outputs",
        help="output directory for reports (default ./outputs)",
    )
    parser.add_argument(
        "--no-reports",
        action="store_true",
        help="simulate without writing report files",
    )
    parser.add_argument(
        "--engine",
        choices=VALID_DRAM_ENGINES,
        default=None,
        help="override the memory-datapath engine (default: config's dram.engine)",
    )
    parser.add_argument(
        "--layout-evaluator",
        choices=VALID_LAYOUT_EVALUATORS,
        default=None,
        help="override the layout bank-conflict evaluator "
        "(default: config's layout.evaluator)",
    )
    return parser


def build_sweep_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for the ``sweep`` subcommand."""
    parser = argparse.ArgumentParser(
        prog="scale-sim-repro sweep",
        description="fan a config grid out over a worker pool and report CSV",
    )
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument("-c", "--config", help="path to a SCALE-Sim style .cfg file")
    source.add_argument(
        "--preset", choices=available_presets(), help="named architecture preset"
    )
    workload = parser.add_mutually_exclusive_group(required=True)
    workload.add_argument("-t", "--topology", help="path to a topology CSV")
    workload.add_argument(
        "--model", choices=available_models(), help="built-in workload model"
    )
    parser.add_argument(
        "--scale",
        type=int,
        default=1,
        help="divisor shrinking built-in model dimensions (default 1)",
    )
    parser.add_argument(
        "--set",
        dest="axes",
        action="append",
        default=[],
        metavar="FIELD=V1,V2,...",
        help="sweep axis over a dotted config field, e.g. dram.channels=1,2,4 "
        "(repeatable; axes cross-multiply)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for the sweep (default 1 = serial)",
    )
    parser.add_argument(
        "--executor",
        choices=AVAILABLE_EXECUTORS,
        default=None,
        help="execution backend for simulation units (default: serial, or a "
        "process pool when --workers > 1); 'queue' spools units through "
        "<output>/spool and drains them with a local worker",
    )
    parser.add_argument(
        "-p",
        "--output",
        default="outputs",
        help="output directory for the sweep report (default ./outputs)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="persist simulated points here so repeated sweeps reuse them",
    )
    parser.add_argument(
        "--store-dir",
        default=None,
        help="content-addressed artifact store for mid-level artifacts "
        "(compute schedules, fold-demand streams, decoded line batches); "
        "warm stores skip the shared upstream work",
    )
    parser.add_argument(
        "--name", default="sweep", help="sweep name used for run names and the CSV"
    )
    parser.add_argument(
        "--engine",
        choices=VALID_DRAM_ENGINES,
        default=None,
        help="override the memory-datapath engine (default: config's dram.engine)",
    )
    parser.add_argument(
        "--layout-evaluator",
        choices=VALID_LAYOUT_EVALUATORS,
        default=None,
        help="override the layout bank-conflict evaluator "
        "(default: config's layout.evaluator)",
    )
    parser.add_argument(
        "--failure-policy",
        choices=FAILURE_POLICIES,
        default="raise",
        help="what to do when a point exhausts its attempt budget: 'raise' "
        "aborts the sweep (default); 'degrade' finishes the surviving points "
        "and writes the rest to <name>_failures.csv",
    )
    parser.add_argument(
        "--max-attempts",
        type=int,
        default=None,
        help="attempt budget per simulation unit before it is quarantined "
        "(default 3)",
    )
    parser.add_argument(
        "--lease-ttl",
        type=float,
        default=None,
        help="queue-executor lease time-to-live in seconds; a worker that "
        "stops heartbeating for this long forfeits its claim (default 300)",
    )
    return parser


def build_worker_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for the ``worker`` subcommand."""
    parser = argparse.ArgumentParser(
        prog="scale-sim-repro worker",
        description="drain simulation units from a shared spool directory "
        "(the remote half of 'sweep --executor queue')",
    )
    parser.add_argument(
        "--spool",
        required=True,
        help="spool directory shared with the sweep producer",
    )
    parser.add_argument(
        "--poll",
        type=float,
        default=0.5,
        help="seconds to sleep between spool scans (default 0.5)",
    )
    parser.add_argument(
        "--lease-ttl",
        type=float,
        default=None,
        help="override the lease TTL used when reclaiming expired claims "
        "(default: each task's own TTL)",
    )
    parser.add_argument(
        "--max-tasks",
        type=int,
        default=None,
        help="stop after executing this many units (default: unlimited)",
    )
    parser.add_argument(
        "--once",
        action="store_true",
        help="make a single pass over the spool and exit instead of looping",
    )
    parser.add_argument(
        "--reap",
        action="store_true",
        help="also prune batch directories whose producer process is dead",
    )
    return parser


def _with_engine(config, engine: str | None):
    """Return ``config`` with ``dram.engine`` overridden when requested."""
    if engine is None:
        return config
    import dataclasses

    return config.replace(dram=dataclasses.replace(config.dram, engine=engine))


def _with_layout_evaluator(config, evaluator: str | None):
    """Return ``config`` with ``layout.evaluator`` overridden when requested."""
    if evaluator is None:
        return config
    import dataclasses

    return config.replace(
        layout=dataclasses.replace(config.layout, evaluator=evaluator)
    )


def _parse_axis_value(raw: str) -> object:
    text = raw.strip()
    lowered = text.lower()
    if lowered in ("true", "false"):
        return lowered == "true"
    for cast in (int, float):
        try:
            return cast(text)
        except ValueError:
            continue
    return text


def _parse_axis(option: str) -> Axis:
    field_path, sep, values = option.partition("=")
    if not sep or not values.strip():
        raise SystemExit(
            f"--set expects FIELD=V1,V2,... with at least one value, got {option!r}"
        )
    return Axis(
        field_path.strip(),
        tuple(_parse_axis_value(part) for part in values.split(",") if part.strip()),
    )


def sweep_main(argv: list[str]) -> int:
    """Entry point of the ``sweep`` subcommand."""
    args = build_sweep_parser().parse_args(argv)
    config = load_config(args.config) if args.config else get_preset(args.preset)
    config = _with_engine(config, args.engine)
    config = _with_layout_evaluator(config, args.layout_evaluator)
    if args.topology:
        topology = Topology.from_csv(args.topology)
    else:
        topology = get_model(args.model, scale=args.scale)

    spec = SweepSpec(
        base=config,
        axes=[_parse_axis(option) for option in args.axes],
        topologies=[topology],
        name=args.name,
    )
    cache = ResultCache(args.cache_dir) if args.cache_dir else None
    store = ArtifactStore(args.store_dir) if args.store_dir else None
    if args.executor is not None:
        executor = make_executor(
            args.executor,
            workers=args.workers,
            spool_dir=Path(args.output) / "spool",
            max_attempts=args.max_attempts,
            lease_ttl=args.lease_ttl,
        )
        runner = SweepRunner(
            cache=cache,
            executor=executor,
            store=store,
            failure_policy=args.failure_policy,
        )
    else:
        runner = SweepRunner(
            workers=args.workers,
            cache=cache,
            store=store,
            failure_policy=args.failure_policy,
            max_attempts=args.max_attempts,
        )
    results = runner.run(spec)

    axis_names = [axis.name for axis in spec.axes]
    print(f"sweep:    {args.name} ({len(results)} points, {args.workers} workers)")
    if runner.last_grouping is not None and runner.last_grouping[1]:
        simulated, units = runner.last_grouping
        unit_word = "unit" if units == 1 else "units"
        print(f"grouping: {simulated} points -> {units} simulation {unit_word}")
        for number, fanout in enumerate(runner.last_grouping.units):
            detail = f"  unit {number}: {fanout.points} points"
            if fanout.word_streams:
                stream_word = "stream" if fanout.word_streams == 1 else "streams"
                detail += f", {fanout.word_streams} word-size line {stream_word}"
            if fanout.grid_configs:
                detail += (
                    f", {fanout.grid_configs} DRAM configs per grid pass"
                )
            print(detail)
    for result in results:
        knobs = "  ".join(
            f"{name}={result.assignment_dict[name]}" for name in axis_names
        )
        origin = "cache" if result.from_cache else "run"
        line = (
            f"  [{result.index:03d}] {result.topology_name:16s} {knobs}  "
            f"cycles={result.total_cycles:,}  stalls={result.total_stall_cycles:,}"
        )
        if result.energy_report is not None:
            line += f"  energy={result.energy_mj:.3f}mJ"
        print(f"{line}  ({origin})")
    hit_line = f"cache:    {runner.cache.hits} hits / {runner.cache.misses} misses"
    print(hit_line)
    if store is not None:
        print(f"store:    {store.hits} hits / {store.misses} misses")
    if results:
        report = write_sweep_report(
            results, Path(args.output) / f"{args.name}_report.csv"
        )
        print(f"report:   {report}")
    if runner.last_failures:
        failure_report = write_failure_report(
            runner.last_failures, Path(args.output) / f"{args.name}_failures.csv"
        )
        count = len(runner.last_failures)
        point_word = "point" if count == 1 else "points"
        print(f"failures: {count} {point_word} -> {failure_report}")
    if any(result.layout_results for result in results):
        layout_report = write_layout_sweep_report(
            results, Path(args.output) / f"{args.name}_layout_report.csv"
        )
        print(f"layout:   {layout_report}")
    if not results:
        print("sweep produced no successful points", file=sys.stderr)
        return 1
    return 0


def worker_main(argv: list[str]) -> int:
    """Entry point of the ``worker`` subcommand.

    Loops :func:`repro.run.executors.process_spool` over a shared spool
    directory until interrupted (or, with ``--once``/``--max-tasks``,
    until a bounded amount of work is done).  Lease reclaim runs on
    every pass, so a fleet of these processes tolerates any of its
    members dying mid-unit.
    """
    args = build_worker_parser().parse_args(argv)
    spool_dir = Path(args.spool)
    spool_dir.mkdir(parents=True, exist_ok=True)
    executed = 0
    try:
        while True:
            remaining = None
            if args.max_tasks is not None:
                remaining = args.max_tasks - executed
                if remaining <= 0:
                    break
            executed += process_spool(
                spool_dir,
                max_tasks=remaining,
                lease_ttl=args.lease_ttl,
                reap=args.reap,
            )
            if args.once:
                break
            time.sleep(args.poll)
    except KeyboardInterrupt:
        pass
    print(f"worker: executed {executed} unit(s) from {spool_dir}")
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "sweep":
        return sweep_main(argv[1:])
    if argv and argv[0] == "worker":
        return worker_main(argv[1:])
    args = build_parser().parse_args(argv)
    config = load_config(args.config) if args.config else get_preset(args.preset)
    config = _with_engine(config, args.engine)
    config = _with_layout_evaluator(config, args.layout_evaluator)
    if args.topology:
        topology = Topology.from_csv(args.topology)
    else:
        topology = get_model(args.model, scale=args.scale)

    outputs = run_simulation(
        config,
        topology,
        output_dir=args.output,
        write_reports=not args.no_reports,
    )
    result = outputs.run_result
    print(f"run:            {result.run_name}")
    print(f"topology:       {result.topology_name} ({len(result.layers)} layers)")
    print(f"compute cycles: {result.total_compute_cycles}")
    print(f"stall cycles:   {result.total_stall_cycles}")
    print(f"total cycles:   {result.total_cycles}")
    if outputs.energy_report is not None:
        print(f"energy:         {outputs.energy_report.total_mj:.4f} mJ")
        print(f"avg power:      {outputs.energy_report.average_power_w:.3f} W")
        print(f"EdP:            {outputs.edp:.3f} cycles*mJ")
    if result.dram_stats is not None:
        stats = result.dram_stats
        print(
            f"dram:           {stats.reads} reads, {stats.writes} writes, "
            f"row-hit rate {stats.row_hit_rate * 100:.1f}% "
            f"({config.dram.engine} engine)"
        )
    if outputs.layout_results:
        worst = max(outputs.layout_results, key=lambda r: r.slowdown)
        print(
            f"layout:         worst slowdown {worst.slowdown:+.4f} "
            f"({worst.layer_name}, {config.layout.num_banks} banks, "
            f"{config.layout.evaluator} evaluator)"
        )
    for path in outputs.report_paths:
        print(f"report:         {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
