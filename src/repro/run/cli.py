"""Command-line interface mirroring SCALE-Sim's ``scale.py``.

Usage::

    scale-sim-repro -c configs/tpu.cfg -t topologies/resnet18.csv -p outputs
    scale-sim-repro --preset google_tpu_v2 --model resnet18 --scale 8

Either a ``.cfg`` file or a named preset selects the architecture, and
either a topology CSV or a built-in model name selects the workload.
"""

from __future__ import annotations

import argparse
import sys

from repro.config.parser import load_config
from repro.config.presets import available_presets, get_preset
from repro.run.runner import run_simulation
from repro.topology.models import available_models, get_model
from repro.topology.topology import Topology


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser."""
    parser = argparse.ArgumentParser(
        prog="scale-sim-repro",
        description="SCALE-Sim v3 reproduction: cycle-accurate systolic simulation",
    )
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument("-c", "--config", help="path to a SCALE-Sim style .cfg file")
    source.add_argument(
        "--preset",
        choices=available_presets(),
        help="named architecture preset",
    )
    workload = parser.add_mutually_exclusive_group(required=True)
    workload.add_argument("-t", "--topology", help="path to a topology CSV")
    workload.add_argument(
        "--model",
        choices=available_models(),
        help="built-in workload model",
    )
    parser.add_argument(
        "--scale",
        type=int,
        default=1,
        help="divisor shrinking built-in model dimensions (default 1)",
    )
    parser.add_argument(
        "-p",
        "--output",
        default="outputs",
        help="output directory for reports (default ./outputs)",
    )
    parser.add_argument(
        "--no-reports",
        action="store_true",
        help="simulate without writing report files",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    config = load_config(args.config) if args.config else get_preset(args.preset)
    if args.topology:
        topology = Topology.from_csv(args.topology)
    else:
        topology = get_model(args.model, scale=args.scale)

    outputs = run_simulation(
        config,
        topology,
        output_dir=args.output,
        write_reports=not args.no_reports,
    )
    result = outputs.run_result
    print(f"run:            {result.run_name}")
    print(f"topology:       {result.topology_name} ({len(result.layers)} layers)")
    print(f"compute cycles: {result.total_compute_cycles}")
    print(f"stall cycles:   {result.total_stall_cycles}")
    print(f"total cycles:   {result.total_cycles}")
    if outputs.energy_report is not None:
        print(f"energy:         {outputs.energy_report.total_mj:.4f} mJ")
        print(f"avg power:      {outputs.energy_report.average_power_w:.3f} W")
        print(f"EdP:            {outputs.edp:.3f} cycles*mJ")
    if result.dram_stats is not None:
        stats = result.dram_stats
        print(
            f"dram:           {stats.reads} reads, {stats.writes} writes, "
            f"row-hit rate {stats.row_hit_rate * 100:.1f}%"
        )
    for path in outputs.report_paths:
        print(f"report:         {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
