"""Declarative design-space sweep execution.

Every evaluation in the paper (Figs. 8-10/15, Tabs. 4-6) is a sweep: a
base :class:`~repro.config.system.SystemConfig` plus a small grid of
architecture / DRAM / sparsity knobs, crossed with a handful of
workloads.  This module turns that pattern into a first-class subsystem:

* :class:`Axis` — one swept dimension.  An axis names either a single
  dotted config field (``"dram.channels"``) or a logical knob that fans
  out to several fields at once (``Axis("array", (8, 16), fields=
  ("arch.array_rows", "arch.array_cols"))`` keeps the array square).
* :class:`SweepSpec` — base config + axes + workload topologies.
  :meth:`SweepSpec.expand` materialises the full cross product into
  concrete, validated configs with deterministic ordering and run names.
* :class:`ResultCache` — a content-hash cache (config sans run metadata
  + topology -> simulation payload).  Identical points are never
  simulated twice, within a sweep or across sweeps; an optional
  directory persists payloads on disk between processes.
* :class:`SweepRunner` — fans cache misses out over a pluggable
  :class:`~repro.run.executors.Executor` (``workers=N`` is sugar for
  the multiprocessing :class:`~repro.run.executors.PoolExecutor`).
  Results always come back ordered by point index, so a parallel sweep
  is bitwise-identical to a serial one.  Before dispatch, points are
  grouped by *axis class*: configs that differ only in ``dram.*``
  and/or ``layout.*`` fields collapse into one simulation unit that
  shares the compute plan and trace stream and resolves per-config
  through the DRAM / layout fan-out seams (see DESIGN.md "The DRAM
  fan-out"); :attr:`SweepRunner.last_grouping` reports the collapse.
  An optional :class:`~repro.store.ArtifactStore` persists the
  mid-level artifacts those seams share (compute schedules, fold
  demand streams, decoded line batches) across processes and sessions.

Example::

    spec = SweepSpec(
        base=get_preset("scale_sim_v2_default"),
        axes=[Axis("dram.channels", (1, 2, 4, 8))],
        topologies=[get_model("resnet18", scale=8)],
    )
    results = SweepRunner(workers=4).run(spec)
    write_sweep_report(results, "outputs/channels_sweep.csv")
"""

from __future__ import annotations

import dataclasses
import functools
import hashlib
import inspect
import itertools
import json
import time
from collections.abc import Callable, Mapping, Sequence
from dataclasses import dataclass, field
from pathlib import Path

from repro.config.system import RunConfig, SystemConfig
from repro.core.simulator import RunResult, Simulator
from repro.energy.accelergy import EnergyReport
from repro.errors import ConfigError
from repro.layout.integrate import LayoutEvalConfig, LayoutEvalResult
from repro.run.executors import (
    DEFAULT_MAX_ATTEMPTS,
    Executor,
    PoolExecutor,
    ResultEnvelope,
    SerialExecutor,
    UnitFailure,
)
from repro.run.runner import run_simulation
from repro.sparsity.sparse_compute import SparseLayerResult
from repro.store.artifact_store import (
    ArtifactStore,
    dump_pickle_atomic,
    load_pickle_guarded,
    set_active_store,
)
from repro.topology.topology import Topology

#: Config sections an axis may touch (the run section is metadata, not a knob).
_SWEEPABLE_SECTIONS = ("arch", "sparsity", "dram", "layout", "energy", "multicore")

#: Axis classes that fan out *inside* one simulation unit: points whose
#: configs differ only in these sections share the compute plan, the
#: sparsity pass and the trace stream, and resolve per-config through
#: the DRAM / layout fan-out seams instead of separate dense runs.
_GROUPABLE_SECTIONS = ("dram", "layout")

#: What a sweep does when a unit exhausts its attempt budget:
#: ``raise`` (default) surfaces the failure with the original traceback
#: chained; ``degrade`` completes the sweep with the points it could
#: compute and records the rest in :attr:`SweepRunner.last_failures`.
FAILURE_POLICIES = ("raise", "degrade")

#: Simulator-semantics salt folded into every content key.  Bump this
#: whenever output *shape or meaning* changes without a config-field
#: change, so pre-existing disk caches re-simulate instead of serving
#: stale rows.  2026-07 (dram fanout): grouped units now resolve dense
#: runs through the shared-plan DRAM fan-out, so pre-PR-5 disk caches
#: re-simulate once under the new grouping.
_SEMANTICS_SALT = "v5-dram-fanout-2026-07"


@dataclass(frozen=True)
class Axis:
    """One swept dimension: a value list applied to one or more fields.

    ``fields`` holds dotted ``section.field`` paths into
    :class:`SystemConfig`; it defaults to ``(name,)`` so the common case
    is simply ``Axis("dram.channels", (1, 2, 4, 8))``.
    """

    name: str
    values: tuple[object, ...]
    fields: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigError("axis name must be non-empty")
        object.__setattr__(self, "values", tuple(self.values))
        if not self.values:
            raise ConfigError(f"axis {self.name!r} has no values")
        fields = tuple(self.fields) or (self.name,)
        object.__setattr__(self, "fields", fields)
        for path in fields:
            _split_field_path(path)


def _split_field_path(path: str) -> tuple[str, str]:
    """Validate and split a dotted ``section.field`` path."""
    parts = path.split(".")
    if len(parts) != 2:
        raise ConfigError(
            f"sweep field {path!r} must be a dotted 'section.field' path"
        )
    section, name = parts
    if section not in _SWEEPABLE_SECTIONS:
        raise ConfigError(
            f"sweep field {path!r}: section must be one of {_SWEEPABLE_SECTIONS}"
        )
    return section, name


def apply_override(config: SystemConfig, path: str, value: object) -> SystemConfig:
    """Copy of ``config`` with one dotted field replaced."""
    section, name = _split_field_path(path)
    section_cfg = getattr(config, section)
    if not hasattr(section_cfg, name):
        raise ConfigError(f"unknown sweep field {path!r}")
    return config.replace(**{section: dataclasses.replace(section_cfg, **{name: value})})


@dataclass(frozen=True)
class SweepPoint:
    """One fully-resolved grid point of a sweep."""

    index: int
    config: SystemConfig
    topology: Topology
    #: Ordered ``(axis_name, value)`` pairs identifying this point.
    assignment: tuple[tuple[str, object], ...]


@dataclass
class SweepSpec:
    """A declarative sweep: base config x axes x topologies.

    Axes may be given as :class:`Axis` instances or as a plain mapping
    ``{"dram.channels": (1, 2, 4)}``; topologies are the workloads every
    grid combination runs against.  Expansion order is deterministic:
    topologies outermost, then axes in declaration order (last axis
    fastest), exactly like nested for-loops.
    """

    base: SystemConfig
    axes: Sequence[Axis] = field(default_factory=list)
    topologies: Sequence[Topology] = field(default_factory=list)
    name: str = "sweep"
    #: ``False`` skips the cycle-accurate dense pass per point (and the
    #: energy model that consumes it) — for sparsity-only sweeps.
    simulate_dense: bool = True

    def __post_init__(self) -> None:
        if isinstance(self.axes, Mapping):
            self.axes = [Axis(key, tuple(values)) for key, values in self.axes.items()]
        self.axes = [
            axis if isinstance(axis, Axis) else Axis(axis[0], tuple(axis[1]))
            for axis in self.axes
        ]
        self.topologies = list(self.topologies)
        if not self.topologies:
            raise ConfigError(f"sweep {self.name!r} needs at least one topology")
        seen = set()
        for axis in self.axes:
            if axis.name in seen:
                raise ConfigError(f"duplicate sweep axis {axis.name!r}")
            seen.add(axis.name)

    @property
    def num_points(self) -> int:
        """Grid size: topologies x the product of axis lengths."""
        total = len(self.topologies)
        for axis in self.axes:
            total *= len(axis.values)
        return total

    def expand(self) -> list[SweepPoint]:
        """Materialise every grid point as a concrete, validated config."""
        points: list[SweepPoint] = []
        value_lists = [axis.values for axis in self.axes]
        for topology in self.topologies:
            for combo in itertools.product(*value_lists):
                config = self.base
                for axis, value in zip(self.axes, combo):
                    for path in axis.fields:
                        config = apply_override(config, path, value)
                index = len(points)
                run_name = f"{self.name}_{index:04d}_{topology.name}"
                config = config.replace(
                    run=RunConfig(run_name=run_name, output_dir=self.base.run.output_dir)
                )
                points.append(
                    SweepPoint(
                        index=index,
                        config=config,
                        topology=topology,
                        assignment=tuple(
                            (axis.name, value) for axis, value in zip(self.axes, combo)
                        ),
                    )
                )
        return points


# --------------------------------------------------------------- payloads


@dataclass
class _PointPayload:
    """What one simulated point yields (the cacheable unit)."""

    run_result: RunResult
    energy_report: EnergyReport | None
    sparse_results: list[SparseLayerResult]
    wall_seconds: float
    layout_results: list[LayoutEvalResult] = field(default_factory=list)


def _slim_run_result(run_result: RunResult) -> RunResult:
    """Drop per-fold schedules from a finished run.

    Fold specs exist to drive the memory model *during* the run (and are
    regenerated from the config on demand); retaining them would make
    every cached sweep point carry thousands of dead objects, which both
    bloats the cache and slows large sweeps down via GC pressure.
    """
    layers = [
        dataclasses.replace(
            layer, compute=dataclasses.replace(layer.compute, fold_specs=[])
        )
        for layer in run_result.layers
    ]
    return dataclasses.replace(run_result, layers=layers)


def _simulate_point(args: tuple[SystemConfig, Topology, bool]) -> _PointPayload:
    """Worker entry point: simulate one (config, topology) pair.

    Module-level so it pickles under every multiprocessing start method.
    """
    config, topology, dense = args
    start = time.perf_counter()
    outputs = run_simulation(config, topology, write_reports=False, dense=dense)
    return _PointPayload(
        run_result=_slim_run_result(outputs.run_result),
        energy_report=outputs.energy_report,
        sparse_results=[
            dataclasses.replace(result, fold_specs=[])
            for result in outputs.sparse_results
        ],
        wall_seconds=time.perf_counter() - start,
        layout_results=outputs.layout_results,
    )


def _simulate_group(
    args: tuple[list[SystemConfig], Topology, bool], workers: int = 1
) -> list[_PointPayload]:
    """Worker entry point: simulate a fan-out group in one pass.

    The configs differ only in the groupable axis classes
    (``dram.*`` and/or ``layout.*``), so the shared upstream work runs
    once — the compute plan (fold schedules + closed-form stats) and
    the sparsity pass — and the per-config halves resolve through
    their fan-out seams:

    * the dense run fans the plan across the group's *distinct* memory
      configurations (:func:`repro.dram.fanout.simulate_many_dram`),
      with the energy model (which consumes the dense result) evaluated
      once per distinct memory configuration;
    * the per-layer layout study fans the group's *distinct* layout
      configurations over a single trace stream
      (:func:`~repro.layout.integrate.evaluate_layout_slowdown_many`).

    Payloads are bit-identical to per-point :func:`_simulate_point`
    calls — both fan-out seams are fuzz-tested against their
    independent paths, and the shared passes never read a groupable
    section.

    ``workers`` parallelises the fan-outs' per-config work — used when
    this group is the sweep's *only* work unit and would otherwise
    leave the runner's pool idle; groups dispatched across a pool keep
    the default (one process each, no nesting).
    """
    from repro.dram.fanout import simulate_many_dram
    from repro.energy.accelergy import AccelergyLite
    from repro.layout.integrate import evaluate_layout_slowdown_many

    configs, topology, dense = args
    if not dense:  # pragma: no cover - grouping only forms dense units
        raise RuntimeError("fan-out groups require the dense pass")
    start = time.perf_counter()
    base = configs[0]

    # Shared passes: the compute plan and the sparsity feature (neither
    # reads a groupable section).
    plan = Simulator(base).plan(topology)
    sparse_results: list[SparseLayerResult] = []
    if base.sparsity.sparsity_support:
        feature_outputs = run_simulation(
            base, topology, write_reports=False, dense=False
        )
        sparse_results = [
            dataclasses.replace(result, fold_specs=[])
            for result in feature_outputs.sparse_results
        ]

    # DRAM fan-out: one stall resolution per distinct memory config
    # (all DRAM-disabled points share the ideal-bandwidth resolution).
    dram_units: dict[object, int] = {}
    dram_configs: list[SystemConfig] = []
    dram_of_point: list[int] = []
    for config in configs:
        key = config.dram if config.dram.enabled else None
        if key not in dram_units:
            dram_units[key] = len(dram_configs)
            dram_configs.append(config)
        dram_of_point.append(dram_units[key])
    run_results = simulate_many_dram(plan, dram_configs, workers=workers)
    energy_reports: list[EnergyReport | None] = [None] * len(dram_configs)
    if base.energy.enabled:
        energy_reports = [
            AccelergyLite(base.arch, base.energy).estimate_run(run_result)
            for run_result in run_results
        ]
    slim_results = [_slim_run_result(run_result) for run_result in run_results]

    # Layout fan-out: one evaluator cascade per distinct layout config,
    # all fed from a single trace stream.  layout.enabled is itself a
    # groupable knob, so the study runs for exactly the points that
    # enable it (None marks a disabled point).
    layout_of_point: list[int | None] = []
    unique_layouts: list[LayoutEvalConfig] = []
    per_layout: list[list[LayoutEvalResult]] = []
    layout_units: dict[LayoutEvalConfig, int] = {}
    for config in configs:
        if not config.layout.enabled:
            layout_of_point.append(None)
            continue
        eval_config = LayoutEvalConfig(
            num_banks=config.layout.num_banks,
            total_bandwidth_words=config.layout.total_bandwidth_words,
            ports_per_bank=config.layout.ports_per_bank,
            evaluator=config.layout.evaluator,
        )
        if eval_config not in layout_units:
            layout_units[eval_config] = len(unique_layouts)
            unique_layouts.append(eval_config)
        layout_of_point.append(layout_units[eval_config])
    if unique_layouts:
        per_layout = [[] for _ in unique_layouts]
        arch = base.arch
        for layer in topology:
            results = evaluate_layout_slowdown_many(
                layer,
                arch.dataflow,
                arch.array_rows,
                arch.array_cols,
                unique_layouts,
                workers=workers,
            )
            for index, result in enumerate(results):
                per_layout[index].append(result)

    wall_seconds = (time.perf_counter() - start) / len(configs)
    return [
        _PointPayload(
            run_result=slim_results[dram_of_point[position]],
            energy_report=energy_reports[dram_of_point[position]],
            sparse_results=sparse_results,
            wall_seconds=wall_seconds,
            layout_results=(
                []
                if layout_of_point[position] is None
                else per_layout[layout_of_point[position]]
            ),
        )
        for position in range(len(configs))
    ]


# ------------------------------------------------------------------ cache


def _canonical_layer(layer: object) -> dict:
    data = dataclasses.asdict(layer)  # type: ignore[call-overload]
    data["__kind__"] = type(layer).__name__
    return data


def _hashed(payload: dict) -> str:
    blob = json.dumps(payload, sort_keys=True, default=str).encode()
    return hashlib.sha256(blob).hexdigest()


def content_key(
    config: SystemConfig, topology: Topology, simulate_dense: bool = True
) -> str:
    """Stable content hash of a simulation's inputs.

    The ``run`` section (name / output dir) is metadata and deliberately
    excluded, so renamed runs of the same point still hit the cache.
    """
    return _hashed(
        {
            "salt": _SEMANTICS_SALT,
            "config": {
                section: dataclasses.asdict(getattr(config, section))
                for section in _SWEEPABLE_SECTIONS
            },
            "topology": [_canonical_layer(layer) for layer in topology],
            "simulate_dense": simulate_dense,
        }
    )


def _fanout_group_key(
    config: SystemConfig, topology: Topology, simulate_dense: bool
) -> str:
    """Content hash with the groupable axis classes blanked out.

    Points sharing this key differ only in ``dram.*`` and/or
    ``layout.*`` knobs, so they share one compute plan / sparsity pass
    and resolve per-config through the DRAM and layout fan-out seams.
    """
    return _hashed(
        {
            "salt": _SEMANTICS_SALT,
            "config": {
                section: dataclasses.asdict(getattr(config, section))
                for section in _SWEEPABLE_SECTIONS
                if section not in _GROUPABLE_SECTIONS
            },
            "topology": [_canonical_layer(layer) for layer in topology],
            "simulate_dense": simulate_dense,
        }
    )


class ResultCache:
    """Content-addressed store of simulated sweep points.

    Always caches in memory; pass ``directory`` to also persist payloads
    as pickles so repeated sweeps across processes skip re-simulation.
    """

    def __init__(self, directory: str | Path | None = None) -> None:
        self._memory: dict[str, _PointPayload] = {}
        self.directory = Path(directory) if directory is not None else None
        if self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._memory)

    def key(
        self, config: SystemConfig, topology: Topology, simulate_dense: bool = True
    ) -> str:
        """Content hash for a (config, topology) pair."""
        return content_key(config, topology, simulate_dense)

    def peek(self, key: str) -> _PointPayload | None:
        """Look a payload up in memory without touching the counters."""
        return self._memory.get(key)

    def get(self, key: str) -> _PointPayload | None:
        """Look a payload up, counting the hit or miss.

        A truncated or corrupt pickle in a shared cache directory — a
        crashed writer, a disk error — counts as a miss and the bad
        file is unlinked so the re-simulation repairs it
        (:func:`repro.store.load_pickle_guarded`).
        """
        payload = self._memory.get(key)
        if payload is None and self.directory is not None:
            payload = load_pickle_guarded(self.directory / f"{key}.pkl")
            if payload is not None:
                self._memory[key] = payload
        if payload is None:
            self.misses += 1
            return None
        self.hits += 1
        return payload

    def put(self, key: str, payload: _PointPayload) -> None:
        """Store a payload in memory (and on disk when configured).

        Disk writes go through a per-process temp name + atomic replace
        (:func:`repro.store.dump_pickle_atomic`): concurrent sweeps
        sharing a cache directory never interleave writes or expose a
        partial payload.
        """
        self._memory[key] = payload
        if self.directory is not None:
            dump_pickle_atomic(self.directory / f"{key}.pkl", payload)


# ----------------------------------------------------------------- runner


@dataclass
class SweepResult:
    """One sweep point's outcome, in grid order."""

    index: int
    topology_name: str
    assignment: tuple[tuple[str, object], ...]
    config: SystemConfig
    run_result: RunResult
    energy_report: EnergyReport | None = None
    sparse_results: list[SparseLayerResult] = field(default_factory=list)
    layout_results: list[LayoutEvalResult] = field(default_factory=list)
    from_cache: bool = False
    wall_seconds: float = 0.0

    @property
    def assignment_dict(self) -> dict[str, object]:
        """The axis assignment as a plain dict."""
        return dict(self.assignment)

    @property
    def total_cycles(self) -> int:
        """End-to-end cycles of the dense run."""
        return self.run_result.total_cycles

    @property
    def total_compute_cycles(self) -> int:
        """Pure compute cycles of the dense run."""
        return self.run_result.total_compute_cycles

    @property
    def total_stall_cycles(self) -> int:
        """Stall + cold-start cycles of the dense run."""
        return self.run_result.total_stall_cycles

    @property
    def energy_mj(self) -> float:
        """Total energy in mJ (0 when the energy feature was off)."""
        return self.energy_report.total_mj if self.energy_report else 0.0

    @property
    def edp(self) -> float:
        """Energy-delay product (cycles x mJ)."""
        return self.total_cycles * self.energy_mj

    @property
    def sparse_compute_cycles(self) -> int:
        """Summed sparse compute cycles (0 when sparsity was off)."""
        return sum(r.sparse_compute_cycles for r in self.sparse_results)


@dataclass
class SweepFailure:
    """One sweep point that could not be computed (``degrade`` policy).

    Mirrors :class:`SweepResult`'s identity fields and carries the
    terminal :class:`~repro.run.executors.UnitFailure` of the unit the
    point belonged to — every point of a failed fan-out group yields
    its own :class:`SweepFailure` row.
    """

    index: int
    topology_name: str
    assignment: tuple[tuple[str, object], ...]
    config: SystemConfig
    attempts: int
    error_class: str
    message: str
    traceback_text: str

    @property
    def assignment_dict(self) -> dict[str, object]:
        """The axis assignment as a plain dict."""
        return dict(self.assignment)


#: One pool work unit: point positions it covers + the worker arguments.
_Unit = tuple[list[int], tuple[str, tuple]]


@dataclass(frozen=True)
class UnitFanout:
    """Fan-out detail of one simulation unit (one :class:`SweepGrouping` entry).

    ``points`` is how many grid points the unit collapsed; ``word_streams``
    how many distinct word-size line streams it decodes (0 when no member
    enables DRAM); ``grid_configs`` how many DRAM configs resolve through
    config-batched :class:`~repro.dram.engine_grid.GridBatchedEngine`
    passes rather than one at a time (0 when no word size is shared by
    two or more batched-engine configs).
    """

    points: int
    word_streams: int
    grid_configs: int


class SweepGrouping(tuple):
    """``(simulated_points, simulation_units)`` plus per-unit detail.

    A tuple subclass so every existing consumer of
    :attr:`SweepRunner.last_grouping` — including equality against a
    plain 2-tuple — keeps working; :attr:`units` adds one
    :class:`UnitFanout` per simulation unit in dispatch order.
    """

    units: tuple[UnitFanout, ...]

    def __new__(
        cls, points: int, unit_count: int, units: tuple[UnitFanout, ...] = ()
    ) -> SweepGrouping:
        self = tuple.__new__(cls, (points, unit_count))
        self.units = units
        return self


def _unit_fanout(unit: _Unit) -> UnitFanout:
    """Summarize how one dispatched unit will fan out internally."""
    from repro.dram.fanout import _grid_groups

    members, (kind, args) = unit
    configs = [args[0]] if kind == "point" else args[0]
    words = {c.arch.word_bytes for c in configs if c.dram.enabled}
    grid_configs = sum(len(group) for group in _grid_groups(configs).values())
    return UnitFanout(
        points=len(members), word_streams=len(words), grid_configs=grid_configs
    )


def _grouped_units(points: list[SweepPoint], simulate_dense: bool) -> list[_Unit]:
    """Partition points into fan-out groups and singleton units.

    Points whose configs differ only in groupable axis classes
    (``dram.*`` and/or ``layout.*``) form one unit dispatched through
    :func:`_simulate_group` — one compute plan + one trace stream, with
    the dense run resolved per distinct memory config and the layout
    study per distinct layout config.  Everything else (and every
    sparsity-only point) stays a per-point unit.  Unit order follows
    first appearance, so serial and grouped sweeps keep deterministic,
    index-ordered results.
    """
    groups: dict[str, list[int]] = {}
    order: list[str] = []
    for position, point in enumerate(points):
        if simulate_dense:
            key = _fanout_group_key(point.config, point.topology, simulate_dense)
        else:
            key = f"solo-{position}"
        if key not in groups:
            groups[key] = []
            order.append(key)
        groups[key].append(position)
    units: list[_Unit] = []
    for key in order:
        members = groups[key]
        first = points[members[0]]
        if len(members) == 1:
            units.append(
                (members, ("point", (first.config, first.topology, simulate_dense)))
            )
        else:
            units.append(
                (
                    members,
                    (
                        "group",
                        (
                            [points[m].config for m in members],
                            first.topology,
                            simulate_dense,
                        ),
                    ),
                )
            )
    return units


def _simulate_unit(
    unit_args: tuple[str, tuple],
    workers: int = 1,
    store: ArtifactStore | None = None,
) -> list[_PointPayload]:
    """Worker entry point: run one unit (a point or a fan-out group).

    ``store`` (bound via :func:`functools.partial` so the executor can
    ship it to any substrate) is installed as the process's active
    artifact store for the unit's duration — every mid-level producer
    underneath (plan memoization, fold-demand streams, decoded line
    batches) then persists through it.
    """
    kind, args = unit_args
    previous = set_active_store(store) if store is not None else None
    try:
        if kind == "point":
            return [_simulate_point(args)]
        return _simulate_group(args, workers=workers)
    finally:
        if store is not None:
            set_active_store(previous)


class SweepRunner:
    """Execute a :class:`SweepSpec` through an executor and a result cache.

    Args:
        workers: sugar for the default executor: ``1`` selects
            :class:`~repro.run.executors.SerialExecutor` (in-process),
            more a :class:`~repro.run.executors.PoolExecutor` over that
            many processes.  Ordering and results are identical either
            way.
        cache: shared :class:`ResultCache`; a private in-memory cache is
            created when omitted (still deduplicates within the sweep).
        executor: explicit execution backend (mutually exclusive with
            ``workers > 1``) — any :class:`~repro.run.executors.Executor`,
            e.g. a :class:`~repro.run.executors.QueueExecutor` spooling
            units to a shared directory.
        store: optional :class:`~repro.store.ArtifactStore` persisting
            the mid-level artifacts simulation units share (compute
            schedules, fold-demand streams, decoded line batches); its
            hit/miss counters cover lookups made in this process.
        failure_policy: ``raise`` (default) re-raises a unit's terminal
            failure with the original traceback chained; ``degrade``
            completes the sweep with the computable points and reports
            the rest through :attr:`last_failures`.
        max_attempts: per-unit attempt budget of the sugar executors
            (transient faults are retried with backoff before a failure
            becomes terminal); an explicit ``executor`` carries its own
            budget instead.
        progress: optional ``progress(done_units, total_units)``
            callback fired as simulation units reach terminal outcomes
            (``(0, total)`` fires before dispatch).  An exception it
            raises aborts the run — the sweep service's cooperative
            cancellation hangs off exactly that.
    """

    def __init__(
        self,
        workers: int = 1,
        cache: ResultCache | None = None,
        executor: Executor | None = None,
        store: ArtifactStore | None = None,
        failure_policy: str = "raise",
        max_attempts: int | None = None,
        progress: Callable[[int, int], None] | None = None,
    ) -> None:
        if workers < 1:
            raise ConfigError(f"workers must be >= 1, got {workers}")
        if failure_policy not in FAILURE_POLICIES:
            raise ConfigError(
                f"failure_policy must be one of {FAILURE_POLICIES}, "
                f"got {failure_policy!r}"
            )
        if executor is None:
            attempts = DEFAULT_MAX_ATTEMPTS if max_attempts is None else max_attempts
            executor = (
                SerialExecutor(max_attempts=attempts)
                if workers == 1
                else PoolExecutor(workers, max_attempts=attempts)
            )
        elif workers != 1:
            raise ConfigError(
                "pass either workers (pool sugar) or an explicit executor, not both"
            )
        elif max_attempts is not None:
            raise ConfigError(
                "an explicit executor carries its own max_attempts; "
                "pass it to the executor instead"
            )
        self.executor = executor
        self.workers = getattr(executor, "workers", 1)
        self.store = store
        self.failure_policy = failure_policy
        self.progress = progress
        self.cache = cache if cache is not None else ResultCache()
        #: Points the most recent ``degrade``-policy :meth:`run` could
        #: not compute, as :class:`SweepFailure` rows in index order
        #: (always empty under the ``raise`` policy — the first failure
        #: raises instead).
        self.last_failures: list[SweepFailure] = []
        #: ``(simulated_points, simulation_units)`` of the most recent
        #: :meth:`run` — how far axis-class grouping collapsed the
        #: points that actually simulated (cache hits and duplicates
        #: never form units; a fully-cached run is ``(0, 0)``).
        #: A :class:`SweepGrouping`, so per-unit fan-out detail rides
        #: along in ``last_grouping.units``.  ``None`` before any run.
        self.last_grouping: SweepGrouping | None = None
        #: Content keys the current run already wrote to the cache via
        #: the per-unit ``unit_done`` hook (crash-safe incremental
        #: persistence); :meth:`run` skips re-writing these at the end.
        self._persisted: set[str] = set()

    def run(self, spec: SweepSpec) -> list[SweepResult]:
        """Run every grid point; results come back ordered by index.

        Under ``failure_policy="degrade"`` the returned list holds only
        the computable points (still in index order, rows byte-identical
        to a fault-free run); failed points land in
        :attr:`last_failures`.  Under ``raise`` (default) the first
        terminal unit failure re-raises with its traceback chained.
        """
        points = spec.expand()
        self.last_grouping = SweepGrouping(0, 0)
        self.last_failures = []
        keys = [
            self.cache.key(point.config, point.topology, spec.simulate_dense)
            for point in points
        ]

        # Each key is looked up (and counted) once: later duplicates of a
        # key within the sweep are cache hits by construction — the first
        # occurrence either hit or will be simulated — and get counted at
        # serve time below, so hits + misses always equals the grid size.
        cached: dict[int, _PointPayload] = {}
        unique: dict[str, SweepPoint] = {}
        seen: set[str] = set()
        for point, key in zip(points, keys):
            if key in seen:
                continue
            seen.add(key)
            payload = self.cache.get(key)
            if payload is not None:
                cached[point.index] = payload
            else:
                unique[key] = point

        self._persisted: set[str] = set()
        computed = self._compute(
            list(unique.values()), spec.simulate_dense, keys=list(unique)
        )
        failed_keys: dict[str, UnitFailure] = {}
        for key, envelope in zip(unique, computed):
            if envelope.ok:
                # Successes are cached even when a sibling failed, so a
                # re-run (or a degrade-policy retry) resumes instead of
                # re-simulating the healthy points.  Units persisted
                # incrementally by the unit_done hook are already on disk.
                if key not in self._persisted:
                    self.cache.put(key, envelope.value)
            else:
                assert envelope.failure is not None
                failed_keys[key] = envelope.failure
        if failed_keys and self.failure_policy == "raise":
            next(iter(failed_keys.values())).raise_()

        computed_first = {key: point.index for key, point in unique.items()}
        results: list[SweepResult] = []
        for point, key in zip(points, keys):
            if key in failed_keys:
                failure = failed_keys[key]
                self.last_failures.append(
                    SweepFailure(
                        index=point.index,
                        topology_name=point.topology.name,
                        assignment=point.assignment,
                        config=point.config,
                        attempts=failure.attempts,
                        error_class=failure.error_class,
                        message=failure.message,
                        traceback_text=failure.traceback_text,
                    )
                )
                continue
            if point.index in cached:
                payload = cached[point.index]
                from_cache = True
            elif computed_first.get(key) == point.index:
                payload = self._memory_payload(key)
                from_cache = False
            else:
                # A duplicate of an earlier point: served (and counted)
                # as a cache hit.
                payload = self.cache.get(key)
                if payload is None:  # pragma: no cover - internal invariant
                    raise RuntimeError(f"sweep point {key} missing after compute phase")
                from_cache = True
            results.append(
                SweepResult(
                    index=point.index,
                    topology_name=point.topology.name,
                    assignment=point.assignment,
                    config=point.config,
                    run_result=dataclasses.replace(
                        payload.run_result, run_name=point.config.run.run_name
                    ),
                    energy_report=payload.energy_report,
                    sparse_results=payload.sparse_results,
                    layout_results=payload.layout_results,
                    from_cache=from_cache,
                    wall_seconds=0.0 if from_cache else payload.wall_seconds,
                )
            )
        return results

    def _memory_payload(self, key: str) -> _PointPayload:
        payload = self.cache.peek(key)
        if payload is None:  # pragma: no cover - internal invariant
            raise RuntimeError(f"sweep point {key} missing after compute phase")
        return payload

    def _compute(
        self,
        points: list[SweepPoint],
        simulate_dense: bool,
        keys: list[str] | None = None,
    ) -> list[ResultEnvelope]:
        """Dispatch the cache-missed points; one envelope per point.

        A unit's terminal failure (attempt budget exhausted on the
        executor) fans out to an error envelope for every member point;
        success envelopes carry the member's :class:`_PointPayload`.
        Executors without the enveloped entry point keep the original
        raise-through contract.

        With ``keys`` (content keys aligned with ``points``) and an
        executor that supports the ``unit_done`` hook, each unit's
        member payloads are written to the cache the moment the unit
        completes — crash-safe incremental persistence: a process
        killed mid-batch re-simulates only the units still in flight,
        because everything finished is already on disk.  Keys persisted
        this way land in :attr:`_persisted` so :meth:`run` skips the
        (idempotent but wasteful) end-of-batch re-write.
        """
        if not points:
            return []
        units = _grouped_units(points, simulate_dense)
        self.last_grouping = SweepGrouping(
            len(points), len(units), tuple(_unit_fanout(unit) for unit in units)
        )
        fn = (
            functools.partial(_simulate_unit, store=self.store)
            if self.store is not None
            else _simulate_unit
        )
        unit_args = [unit[1] for unit in units]
        if self.progress is not None:
            self.progress(0, len(units))
        enveloped_map = getattr(self.executor, "map_units_enveloped", None)
        if enveloped_map is not None:
            parameters = inspect.signature(enveloped_map).parameters
            kwargs = {}
            if self.progress is not None and "progress" in parameters:
                kwargs["progress"] = self.progress
            if keys is not None and "unit_done" in parameters:

                def persist_unit(unit_index: int, envelope: ResultEnvelope) -> None:
                    if not envelope.ok:
                        return
                    members = units[unit_index][0]
                    for position, payload in zip(members, envelope.value):
                        self.cache.put(keys[position], payload)
                        self._persisted.add(keys[position])

                kwargs["unit_done"] = persist_unit
            unit_envelopes = enveloped_map(fn, unit_args, **kwargs)
        else:
            unit_envelopes = [
                ResultEnvelope(ok=True, value=value)
                for value in self.executor.map_units(fn, unit_args)
            ]
        point_envelopes: list[ResultEnvelope | None] = [None] * len(points)
        for (members, _), envelope in zip(units, unit_envelopes):
            if envelope.ok:
                for position, payload in zip(members, envelope.value):
                    point_envelopes[position] = ResultEnvelope(
                        ok=True, value=payload, attempt=envelope.attempt
                    )
            else:
                for position in members:
                    point_envelopes[position] = envelope
        assert all(envelope is not None for envelope in point_envelopes)
        return point_envelopes  # type: ignore[return-value]


def single_point(
    config: SystemConfig,
    topology: Topology,
    cache: ResultCache | None = None,
) -> SweepResult:
    """Convenience wrapper: run one (config, topology) as a 1-point sweep."""
    spec = SweepSpec(base=config, axes=[], topologies=[topology], name=config.run.run_name)
    [result] = SweepRunner(workers=1, cache=cache).run(spec)
    return result


__all__ = [
    "Axis",
    "FAILURE_POLICIES",
    "ResultCache",
    "SweepFailure",
    "SweepGrouping",
    "SweepPoint",
    "SweepResult",
    "SweepRunner",
    "SweepSpec",
    "UnitFanout",
    "apply_override",
    "content_key",
    "single_point",
]
