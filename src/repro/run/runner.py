"""One-call simulation driver: config + topology -> reports on disk.

Mirrors SCALE-Sim's command-line behaviour: run every layer, then write
the classic CSV reports plus whichever v3 feature reports the config
enables (sparsity, energy, Accelergy YAML artifacts).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.config.system import SystemConfig
from repro.core.simulator import RunResult, Simulator
from repro.energy.accelergy import AccelergyLite, EnergyReport
from repro.energy.actions import ActionCounts, count_actions
from repro.energy.yaml_gen import write_action_counts_yaml, write_architecture_yaml
from repro.layout.integrate import LayoutEvalResult, evaluate_layout_slowdown
from repro.sparsity.report import write_sparse_report
from repro.sparsity.sparse_compute import SparseComputeSimulator, SparseLayerResult
from repro.topology.topology import Topology
from repro.utils.csvio import write_csv


@dataclass
class SimulationOutputs:
    """Everything a run produced."""

    config: SystemConfig
    run_result: RunResult
    energy_report: EnergyReport | None = None
    sparse_results: list[SparseLayerResult] = field(default_factory=list)
    layout_results: list[LayoutEvalResult] = field(default_factory=list)
    report_paths: list[Path] = field(default_factory=list)

    @property
    def total_cycles(self) -> int:
        """End-to-end cycles of the run."""
        return self.run_result.total_cycles

    @property
    def total_energy_mj(self) -> float:
        """Total energy if the energy feature was enabled, else 0."""
        return self.energy_report.total_mj if self.energy_report else 0.0

    @property
    def edp(self) -> float:
        """Energy-delay product (cycles x mJ), 0 without energy model."""
        if self.energy_report is None:
            return 0.0
        return self.total_cycles * self.total_energy_mj


def _write_energy_report(
    outputs: SimulationOutputs, accelergy: AccelergyLite, out_dir: Path
) -> Path:
    header = [
        "LayerID",
        "LayerName",
        "TotalCycles",
        "DynamicEnergy(uJ)",
        "LeakageEnergy(uJ)",
        "TotalEnergy(uJ)",
        "AvgPower(W)",
        "EdP(cycles*mJ)",
    ]
    rows = []
    for index, layer in enumerate(outputs.run_result.layers):
        report = accelergy.estimate_layer(layer)
        rows.append(
            [
                index,
                layer.layer_name,
                layer.total_cycles,
                f"{report.dynamic_pj * 1e-6:.4f}",
                f"{report.leakage_pj * 1e-6:.4f}",
                f"{report.total_pj * 1e-6:.4f}",
                f"{report.average_power_w:.4f}",
                f"{report.edp_cycles_mj:.6f}",
            ]
        )
    return write_csv(out_dir / "ENERGY_REPORT.csv", header, rows)


def _write_layout_report(results: list[LayoutEvalResult], out_dir: Path) -> Path:
    header = [
        "LayerID",
        "LayerName",
        "Dataflow",
        "NumBanks",
        "TotalBandwidth",
        "Evaluator",
        "CyclesEvaluated",
        "LayoutCycles",
        "BandwidthCycles",
        "Slowdown",
    ]
    rows = [
        [
            index,
            result.layer_name,
            result.dataflow.value,
            result.num_banks,
            result.total_bandwidth,
            result.evaluator,
            result.cycles_evaluated,
            result.layout_cycles,
            result.bandwidth_cycles,
            f"{result.slowdown:+.6f}",
        ]
        for index, result in enumerate(results)
    ]
    return write_csv(out_dir / "LAYOUT_REPORT.csv", header, rows)


def run_simulation(
    config: SystemConfig,
    topology: Topology,
    output_dir: str | Path | None = None,
    write_reports: bool = True,
    dense: bool = True,
) -> SimulationOutputs:
    """Run a full simulation; optionally write all reports to disk.

    ``dense=False`` skips the cycle-accurate dense pass — and with it the
    energy model, which consumes the dense per-layer results, and the
    layout study, which only accompanies dense runs — leaving only the
    feature simulations (sparsity).  Sparsity-only sweeps such as the
    paper's Figure 8 use this to avoid paying for a dense simulation
    whose results they never read, and the sweep runner's fan-out groups
    use it for their shared sparsity pass (the dense run and the layout
    study resolve per-config through the DRAM / layout fan-out seams
    instead).
    """
    if dense:
        run_result = Simulator(config).run(topology)
    else:
        run_result = RunResult(
            run_name=config.run.run_name, topology_name=topology.name
        )
    outputs = SimulationOutputs(config=config, run_result=run_result)

    out_dir = Path(output_dir or config.run.output_dir) / config.run.run_name

    if config.sparsity.sparsity_support:
        sparse_sim = SparseComputeSimulator(
            array_rows=config.arch.array_rows,
            array_cols=config.arch.array_cols,
            representation=config.sparsity.sparse_representation,
            word_bits=config.arch.word_bytes * 8,
            ifmap_sram_words=config.arch.ifmap_sram_words(),
            ofmap_sram_words=config.arch.ofmap_sram_words(),
            seed=config.sparsity.random_seed,
        )
        outputs.sparse_results = [
            sparse_sim.simulate_layer(
                layer,
                rowwise=config.sparsity.optimized_mapping,
                block_size=config.sparsity.block_size,
                with_fold_specs=False,
            )
            for layer in topology
        ]

    if config.layout.enabled and dense:
        # The Section VI layout study: cost every layer's ifmap demand
        # under the banked open-line model vs the flat bandwidth model,
        # through the configured evaluator seam (layout.evaluator).  The
        # per-layer layout itself uses the documented default packing
        # for the config's bank/bandwidth split.
        outputs.layout_results = [
            evaluate_layout_slowdown(
                layer,
                config.arch.dataflow,
                config.arch.array_rows,
                config.arch.array_cols,
                config.layout.num_banks,
                config.layout.total_bandwidth_words,
                ports_per_bank=config.layout.ports_per_bank,
                evaluator=config.layout.evaluator,
            )
            for layer in topology
        ]

    energy_engine: AccelergyLite | None = None
    if config.energy.enabled and dense:
        energy_engine = AccelergyLite(config.arch, config.energy)
        outputs.energy_report = energy_engine.estimate_run(run_result)

    if write_reports:
        outputs.report_paths = run_result.write_reports(out_dir.parent)
        if outputs.layout_results:
            outputs.report_paths.append(
                _write_layout_report(outputs.layout_results, out_dir)
            )
        if outputs.sparse_results:
            outputs.report_paths.append(write_sparse_report(outputs.sparse_results, out_dir))
        if energy_engine is not None and outputs.energy_report is not None:
            outputs.report_paths.append(_write_energy_report(outputs, energy_engine, out_dir))
            outputs.report_paths.append(
                write_architecture_yaml(config.arch, config.energy, out_dir)
            )
            merged = ActionCounts()
            for layer in run_result.layers:
                merged.merge(count_actions(layer, config.energy))
            outputs.report_paths.append(write_action_counts_yaml(merged, out_dir))
    return outputs
