"""Configuration dataclasses for the SCALE-Sim v3 reproduction.

A :class:`SystemConfig` aggregates one section per simulator feature, in
the same spirit as SCALE-Sim's ``.cfg`` files: ``[architecture_presets]``
for the array and SRAM sizes, plus v3's new ``[sparsity]``, ``[memory]``
(Ramulator), ``[layout]``, ``[energy]`` and ``[multicore]`` sections.

Each dataclass validates itself in ``__post_init__`` so an invalid
configuration fails loudly at construction, not deep inside a simulation.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

from repro.errors import ConfigError

VALID_DATAFLOWS = ("os", "ws", "is")

#: Known DRAM technology presets (see :mod:`repro.dram.timing`).
VALID_DRAM_TECHNOLOGIES = ("ddr3", "ddr4", "lpddr4", "gddr5", "hbm", "hbm2", "wio2")

VALID_SPARSE_REPRESENTATIONS = ("csr", "csc", "ellpack_block")

#: Memory-datapath engines (see :mod:`repro.dram.engine`).
VALID_DRAM_ENGINES = ("reference", "batched")

#: Layout bank-conflict evaluators (see :mod:`repro.layout.conflict`).
VALID_LAYOUT_EVALUATORS = ("reference", "vectorized")


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ConfigError(message)


@dataclass(frozen=True)
class ArchitectureConfig:
    """Systolic array and on-chip SRAM parameters (SCALE-Sim v2 core knobs).

    Attributes:
        array_rows / array_cols: PE array dimensions (R and C in the paper).
        ifmap_sram_kb / filter_sram_kb / ofmap_sram_kb: double-buffered
            SRAM sizes in kilobytes.
        dataflow: one of ``"os"``, ``"ws"``, ``"is"``.
        bandwidth_words: words per cycle deliverable by the interface in
            ideal-bandwidth mode (v2's monolithic main-memory model).
        word_bytes: bytes per data word (2 for 16-bit quantised models).
        simd_lanes / simd_latency_per_element: vector-unit shape used for
            the non-GEMM ops of a tensor core (activations, softmax).
    """

    array_rows: int = 32
    array_cols: int = 32
    ifmap_sram_kb: int = 256
    filter_sram_kb: int = 256
    ofmap_sram_kb: int = 256
    dataflow: str = "os"
    bandwidth_words: int = 10
    word_bytes: int = 2
    simd_lanes: int = 0
    simd_latency_per_element: float = 1.0

    def __post_init__(self) -> None:
        _require(self.array_rows > 0, f"array_rows must be positive, got {self.array_rows}")
        _require(self.array_cols > 0, f"array_cols must be positive, got {self.array_cols}")
        for name in ("ifmap_sram_kb", "filter_sram_kb", "ofmap_sram_kb"):
            value = getattr(self, name)
            _require(value > 0, f"{name} must be positive, got {value}")
        _require(
            self.dataflow in VALID_DATAFLOWS,
            f"dataflow must be one of {VALID_DATAFLOWS}, got {self.dataflow!r}",
        )
        _require(self.bandwidth_words > 0, "bandwidth_words must be positive")
        _require(self.word_bytes > 0, "word_bytes must be positive")
        _require(self.simd_lanes >= 0, "simd_lanes must be non-negative")
        _require(self.simd_latency_per_element > 0, "simd_latency_per_element must be positive")

    @property
    def num_pes(self) -> int:
        """Total number of processing elements in the array."""
        return self.array_rows * self.array_cols

    def ifmap_sram_words(self) -> int:
        """Ifmap SRAM capacity in words."""
        return self.ifmap_sram_kb * 1024 // self.word_bytes

    def filter_sram_words(self) -> int:
        """Filter SRAM capacity in words."""
        return self.filter_sram_kb * 1024 // self.word_bytes

    def ofmap_sram_words(self) -> int:
        """Ofmap SRAM capacity in words."""
        return self.ofmap_sram_kb * 1024 // self.word_bytes

    def with_array(self, rows: int, cols: int) -> "ArchitectureConfig":
        """Copy of this config with a different array shape."""
        return dataclasses.replace(self, array_rows=rows, array_cols=cols)

    def with_dataflow(self, dataflow: str) -> "ArchitectureConfig":
        """Copy of this config with a different dataflow."""
        return dataclasses.replace(self, dataflow=dataflow)


@dataclass(frozen=True)
class SparsityConfig:
    """The paper's ``[sparsity]`` section (Section IV-B, Step 1).

    ``sparsity_support`` enables layer-wise sparsity taken from the
    topology's ``SparsitySupport`` column; ``optimized_mapping`` switches
    to row-wise N:M sparsity with ``block_size`` holding M.
    """

    sparsity_support: bool = False
    optimized_mapping: bool = False
    sparse_representation: str = "ellpack_block"
    block_size: int = 4
    random_seed: int = 7

    def __post_init__(self) -> None:
        _require(
            self.sparse_representation in VALID_SPARSE_REPRESENTATIONS,
            f"sparse_representation must be one of {VALID_SPARSE_REPRESENTATIONS}, "
            f"got {self.sparse_representation!r}",
        )
        _require(self.block_size >= 1, f"block_size must be >= 1, got {self.block_size}")
        if self.optimized_mapping:
            _require(
                self.sparsity_support,
                "optimized_mapping (row-wise sparsity) requires sparsity_support=true",
            )


@dataclass(frozen=True)
class DramConfig:
    """Main-memory (RamulatorLite) parameters (Section V).

    The paper's evaluation uses DDR4 at 2400 MT/s, 4 Gb per channel, and
    read/write request queues of 128 entries each.
    """

    enabled: bool = False
    technology: str = "ddr4"
    channels: int = 1
    ranks_per_channel: int = 1
    banks_per_rank: int = 16
    capacity_gb_per_channel: float = 0.5
    speed_mts: int = 2400
    read_queue_entries: int = 128
    write_queue_entries: int = 128
    address_mapping: str = "ro_ba_ra_co_ch"
    # Line requests the accelerator front-end can issue per cycle (the
    # AXI outstanding-transaction rate the paper mimics from the Micron
    # DDR4 Verilog model).
    issue_per_cycle: int = 4
    # Memory-datapath engine: "batched" (vectorized, default) or
    # "reference" (the scalar executable specification).  Both produce
    # bit-identical results; the knob exists for cross-validation and
    # as the plug-in point for future engines.
    engine: str = "batched"

    def __post_init__(self) -> None:
        _require(
            self.technology in VALID_DRAM_TECHNOLOGIES,
            f"technology must be one of {VALID_DRAM_TECHNOLOGIES}, got {self.technology!r}",
        )
        _require(self.channels >= 1, f"channels must be >= 1, got {self.channels}")
        _require(self.ranks_per_channel >= 1, "ranks_per_channel must be >= 1")
        _require(self.banks_per_rank >= 1, "banks_per_rank must be >= 1")
        _require(self.capacity_gb_per_channel > 0, "capacity_gb_per_channel must be positive")
        _require(self.speed_mts > 0, "speed_mts must be positive")
        _require(self.read_queue_entries >= 1, "read_queue_entries must be >= 1")
        _require(self.write_queue_entries >= 1, "write_queue_entries must be >= 1")
        _require(self.issue_per_cycle >= 1, "issue_per_cycle must be >= 1")
        _require(
            self.engine in VALID_DRAM_ENGINES,
            f"engine must be one of {VALID_DRAM_ENGINES}, got {self.engine!r}",
        )


@dataclass(frozen=True)
class LayoutConfig:
    """On-chip multi-bank layout parameters (Section VI)."""

    enabled: bool = False
    num_banks: int = 4
    ports_per_bank: int = 1
    bandwidth_per_bank_words: int = 16
    # Inter-line loop steps for a C x H x W tensor (Figure 11).
    c1_step: int = 16
    h1_step: int = 4
    w1_step: int = 2
    # Bank-conflict evaluator: "vectorized" (numpy stack-distance scans,
    # default) or "reference" (the scalar executable specification).
    # Both produce bit-identical results; the knob exists for
    # cross-validation and as the plug-in point for future evaluators.
    evaluator: str = "vectorized"

    def __post_init__(self) -> None:
        _require(self.num_banks >= 1, f"num_banks must be >= 1, got {self.num_banks}")
        _require(self.ports_per_bank >= 1, "ports_per_bank must be >= 1")
        _require(self.bandwidth_per_bank_words >= 1, "bandwidth_per_bank_words must be >= 1")
        for name in ("c1_step", "h1_step", "w1_step"):
            value = getattr(self, name)
            _require(value >= 1, f"{name} must be >= 1, got {value}")
        _require(
            self.evaluator in VALID_LAYOUT_EVALUATORS,
            f"evaluator must be one of {VALID_LAYOUT_EVALUATORS}, got {self.evaluator!r}",
        )

    @property
    def total_bandwidth_words(self) -> int:
        """Aggregate on-chip bandwidth across all banks, in words/cycle."""
        return self.num_banks * self.bandwidth_per_bank_words


@dataclass(frozen=True)
class EnergyConfig:
    """AccelergyLite parameters (Section VII).

    ``row_size_words`` and ``bank_rows`` are the paper's tunable 'row
    size' and 'bank size' used by the repeated-access lookup.
    """

    enabled: bool = False
    technology_nm: int = 65
    row_size_words: int = 16
    bank_rows: int = 4
    clock_ghz: float = 1.0
    clock_gating: bool = False

    def __post_init__(self) -> None:
        _require(self.technology_nm > 0, "technology_nm must be positive")
        _require(self.row_size_words >= 1, "row_size_words must be >= 1")
        _require(self.bank_rows >= 1, "bank_rows must be >= 1")
        _require(self.clock_ghz > 0, "clock_ghz must be positive")


@dataclass(frozen=True)
class MulticoreConfig:
    """Multi tensor-core parameters (Section III)."""

    enabled: bool = False
    partitions_row: int = 1
    partitions_col: int = 1
    partition_scheme: str = "spatial"
    l2_sram_kb: int = 2048
    # Per-core NoP hop counts for non-uniform partitioning; empty means a
    # uniform latency profile.
    nop_hops: tuple[int, ...] = ()
    nop_latency_per_hop: int = 1

    def __post_init__(self) -> None:
        _require(self.partitions_row >= 1, "partitions_row must be >= 1")
        _require(self.partitions_col >= 1, "partitions_col must be >= 1")
        _require(
            self.partition_scheme in ("spatial", "spatiotemporal_1", "spatiotemporal_2"),
            f"unknown partition_scheme {self.partition_scheme!r}",
        )
        _require(self.l2_sram_kb > 0, "l2_sram_kb must be positive")
        if self.nop_hops:
            _require(
                len(self.nop_hops) == self.num_cores,
                f"nop_hops must list one hop count per core "
                f"({self.num_cores}), got {len(self.nop_hops)}",
            )
            _require(all(h >= 0 for h in self.nop_hops), "nop_hops must be non-negative")
        _require(self.nop_latency_per_hop >= 0, "nop_latency_per_hop must be >= 0")

    @property
    def num_cores(self) -> int:
        """Total number of tensor cores (Pr x Pc)."""
        return self.partitions_row * self.partitions_col


@dataclass(frozen=True)
class RunConfig:
    """Run metadata: name and output directory for report files."""

    run_name: str = "scale_sim_v3_repro"
    output_dir: str = "outputs"

    def __post_init__(self) -> None:
        _require(bool(self.run_name), "run_name must be non-empty")


@dataclass(frozen=True)
class SystemConfig:
    """Top-level configuration aggregating every simulator feature."""

    arch: ArchitectureConfig = field(default_factory=ArchitectureConfig)
    sparsity: SparsityConfig = field(default_factory=SparsityConfig)
    dram: DramConfig = field(default_factory=DramConfig)
    layout: LayoutConfig = field(default_factory=LayoutConfig)
    energy: EnergyConfig = field(default_factory=EnergyConfig)
    multicore: MulticoreConfig = field(default_factory=MulticoreConfig)
    run: RunConfig = field(default_factory=RunConfig)

    def replace(self, **sections: object) -> "SystemConfig":
        """Copy of this config with whole sections replaced by keyword."""
        return dataclasses.replace(self, **sections)  # type: ignore[arg-type]
