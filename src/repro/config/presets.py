"""Named configuration presets used throughout the paper's evaluation.

* ``google_tpu_v2`` — the "Google TPU configuration" of Section V-C with
  DDR4-2400, 4 Gb per channel, and 128-entry request queues.
* ``eyeriss_like`` — a small OS-dataflow array for energy validation.
* ``scale_sim_v2_default`` — v2's shipped default (32x32, OS).
* ``simba_like`` — a multi-chiplet configuration with non-uniform NoP
  hop counts for the non-uniform-partitioning feature.
"""

from __future__ import annotations

from repro.config.system import (
    ArchitectureConfig,
    DramConfig,
    EnergyConfig,
    LayoutConfig,
    MulticoreConfig,
    RunConfig,
    SystemConfig,
)
from repro.errors import ConfigError


def _tpu_v2() -> SystemConfig:
    return SystemConfig(
        arch=ArchitectureConfig(
            array_rows=128,
            array_cols=128,
            ifmap_sram_kb=1024,
            filter_sram_kb=1024,
            ofmap_sram_kb=1024,
            dataflow="ws",
            bandwidth_words=32,
            simd_lanes=128,
        ),
        dram=DramConfig(
            enabled=True,
            technology="ddr4",
            channels=4,
            banks_per_rank=16,
            capacity_gb_per_channel=0.5,
            speed_mts=2400,
            read_queue_entries=128,
            write_queue_entries=128,
        ),
        energy=EnergyConfig(enabled=True, technology_nm=65),
        run=RunConfig(run_name="google_tpu_v2"),
    )


def _eyeriss_like() -> SystemConfig:
    return SystemConfig(
        arch=ArchitectureConfig(
            array_rows=12,
            array_cols=14,
            ifmap_sram_kb=108,
            filter_sram_kb=108,
            ofmap_sram_kb=108,
            dataflow="os",
            bandwidth_words=4,
        ),
        energy=EnergyConfig(enabled=True, technology_nm=65),
        run=RunConfig(run_name="eyeriss_like"),
    )


def _v2_default() -> SystemConfig:
    return SystemConfig(run=RunConfig(run_name="scale_sim_v2_default"))


def _simba_like() -> SystemConfig:
    # 4x4 chiplet grid; hop count grows with Manhattan distance from the
    # package corner where the memory controller sits.
    hops = tuple((r + c) for r in range(4) for c in range(4))
    return SystemConfig(
        arch=ArchitectureConfig(
            array_rows=16,
            array_cols=16,
            ifmap_sram_kb=64,
            filter_sram_kb=64,
            ofmap_sram_kb=64,
            dataflow="ws",
            bandwidth_words=8,
        ),
        multicore=MulticoreConfig(
            enabled=True,
            partitions_row=4,
            partitions_col=4,
            l2_sram_kb=4096,
            nop_hops=hops,
            nop_latency_per_hop=4,
        ),
        run=RunConfig(run_name="simba_like"),
    )


def _layout_study() -> SystemConfig:
    return SystemConfig(
        arch=ArchitectureConfig(array_rows=128, array_cols=128, dataflow="ws"),
        layout=LayoutConfig(enabled=True, num_banks=4, bandwidth_per_bank_words=32),
        run=RunConfig(run_name="layout_study"),
    )


_PRESETS = {
    "google_tpu_v2": _tpu_v2,
    "eyeriss_like": _eyeriss_like,
    "scale_sim_v2_default": _v2_default,
    "simba_like": _simba_like,
    "layout_study": _layout_study,
}


def available_presets() -> tuple[str, ...]:
    """Names of all built-in configuration presets."""
    return tuple(sorted(_PRESETS))


def get_preset(name: str) -> SystemConfig:
    """Build a fresh :class:`SystemConfig` for a named preset."""
    try:
        factory = _PRESETS[name]
    except KeyError as exc:
        raise ConfigError(
            f"unknown preset {name!r}; available: {', '.join(available_presets())}"
        ) from exc
    return factory()
