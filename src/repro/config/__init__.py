"""System configuration: dataclasses, .cfg parsing, and named presets."""

from repro.config.system import (
    ArchitectureConfig,
    DramConfig,
    EnergyConfig,
    LayoutConfig,
    MulticoreConfig,
    RunConfig,
    SparsityConfig,
    SystemConfig,
)
from repro.config.parser import load_config, parse_config_text
from repro.config.presets import available_presets, get_preset

__all__ = [
    "ArchitectureConfig",
    "DramConfig",
    "EnergyConfig",
    "LayoutConfig",
    "MulticoreConfig",
    "RunConfig",
    "SparsityConfig",
    "SystemConfig",
    "load_config",
    "parse_config_text",
    "available_presets",
    "get_preset",
]
