"""Parse SCALE-Sim style ``.cfg`` files into :class:`SystemConfig`.

The file format follows SCALE-Sim's INI-like convention::

    [general]
    run_name = tpu_like

    [architecture_presets]
    ArrayHeight = 32
    ArrayWidth = 32
    IfmapSramSzkB = 256
    ...

    [sparsity]
    SparsitySupport = true
    OptimizedMapping = false
    SparseRep = ellpack_block
    BlockSize = 4

v3's new sections (``sparsity``, ``memory``, ``layout``, ``energy``,
``multicore``) are all optional; omitting a section leaves the feature at
its defaults (usually disabled), matching the paper's modular design.
"""

from __future__ import annotations

import configparser
from pathlib import Path

from repro.config.system import (
    ArchitectureConfig,
    DramConfig,
    EnergyConfig,
    LayoutConfig,
    MulticoreConfig,
    RunConfig,
    SparsityConfig,
    SystemConfig,
)
from repro.errors import ConfigError

_TRUE_VALUES = {"true", "yes", "on", "1"}
_FALSE_VALUES = {"false", "no", "off", "0"}


def _parse_bool(raw: str, key: str) -> bool:
    lowered = raw.strip().lower()
    if lowered in _TRUE_VALUES:
        return True
    if lowered in _FALSE_VALUES:
        return False
    raise ConfigError(f"{key}: expected a boolean, got {raw!r}")


def _parse_int(raw: str, key: str) -> int:
    try:
        return int(raw.strip())
    except ValueError as exc:
        raise ConfigError(f"{key}: expected an integer, got {raw!r}") from exc


def _parse_float(raw: str, key: str) -> float:
    try:
        return float(raw.strip())
    except ValueError as exc:
        raise ConfigError(f"{key}: expected a number, got {raw!r}") from exc


class _Section:
    """Case-insensitive view over one cfg section with typed getters."""

    def __init__(self, name: str, raw: dict[str, str]) -> None:
        self.name = name
        self._raw = {key.lower(): value for key, value in raw.items()}
        self._seen: set[str] = set()

    def get_str(self, key: str, default: str) -> str:
        self._seen.add(key.lower())
        return self._raw.get(key.lower(), default).strip()

    def get_int(self, key: str, default: int) -> int:
        self._seen.add(key.lower())
        raw = self._raw.get(key.lower())
        return default if raw is None else _parse_int(raw, f"[{self.name}] {key}")

    def get_float(self, key: str, default: float) -> float:
        self._seen.add(key.lower())
        raw = self._raw.get(key.lower())
        return default if raw is None else _parse_float(raw, f"[{self.name}] {key}")

    def get_bool(self, key: str, default: bool) -> bool:
        self._seen.add(key.lower())
        raw = self._raw.get(key.lower())
        return default if raw is None else _parse_bool(raw, f"[{self.name}] {key}")

    def get_int_tuple(self, key: str, default: tuple[int, ...]) -> tuple[int, ...]:
        self._seen.add(key.lower())
        raw = self._raw.get(key.lower())
        if raw is None or not raw.strip():
            return default
        try:
            return tuple(int(part.strip()) for part in raw.split(",") if part.strip())
        except ValueError as exc:
            raise ConfigError(
                f"[{self.name}] {key}: expected comma-separated integers, got {raw!r}"
            ) from exc

    def reject_unknown_keys(self) -> None:
        unknown = set(self._raw) - self._seen
        if unknown:
            raise ConfigError(
                f"unknown keys in section [{self.name}]: {sorted(unknown)}"
            )


def parse_config_text(text: str) -> SystemConfig:
    """Parse ``.cfg`` content into a validated :class:`SystemConfig`."""
    parser = configparser.ConfigParser()
    try:
        parser.read_string(text)
    except configparser.Error as exc:
        raise ConfigError(f"malformed config file: {exc}") from exc

    known_sections = {
        "general",
        "architecture_presets",
        "sparsity",
        "memory",
        "layout",
        "energy",
        "multicore",
        "run_presets",
    }
    for section in parser.sections():
        if section.lower() not in known_sections:
            raise ConfigError(f"unknown config section [{section}]")

    def section(name: str) -> _Section:
        for candidate in parser.sections():
            if candidate.lower() == name:
                return _Section(name, dict(parser.items(candidate)))
        return _Section(name, {})

    general = section("general")
    run = RunConfig(
        run_name=general.get_str("run_name", "scale_sim_v3_repro"),
        output_dir=general.get_str("output_dir", "outputs"),
    )
    general.reject_unknown_keys()

    arch_sec = section("architecture_presets")
    arch = ArchitectureConfig(
        array_rows=arch_sec.get_int("ArrayHeight", 32),
        array_cols=arch_sec.get_int("ArrayWidth", 32),
        ifmap_sram_kb=arch_sec.get_int("IfmapSramSzkB", 256),
        filter_sram_kb=arch_sec.get_int("FilterSramSzkB", 256),
        ofmap_sram_kb=arch_sec.get_int("OfmapSramSzkB", 256),
        dataflow=arch_sec.get_str("Dataflow", "os").lower(),
        bandwidth_words=arch_sec.get_int("Bandwidth", 10),
        word_bytes=arch_sec.get_int("WordBytes", 2),
        simd_lanes=arch_sec.get_int("SimdLanes", 0),
        simd_latency_per_element=arch_sec.get_float("SimdLatencyPerElement", 1.0),
    )
    arch_sec.reject_unknown_keys()

    sp_sec = section("sparsity")
    sparsity = SparsityConfig(
        sparsity_support=sp_sec.get_bool("SparsitySupport", False),
        optimized_mapping=sp_sec.get_bool("OptimizedMapping", False),
        sparse_representation=sp_sec.get_str("SparseRep", "ellpack_block").lower(),
        block_size=sp_sec.get_int("BlockSize", 4),
        random_seed=sp_sec.get_int("RandomSeed", 7),
    )
    sp_sec.reject_unknown_keys()

    mem_sec = section("memory")
    dram = DramConfig(
        enabled=mem_sec.get_bool("Enabled", False),
        technology=mem_sec.get_str("Technology", "ddr4").lower(),
        channels=mem_sec.get_int("Channels", 1),
        ranks_per_channel=mem_sec.get_int("RanksPerChannel", 1),
        banks_per_rank=mem_sec.get_int("BanksPerRank", 16),
        capacity_gb_per_channel=mem_sec.get_float("CapacityGBPerChannel", 0.5),
        speed_mts=mem_sec.get_int("SpeedMTs", 2400),
        read_queue_entries=mem_sec.get_int("ReadQueueEntries", 128),
        write_queue_entries=mem_sec.get_int("WriteQueueEntries", 128),
        address_mapping=mem_sec.get_str("AddressMapping", "ro_ba_ra_co_ch").lower(),
        issue_per_cycle=mem_sec.get_int("IssuePerCycle", 4),
        engine=mem_sec.get_str("Engine", "batched").lower(),
    )
    mem_sec.reject_unknown_keys()

    layout_sec = section("layout")
    layout = LayoutConfig(
        enabled=layout_sec.get_bool("Enabled", False),
        num_banks=layout_sec.get_int("NumBanks", 4),
        ports_per_bank=layout_sec.get_int("PortsPerBank", 1),
        bandwidth_per_bank_words=layout_sec.get_int("BandwidthPerBank", 16),
        c1_step=layout_sec.get_int("C1Step", 16),
        h1_step=layout_sec.get_int("H1Step", 4),
        w1_step=layout_sec.get_int("W1Step", 2),
        evaluator=layout_sec.get_str("Evaluator", "vectorized").lower(),
    )
    layout_sec.reject_unknown_keys()

    energy_sec = section("energy")
    energy = EnergyConfig(
        enabled=energy_sec.get_bool("Enabled", False),
        technology_nm=energy_sec.get_int("TechnologyNm", 65),
        row_size_words=energy_sec.get_int("RowSize", 16),
        bank_rows=energy_sec.get_int("BankSize", 4),
        clock_ghz=energy_sec.get_float("ClockGHz", 1.0),
        clock_gating=energy_sec.get_bool("ClockGating", True),
    )
    energy_sec.reject_unknown_keys()

    mc_sec = section("multicore")
    multicore = MulticoreConfig(
        enabled=mc_sec.get_bool("Enabled", False),
        partitions_row=mc_sec.get_int("PartitionsRow", 1),
        partitions_col=mc_sec.get_int("PartitionsCol", 1),
        partition_scheme=mc_sec.get_str("PartitionScheme", "spatial").lower(),
        l2_sram_kb=mc_sec.get_int("L2SramSzkB", 2048),
        nop_hops=mc_sec.get_int_tuple("NopHops", ()),
        nop_latency_per_hop=mc_sec.get_int("NopLatencyPerHop", 1),
    )
    mc_sec.reject_unknown_keys()

    return SystemConfig(
        arch=arch,
        sparsity=sparsity,
        dram=dram,
        layout=layout,
        energy=energy,
        multicore=multicore,
        run=run,
    )


def load_config(path: str | Path) -> SystemConfig:
    """Read a ``.cfg`` file from disk and parse it."""
    path = Path(path)
    if not path.exists():
        raise ConfigError(f"config file not found: {path}")
    return parse_config_text(path.read_text())


def _format_value(value: object) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, tuple):
        return ", ".join(str(item) for item in value)
    return str(value)


def serialize_config(config: SystemConfig) -> str:
    """Render a :class:`SystemConfig` as ``.cfg`` text.

    Every key is written explicitly (defaults included) using the same
    key names :func:`parse_config_text` accepts, so
    ``parse_config_text(serialize_config(cfg)) == cfg`` for any valid
    config — the round-trip property the shipped ``configs/`` artifacts
    are generated (and tested) under.
    """
    sections: list[tuple[str, list[tuple[str, object]]]] = [
        (
            "general",
            [
                ("run_name", config.run.run_name),
                ("output_dir", config.run.output_dir),
            ],
        ),
        (
            "architecture_presets",
            [
                ("ArrayHeight", config.arch.array_rows),
                ("ArrayWidth", config.arch.array_cols),
                ("IfmapSramSzkB", config.arch.ifmap_sram_kb),
                ("FilterSramSzkB", config.arch.filter_sram_kb),
                ("OfmapSramSzkB", config.arch.ofmap_sram_kb),
                ("Dataflow", config.arch.dataflow),
                ("Bandwidth", config.arch.bandwidth_words),
                ("WordBytes", config.arch.word_bytes),
                ("SimdLanes", config.arch.simd_lanes),
                ("SimdLatencyPerElement", config.arch.simd_latency_per_element),
            ],
        ),
        (
            "sparsity",
            [
                ("SparsitySupport", config.sparsity.sparsity_support),
                ("OptimizedMapping", config.sparsity.optimized_mapping),
                ("SparseRep", config.sparsity.sparse_representation),
                ("BlockSize", config.sparsity.block_size),
                ("RandomSeed", config.sparsity.random_seed),
            ],
        ),
        (
            "memory",
            [
                ("Enabled", config.dram.enabled),
                ("Technology", config.dram.technology),
                ("Channels", config.dram.channels),
                ("RanksPerChannel", config.dram.ranks_per_channel),
                ("BanksPerRank", config.dram.banks_per_rank),
                ("CapacityGBPerChannel", config.dram.capacity_gb_per_channel),
                ("SpeedMTs", config.dram.speed_mts),
                ("ReadQueueEntries", config.dram.read_queue_entries),
                ("WriteQueueEntries", config.dram.write_queue_entries),
                ("AddressMapping", config.dram.address_mapping),
                ("IssuePerCycle", config.dram.issue_per_cycle),
                ("Engine", config.dram.engine),
            ],
        ),
        (
            "layout",
            [
                ("Enabled", config.layout.enabled),
                ("NumBanks", config.layout.num_banks),
                ("PortsPerBank", config.layout.ports_per_bank),
                ("BandwidthPerBank", config.layout.bandwidth_per_bank_words),
                ("C1Step", config.layout.c1_step),
                ("H1Step", config.layout.h1_step),
                ("W1Step", config.layout.w1_step),
                ("Evaluator", config.layout.evaluator),
            ],
        ),
        (
            "energy",
            [
                ("Enabled", config.energy.enabled),
                ("TechnologyNm", config.energy.technology_nm),
                ("RowSize", config.energy.row_size_words),
                ("BankSize", config.energy.bank_rows),
                ("ClockGHz", config.energy.clock_ghz),
                ("ClockGating", config.energy.clock_gating),
            ],
        ),
        (
            "multicore",
            [
                ("Enabled", config.multicore.enabled),
                ("PartitionsRow", config.multicore.partitions_row),
                ("PartitionsCol", config.multicore.partitions_col),
                ("PartitionScheme", config.multicore.partition_scheme),
                ("L2SramSzkB", config.multicore.l2_sram_kb),
                ("NopHops", config.multicore.nop_hops),
                ("NopLatencyPerHop", config.multicore.nop_latency_per_hop),
            ],
        ),
    ]
    lines: list[str] = []
    for name, entries in sections:
        lines.append(f"[{name}]")
        for key, value in entries:
            lines.append(f"{key} = {_format_value(value)}")
        lines.append("")
    return "\n".join(lines)


def save_config(config: SystemConfig, path: str | Path) -> Path:
    """Write ``config`` to ``path`` in ``.cfg`` format; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(serialize_config(config))
    return path
