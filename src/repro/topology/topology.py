"""Topology container with SCALE-Sim-compatible CSV io.

Two CSV dialects are supported, auto-detected by header:

Convolution (SCALE-Sim classic, plus v3's ``SparsitySupport`` column)::

    Layer name, IFMAP Height, IFMAP Width, Filter Height, Filter Width,
    Channels, Num Filter, Strides, SparsitySupport,

GEMM (``mnk`` dialect)::

    Layer name, M, N, K, SparsitySupport,

The trailing comma SCALE-Sim topologies traditionally carry is tolerated.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Sequence
from pathlib import Path

from repro.errors import TopologyError
from repro.topology.layer import ConvLayer, GemmLayer, Layer, SparsityRatio
from repro.utils.csvio import read_csv_rows, write_csv

_CONV_HEADER = [
    "Layer name",
    "IFMAP Height",
    "IFMAP Width",
    "Filter Height",
    "Filter Width",
    "Channels",
    "Num Filter",
    "Strides",
    "SparsitySupport",
]

_GEMM_HEADER = ["Layer name", "M", "N", "K", "SparsitySupport"]


class Topology:
    """An ordered collection of layers forming one workload."""

    def __init__(self, name: str, layers: Iterable[Layer]) -> None:
        if not name:
            raise TopologyError("topology name must be non-empty")
        self.name = name
        self._layers: list[Layer] = list(layers)
        if not self._layers:
            raise TopologyError(f"topology {name!r} has no layers")
        seen: set[str] = set()
        for layer in self._layers:
            if layer.name in seen:
                raise TopologyError(f"duplicate layer name {layer.name!r} in {name!r}")
            seen.add(layer.name)

    def __len__(self) -> int:
        return len(self._layers)

    def __iter__(self) -> Iterator[Layer]:
        return iter(self._layers)

    def __getitem__(self, index: int) -> Layer:
        return self._layers[index]

    @property
    def layers(self) -> tuple[Layer, ...]:
        """The layers in execution order."""
        return tuple(self._layers)

    def layer_named(self, name: str) -> Layer:
        """Look a layer up by name."""
        for layer in self._layers:
            if layer.name == name:
                return layer
        raise TopologyError(f"no layer named {name!r} in topology {self.name!r}")

    def subset(self, names: Sequence[str], name: str | None = None) -> "Topology":
        """A new topology containing only the named layers, in given order."""
        return Topology(name or f"{self.name}_subset", [self.layer_named(n) for n in names])

    def first_layers(self, count: int, name: str | None = None) -> "Topology":
        """A new topology with only the first ``count`` layers."""
        if count < 1:
            raise TopologyError(f"count must be >= 1, got {count}")
        return Topology(name or f"{self.name}_first{count}", self._layers[:count])

    def with_sparsity(self, ratio: SparsityRatio | str) -> "Topology":
        """Copy with every layer assigned the same N:M sparsity ratio."""
        if isinstance(ratio, str):
            ratio = SparsityRatio.parse(ratio)
        new_layers: list[Layer] = []
        for layer in self._layers:
            if isinstance(layer, ConvLayer):
                new_layers.append(
                    ConvLayer(
                        name=layer.name,
                        ifmap_h=layer.ifmap_h,
                        ifmap_w=layer.ifmap_w,
                        filter_h=layer.filter_h,
                        filter_w=layer.filter_w,
                        channels=layer.channels,
                        num_filters=layer.num_filters,
                        stride_h=layer.stride_h,
                        stride_w=layer.stride_w,
                        sparsity=ratio,
                    )
                )
            else:
                new_layers.append(
                    GemmLayer(name=layer.name, m=layer.m, n=layer.n, k=layer.k, sparsity=ratio)
                )
        return Topology(self.name, new_layers)

    def total_macs(self) -> int:
        """Dense multiply-accumulate count across all layers."""
        return sum(layer.to_gemm().macs for layer in self._layers)

    # ------------------------------------------------------------------ CSV

    @classmethod
    def from_csv(cls, path: str | Path, name: str | None = None) -> "Topology":
        """Load a topology CSV (conv or GEMM dialect, auto-detected)."""
        path = Path(path)
        rows = read_csv_rows(path)
        if not rows:
            raise TopologyError(f"empty topology file: {path}")
        header = [cell.lower() for cell in rows[0] if cell]
        body = rows[1:]
        topo_name = name or path.stem
        if len(header) >= 2 and header[1] == "m":
            return cls(topo_name, [_parse_gemm_row(row, path) for row in body])
        return cls(topo_name, [_parse_conv_row(row, path) for row in body])

    def to_csv(self, path: str | Path) -> Path:
        """Write this topology as a SCALE-Sim style CSV file."""
        if all(isinstance(layer, GemmLayer) for layer in self._layers):
            rows = [
                [layer.name, layer.m, layer.n, layer.k, str(layer.sparsity or "")]
                for layer in self._layers
                if isinstance(layer, GemmLayer)
            ]
            return write_csv(path, _GEMM_HEADER, rows)
        conv_rows: list[list[object]] = []
        for layer in self._layers:
            if not isinstance(layer, ConvLayer):
                raise TopologyError(
                    "mixed conv/GEMM topologies cannot be written to the conv CSV "
                    f"dialect (offending layer: {layer.name!r})"
                )
            conv_rows.append(
                [
                    layer.name,
                    layer.ifmap_h,
                    layer.ifmap_w,
                    layer.filter_h,
                    layer.filter_w,
                    layer.channels,
                    layer.num_filters,
                    layer.stride_h,
                    str(layer.sparsity or ""),
                ]
            )
        return write_csv(path, _CONV_HEADER, conv_rows)

    def __repr__(self) -> str:
        return f"Topology(name={self.name!r}, layers={len(self._layers)})"


def _parse_sparsity_cell(cells: list[str], index: int) -> SparsityRatio | None:
    if len(cells) <= index:
        return None
    raw = cells[index].strip()
    if not raw:
        return None
    return SparsityRatio.parse(raw)


def _int_cell(cells: list[str], index: int, field: str, path: Path) -> int:
    try:
        return int(cells[index])
    except (IndexError, ValueError) as exc:
        raise TopologyError(f"{path}: bad {field} in row {cells!r}") from exc


def _parse_conv_row(cells: list[str], path: Path) -> ConvLayer:
    if len(cells) < 8:
        raise TopologyError(f"{path}: conv row needs >= 8 cells, got {cells!r}")
    stride = _int_cell(cells, 7, "stride", path)
    return ConvLayer(
        name=cells[0],
        ifmap_h=_int_cell(cells, 1, "ifmap height", path),
        ifmap_w=_int_cell(cells, 2, "ifmap width", path),
        filter_h=_int_cell(cells, 3, "filter height", path),
        filter_w=_int_cell(cells, 4, "filter width", path),
        channels=_int_cell(cells, 5, "channels", path),
        num_filters=_int_cell(cells, 6, "num filters", path),
        stride_h=stride,
        stride_w=stride,
        sparsity=_parse_sparsity_cell(cells, 8),
    )


def _parse_gemm_row(cells: list[str], path: Path) -> GemmLayer:
    if len(cells) < 4:
        raise TopologyError(f"{path}: GEMM row needs >= 4 cells, got {cells!r}")
    return GemmLayer(
        name=cells[0],
        m=_int_cell(cells, 1, "M", path),
        n=_int_cell(cells, 2, "N", path),
        k=_int_cell(cells, 3, "K", path),
        sparsity=_parse_sparsity_cell(cells, 4),
    )
