"""Workload topologies: layer types, CSV io, and built-in model zoos."""

from repro.topology.layer import ConvLayer, GemmLayer, GemmShape, Layer
from repro.topology.topology import Topology
from repro.topology.models import available_models, get_model

__all__ = [
    "ConvLayer",
    "GemmLayer",
    "GemmShape",
    "Layer",
    "Topology",
    "available_models",
    "get_model",
]
