"""Built-in workload topologies used by the paper's evaluation.

The paper evaluates on AlexNet, ResNet-18, ResNet-50, an RCNN backbone,
and ViT variants (ViT-S, ViT-base, ViT-L).  CNNs use the classic conv
topology dialect; transformers are expressed directly as GEMM layers
(per-token projections with a 197-token sequence, the standard 224x224 /
patch-16 ViT setting).

Every model factory accepts a ``scale`` divisor that shrinks spatial
dimensions (CNNs) or sequence/hidden sizes (ViTs) so tests and smoke
benches can run the full pipeline in milliseconds while benchmarks use
``scale=1`` for paper-fidelity shapes.
"""

from __future__ import annotations

import inspect
from collections.abc import Callable

from repro.errors import TopologyError
from repro.topology.layer import ConvLayer, GemmLayer
from repro.topology.topology import Topology


def _scaled(value: int, scale: int, floor: int = 1) -> int:
    return max(floor, value // scale)


def _conv(
    name: str,
    ifmap: int,
    kernel: int,
    channels: int,
    filters: int,
    stride: int = 1,
    scale: int = 1,
) -> ConvLayer:
    side = max(_scaled(ifmap, scale), kernel)
    return ConvLayer(
        name=name,
        ifmap_h=side,
        ifmap_w=side,
        filter_h=kernel,
        filter_w=kernel,
        channels=channels,
        num_filters=filters,
        stride_h=stride,
        stride_w=stride,
    )


def alexnet(scale: int = 1) -> Topology:
    """AlexNet's five convolutions plus the three FC layers as 1x1 convs."""
    layers = [
        _conv("conv1", 227, 11, 3, 96, stride=4, scale=scale),
        _conv("conv2", 27, 5, 96, 256, scale=scale),
        _conv("conv3", 13, 3, 256, 384, scale=scale),
        _conv("conv4", 13, 3, 384, 384, scale=scale),
        _conv("conv5", 13, 3, 384, 256, scale=scale),
        GemmLayer("fc6", m=4096, n=1, k=_scaled(9216, scale, floor=64)),
        GemmLayer("fc7", m=4096, n=1, k=4096),
        GemmLayer("fc8", m=1000, n=1, k=4096),
    ]
    return Topology("alexnet", layers)


def resnet18(scale: int = 1) -> Topology:
    """ResNet-18 convolution stack (valid-padding approximation) + FC."""
    layers = [
        _conv("conv1", 224, 7, 3, 64, stride=2, scale=scale),
        _conv("conv2_1a", 56, 3, 64, 64, scale=scale),
        _conv("conv2_1b", 56, 3, 64, 64, scale=scale),
        _conv("conv2_2a", 56, 3, 64, 64, scale=scale),
        _conv("conv2_2b", 56, 3, 64, 64, scale=scale),
        _conv("conv3_1a", 56, 3, 64, 128, stride=2, scale=scale),
        _conv("conv3_1b", 28, 3, 128, 128, scale=scale),
        _conv("conv3_2a", 28, 3, 128, 128, scale=scale),
        _conv("conv3_2b", 28, 3, 128, 128, scale=scale),
        _conv("conv4_1a", 28, 3, 128, 256, stride=2, scale=scale),
        _conv("conv4_1b", 14, 3, 256, 256, scale=scale),
        _conv("conv4_2a", 14, 3, 256, 256, scale=scale),
        _conv("conv4_2b", 14, 3, 256, 256, scale=scale),
        _conv("conv5_1a", 14, 3, 256, 512, stride=2, scale=scale),
        _conv("conv5_1b", 7, 3, 512, 512, scale=scale),
        _conv("conv5_2a", 7, 3, 512, 512, scale=scale),
        _conv("conv5_2b", 7, 3, 512, 512, scale=scale),
        GemmLayer("fc", m=1000, n=1, k=512),
    ]
    return Topology("resnet18", layers)


def resnet50(scale: int = 1) -> Topology:
    """ResNet-50 with a representative bottleneck per stage group.

    The full 53-conv stack simulates identically per repeated block, so
    the zoo carries one bottleneck (1x1 -> 3x3 -> 1x1) per distinct shape
    plus the stem and FC — the same simplification SCALE-Sim's shipped
    topologies make for long networks.
    """
    layers = [
        _conv("conv1", 224, 7, 3, 64, stride=2, scale=scale),
        _conv("conv2_r", 56, 1, 64, 64, scale=scale),
        _conv("conv2_s", 56, 3, 64, 64, scale=scale),
        _conv("conv2_e", 56, 1, 64, 256, scale=scale),
        _conv("conv3_r", 56, 1, 256, 128, stride=2, scale=scale),
        _conv("conv3_s", 28, 3, 128, 128, scale=scale),
        _conv("conv3_e", 28, 1, 128, 512, scale=scale),
        _conv("conv4_r", 28, 1, 512, 256, stride=2, scale=scale),
        _conv("conv4_s", 14, 3, 256, 256, scale=scale),
        _conv("conv4_e", 14, 1, 256, 1024, scale=scale),
        _conv("conv5_r", 14, 1, 1024, 512, stride=2, scale=scale),
        _conv("conv5_s", 7, 3, 512, 512, scale=scale),
        _conv("conv5_e", 7, 1, 512, 2048, scale=scale),
        GemmLayer("fc", m=1000, n=1, k=2048),
    ]
    return Topology("resnet50", layers)


def rcnn(scale: int = 1) -> Topology:
    """A Fast-RCNN-style backbone: VGG-ish convs + region FC head."""
    layers = [
        _conv("conv1_1", 224, 3, 3, 64, scale=scale),
        _conv("conv1_2", 224, 3, 64, 64, scale=scale),
        _conv("conv2_1", 112, 3, 64, 128, scale=scale),
        _conv("conv2_2", 112, 3, 128, 128, scale=scale),
        _conv("conv3_1", 56, 3, 128, 256, scale=scale),
        _conv("conv3_2", 56, 3, 256, 256, scale=scale),
        _conv("conv4_1", 28, 3, 256, 512, scale=scale),
        _conv("conv4_2", 28, 3, 512, 512, scale=scale),
        _conv("conv5_1", 14, 3, 512, 512, scale=scale),
        GemmLayer("roi_fc6", m=4096, n=_scaled(128, scale), k=25088),
        GemmLayer("roi_fc7", m=4096, n=_scaled(128, scale), k=4096),
        GemmLayer("cls_score", m=21, n=_scaled(128, scale), k=4096),
    ]
    return Topology("rcnn", layers)


def _vit(name: str, seq: int, dim: int, mlp: int, blocks: int, scale: int) -> Topology:
    seq = _scaled(seq, scale, floor=8)
    dim = _scaled(dim, scale, floor=32)
    mlp = _scaled(mlp, scale, floor=64)
    layers: list[GemmLayer] = []
    for block in range(blocks):
        prefix = f"block{block}"
        layers.extend(
            [
                GemmLayer(f"{prefix}_qkv", m=3 * dim, n=seq, k=dim),
                GemmLayer(f"{prefix}_attn_qk", m=seq, n=seq, k=dim),
                GemmLayer(f"{prefix}_attn_v", m=seq, n=dim, k=seq),
                GemmLayer(f"{prefix}_proj", m=dim, n=seq, k=dim),
                GemmLayer(f"{prefix}_ff1", m=mlp, n=seq, k=dim),
                GemmLayer(f"{prefix}_ff2", m=dim, n=seq, k=mlp),
            ]
        )
    return Topology(name, layers)


def vit_small(scale: int = 1, blocks: int = 2) -> Topology:
    """ViT-S (384-dim, 1536 MLP); ``blocks`` of the 12 are materialised."""
    return _vit("vit_s", seq=197, dim=384, mlp=1536, blocks=blocks, scale=scale)


def vit_base(scale: int = 1, blocks: int = 2) -> Topology:
    """ViT-base (768-dim, 3072 MLP)."""
    return _vit("vit_base", seq=197, dim=768, mlp=3072, blocks=blocks, scale=scale)


def vit_large(scale: int = 1, blocks: int = 2) -> Topology:
    """ViT-L (1024-dim, 4096 MLP)."""
    return _vit("vit_l", seq=197, dim=1024, mlp=4096, blocks=blocks, scale=scale)


def vit_ff_layers(scale: int = 1) -> Topology:
    """Just the feed-forward GEMMs of a ViT-base block (Figure 8's workload)."""
    seq = _scaled(197, scale, floor=8)
    dim = _scaled(768, scale, floor=32)
    mlp = _scaled(3072, scale, floor=64)
    return Topology(
        "vit_ff",
        [
            GemmLayer("ff1", m=mlp, n=seq, k=dim),
            GemmLayer("ff2", m=dim, n=seq, k=mlp),
        ],
    )


def toy_conv() -> Topology:
    """A tiny two-conv network for unit tests and the quickstart example."""
    return Topology(
        "toy_conv",
        [
            ConvLayer("c1", ifmap_h=8, ifmap_w=8, filter_h=3, filter_w=3, channels=3, num_filters=8),
            ConvLayer("c2", ifmap_h=6, ifmap_w=6, filter_h=3, filter_w=3, channels=8, num_filters=16),
        ],
    )


def toy_gemm() -> Topology:
    """A tiny pair of GEMMs for unit tests."""
    return Topology(
        "toy_gemm",
        [
            GemmLayer("g1", m=16, n=16, k=16),
            GemmLayer("g2", m=32, n=8, k=24),
        ],
    )


_MODELS: dict[str, Callable[..., Topology]] = {
    "alexnet": alexnet,
    "resnet18": resnet18,
    "resnet50": resnet50,
    "rcnn": rcnn,
    "vit_s": vit_small,
    "vit_base": vit_base,
    "vit_l": vit_large,
    "vit_ff": vit_ff_layers,
    "toy_conv": toy_conv,
    "toy_gemm": toy_gemm,
}


def available_models() -> tuple[str, ...]:
    """Names of all built-in workload topologies."""
    return tuple(sorted(_MODELS))


def get_model(name: str, **kwargs: int) -> Topology:
    """Build a named topology, forwarding ``scale``/``blocks`` kwargs.

    Kwargs a model does not take (e.g. ``scale`` for the toy models)
    are silently dropped, so callers can pass a uniform parameter set
    across the zoo.
    """
    try:
        factory = _MODELS[name]
    except KeyError as exc:
        raise TopologyError(
            f"unknown model {name!r}; available: {', '.join(available_models())}"
        ) from exc
    accepted = inspect.signature(factory).parameters
    return factory(**{k: v for k, v in kwargs.items() if k in accepted})
