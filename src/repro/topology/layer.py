"""Layer descriptions and their lowering to GEMM.

SCALE-Sim models two operator kinds:

* convolutions, described by ifmap/filter geometry (the classic topology
  CSV format), and
* GEMMs, described directly by (M, N, K).

Both lower to a :class:`GemmShape`.  Following the paper's Table II
convention, the GEMM is ``O[M, N] = W[M, K] @ X[K, N]`` where ``W`` is
the weight/filter operand and ``X`` the input/ifmap operand; for a
convolution ``M = number of filters``, ``N = ofmap pixels`` and
``K = filter window x channels``.  This is the only reading under which
"weight stationary" (Sr=K, Sc=M) actually pins the weights spatially.

Sparsity rides along as an optional N:M ratio per layer (the topology
file's ``SparsitySupport`` column in the paper).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from repro.errors import SparsityError, TopologyError


@dataclass(frozen=True)
class SparsityRatio:
    """An N:M structured-sparsity ratio (N non-zeros per M-element block)."""

    n: int
    m: int

    def __post_init__(self) -> None:
        if self.m < 1:
            raise SparsityError(f"M must be >= 1, got {self.m}")
        if not 0 <= self.n <= self.m:
            raise SparsityError(f"N must be in [0, {self.m}], got {self.n}")

    @property
    def density(self) -> float:
        """Fraction of elements that are non-zero."""
        return self.n / self.m

    @property
    def is_dense(self) -> bool:
        """True when the ratio keeps every element (N == M)."""
        return self.n == self.m

    @property
    def is_computationally_advantageous(self) -> bool:
        """The paper constrains useful sparsity to N <= M/2 (Section IV-A2)."""
        return 2 * self.n <= self.m

    @classmethod
    def parse(cls, text: str) -> "SparsityRatio":
        """Parse ``"N:M"`` notation, e.g. ``"2:4"``."""
        parts = text.strip().split(":")
        if len(parts) != 2:
            raise SparsityError(f"expected 'N:M' sparsity ratio, got {text!r}")
        try:
            n, m = int(parts[0]), int(parts[1])
        except ValueError as exc:
            raise SparsityError(f"non-integer sparsity ratio {text!r}") from exc
        return cls(n, m)

    def __str__(self) -> str:
        return f"{self.n}:{self.m}"


@dataclass(frozen=True)
class GemmShape:
    """A GEMM ``O[M, N] = W[M, K] @ X[K, N]`` (weights W, inputs X)."""

    m: int
    n: int
    k: int

    def __post_init__(self) -> None:
        for name in ("m", "n", "k"):
            value = getattr(self, name)
            if value < 1:
                raise TopologyError(f"GEMM dim {name.upper()} must be >= 1, got {value}")

    @property
    def macs(self) -> int:
        """Multiply-accumulate count of the dense GEMM."""
        return self.m * self.n * self.k

    @property
    def ifmap_words(self) -> int:
        """Words in the X operand (activations, K x N)."""
        return self.k * self.n

    @property
    def filter_words(self) -> int:
        """Words in the W operand (weights, M x K)."""
        return self.m * self.k

    @property
    def ofmap_words(self) -> int:
        """Words in the output operand."""
        return self.m * self.n

    @property
    def total_operand_words(self) -> int:
        """Total words touched by the dense GEMM (A + B + O)."""
        return self.ifmap_words + self.filter_words + self.ofmap_words


@dataclass(frozen=True)
class ConvLayer:
    """A convolution layer in SCALE-Sim's topology CSV terms."""

    name: str
    ifmap_h: int
    ifmap_w: int
    filter_h: int
    filter_w: int
    channels: int
    num_filters: int
    stride_h: int = 1
    stride_w: int = 1
    sparsity: SparsityRatio | None = None

    def __post_init__(self) -> None:
        for field_name in (
            "ifmap_h",
            "ifmap_w",
            "filter_h",
            "filter_w",
            "channels",
            "num_filters",
            "stride_h",
            "stride_w",
        ):
            value = getattr(self, field_name)
            if value < 1:
                raise TopologyError(
                    f"layer {self.name!r}: {field_name} must be >= 1, got {value}"
                )
        if self.filter_h > self.ifmap_h or self.filter_w > self.ifmap_w:
            raise TopologyError(
                f"layer {self.name!r}: filter ({self.filter_h}x{self.filter_w}) "
                f"larger than ifmap ({self.ifmap_h}x{self.ifmap_w})"
            )

    @property
    def ofmap_h(self) -> int:
        """Output feature-map height (valid convolution, no padding)."""
        return (self.ifmap_h - self.filter_h) // self.stride_h + 1

    @property
    def ofmap_w(self) -> int:
        """Output feature-map width (valid convolution, no padding)."""
        return (self.ifmap_w - self.filter_w) // self.stride_w + 1

    @property
    def window_size(self) -> int:
        """Elements in one convolution window (filter volume)."""
        return self.filter_h * self.filter_w * self.channels

    @property
    def num_ofmap_px(self) -> int:
        """Output pixels per channel (rows of the lowered GEMM)."""
        return self.ofmap_h * self.ofmap_w

    def to_gemm(self) -> GemmShape:
        """Lower to the im2col GEMM (M = filters, N = ofmap pixels)."""
        return GemmShape(m=self.num_filters, n=self.num_ofmap_px, k=self.window_size)

    @property
    def ifmap_words(self) -> int:
        """Words in the raw (pre-im2col) input feature map."""
        return self.ifmap_h * self.ifmap_w * self.channels

    @property
    def filter_words(self) -> int:
        """Words in the filter tensor."""
        return self.window_size * self.num_filters

    @property
    def ofmap_words(self) -> int:
        """Words in the output feature map."""
        return self.num_ofmap_px * self.num_filters


@dataclass(frozen=True)
class GemmLayer:
    """A bare GEMM layer (transformer blocks, FC layers).

    ``m`` is the weight-output dimension (e.g. output features), ``n``
    the activation/token dimension, ``k`` the reduction dimension.
    """

    name: str
    m: int
    n: int
    k: int
    sparsity: SparsityRatio | None = None

    def __post_init__(self) -> None:
        GemmShape(self.m, self.n, self.k)  # validates dims

    def to_gemm(self) -> GemmShape:
        """The layer's GEMM shape (identity lowering)."""
        return GemmShape(self.m, self.n, self.k)

    @property
    def ifmap_words(self) -> int:
        """Words in the X operand (K x N)."""
        return self.k * self.n

    @property
    def filter_words(self) -> int:
        """Words in the W operand (M x K)."""
        return self.m * self.k

    @property
    def ofmap_words(self) -> int:
        """Words in the output."""
        return self.m * self.n


Layer = Union[ConvLayer, GemmLayer]
