"""Aggregate per-layer compute simulation (no trace materialisation).

:class:`ComputeSimulator` evaluates one layer on one array and returns a
:class:`LayerComputeResult` holding

* the exact Eq.-1 runtime and its fold decomposition,
* mapping efficiency and compute utilisation,
* exact SRAM access counts (derived in closed form from the per-fold
  port activity — identical to summing the demand traces), and
* a lazy stream of :class:`FoldSpec` records describing what each fold
  needs fetched from backing store, which the double-buffer / DRAM
  models consume to compute stalls.

Closed-form SRAM access counts (R_u/C_u = used rows/cols of a fold,
summed over folds; ``frows``/``fcols`` = fold counts along Sr/Sc):

========  ======================  ======================  ====================
Dataflow  ifmap reads             filter reads            ofmap writes
========  ======================  ======================  ====================
WS        K * N * fcols           K * M                   M * N * frows
IS        K * N                   K * M * fcols           M * N * frows
OS        K * N * ceil(M / R)     M * K * ceil(N / C)     M * N
========  ======================  ======================  ====================

(The stationary operand is read exactly once; streams are re-read once
per fold along the other spatial axis; WS/IS emit one partial-sum write
per K-fold.)
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass, field

from repro.core.dataflow import (
    Dataflow,
    GemmMapping,
    compute_utilization,
    fold_cycles,
    map_gemm,
    mapping_efficiency,
)
from repro.errors import SimulationError
from repro.topology.layer import ConvLayer, GemmLayer, GemmShape, Layer
from repro.utils.math import ceil_div


@dataclass(frozen=True)
class TileFetch:
    """A contiguous span of one operand to fetch from backing store."""

    operand: str  # "ifmap" | "filter" | "ofmap"
    start_word: int
    num_words: int
    is_write: bool = False

    def __post_init__(self) -> None:
        if self.operand not in ("ifmap", "filter", "ofmap"):
            raise SimulationError(f"unknown operand {self.operand!r}")
        if self.num_words < 0 or self.start_word < 0:
            raise SimulationError("negative tile fetch span")


@dataclass(frozen=True)
class FoldSpec:
    """One fold's schedule plus its backing-store traffic."""

    fold_row: int
    fold_col: int
    start_cycle: int
    cycles: int
    rows_used: int
    cols_used: int
    fetches: tuple[TileFetch, ...] = ()

    @property
    def fetch_words(self) -> int:
        """Words read from backing store ahead of this fold."""
        return sum(f.num_words for f in self.fetches if not f.is_write)

    @property
    def writeback_words(self) -> int:
        """Words written back to backing store after this fold."""
        return sum(f.num_words for f in self.fetches if f.is_write)


@dataclass
class LayerComputeResult:
    """Everything the rest of the pipeline needs to know about one layer."""

    layer_name: str
    shape: GemmShape
    dataflow: Dataflow
    array_rows: int
    array_cols: int
    mapping: GemmMapping
    compute_cycles: int
    folds_row: int
    folds_col: int
    cycles_per_fold: int
    mapping_efficiency: float
    compute_utilization: float
    ifmap_sram_reads: int
    filter_sram_reads: int
    ofmap_sram_writes: int
    dram_ifmap_words: int
    dram_filter_words: int
    dram_ofmap_write_words: int
    dram_ofmap_readback_words: int
    fold_specs: list[FoldSpec] = field(default_factory=list, repr=False)

    @property
    def total_folds(self) -> int:
        """Number of folds executed."""
        return self.folds_row * self.folds_col

    @property
    def macs(self) -> int:
        """Dense MAC count of the layer."""
        return self.shape.macs

    @property
    def total_sram_accesses(self) -> int:
        """All SRAM reads and writes."""
        return self.ifmap_sram_reads + self.filter_sram_reads + self.ofmap_sram_writes

    @property
    def total_dram_words(self) -> int:
        """All words moved between DRAM and the scratchpads."""
        return (
            self.dram_ifmap_words
            + self.dram_filter_words
            + self.dram_ofmap_write_words
            + self.dram_ofmap_readback_words
        )


class ComputeSimulator:
    """Evaluates layers on a fixed array/dataflow configuration."""

    def __init__(
        self,
        array_rows: int,
        array_cols: int,
        dataflow: Dataflow | str,
        ifmap_sram_words: int = 1 << 30,
        filter_sram_words: int = 1 << 30,
        ofmap_sram_words: int = 1 << 30,
    ) -> None:
        if array_rows < 1 or array_cols < 1:
            raise SimulationError(f"bad array {array_rows}x{array_cols}")
        self.rows = array_rows
        self.cols = array_cols
        self.dataflow = Dataflow.parse(dataflow) if isinstance(dataflow, str) else dataflow
        # Double buffering: half the SRAM holds the working set, half
        # prefetches; the usable working capacity is therefore half.
        self.ifmap_working_words = max(1, ifmap_sram_words // 2)
        self.filter_working_words = max(1, filter_sram_words // 2)
        self.ofmap_working_words = max(1, ofmap_sram_words // 2)

    # ------------------------------------------------------------------ API

    def simulate_layer(self, layer: Layer, with_fold_specs: bool = True) -> LayerComputeResult:
        """Simulate one layer; optionally attach the per-fold fetch plan."""
        shape = layer.to_gemm()
        mapping = map_gemm(shape, self.dataflow)
        frows = ceil_div(mapping.sr, self.rows)
        fcols = ceil_div(mapping.sc, self.cols)
        per_fold = fold_cycles(self.rows, self.cols, mapping.t)
        total = frows * fcols * per_fold

        ifmap_reads, filter_reads, ofmap_writes = self._sram_access_counts(
            shape, frows, fcols
        )
        raw_ifmap, raw_filter, raw_ofmap = self._raw_footprints(layer, shape)
        fold_specs = (
            self._build_fold_specs(shape, mapping, frows, fcols, per_fold, raw_ifmap, raw_filter, raw_ofmap)
            if with_fold_specs
            else []
        )
        dram_ifmap, dram_filter, dram_owrite, dram_oread = self._dram_word_totals(fold_specs)
        if not with_fold_specs:
            dram_ifmap, dram_filter, dram_owrite, dram_oread = self._dram_totals_closed_form(
                shape, mapping, frows, fcols, raw_ifmap, raw_filter, raw_ofmap
            )

        return LayerComputeResult(
            layer_name=layer.name,
            shape=shape,
            dataflow=self.dataflow,
            array_rows=self.rows,
            array_cols=self.cols,
            mapping=mapping,
            compute_cycles=total,
            folds_row=frows,
            folds_col=fcols,
            cycles_per_fold=per_fold,
            mapping_efficiency=mapping_efficiency(mapping, self.rows, self.cols),
            compute_utilization=compute_utilization(shape, self.dataflow, self.rows, self.cols),
            ifmap_sram_reads=ifmap_reads,
            filter_sram_reads=filter_reads,
            ofmap_sram_writes=ofmap_writes,
            dram_ifmap_words=dram_ifmap,
            dram_filter_words=dram_filter,
            dram_ofmap_write_words=dram_owrite,
            dram_ofmap_readback_words=dram_oread,
            fold_specs=fold_specs,
        )

    # ------------------------------------------------------------ internals

    def _sram_access_counts(
        self, shape: GemmShape, frows: int, fcols: int
    ) -> tuple[int, int, int]:
        m, n, k = shape.m, shape.n, shape.k
        if self.dataflow is Dataflow.WEIGHT_STATIONARY:
            return k * n * fcols, k * m, m * n * frows
        if self.dataflow is Dataflow.INPUT_STATIONARY:
            return k * n, k * m * fcols, m * n * frows
        # OS: Sr=M, Sc=N.
        return n * k * frows, m * k * fcols, m * n

    @staticmethod
    def _raw_footprints(layer: Layer, shape: GemmShape) -> tuple[int, int, int]:
        """Words in the raw (pre-im2col) operand tensors."""
        if isinstance(layer, ConvLayer):
            return layer.ifmap_words, layer.filter_words, layer.ofmap_words
        if isinstance(layer, GemmLayer):
            return shape.ifmap_words, shape.filter_words, shape.ofmap_words
        raise SimulationError(f"unsupported layer type: {type(layer).__name__}")

    def _build_fold_specs(
        self,
        shape: GemmShape,
        mapping: GemmMapping,
        frows: int,
        fcols: int,
        per_fold: int,
        raw_ifmap: int,
        raw_filter: int,
        raw_ofmap: int,
    ) -> list[FoldSpec]:
        """Plan per-fold backing-store traffic with double-buffer reuse.

        DRAM spans are synthesised over each operand's *raw* footprint
        (contiguous streaming), proportional to the tile being fetched.
        Im2col duplication is an SRAM-side effect and is charged there;
        DRAM sees unique data.  See DESIGN.md "Core modelling decisions".
        """
        specs: list[FoldSpec] = []
        t = mapping.t
        df = self.dataflow
        start = 0

        # Raw words corresponding to one Sr-slice (row fold) of each
        # streamed operand, capped by the raw footprint.
        def slice_words(raw_total: int, used: int, total_dim: int) -> int:
            if total_dim == 0:
                return 0
            return min(raw_total, ceil_div(raw_total * used, total_dim))

        ifmap_cursor = 0
        filter_cursor = 0

        for fr in range(frows):
            rows_used = min(self.rows, mapping.sr - fr * self.rows)
            for fc in range(fcols):
                cols_used = min(self.cols, mapping.sc - fc * self.cols)
                fetches: list[TileFetch] = []

                if df is Dataflow.WEIGHT_STATIONARY:
                    # Stationary filter tile: rows_used x cols_used words.
                    stat_words = rows_used * cols_used
                    fetches.append(TileFetch("filter", filter_cursor % max(1, raw_filter), stat_words))
                    filter_cursor += stat_words
                    # Streamed ifmap slice: reused across fc if it fits.
                    stream_words = slice_words(raw_ifmap, rows_used, mapping.sr)
                    fits = stream_words <= self.ifmap_working_words
                    if fc == 0 or not fits:
                        fetches.append(TileFetch("ifmap", ifmap_cursor % max(1, raw_ifmap), stream_words))
                        if not fits or fc == fcols - 1:
                            ifmap_cursor += stream_words
                    # Ofmap partials: commit once per K-fold unless the
                    # output tile accumulates on-chip across fr.
                    out_tile = cols_used * t
                    accumulate = raw_ofmap <= self.ofmap_working_words
                    if not accumulate:
                        fetches.append(TileFetch("ofmap", 0, min(out_tile, raw_ofmap), is_write=True))
                        if fr > 0:
                            fetches.append(TileFetch("ofmap", 0, min(out_tile, raw_ofmap)))
                    elif fr == frows - 1:
                        fetches.append(TileFetch("ofmap", 0, min(out_tile, raw_ofmap), is_write=True))

                elif df is Dataflow.INPUT_STATIONARY:
                    stat_words = slice_words(raw_ifmap, rows_used * cols_used, mapping.sr * mapping.sc)
                    fetches.append(TileFetch("ifmap", ifmap_cursor % max(1, raw_ifmap), stat_words))
                    ifmap_cursor += stat_words
                    stream_words = slice_words(raw_filter, rows_used, mapping.sr)
                    fits = stream_words <= self.filter_working_words
                    if fc == 0 or not fits:
                        fetches.append(TileFetch("filter", filter_cursor % max(1, raw_filter), stream_words))
                        if not fits or fc == fcols - 1:
                            filter_cursor += stream_words
                    out_tile = cols_used * t
                    accumulate = raw_ofmap <= self.ofmap_working_words
                    if not accumulate:
                        fetches.append(TileFetch("ofmap", 0, min(out_tile, raw_ofmap), is_write=True))
                        if fr > 0:
                            fetches.append(TileFetch("ofmap", 0, min(out_tile, raw_ofmap)))
                    elif fr == frows - 1:
                        fetches.append(TileFetch("ofmap", 0, min(out_tile, raw_ofmap), is_write=True))

                else:  # OUTPUT_STATIONARY
                    # Row-streamed filter slice reused across fc folds.
                    w_words = slice_words(raw_filter, rows_used, mapping.sr)
                    fits_w = w_words <= self.filter_working_words
                    if fc == 0 or not fits_w:
                        fetches.append(TileFetch("filter", filter_cursor % max(1, raw_filter), w_words))
                        if not fits_w or fc == fcols - 1:
                            filter_cursor += w_words
                    # Column-streamed ifmap slice: new per fc, refetched
                    # every fr pass unless the whole ifmap fits on-chip.
                    x_words = slice_words(raw_ifmap, cols_used, mapping.sc)
                    cached = raw_ifmap <= self.ifmap_working_words and fr > 0
                    if not cached:
                        fetches.append(TileFetch("ifmap", ifmap_cursor % max(1, raw_ifmap), x_words))
                        ifmap_cursor += x_words
                    # Outputs commit once.
                    fetches.append(
                        TileFetch("ofmap", 0, min(rows_used * cols_used, raw_ofmap), is_write=True)
                    )

                specs.append(
                    FoldSpec(
                        fold_row=fr,
                        fold_col=fc,
                        start_cycle=start,
                        cycles=per_fold,
                        rows_used=rows_used,
                        cols_used=cols_used,
                        fetches=tuple(fetches),
                    )
                )
                start += per_fold
        return specs

    @staticmethod
    def _dram_word_totals(specs: list[FoldSpec]) -> tuple[int, int, int, int]:
        ifmap = filt = owrite = oread = 0
        for spec in specs:
            for fetch in spec.fetches:
                if fetch.operand == "ifmap":
                    ifmap += fetch.num_words
                elif fetch.operand == "filter":
                    filt += fetch.num_words
                elif fetch.is_write:
                    owrite += fetch.num_words
                else:
                    oread += fetch.num_words
        return ifmap, filt, owrite, oread

    def _dram_totals_closed_form(
        self,
        shape: GemmShape,
        mapping: GemmMapping,
        frows: int,
        fcols: int,
        raw_ifmap: int,
        raw_filter: int,
        raw_ofmap: int,
    ) -> tuple[int, int, int, int]:
        """Fast-path totals used when fold specs are not materialised.

        Conservative approximation of :meth:`_build_fold_specs`: streams
        are charged once per reuse group, the stationary operand once.
        """
        df = self.dataflow
        accumulate = raw_ofmap <= self.ofmap_working_words
        if df is Dataflow.WEIGHT_STATIONARY:
            stream_slice = ceil_div(raw_ifmap, frows)
            fits = stream_slice <= self.ifmap_working_words
            ifmap = raw_ifmap if fits else raw_ifmap * fcols
            owrite = raw_ofmap if accumulate else raw_ofmap * frows
            oread = 0 if accumulate else raw_ofmap * (frows - 1)
            return ifmap, raw_filter, owrite, oread
        if df is Dataflow.INPUT_STATIONARY:
            stream_slice = ceil_div(raw_filter, frows)
            fits = stream_slice <= self.filter_working_words
            filt = raw_filter if fits else raw_filter * fcols
            owrite = raw_ofmap if accumulate else raw_ofmap * frows
            oread = 0 if accumulate else raw_ofmap * (frows - 1)
            return raw_ifmap, filt, owrite, oread
        w_slice = ceil_div(raw_filter, frows)
        fits_w = w_slice <= self.filter_working_words
        filt = raw_filter if fits_w else raw_filter * fcols
        ifmap = raw_ifmap if raw_ifmap <= self.ifmap_working_words else raw_ifmap * frows
        return ifmap, filt, raw_ofmap, 0
