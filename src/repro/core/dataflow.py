"""Dataflows, the Table-II GEMM mapping, and the paper's runtime equations.

The paper (Section III-A) models runtime for an ``R x C`` array mapping a
GEMM whose dimensions are assigned to ``(Sr, Sc, T)`` per dataflow
(Table II, for ``O[M, N] = W[M, K] @ X[K, N]``):

==================  ====  ====  ===
Dataflow             Sr    Sc    T
==================  ====  ====  ===
Input stationary     K     N     M
Weight stationary    K     M     N
Output stationary    M     N     K
==================  ====  ====  ===

Single-core / spatial partitioning runtime (Eq. 1)::

    cycles = (2R + C + T - 2) * ceil(Sr / R) * ceil(Sc / C)

Spatio-temporal partitioning additionally splits the temporal dimension
across the core grid (Eqs. 2 and 3); see
:func:`spatiotemporal1_runtime` / :func:`spatiotemporal2_runtime`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import MappingError
from repro.topology.layer import GemmShape
from repro.utils.math import ceil_div


class Dataflow(enum.Enum):
    """The three classic systolic dataflows."""

    OUTPUT_STATIONARY = "os"
    WEIGHT_STATIONARY = "ws"
    INPUT_STATIONARY = "is"

    @classmethod
    def parse(cls, text: str) -> "Dataflow":
        """Parse ``"os"``/``"ws"``/``"is"`` (case-insensitive)."""
        lowered = text.strip().lower()
        for member in cls:
            if member.value == lowered:
                return member
        raise MappingError(f"unknown dataflow {text!r}; expected one of os/ws/is")

    @property
    def stationary_operand(self) -> str:
        """Which operand stays resident in the PEs."""
        return {
            Dataflow.OUTPUT_STATIONARY: "ofmap",
            Dataflow.WEIGHT_STATIONARY: "filter",
            Dataflow.INPUT_STATIONARY: "ifmap",
        }[self]


@dataclass(frozen=True)
class GemmMapping:
    """A GEMM's dimensions assigned to spatial (Sr, Sc) and temporal (T) axes.

    ``sr_name``/``sc_name``/``t_name`` record which of M/N/K landed on
    each axis, which the trace engines use to build address patterns.
    """

    dataflow: Dataflow
    sr: int
    sc: int
    t: int
    sr_name: str
    sc_name: str
    t_name: str

    def __post_init__(self) -> None:
        for field_name in ("sr", "sc", "t"):
            value = getattr(self, field_name)
            if value < 1:
                raise MappingError(f"{field_name} must be >= 1, got {value}")

    def folds(self, rows: int, cols: int) -> int:
        """Number of spatial folds on an ``rows x cols`` array."""
        return ceil_div(self.sr, rows) * ceil_div(self.sc, cols)


def map_gemm(shape: GemmShape, dataflow: Dataflow) -> GemmMapping:
    """Assign GEMM dims to (Sr, Sc, T) per the paper's Table II."""
    if dataflow is Dataflow.INPUT_STATIONARY:
        return GemmMapping(dataflow, shape.k, shape.n, shape.m, "K", "N", "M")
    if dataflow is Dataflow.WEIGHT_STATIONARY:
        return GemmMapping(dataflow, shape.k, shape.m, shape.n, "K", "M", "N")
    return GemmMapping(dataflow, shape.m, shape.n, shape.k, "M", "N", "K")


def fold_cycles(rows: int, cols: int, t: int) -> int:
    """Cycles for one fold: ``2R + C + T - 2`` (preload, skew, stream, drain)."""
    if rows < 1 or cols < 1:
        raise MappingError(f"array dims must be >= 1, got {rows}x{cols}")
    if t < 1:
        raise MappingError(f"temporal extent must be >= 1, got {t}")
    return 2 * rows + cols + t - 2


def spatial_runtime(
    mapping: GemmMapping,
    rows: int,
    cols: int,
    partitions_row: int = 1,
    partitions_col: int = 1,
) -> int:
    """Eq. 1 — spatial partitioning runtime (Pr x Pc cores split Sr x Sc).

    With ``partitions_row == partitions_col == 1`` this is the plain
    single-core runtime.
    """
    sr_per_core = ceil_div(mapping.sr, partitions_row)
    sc_per_core = ceil_div(mapping.sc, partitions_col)
    folds = ceil_div(sr_per_core, rows) * ceil_div(sc_per_core, cols)
    return fold_cycles(rows, cols, mapping.t) * folds


def spatiotemporal1_runtime(
    mapping: GemmMapping,
    rows: int,
    cols: int,
    partitions_row: int = 1,
    partitions_col: int = 1,
) -> int:
    """Eq. 2 — partition Sr across Pr rows and T across Pc columns."""
    sr_per_core = ceil_div(mapping.sr, partitions_row)
    t_per_core = ceil_div(mapping.t, partitions_col)
    folds = ceil_div(sr_per_core, rows) * ceil_div(mapping.sc, cols)
    return fold_cycles(rows, cols, t_per_core) * folds


def spatiotemporal2_runtime(
    mapping: GemmMapping,
    rows: int,
    cols: int,
    partitions_row: int = 1,
    partitions_col: int = 1,
) -> int:
    """Eq. 3 — partition T across Pr rows and Sc across Pc columns."""
    t_per_core = ceil_div(mapping.t, partitions_row)
    sc_per_core = ceil_div(mapping.sc, partitions_col)
    folds = ceil_div(mapping.sr, rows) * ceil_div(sc_per_core, cols)
    return fold_cycles(rows, cols, t_per_core) * folds


def analytical_runtime(shape: GemmShape, dataflow: Dataflow, rows: int, cols: int) -> int:
    """Single-core runtime for a GEMM under a dataflow (Eq. 1, Pr=Pc=1)."""
    return spatial_runtime(map_gemm(shape, dataflow), rows, cols)


def mapping_efficiency(mapping: GemmMapping, rows: int, cols: int) -> float:
    """Average fraction of the array spatially occupied across folds.

    Edge folds map fewer than ``rows x cols`` useful elements; this is
    SCALE-Sim's "mapping efficiency" metric.
    """
    full_r, rem_r = divmod(mapping.sr, rows)
    full_c, rem_c = divmod(mapping.sc, cols)
    folds_r = full_r + (1 if rem_r else 0)
    folds_c = full_c + (1 if rem_c else 0)
    used = 0
    for fold_r in range(folds_r):
        r_used = rows if fold_r < full_r else rem_r or rows
        for fold_c in range(folds_c):
            c_used = cols if fold_c < full_c else rem_c or cols
            used += r_used * c_used
    return used / (folds_r * folds_c * rows * cols)


def compute_utilization(shape: GemmShape, dataflow: Dataflow, rows: int, cols: int) -> float:
    """MACs per PE-cycle: ``macs / (R * C * runtime)``.

    Unlike :func:`mapping_efficiency` this also charges pipeline fill and
    drain, so it is always strictly smaller for finite workloads.
    """
    runtime = analytical_runtime(shape, dataflow, rows, cols)
    return shape.macs / (rows * cols * runtime)
