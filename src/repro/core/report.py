"""Report emission (SCALE-Sim's COMPUTE / BANDWIDTH / DETAILED reports).

SCALE-Sim writes one CSV per report kind per run; we reproduce the same
trio plus v3's additions (which live in their feature packages):

* ``COMPUTE_REPORT.csv``   — cycles, stalls, utilisation per layer.
* ``BANDWIDTH_REPORT.csv`` — average SRAM/DRAM bandwidth per layer.
* ``DETAILED_ACCESS_REPORT.csv`` — per-operand SRAM/DRAM access counts.
* :func:`write_sweep_report` — one row per :mod:`repro.run.sweep` point.
"""

from __future__ import annotations

from pathlib import Path
from typing import TYPE_CHECKING

from repro.errors import ReportError
from repro.utils.csvio import write_csv

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.simulator import LayerResult
    from repro.run.sweep import SweepFailure, SweepResult


def write_compute_report(results: list["LayerResult"], out_dir: str | Path) -> Path:
    """Write COMPUTE_REPORT.csv; returns the file path."""
    header = [
        "LayerID",
        "LayerName",
        "Dataflow",
        "ComputeCycles",
        "StallCycles",
        "ColdStartCycles",
        "TotalCycles",
        "MappingEfficiency%",
        "ComputeUtilization%",
    ]
    rows = []
    for index, result in enumerate(results):
        rows.append(
            [
                index,
                result.layer_name,
                result.compute.dataflow.value,
                result.compute.compute_cycles,
                result.timeline.stall_cycles,
                result.timeline.cold_start_cycles,
                result.total_cycles,
                f"{result.compute.mapping_efficiency * 100:.2f}",
                f"{result.compute.compute_utilization * 100:.2f}",
            ]
        )
    return write_csv(Path(out_dir) / "COMPUTE_REPORT.csv", header, rows)


def write_bandwidth_report(results: list["LayerResult"], out_dir: str | Path) -> Path:
    """Write BANDWIDTH_REPORT.csv; returns the file path."""
    header = [
        "LayerID",
        "LayerName",
        "AvgIfmapSramBw(words/cycle)",
        "AvgFilterSramBw(words/cycle)",
        "AvgOfmapSramBw(words/cycle)",
        "AvgDramBw(words/cycle)",
        "DramBackpressureStall%",
        "AvgDramBwInclDrain(words/cycle)",
    ]
    rows = []
    for index, result in enumerate(results):
        cycles = max(1, result.total_cycles)
        compute = result.compute
        drained_cycles = max(1, result.total_cycles + result.drain_cycles)
        rows.append(
            [
                index,
                result.layer_name,
                f"{compute.ifmap_sram_reads / cycles:.4f}",
                f"{compute.filter_sram_reads / cycles:.4f}",
                f"{compute.ofmap_sram_writes / cycles:.4f}",
                f"{compute.total_dram_words / cycles:.4f}",
                f"{result.backpressure_stall_cycles / cycles * 100:.2f}",
                f"{compute.total_dram_words / drained_cycles:.4f}",
            ]
        )
    return write_csv(Path(out_dir) / "BANDWIDTH_REPORT.csv", header, rows)


def write_detailed_report(results: list["LayerResult"], out_dir: str | Path) -> Path:
    """Write DETAILED_ACCESS_REPORT.csv; returns the file path."""
    header = [
        "LayerID",
        "LayerName",
        "IfmapSramReads",
        "FilterSramReads",
        "OfmapSramWrites",
        "DramIfmapWords",
        "DramFilterWords",
        "DramOfmapWriteWords",
        "DramOfmapReadbackWords",
        "DramBackpressureStallCycles",
        "DramDrainCycles",
    ]
    rows = []
    for index, result in enumerate(results):
        compute = result.compute
        rows.append(
            [
                index,
                result.layer_name,
                compute.ifmap_sram_reads,
                compute.filter_sram_reads,
                compute.ofmap_sram_writes,
                compute.dram_ifmap_words,
                compute.dram_filter_words,
                compute.dram_ofmap_write_words,
                compute.dram_ofmap_readback_words,
                result.backpressure_stall_cycles,
                result.drain_cycles,
            ]
        )
    return write_csv(Path(out_dir) / "DETAILED_ACCESS_REPORT.csv", header, rows)


def write_sweep_report(results: list["SweepResult"], path: str | Path) -> Path:
    """Write one CSV row per sweep point, in grid order.

    Columns are the point id, the workload, one column per sweep axis,
    and the headline metrics.  Timing and cache provenance are left out
    on purpose: the file's bytes depend only on the simulated inputs, so
    serial and parallel sweeps of the same spec produce identical files.
    """
    if not results:
        raise ReportError(f"refusing to write an empty sweep report to {path}")
    axis_names = [name for name, _ in results[0].assignment]
    header = [
        "PointID",
        "Topology",
        *axis_names,
        "TotalCycles",
        "ComputeCycles",
        "StallCycles",
        "SparseComputeCycles",
        "EnergyMJ",
        "EdP",
    ]
    rows = []
    for result in results:
        assignment = result.assignment_dict
        if list(assignment) != axis_names:
            raise ReportError(
                f"sweep point {result.index} has axes {list(assignment)}, "
                f"expected {axis_names}"
            )
        rows.append(
            [
                result.index,
                result.topology_name,
                *[assignment[name] for name in axis_names],
                result.total_cycles,
                result.total_compute_cycles,
                result.total_stall_cycles,
                result.sparse_compute_cycles,
                f"{result.energy_mj:.6f}",
                f"{result.edp:.6f}",
            ]
        )
    return write_csv(path, header, rows)


def write_layout_sweep_report(results: list["SweepResult"], path: str | Path) -> Path:
    """Write one CSV row per (sweep point, layer) layout evaluation.

    The sweep counterpart of the per-run ``LAYOUT_REPORT.csv``: sweeps
    whose configs enable the layout study carry per-layer
    :class:`~repro.layout.integrate.LayoutEvalResult` rows on every
    point (computed through the trace fan-out when points differ only
    in ``layout.*`` axes).  Like :func:`write_sweep_report`, the bytes
    depend only on the simulated inputs.
    """
    header = [
        "PointID",
        "LayerID",
        "LayerName",
        "Dataflow",
        "NumBanks",
        "TotalBandwidth",
        "Evaluator",
        "CyclesEvaluated",
        "LayoutCycles",
        "BandwidthCycles",
        "Slowdown",
    ]
    rows = []
    for result in results:
        for layer_id, layout in enumerate(result.layout_results):
            rows.append(
                [
                    result.index,
                    layer_id,
                    layout.layer_name,
                    layout.dataflow.value,
                    layout.num_banks,
                    layout.total_bandwidth,
                    layout.evaluator,
                    layout.cycles_evaluated,
                    layout.layout_cycles,
                    layout.bandwidth_cycles,
                    f"{layout.slowdown:+.6f}",
                ]
            )
    if not rows:
        raise ReportError(
            f"refusing to write an empty layout sweep report to {path}"
        )
    return write_csv(path, header, rows)


def _single_line(text: str, limit: int = 600) -> str:
    """Flatten a traceback for a CSV cell, keeping its *tail*.

    The last frames and the exception line are the informative part of
    a traceback; everything above them is scaffolding, so truncation
    drops the head.
    """
    flat = " | ".join(part for part in text.strip().splitlines() if part.strip())
    if len(flat) > limit:
        flat = "..." + flat[-limit:]
    return flat


def write_failure_report(failures: list["SweepFailure"], path: str | Path) -> Path:
    """Write one CSV row per failed sweep point (``degrade`` policy).

    The companion file of :func:`write_sweep_report`: a degraded sweep
    writes its computable points to the normal report (those rows stay
    byte-identical to a fault-free run) and the rest here — the point's
    identity and axis assignment, how many attempts it burned, and the
    tail of its last traceback.  An empty failure list writes a
    header-only file, so the file's presence alone never has to be
    interpreted.
    """
    header = [
        "PointID",
        "Topology",
        "Assignment",
        "Attempts",
        "ErrorClass",
        "Error",
    ]
    rows = []
    for failure in failures:
        assignment = " ".join(
            f"{name}={value}" for name, value in failure.assignment
        )
        rows.append(
            [
                failure.index,
                failure.topology_name,
                assignment,
                failure.attempts,
                failure.error_class,
                _single_line(failure.traceback_text or failure.message),
            ]
        )
    return write_csv(path, header, rows)
