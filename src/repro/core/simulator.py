"""Single-core end-to-end simulator: compute + memory (+ DRAM).

:class:`Simulator` wires the compute model to a memory backend chosen by
the configuration:

* ``dram.enabled == False`` — v2 semantics: ideal-bandwidth interface.
* ``dram.enabled == True`` — v3 semantics: RamulatorLite with finite
  read/write request queues; stalls appear whenever a fold's data is not
  resident in the double buffer in time.

The run is split at an explicit seam (see DESIGN.md "The DRAM
fan-out"):

* the **compute plan** (:class:`ComputePlan`, built by
  :meth:`Simulator.plan`) — per-layer fold schedules plus closed-form
  stats, a pure function of (topology, array, dataflow, SRAM sizes)
  that no ``dram.*`` knob can affect.  Plans are memoized per process
  (:func:`layer_compute`), so repeated layers and repeated sweep points
  never rebuild identical schedules;
* the **stall resolution** (:func:`resolve_plan`) — one walk of the
  plan's fold schedules against one concrete memory backend.  This is
  the only part that differs across a ``dram.*`` grid, which is what
  :func:`repro.dram.fanout.simulate_many_dram` exploits to fan a single
  plan across many backends.

Layout slowdown and energy are layered on top by their feature packages
(:mod:`repro.layout`, :mod:`repro.energy`) and the high-level driver in
:mod:`repro.run.runner`.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from functools import lru_cache
from pathlib import Path

from repro.config.system import ArchitectureConfig, SystemConfig
from repro.core.compute_sim import ComputeSimulator, LayerComputeResult
from repro.core.dataflow import Dataflow
from repro.core.report import (
    write_bandwidth_report,
    write_compute_report,
    write_detailed_report,
)
from repro.dram.backend import DramBackend, make_ramulator
from repro.dram.dram_sim import DramStats
from repro.errors import ConfigError
from repro.memory.double_buffer import (
    DoubleBufferMemory,
    IdealBandwidthBackend,
    MemoryBackend,
    MemoryTimeline,
)
from repro.store.artifact_store import active_store, canonical_artifact, content_address
from repro.topology.layer import Layer
from repro.topology.topology import Topology


@dataclass
class LayerResult:
    """One layer's resolved compute + memory outcome.

    ``backpressure_stall_cycles`` counts front-end issue cycles lost to
    full request queues while this layer's traffic was in flight;
    ``drain_cycles`` is how far the layer's last in-flight transaction
    (typically writebacks) completed past the layer's compute end.
    """

    layer_name: str
    compute: LayerComputeResult
    timeline: MemoryTimeline
    backpressure_stall_cycles: int = 0
    drain_cycles: int = 0

    @property
    def total_cycles(self) -> int:
        """End-to-end cycles including stalls and cold start."""
        return self.timeline.total_cycles

    @property
    def compute_cycles(self) -> int:
        """Pure compute cycles (Eq. 1)."""
        return self.compute.compute_cycles

    @property
    def stall_cycles(self) -> int:
        """Mid-run stalls (excludes the cold-start fill)."""
        return self.timeline.stall_cycles

    @property
    def stall_fraction(self) -> float:
        """Stall + cold-start cycles over total cycles."""
        return self.timeline.stall_fraction


@dataclass
class RunResult:
    """Results for a whole topology."""

    run_name: str
    topology_name: str
    layers: list[LayerResult] = field(default_factory=list)
    dram_stats: DramStats | None = None

    @property
    def total_cycles(self) -> int:
        """Sum of per-layer end-to-end cycles."""
        return sum(layer.total_cycles for layer in self.layers)

    @property
    def total_compute_cycles(self) -> int:
        """Sum of per-layer compute cycles."""
        return sum(layer.compute_cycles for layer in self.layers)

    @property
    def total_stall_cycles(self) -> int:
        """Sum of per-layer stall + cold-start cycles."""
        return sum(
            layer.stall_cycles + layer.timeline.cold_start_cycles for layer in self.layers
        )

    @property
    def total_macs(self) -> int:
        """Dense MAC count across layers."""
        return sum(layer.compute.macs for layer in self.layers)

    def layer_named(self, name: str) -> LayerResult:
        """Look up one layer's result."""
        for layer in self.layers:
            if layer.layer_name == name:
                return layer
        raise KeyError(f"no layer {name!r} in run {self.run_name!r}")

    def write_reports(self, out_dir: str | Path) -> list[Path]:
        """Emit the three classic SCALE-Sim CSV reports."""
        out = Path(out_dir) / self.run_name
        return [
            write_compute_report(self.layers, out),
            write_bandwidth_report(self.layers, out),
            write_detailed_report(self.layers, out),
        ]


@dataclass(frozen=True)
class ComputePlan:
    """DRAM-independent compute schedules for one topology.

    The plan is the fan-out artifact of the memory system (the fourth
    engine-seam instance, after ``FoldDemand`` for layouts): per-layer
    :class:`LayerComputeResult` records — fold schedules, fetch plans
    and closed-form stats — built once and resolvable against any
    number of memory backends via :func:`resolve_plan` /
    :func:`repro.dram.fanout.simulate_many_dram`.

    ``signature`` pins the compute-relevant architecture knobs (array
    shape, dataflow, SRAM working sizes); a config whose signature
    differs would produce a different fold schedule and must not reuse
    this plan.
    """

    topology_name: str
    signature: tuple
    computes: tuple[LayerComputeResult, ...]
    #: Content address of (topology, signature) under the artifact-store
    #: schema — the key downstream per-plan artifacts (shared decoded
    #: line streams) hang off.  Identity metadata, not plan content, so
    #: it never enters equality; empty for hand-built plans, which then
    #: simply skip the store.
    store_key: str = field(default="", compare=False, repr=False)

    @property
    def num_layers(self) -> int:
        """Layers in the planned topology."""
        return len(self.computes)

    @property
    def total_folds(self) -> int:
        """Fold schedules across all layers."""
        return sum(len(compute.fold_specs) for compute in self.computes)


def plan_signature(arch: ArchitectureConfig) -> tuple:
    """The compute-schedule identity of an architecture config.

    Two configs with equal signatures produce bit-identical
    :class:`ComputePlan` schedules for any topology — ``dram.*`` (and
    every other non-arch section) never enters.
    """
    return (
        arch.array_rows,
        arch.array_cols,
        Dataflow.parse(arch.dataflow),
        arch.ifmap_sram_words(),
        arch.filter_sram_words(),
        arch.ofmap_sram_words(),
    )


def layer_compute_store_key(
    layer: Layer,
    dataflow: Dataflow,
    array_rows: int,
    array_cols: int,
    ifmap_sram_words: int,
    filter_sram_words: int,
    ofmap_sram_words: int,
) -> str:
    """Artifact-store content address of one layer's compute schedule.

    Exactly the ``plan_signature`` knobs plus the layer itself — the
    full input set of :func:`layer_compute` — so equal keys imply
    bit-identical schedules across processes and sessions.
    """
    return content_address(
        "layer_compute",
        {
            "layer": canonical_artifact(layer),
            "dataflow": str(dataflow),
            "array_rows": array_rows,
            "array_cols": array_cols,
            "ifmap_sram_words": ifmap_sram_words,
            "filter_sram_words": filter_sram_words,
            "ofmap_sram_words": ofmap_sram_words,
        },
    )


def _layer_compute_uncached(
    layer: Layer,
    dataflow: Dataflow,
    array_rows: int,
    array_cols: int,
    ifmap_sram_words: int,
    filter_sram_words: int,
    ofmap_sram_words: int,
) -> LayerComputeResult:
    """LRU-miss path: consult the artifact store, then really schedule."""
    store = active_store()
    if store is not None:
        key = layer_compute_store_key(
            layer,
            dataflow,
            array_rows,
            array_cols,
            ifmap_sram_words,
            filter_sram_words,
            ofmap_sram_words,
        )
        cached = store.get("layer_compute", key)
        if cached is not None:
            return cached  # type: ignore[return-value]
    result = ComputeSimulator(
        array_rows=array_rows,
        array_cols=array_cols,
        dataflow=dataflow,
        ifmap_sram_words=ifmap_sram_words,
        filter_sram_words=filter_sram_words,
        ofmap_sram_words=ofmap_sram_words,
    ).simulate_layer(layer)
    if store is not None:
        store.put("layer_compute", key, result)
    return result


#: Default in-process LRU size for memoized layer schedules; override
#: with the ``REPRO_PLAN_CACHE_SIZE`` environment variable (store-backed
#: workloads with many distinct layers thrash 64 entries) or at runtime
#: via :func:`set_compute_plan_cache_size`.
DEFAULT_PLAN_CACHE_SIZE = 64
_PLAN_CACHE_SIZE_ENV = "REPRO_PLAN_CACHE_SIZE"


def _initial_plan_cache_size() -> int:
    raw = os.environ.get(_PLAN_CACHE_SIZE_ENV)
    if raw is None:
        return DEFAULT_PLAN_CACHE_SIZE
    try:
        size = int(raw)
    except ValueError:
        return DEFAULT_PLAN_CACHE_SIZE
    return size if size >= 1 else DEFAULT_PLAN_CACHE_SIZE


def _make_layer_compute(maxsize: int | None):
    cached = lru_cache(maxsize=maxsize)(_layer_compute_uncached)
    cached.__doc__ = (
        """Memoized per-layer compute simulation (fold schedule included).

    Keyed on the layer plus every knob that can change the schedule, so
    repeated layers across sweep points — and the single-layer
    topologies of the fig9/fig10-style studies — are planned once per
    worker process.  On an LRU miss the active artifact store (when one
    is installed — see :mod:`repro.store`) is consulted before any
    scheduling happens, so a cold process loads plans instead of
    re-scheduling.  The returned record is shared between callers and
    must be treated as immutable (consumers that need to drop
    ``fold_specs`` copy via ``dataclasses.replace``).
    """
    )
    return cached


#: The memoized entry point; rebound (not wrapped) by
#: :func:`set_compute_plan_cache_size` so ``cache_info()`` /
#: ``cache_clear()`` keep working on the public name.
layer_compute = _make_layer_compute(_initial_plan_cache_size())


def compute_plan_cache_size() -> int | None:
    """Current LRU capacity of the per-layer plan cache (None = unbounded)."""
    return layer_compute.cache_info().maxsize


def set_compute_plan_cache_size(maxsize: int | None) -> None:
    """Resize the per-layer plan LRU (dropping every memoized plan).

    ``None`` makes the cache unbounded; otherwise ``maxsize`` must be
    >= 1.  Store-backed sweeps over many distinct layers raise this
    above the default so warm runs stay in memory after the first disk
    load.
    """
    global layer_compute
    if maxsize is not None and maxsize < 1:
        raise ConfigError(f"plan cache size must be >= 1 or None, got {maxsize}")
    layer_compute = _make_layer_compute(maxsize)


def clear_compute_plan_cache() -> None:
    """Drop every memoized layer plan (tests and timing harnesses)."""
    layer_compute.cache_clear()


def plan_store_key(topology: Topology, arch: ArchitectureConfig) -> str:
    """Artifact-store content address of a whole topology's compute plan.

    Hashes the canonical topology plus :func:`plan_signature`, i.e. the
    complete input set of :meth:`Simulator.plan` — per-plan artifacts
    (the DRAM fan-out's decoded line streams) key off this.
    """
    return content_address(
        "compute_plan",
        {
            "topology": [canonical_artifact(layer) for layer in topology],
            "signature": [str(part) for part in plan_signature(arch)],
        },
    )


def make_memory_backend(config: SystemConfig) -> MemoryBackend:
    """Fresh memory backend for one config (state must not leak).

    The DRAM path routes line batches through the engine the config
    selects (``dram.engine``): the vectorized batched engine by
    default, or the scalar reference engine for cross-validation.
    DRAM statistics are read back through the backend's seam
    (:meth:`DramBackend.dram_stats`), never from the
    :class:`RamulatorLite` instance directly — the batched engine
    keeps its own state.
    """
    if config.dram.enabled:
        dram_cfg = config.dram
        return DramBackend(
            make_ramulator(dram_cfg),
            read_queue_entries=dram_cfg.read_queue_entries,
            write_queue_entries=dram_cfg.write_queue_entries,
            word_bytes=config.arch.word_bytes,
            max_issue_per_cycle=dram_cfg.issue_per_cycle,
            engine=dram_cfg.engine,
        )
    return IdealBandwidthBackend(config.arch.bandwidth_words)


def resolve_plan(
    plan: ComputePlan,
    backend: MemoryBackend,
    run_name: str,
    keep_timings: bool = False,
    line_batches: list[list] | None = None,
) -> RunResult:
    """Per-config stall resolution: walk one plan against one backend.

    ``line_batches`` optionally supplies each layer's fold traffic as
    prebuilt :class:`~repro.dram.engine.LineRequestBatch` lists (outer
    list per layer, aligned with ``plan.computes``), letting a fan-out
    share the fetch-to-line chop and decoded issue order across
    configs; requires a backend exposing ``complete_batch`` (the DRAM
    backend).  Results are bit-identical either way.
    """
    memory = DoubleBufferMemory(backend)
    result = RunResult(run_name=run_name, topology_name=plan.topology_name)
    clock = 0
    for index, compute in enumerate(plan.computes):
        stalls_before = backend.stall_cycles_from_backpressure
        timeline = memory.run(
            compute.fold_specs,
            keep_timings=keep_timings,
            start_cycle=clock,
            line_batches=line_batches[index] if line_batches is not None else None,
        )
        clock += timeline.total_cycles
        result.layers.append(
            LayerResult(
                layer_name=compute.layer_name,
                compute=compute,
                timeline=timeline,
                backpressure_stall_cycles=backend.stall_cycles_from_backpressure
                - stalls_before,
                drain_cycles=max(0, backend.drain() - clock),
            )
        )
    if isinstance(backend, DramBackend):
        result.dram_stats = backend.dram_stats()
    return result


class Simulator:
    """End-to-end single-core simulator for a :class:`SystemConfig`."""

    def __init__(self, config: SystemConfig) -> None:
        self.config = config
        arch = config.arch
        self.compute_sim = ComputeSimulator(
            array_rows=arch.array_rows,
            array_cols=arch.array_cols,
            dataflow=arch.dataflow,
            ifmap_sram_words=arch.ifmap_sram_words(),
            filter_sram_words=arch.filter_sram_words(),
            ofmap_sram_words=arch.ofmap_sram_words(),
        )

    def _make_backend(self) -> MemoryBackend:
        """Fresh backend per run (see :func:`make_memory_backend`)."""
        return make_memory_backend(self.config)

    def _layer_compute(self, layer: Layer) -> LayerComputeResult:
        """Memoized per-layer schedule for this simulator's architecture."""
        arch = self.config.arch
        return layer_compute(
            layer,
            self.compute_sim.dataflow,
            arch.array_rows,
            arch.array_cols,
            arch.ifmap_sram_words(),
            arch.filter_sram_words(),
            arch.ofmap_sram_words(),
        )

    def plan(self, topology: Topology) -> ComputePlan:
        """Build the DRAM-independent compute plan for ``topology``.

        Each layer's schedule comes from the per-process LRU — which
        itself falls back to the active artifact store before
        re-scheduling — and the plan carries its content address so
        downstream per-plan artifacts can persist too.
        """
        return ComputePlan(
            topology_name=topology.name,
            signature=plan_signature(self.config.arch),
            computes=tuple(self._layer_compute(layer) for layer in topology),
            store_key=plan_store_key(topology, self.config.arch),
        )

    def run(self, topology: Topology, keep_timings: bool = False) -> RunResult:
        """Simulate every layer of ``topology`` in order."""
        return resolve_plan(
            self.plan(topology),
            self._make_backend(),
            self.config.run.run_name,
            keep_timings=keep_timings,
        )

    def run_layer(self, layer: object, keep_timings: bool = False) -> LayerResult:
        """Simulate a single layer with a fresh backend."""
        backend = self._make_backend()
        memory = DoubleBufferMemory(backend)
        compute = self._layer_compute(layer)  # type: ignore[arg-type]
        timeline = memory.run(compute.fold_specs, keep_timings=keep_timings)
        return LayerResult(
            layer_name=compute.layer_name,
            compute=compute,
            timeline=timeline,
            backpressure_stall_cycles=backend.stall_cycles_from_backpressure,
            drain_cycles=max(0, backend.drain() - timeline.total_cycles),
        )
