"""Single-core end-to-end simulator: compute + memory (+ DRAM).

:class:`Simulator` wires the compute model to a memory backend chosen by
the configuration:

* ``dram.enabled == False`` — v2 semantics: ideal-bandwidth interface.
* ``dram.enabled == True`` — v3 semantics: RamulatorLite with finite
  read/write request queues; stalls appear whenever a fold's data is not
  resident in the double buffer in time.

Layout slowdown and energy are layered on top by their feature packages
(:mod:`repro.layout`, :mod:`repro.energy`) and the high-level driver in
:mod:`repro.run.runner`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.config.system import SystemConfig
from repro.core.compute_sim import ComputeSimulator, LayerComputeResult
from repro.core.report import (
    write_bandwidth_report,
    write_compute_report,
    write_detailed_report,
)
from repro.dram.backend import DramBackend
from repro.dram.dram_sim import DramStats, RamulatorLite
from repro.memory.double_buffer import (
    DoubleBufferMemory,
    IdealBandwidthBackend,
    MemoryBackend,
    MemoryTimeline,
)
from repro.topology.topology import Topology


@dataclass
class LayerResult:
    """One layer's resolved compute + memory outcome.

    ``backpressure_stall_cycles`` counts front-end issue cycles lost to
    full request queues while this layer's traffic was in flight;
    ``drain_cycles`` is how far the layer's last in-flight transaction
    (typically writebacks) completed past the layer's compute end.
    """

    layer_name: str
    compute: LayerComputeResult
    timeline: MemoryTimeline
    backpressure_stall_cycles: int = 0
    drain_cycles: int = 0

    @property
    def total_cycles(self) -> int:
        """End-to-end cycles including stalls and cold start."""
        return self.timeline.total_cycles

    @property
    def compute_cycles(self) -> int:
        """Pure compute cycles (Eq. 1)."""
        return self.compute.compute_cycles

    @property
    def stall_cycles(self) -> int:
        """Mid-run stalls (excludes the cold-start fill)."""
        return self.timeline.stall_cycles

    @property
    def stall_fraction(self) -> float:
        """Stall + cold-start cycles over total cycles."""
        return self.timeline.stall_fraction


@dataclass
class RunResult:
    """Results for a whole topology."""

    run_name: str
    topology_name: str
    layers: list[LayerResult] = field(default_factory=list)
    dram_stats: DramStats | None = None

    @property
    def total_cycles(self) -> int:
        """Sum of per-layer end-to-end cycles."""
        return sum(layer.total_cycles for layer in self.layers)

    @property
    def total_compute_cycles(self) -> int:
        """Sum of per-layer compute cycles."""
        return sum(layer.compute_cycles for layer in self.layers)

    @property
    def total_stall_cycles(self) -> int:
        """Sum of per-layer stall + cold-start cycles."""
        return sum(
            layer.stall_cycles + layer.timeline.cold_start_cycles for layer in self.layers
        )

    @property
    def total_macs(self) -> int:
        """Dense MAC count across layers."""
        return sum(layer.compute.macs for layer in self.layers)

    def layer_named(self, name: str) -> LayerResult:
        """Look up one layer's result."""
        for layer in self.layers:
            if layer.layer_name == name:
                return layer
        raise KeyError(f"no layer {name!r} in run {self.run_name!r}")

    def write_reports(self, out_dir: str | Path) -> list[Path]:
        """Emit the three classic SCALE-Sim CSV reports."""
        out = Path(out_dir) / self.run_name
        return [
            write_compute_report(self.layers, out),
            write_bandwidth_report(self.layers, out),
            write_detailed_report(self.layers, out),
        ]


class Simulator:
    """End-to-end single-core simulator for a :class:`SystemConfig`."""

    def __init__(self, config: SystemConfig) -> None:
        self.config = config
        arch = config.arch
        self.compute_sim = ComputeSimulator(
            array_rows=arch.array_rows,
            array_cols=arch.array_cols,
            dataflow=arch.dataflow,
            ifmap_sram_words=arch.ifmap_sram_words(),
            filter_sram_words=arch.filter_sram_words(),
            ofmap_sram_words=arch.ofmap_sram_words(),
        )
    def _make_backend(self) -> MemoryBackend:
        """Fresh backend per run (bank/queue state must not leak).

        The DRAM path routes line batches through the engine the config
        selects (``dram.engine``): the vectorized batched engine by
        default, or the scalar reference engine for cross-validation.
        DRAM statistics are read back through the backend's seam
        (:meth:`DramBackend.dram_stats`), never from the
        :class:`RamulatorLite` instance directly — the batched engine
        keeps its own state.
        """
        if self.config.dram.enabled:
            dram_cfg = self.config.dram
            dram = RamulatorLite(
                technology=dram_cfg.technology,
                channels=dram_cfg.channels,
                ranks_per_channel=dram_cfg.ranks_per_channel,
                banks_per_rank=dram_cfg.banks_per_rank,
                capacity_gb_per_channel=dram_cfg.capacity_gb_per_channel,
                address_mapping=dram_cfg.address_mapping,
            )
            return DramBackend(
                dram,
                read_queue_entries=dram_cfg.read_queue_entries,
                write_queue_entries=dram_cfg.write_queue_entries,
                word_bytes=self.config.arch.word_bytes,
                max_issue_per_cycle=dram_cfg.issue_per_cycle,
                engine=dram_cfg.engine,
            )
        return IdealBandwidthBackend(self.config.arch.bandwidth_words)

    def run(self, topology: Topology, keep_timings: bool = False) -> RunResult:
        """Simulate every layer of ``topology`` in order."""
        backend = self._make_backend()
        memory = DoubleBufferMemory(backend)
        result = RunResult(run_name=self.config.run.run_name, topology_name=topology.name)
        clock = 0
        for layer in topology:
            compute = self.compute_sim.simulate_layer(layer)
            stalls_before = backend.stall_cycles_from_backpressure
            timeline = memory.run(
                compute.fold_specs, keep_timings=keep_timings, start_cycle=clock
            )
            clock += timeline.total_cycles
            result.layers.append(
                LayerResult(
                    layer_name=layer.name,
                    compute=compute,
                    timeline=timeline,
                    backpressure_stall_cycles=backend.stall_cycles_from_backpressure
                    - stalls_before,
                    drain_cycles=max(0, backend.drain() - clock),
                )
            )
        if isinstance(backend, DramBackend):
            result.dram_stats = backend.dram_stats()
        return result

    def run_layer(self, layer: object, keep_timings: bool = False) -> LayerResult:
        """Simulate a single layer with a fresh backend."""
        backend = self._make_backend()
        memory = DoubleBufferMemory(backend)
        compute = self.compute_sim.simulate_layer(layer)  # type: ignore[arg-type]
        timeline = memory.run(compute.fold_specs, keep_timings=keep_timings)
        return LayerResult(
            layer_name=compute.layer_name,
            compute=compute,
            timeline=timeline,
            backpressure_stall_cycles=backend.stall_cycles_from_backpressure,
            drain_cycles=max(0, backend.drain() - timeline.total_cycles),
        )
