"""Cycle-accurate systolic-array core (the SCALE-Sim v2 compute model)."""

from repro.core.dataflow import (
    Dataflow,
    GemmMapping,
    analytical_runtime,
    map_gemm,
    spatial_runtime,
    spatiotemporal1_runtime,
    spatiotemporal2_runtime,
)
from repro.core.compute_sim import ComputeSimulator, FoldSpec, LayerComputeResult
from repro.core.simulator import LayerResult, RunResult, Simulator

__all__ = [
    "Dataflow",
    "GemmMapping",
    "analytical_runtime",
    "map_gemm",
    "spatial_runtime",
    "spatiotemporal1_runtime",
    "spatiotemporal2_runtime",
    "ComputeSimulator",
    "FoldSpec",
    "LayerComputeResult",
    "LayerResult",
    "RunResult",
    "Simulator",
]
