"""Cycle-accurate demand-trace generation per dataflow.

For each fold of the mapped GEMM the engine emits three demand matrices
(rows = cycles within the fold, value -1 = no request that cycle):

* ``row_port_demand``  (L x R) — the operand streaming in via the array's
  row ports (X for WS, W for IS and OS).
* ``col_port_demand``  (L x C) — the stationary operand's preload reads
  (WS/IS) or the column-streamed X operand (OS).
* ``out_port_demand``  (L x C) — ofmap writes leaving via the columns.

The fold length is exactly ``2R + C + T - 2`` cycles, matching the
paper's Eq. 1, with phases:

* WS/IS — preload ``R`` cycles; stream with row skew occupying
  ``T + R - 1`` cycles; column drain skew adding ``C - 1``.
* OS — stream with row/column skew; per-column drain of R partials with
  column skew ``C - 1``.

Generating full traces costs O(cycles x ports) memory, so callers use
them for validation, layout analysis and energy action counting on
bounded layers; aggregate statistics come from
:mod:`repro.core.compute_sim` which never materialises traces.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass

import numpy as np

from repro.core.dataflow import Dataflow, GemmMapping, fold_cycles, map_gemm
from repro.core.operand_matrix import FILTER_BASE, OFMAP_BASE, OperandMatrices
from repro.errors import SimulationError
from repro.utils.math import ceil_div

NO_REQUEST = -1


@dataclass(frozen=True)
class FoldTrace:
    """Cycle-accurate demand matrices for one fold."""

    fold_row: int
    fold_col: int
    start_cycle: int
    cycles: int
    rows_used: int
    cols_used: int
    row_port_demand: np.ndarray  # (cycles, R)
    col_port_demand: np.ndarray  # (cycles, C)
    out_port_demand: np.ndarray  # (cycles, C)

    @property
    def ifmap_reads(self) -> int:
        """Number of ifmap SRAM read requests in this fold."""
        return self._count_region(0, FILTER_BASE)

    @property
    def filter_reads(self) -> int:
        """Number of filter SRAM read requests in this fold."""
        return self._count_region(FILTER_BASE, OFMAP_BASE)

    @property
    def ofmap_writes(self) -> int:
        """Number of ofmap SRAM write requests in this fold."""
        return int(np.count_nonzero(self.out_port_demand != NO_REQUEST))

    def _count_region(self, lo: int, hi: int) -> int:
        total = 0
        for matrix in (self.row_port_demand, self.col_port_demand):
            mask = (matrix >= lo) & (matrix < hi)
            total += int(np.count_nonzero(mask))
        return total


class TraceEngine:
    """Generates per-fold demand traces for one layer on one array."""

    def __init__(
        self,
        operands: OperandMatrices,
        dataflow: Dataflow,
        array_rows: int,
        array_cols: int,
    ) -> None:
        if array_rows < 1 or array_cols < 1:
            raise SimulationError(f"bad array {array_rows}x{array_cols}")
        self.operands = operands
        self.dataflow = dataflow
        self.rows = array_rows
        self.cols = array_cols
        self.mapping: GemmMapping = map_gemm(operands.shape, dataflow)

    @property
    def folds_row(self) -> int:
        """Folds along the Sr axis."""
        return ceil_div(self.mapping.sr, self.rows)

    @property
    def folds_col(self) -> int:
        """Folds along the Sc axis."""
        return ceil_div(self.mapping.sc, self.cols)

    @property
    def total_cycles(self) -> int:
        """Total runtime: folds x per-fold cycles (Eq. 1)."""
        return self.folds_row * self.folds_col * fold_cycles(self.rows, self.cols, self.mapping.t)

    def fold_traces(self) -> Iterator[FoldTrace]:
        """Yield the demand trace of every fold, in execution order."""
        length = fold_cycles(self.rows, self.cols, self.mapping.t)
        start = 0
        for fold_r in range(self.folds_row):
            for fold_c in range(self.folds_col):
                yield self._one_fold(fold_r, fold_c, start, length)
                start += length

    def _one_fold(self, fold_r: int, fold_c: int, start: int, length: int) -> FoldTrace:
        sr0 = fold_r * self.rows
        sc0 = fold_c * self.cols
        rows_used = min(self.rows, self.mapping.sr - sr0)
        cols_used = min(self.cols, self.mapping.sc - sc0)
        t = self.mapping.t

        row_port = np.full((length, self.rows), NO_REQUEST, dtype=np.int64)
        col_port = np.full((length, self.cols), NO_REQUEST, dtype=np.int64)
        out_port = np.full((length, self.cols), NO_REQUEST, dtype=np.int64)

        if self.dataflow is Dataflow.OUTPUT_STATIONARY:
            self._fill_os(row_port, col_port, out_port, sr0, sc0, rows_used, cols_used, t)
        elif self.dataflow is Dataflow.WEIGHT_STATIONARY:
            self._fill_ws(row_port, col_port, out_port, sr0, sc0, rows_used, cols_used, t)
        else:
            self._fill_is(row_port, col_port, out_port, sr0, sc0, rows_used, cols_used, t)

        return FoldTrace(
            fold_row=fold_r,
            fold_col=fold_c,
            start_cycle=start,
            cycles=length,
            rows_used=rows_used,
            cols_used=cols_used,
            row_port_demand=row_port,
            col_port_demand=col_port,
            out_port_demand=out_port,
        )

    # ------------------------------------------------------------- dataflows

    @staticmethod
    def _fill_skewed(port: np.ndarray, data: np.ndarray, start: int) -> None:
        """Write ``data[j]`` into ``port[start + j + arange(L), j]``.

        Every dataflow's streaming/drain phase is the same diagonal skew:
        lane ``j`` carries ``data[j, :]`` starting one cycle after lane
        ``j - 1``.  The skew is a *sheared view* of the port matrix —
        element (j, i) lives at flat offset ``(start + j + i) * C + j``,
        i.e. strides ``(C + 1, C)`` — so one strided block assignment
        replaces the per-lane Python loop.  Distinct (j, i) map to
        distinct offsets (offsets with equal j + i differ by j < C), so
        the view aliases nothing.
        """
        lanes, length = data.shape
        if not lanes or not length:
            return
        row_stride, col_stride = port.strides
        sheared = np.lib.stride_tricks.as_strided(
            port[start:],
            shape=(lanes, length),
            strides=(row_stride + col_stride, row_stride),
        )
        sheared[:, :] = data

    def _fill_ws(
        self,
        row_port: np.ndarray,
        col_port: np.ndarray,
        out_port: np.ndarray,
        sr0: int,
        sc0: int,
        rows_used: int,
        cols_used: int,
        t: int,
    ) -> None:
        """Weight stationary: Sr=K, Sc=M; W^T preloaded, X streamed."""
        filt = self.operands.filter  # (M, K)
        ifmap = self.operands.ifmap  # (K, N)
        ofmap = self.operands.ofmap  # (M, N)
        # Preload: cycle p pushes stationary row p = W[sc0:sc0+cols, sr0+p].
        col_port[:rows_used, :cols_used] = filt[
            sc0 : sc0 + cols_used, sr0 : sr0 + rows_used
        ].T
        # Stream: row r consumes X[sr0 + r, n] at cycle R + n + r.
        self._fill_skewed(row_port, ifmap[sr0 : sr0 + rows_used, :t], self.rows)
        # Drain: column c emits O[sc0 + c, n] at cycle 2R - 1 + c + n.
        self._fill_skewed(out_port, ofmap[sc0 : sc0 + cols_used, :t], 2 * self.rows - 1)

    def _fill_is(
        self,
        row_port: np.ndarray,
        col_port: np.ndarray,
        out_port: np.ndarray,
        sr0: int,
        sc0: int,
        rows_used: int,
        cols_used: int,
        t: int,
    ) -> None:
        """Input stationary: Sr=K, Sc=N; X preloaded, W streamed."""
        filt = self.operands.filter  # (M, K)
        ifmap = self.operands.ifmap  # (K, N)
        ofmap = self.operands.ofmap  # (M, N)
        col_port[:rows_used, :cols_used] = ifmap[
            sr0 : sr0 + rows_used, sc0 : sc0 + cols_used
        ]
        self._fill_skewed(row_port, filt[:t, sr0 : sr0 + rows_used].T, self.rows)
        self._fill_skewed(out_port, ofmap[:t, sc0 : sc0 + cols_used].T, 2 * self.rows - 1)

    def _fill_os(
        self,
        row_port: np.ndarray,
        col_port: np.ndarray,
        out_port: np.ndarray,
        sr0: int,
        sc0: int,
        rows_used: int,
        cols_used: int,
        t: int,
    ) -> None:
        """Output stationary: Sr=M, Sc=N; W and X streamed, O drained."""
        filt = self.operands.filter  # (M, K)
        ifmap = self.operands.ifmap  # (K, N)
        ofmap = self.operands.ofmap  # (M, N)
        # Row r consumes W[sr0 + r, k] at cycle k + r.
        self._fill_skewed(row_port, filt[sr0 : sr0 + rows_used, :t], 0)
        # Column c consumes X[k, sc0 + c] at cycle k + c.
        self._fill_skewed(col_port, ifmap[:t, sc0 : sc0 + cols_used].T, 0)
        # Drain: column c emits rows_used partials starting at T + R - 1 + c.
        self._fill_skewed(
            out_port,
            ofmap[sr0 : sr0 + rows_used, sc0 : sc0 + cols_used].T,
            t + self.rows - 1,
        )
