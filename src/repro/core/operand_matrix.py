"""Operand address matrices (SCALE-Sim's ``operand_matrix`` stage).

Every layer lowers to three address matrices for the GEMM
``O[M, N] = W[M, K] @ X[K, N]``:

* ``ifmap`` — ``X_addr[K, N]``; for a convolution this is the im2col
  view, so the same ifmap address appears under several (k, n) pairs
  (overlapping windows), exactly as in SCALE-Sim.
* ``filter`` — ``W_addr[M, K]`` (dense row-major filter storage).
* ``ofmap`` — ``O_addr[M, N]``.

Addresses live in disjoint regions (ifmap / filter / ofmap base offsets)
so downstream consumers (DRAM model, layout model, energy counters) can
classify a request by its address alone.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SimulationError
from repro.topology.layer import ConvLayer, GemmLayer, GemmShape, Layer

IFMAP_BASE = 0
FILTER_BASE = 10_000_000
OFMAP_BASE = 20_000_000


@dataclass(frozen=True)
class OperandMatrices:
    """The three address matrices of one layer's GEMM.

    ``ifmap_unique`` / ``filter_unique`` carry the closed-form distinct
    address counts computed by the builders (conv window coverage, GEMM
    matrix sizes); the ``unique_*_words`` properties serve them without
    scanning the matrices, falling back to the ``np.unique`` reference
    scan for hand-built instances.  The closed forms are fuzzed against
    the reference in ``tests/core/test_operand_matrix.py``.
    """

    shape: GemmShape
    ifmap: np.ndarray  # (K, N) int64
    filter: np.ndarray  # (M, K) int64
    ofmap: np.ndarray  # (M, N) int64
    ifmap_unique: int | None = None
    filter_unique: int | None = None

    def __post_init__(self) -> None:
        expect = {
            "ifmap": (self.shape.k, self.shape.n),
            "filter": (self.shape.m, self.shape.k),
            "ofmap": (self.shape.m, self.shape.n),
        }
        for name, want in expect.items():
            got = getattr(self, name).shape
            if got != want:
                raise SimulationError(f"{name} matrix shape {got} != expected {want}")

    @property
    def unique_ifmap_words(self) -> int:
        """Distinct ifmap addresses (== accessed ifmap footprint)."""
        if self.ifmap_unique is not None:
            return self.ifmap_unique
        return self.unique_ifmap_words_reference()

    @property
    def unique_filter_words(self) -> int:
        """Distinct filter addresses."""
        if self.filter_unique is not None:
            return self.filter_unique
        return self.unique_filter_words_reference()

    def unique_ifmap_words_reference(self) -> int:
        """The ``np.unique`` scan the closed form is validated against."""
        return int(np.unique(self.ifmap).size)

    def unique_filter_words_reference(self) -> int:
        """The ``np.unique`` scan the closed form is validated against."""
        return int(np.unique(self.filter).size)


def _covered_positions(outputs: int, stride: int, extent: int) -> int:
    """Distinct source positions touched along one sliding-window axis.

    ``outputs`` windows of length ``extent`` placed every ``stride``:
    overlapping windows (``stride < extent``) tile one contiguous span,
    disjoint windows each contribute their full extent (strided
    convolutions skip the gap columns/rows entirely).
    """
    if stride >= extent:
        return outputs * extent
    return (outputs - 1) * stride + extent


def conv_operand_matrices(layer: ConvLayer) -> OperandMatrices:
    """Build im2col address matrices for a convolution layer."""
    shape = layer.to_gemm()
    oh, ow = layer.ofmap_h, layer.ofmap_w
    fh, fw, cin = layer.filter_h, layer.filter_w, layer.channels

    # n enumerates ofmap pixels row-major: n = oh_idx * ow + ow_idx.
    n_idx = np.arange(shape.n)
    oh_idx = n_idx // ow
    ow_idx = n_idx % ow

    # k enumerates window elements: k = (kh * fw + kw) * cin + c.
    k_idx = np.arange(shape.k)
    kh_idx = k_idx // (fw * cin)
    kw_idx = (k_idx // cin) % fw
    c_idx = k_idx % cin

    src_h = oh_idx[None, :] * layer.stride_h + kh_idx[:, None]
    src_w = ow_idx[None, :] * layer.stride_w + kw_idx[:, None]
    ifmap = (
        IFMAP_BASE
        + (src_h * layer.ifmap_w + src_w) * cin
        + c_idx[:, None]
    ).astype(np.int64)

    m_idx = np.arange(shape.m)
    filt = (FILTER_BASE + m_idx[:, None] * shape.k + k_idx[None, :]).astype(np.int64)
    ofmap = (OFMAP_BASE + m_idx[:, None] * shape.n + n_idx[None, :]).astype(np.int64)
    # Closed-form footprints: (src_h, src_w, c) -> address is injective,
    # so distinct addresses = covered rows x covered columns x channels;
    # filter addresses (m * K + k) are all distinct by construction.
    ifmap_unique = (
        _covered_positions(oh, layer.stride_h, fh)
        * _covered_positions(ow, layer.stride_w, fw)
        * cin
    )
    return OperandMatrices(
        shape=shape,
        ifmap=ifmap,
        filter=filt,
        ofmap=ofmap,
        ifmap_unique=ifmap_unique,
        filter_unique=shape.m * shape.k,
    )


def gemm_operand_matrices(layer: GemmLayer) -> OperandMatrices:
    """Build dense row-major address matrices for a bare GEMM layer."""
    shape = layer.to_gemm()
    k_idx = np.arange(shape.k)
    n_idx = np.arange(shape.n)
    m_idx = np.arange(shape.m)
    ifmap = (IFMAP_BASE + k_idx[:, None] * shape.n + n_idx[None, :]).astype(np.int64)
    filt = (FILTER_BASE + m_idx[:, None] * shape.k + k_idx[None, :]).astype(np.int64)
    ofmap = (OFMAP_BASE + m_idx[:, None] * shape.n + n_idx[None, :]).astype(np.int64)
    # Dense row-major addresses: both operand matrices are injective.
    return OperandMatrices(
        shape=shape,
        ifmap=ifmap,
        filter=filt,
        ofmap=ofmap,
        ifmap_unique=shape.k * shape.n,
        filter_unique=shape.m * shape.k,
    )


def operand_matrices(layer: Layer) -> OperandMatrices:
    """Dispatch on layer kind."""
    if isinstance(layer, ConvLayer):
        return conv_operand_matrices(layer)
    if isinstance(layer, GemmLayer):
        return gemm_operand_matrices(layer)
    raise SimulationError(f"unsupported layer type: {type(layer).__name__}")


def classify_address(address: int) -> str:
    """Map an address back to its operand region name."""
    if address < 0:
        raise SimulationError(f"negative address {address} has no region")
    if address < FILTER_BASE:
        return "ifmap"
    if address < OFMAP_BASE:
        return "filter"
    return "ofmap"
