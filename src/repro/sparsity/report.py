"""SPARSE_REPORT.csv emission (paper Section IV-B, Step 3)."""

from __future__ import annotations

from pathlib import Path

from repro.sparsity.sparse_compute import SparseLayerResult
from repro.utils.csvio import write_csv


def write_sparse_report(results: list[SparseLayerResult], out_dir: str | Path) -> Path:
    """Write SPARSE_REPORT.csv: storage and cycle metrics per layer."""
    header = [
        "LayerID",
        "LayerName",
        "SparsityRepresentation",
        "BlockSize",
        "Density%",
        "OriginalFilterStorage(kB)",
        "NewFilterStorage(kB)",
        "MetadataStorage(kB)",
        "CompressionRatio",
        "DenseComputeCycles",
        "SparseComputeCycles",
        "Speedup",
    ]
    rows = []
    for index, result in enumerate(results):
        meta_kb = result.compressed_storage.metadata_bits / 8 / 1024
        rows.append(
            [
                index,
                result.layer_name,
                result.representation,
                result.block_size,
                f"{result.pattern.density * 100:.2f}",
                f"{result.dense_storage.total_kb:.2f}",
                f"{result.compressed_storage.total_kb:.2f}",
                f"{meta_kb:.2f}",
                f"{result.storage_saving:.3f}",
                result.dense_compute_cycles,
                result.sparse_compute_cycles,
                f"{result.speedup:.3f}",
            ]
        )
    return write_csv(Path(out_dir) / "SPARSE_REPORT.csv", header, rows)
