"""N:M structured sparsity support (paper Section IV)."""

from repro.sparsity.pattern import SparsePattern, layerwise_pattern, rowwise_pattern
from repro.sparsity.formats import (
    blocked_ellpack_storage,
    csc_storage,
    csr_storage,
    dense_storage,
    storage_for_representation,
    StorageEstimate,
)
from repro.sparsity.sparse_compute import SparseComputeSimulator, SparseLayerResult
from repro.sparsity.report import write_sparse_report

__all__ = [
    "SparsePattern",
    "layerwise_pattern",
    "rowwise_pattern",
    "blocked_ellpack_storage",
    "csc_storage",
    "csr_storage",
    "dense_storage",
    "storage_for_representation",
    "StorageEstimate",
    "SparseComputeSimulator",
    "SparseLayerResult",
    "write_sparse_report",
]
