"""Sparse GEMM execution on the systolic array (paper Section IV-B).

The paper runs all sparsity experiments under the weight-stationary
dataflow: the weight matrix ``W[M, K]`` is compressed N:M along K
(blocked ELLPACK), so each spatial column tile of the array streams only
the compressed weight rows.  Because the array is lockstep, a tile's
effective K extent is the *maximum* compressed row length among its
rows — which is why finer-grained (row-wise) sparsity with low N values
beats coarse block sizes (Figure 8).

Compute cycles for one column tile ``c`` (WS mapping: Sr=K, Sc=M, T=N)::

    cycles(c) = (2R + C + T - 2) * ceil(K_eff(c) / R)

and the layer total sums over ``ceil(M / C)`` tiles.  Dense execution is
the special case ``K_eff = K``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.compute_sim import FoldSpec, TileFetch
from repro.core.dataflow import Dataflow, fold_cycles, map_gemm
from repro.errors import SparsityError
from repro.sparsity.formats import StorageEstimate, dense_storage, storage_for_representation
from repro.sparsity.pattern import SparsePattern, layerwise_pattern, rowwise_pattern
from repro.topology.layer import GemmShape, Layer, SparsityRatio
from repro.utils.math import ceil_div
from repro.utils.rng import make_rng


@dataclass
class SparseLayerResult:
    """Outcome of simulating one layer with sparse weights."""

    layer_name: str
    shape: GemmShape
    block_size: int
    representation: str
    pattern: SparsePattern = field(repr=False)
    dense_compute_cycles: int
    sparse_compute_cycles: int
    dense_storage: StorageEstimate
    compressed_storage: StorageEstimate
    fold_specs: list[FoldSpec] = field(default_factory=list, repr=False)

    @property
    def speedup(self) -> float:
        """Dense cycles over sparse cycles."""
        if self.sparse_compute_cycles == 0:
            return float("inf")
        return self.dense_compute_cycles / self.sparse_compute_cycles

    @property
    def storage_saving(self) -> float:
        """Dense storage over compressed storage."""
        return self.compressed_storage.compression_ratio(self.dense_storage)


class SparseComputeSimulator:
    """Weight-stationary sparse compute model.

    Args:
        array_rows / array_cols: systolic array shape.
        representation: ``csr`` / ``csc`` / ``ellpack_block``.
        word_bits: weight precision (16 for the paper's experiments).
        ifmap_sram_words / ofmap_sram_words: double-buffer working sizes
            used when planning fold fetches (halving applied by caller's
            convention is mirrored here: pass the full SRAM capacity).
    """

    def __init__(
        self,
        array_rows: int,
        array_cols: int,
        representation: str = "ellpack_block",
        word_bits: int = 16,
        ifmap_sram_words: int = 1 << 30,
        ofmap_sram_words: int = 1 << 30,
        seed: int = 7,
    ) -> None:
        if array_rows < 1 or array_cols < 1:
            raise SparsityError(f"bad array {array_rows}x{array_cols}")
        self.rows = array_rows
        self.cols = array_cols
        self.representation = representation
        self.word_bits = word_bits
        self.ifmap_working_words = max(1, ifmap_sram_words // 2)
        self.ofmap_working_words = max(1, ofmap_sram_words // 2)
        self._rng = make_rng(seed)

    # ------------------------------------------------------------------ API

    def pattern_for_layer(
        self,
        layer: Layer,
        rowwise: bool = False,
        block_size: int | None = None,
    ) -> SparsePattern:
        """Build the layer's weight sparsity pattern.

        Layer-wise mode uses the layer's own N:M annotation (defaulting
        to dense); row-wise mode randomises N per row with the given
        block size (``OptimizedMapping`` + ``BlockSize`` knobs).
        """
        shape = layer.to_gemm()
        if rowwise:
            block = block_size or (layer.sparsity.m if layer.sparsity else 4)
            return rowwise_pattern(shape.m, shape.k, block, self._rng)
        ratio = layer.sparsity or SparsityRatio(1, 1)
        return layerwise_pattern(shape.m, shape.k, ratio)

    def simulate_layer(
        self,
        layer: Layer,
        pattern: SparsePattern | None = None,
        rowwise: bool = False,
        block_size: int | None = None,
        with_fold_specs: bool = True,
    ) -> SparseLayerResult:
        """Simulate one layer under WS with compressed weights."""
        shape = layer.to_gemm()
        if pattern is None:
            pattern = self.pattern_for_layer(layer, rowwise=rowwise, block_size=block_size)
        if pattern.rows != shape.m or pattern.cols != shape.k:
            raise SparsityError(
                f"pattern shape {pattern.rows}x{pattern.cols} does not match "
                f"weight matrix {shape.m}x{shape.k}"
            )

        mapping = map_gemm(shape, Dataflow.WEIGHT_STATIONARY)
        per_fold = fold_cycles(self.rows, self.cols, mapping.t)
        dense_cycles = per_fold * ceil_div(shape.k, self.rows) * ceil_div(shape.m, self.cols)

        row_lengths = pattern.compressed_row_length()
        fcols = ceil_div(shape.m, self.cols)
        sparse_cycles = 0
        tile_keff: list[int] = []
        for fc in range(fcols):
            lo = fc * self.cols
            hi = min(lo + self.cols, shape.m)
            k_eff = int(row_lengths[lo:hi].max()) if hi > lo else 0
            k_eff = max(k_eff, 1)  # a tile always occupies >= 1 pass
            tile_keff.append(k_eff)
            sparse_cycles += per_fold * ceil_div(k_eff, self.rows)

        dense_est = dense_storage(shape.m, shape.k, self.word_bits)
        compressed = storage_for_representation(self.representation, pattern, self.word_bits)

        fold_specs = (
            self._build_fold_specs(layer, shape, mapping, tile_keff, per_fold, compressed)
            if with_fold_specs
            else []
        )
        return SparseLayerResult(
            layer_name=layer.name,
            shape=shape,
            block_size=pattern.block_size,
            representation=self.representation,
            pattern=pattern,
            dense_compute_cycles=dense_cycles,
            sparse_compute_cycles=sparse_cycles,
            dense_storage=dense_est,
            compressed_storage=compressed,
            fold_specs=fold_specs,
        )

    # ------------------------------------------------------------ internals

    def _build_fold_specs(
        self,
        layer: Layer,
        shape: GemmShape,
        mapping,
        tile_keff: list[int],
        per_fold: int,
        compressed: StorageEstimate,
    ) -> list[FoldSpec]:
        """Plan backing-store traffic for the sparse WS schedule.

        Filter traffic is the *compressed* footprint (data + metadata),
        spread across folds; ifmap traffic is unchanged in total (full
        blocks are streamed so the array can select non-zero positions)
        but spread over fewer K-folds.
        """
        raw_ifmap = layer.ifmap_words
        raw_ofmap = layer.ofmap_words
        filter_words_total = ceil_div(compressed.total_bits, self.word_bits)
        total_compressed_cells = sum(
            k * min(self.cols, shape.m - fc * self.cols)
            for fc, k in enumerate(tile_keff)
        )
        specs: list[FoldSpec] = []
        start = 0
        filter_cursor = 0
        accumulate = raw_ofmap <= self.ofmap_working_words
        t = mapping.t

        for fc, k_eff in enumerate(tile_keff):
            cols_used = min(self.cols, shape.m - fc * self.cols)
            frows = ceil_div(k_eff, self.rows)
            for fr in range(frows):
                rows_used = min(self.rows, k_eff - fr * self.rows)
                fetches: list[TileFetch] = []
                # Compressed filter tile, proportional share of the
                # compressed stream (data + metadata).
                cell_share = rows_used * cols_used
                tile_words = (
                    ceil_div(filter_words_total * cell_share, total_compressed_cells)
                    if total_compressed_cells
                    else 0
                )
                fetches.append(TileFetch("filter", filter_cursor, tile_words))
                filter_cursor += tile_words
                # Ifmap slice: the full raw ifmap is streamed once per
                # column tile pass, split over its K-folds.
                slice_words = ceil_div(raw_ifmap, frows)
                fits = slice_words <= self.ifmap_working_words
                if fr == 0 or not fits:
                    fetches.append(
                        TileFetch("ifmap", (fr * slice_words) % max(1, raw_ifmap), slice_words)
                    )
                out_tile = min(cols_used * t, raw_ofmap)
                if not accumulate:
                    fetches.append(TileFetch("ofmap", 0, out_tile, is_write=True))
                    if fr > 0:
                        fetches.append(TileFetch("ofmap", 0, out_tile))
                elif fr == frows - 1:
                    fetches.append(TileFetch("ofmap", 0, out_tile, is_write=True))
                specs.append(
                    FoldSpec(
                        fold_row=fr,
                        fold_col=fc,
                        start_cycle=start,
                        cycles=per_fold,
                        rows_used=rows_used,
                        cols_used=cols_used,
                        fetches=tuple(fetches),
                    )
                )
                start += per_fold
        return specs
