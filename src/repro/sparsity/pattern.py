"""N:M sparsity patterns for weight matrices.

A :class:`SparsePattern` records, for a weight matrix ``W[M, K]``, how
many elements survive in each M-block of each row:

* **layer-wise** (paper IV-A1) — one N:M ratio for the whole layer; per
  the paper's simplification, the first N elements of every block are
  the non-zeros.
* **row-wise** (paper IV-A2, VEGETA-style) — each row draws its own
  ``N_i`` uniformly from ``[0, M/2]`` (the paper constrains useful
  ratios to ``N <= M/2``), seeded for reproducibility.

The pattern stores per-(row, block) non-zero counts, which is all the
storage and compute models need; full boolean masks are generated only
on demand for small matrices (tests, examples).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SparsityError
from repro.topology.layer import SparsityRatio
from repro.utils.math import ceil_div


@dataclass(frozen=True)
class SparsePattern:
    """Per-row, per-block non-zero counts of a ``rows x cols`` matrix."""

    rows: int
    cols: int
    block_size: int
    nnz_per_block: np.ndarray  # (rows, num_blocks) int32

    def __post_init__(self) -> None:
        if self.rows < 1 or self.cols < 1:
            raise SparsityError(f"bad matrix shape {self.rows}x{self.cols}")
        if self.block_size < 1:
            raise SparsityError(f"block_size must be >= 1, got {self.block_size}")
        expected = (self.rows, self.num_blocks)
        if self.nnz_per_block.shape != expected:
            raise SparsityError(
                f"nnz_per_block shape {self.nnz_per_block.shape} != {expected}"
            )
        last_block = self.cols - (self.num_blocks - 1) * self.block_size
        limits = np.full(self.num_blocks, self.block_size)
        limits[-1] = last_block
        if (self.nnz_per_block < 0).any() or (self.nnz_per_block > limits[None, :]).any():
            raise SparsityError("block nnz outside [0, block capacity]")

    @property
    def num_blocks(self) -> int:
        """Blocks per row."""
        return ceil_div(self.cols, self.block_size)

    @property
    def total_nnz(self) -> int:
        """Non-zeros in the whole matrix."""
        return int(self.nnz_per_block.sum())

    @property
    def density(self) -> float:
        """Fraction of surviving elements."""
        return self.total_nnz / (self.rows * self.cols)

    def row_nnz(self) -> np.ndarray:
        """Non-zeros per row, shape (rows,)."""
        return self.nnz_per_block.sum(axis=1)

    def compressed_row_length(self) -> np.ndarray:
        """Elements each row occupies in a block-compressed stream.

        Blocked formats keep whole blocks together, so a row's streamed
        length is its non-zero count (zero blocks vanish entirely).
        """
        return self.row_nnz()

    def to_mask(self) -> np.ndarray:
        """Materialise a boolean mask (first-N-per-block convention)."""
        mask = np.zeros((self.rows, self.cols), dtype=bool)
        for block in range(self.num_blocks):
            start = block * self.block_size
            end = min(start + self.block_size, self.cols)
            counts = self.nnz_per_block[:, block]
            width = end - start
            cols_idx = np.arange(width)
            mask[:, start:end] = cols_idx[None, :] < counts[:, None]
        return mask


def layerwise_pattern(rows: int, cols: int, ratio: SparsityRatio) -> SparsePattern:
    """One N:M ratio applied uniformly (paper's layer-wise sparsity)."""
    block = ratio.m
    num_blocks = ceil_div(cols, block)
    nnz = np.full((rows, num_blocks), ratio.n, dtype=np.int32)
    # The trailing partial block can hold at most its own width.
    last_width = cols - (num_blocks - 1) * block
    nnz[:, -1] = min(ratio.n, last_width)
    return SparsePattern(rows=rows, cols=cols, block_size=block, nnz_per_block=nnz)


def rowwise_pattern(
    rows: int,
    cols: int,
    block_size: int,
    rng: np.random.Generator,
    max_n: int | None = None,
) -> SparsePattern:
    """Random per-row N with ``N <= M/2`` (paper's row-wise sparsity).

    Every block in a given row shares that row's N, matching the paper's
    "each row is assigned a random sparsity ratio".
    """
    if block_size < 2:
        raise SparsityError(f"row-wise sparsity needs block_size >= 2, got {block_size}")
    ceiling = block_size // 2 if max_n is None else max_n
    if not 0 <= ceiling <= block_size:
        raise SparsityError(f"max_n must be in [0, {block_size}], got {ceiling}")
    num_blocks = ceil_div(cols, block_size)
    row_n = rng.integers(low=0, high=ceiling + 1, size=rows).astype(np.int32)
    nnz = np.repeat(row_n[:, None], num_blocks, axis=1)
    last_width = cols - (num_blocks - 1) * block_size
    nnz[:, -1] = np.minimum(nnz[:, -1], last_width)
    return SparsePattern(rows=rows, cols=cols, block_size=block_size, nnz_per_block=nnz)
