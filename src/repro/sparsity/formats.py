"""Compressed-storage models: CSR, CSC, and blocked ELLPACK (Figure 6).

Each estimator returns a :class:`StorageEstimate` splitting the footprint
into data bits and metadata bits, so reports can show "New Filter
Storage (compressed filter matrix + metadata)" exactly as the paper's
``SPARSE_REPORT.csv`` does.

Blocked ELLPACK (the representation used for all the paper's sparsity
experiments) stores, per row, the non-zero values block by block plus a
``log2(block_size)``-bit index for each non-zero (its position within
the block) — the lavender metadata cells of Figure 6b.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SparsityError
from repro.sparsity.pattern import SparsePattern
from repro.utils.math import ceil_div, ilog2_ceil


@dataclass(frozen=True)
class StorageEstimate:
    """Bits needed to store a (possibly compressed) matrix."""

    representation: str
    data_bits: int
    metadata_bits: int

    @property
    def total_bits(self) -> int:
        """Data plus metadata."""
        return self.data_bits + self.metadata_bits

    @property
    def total_bytes(self) -> int:
        """Total storage rounded up to whole bytes."""
        return ceil_div(self.total_bits, 8)

    @property
    def total_kb(self) -> float:
        """Total storage in kilobytes."""
        return self.total_bytes / 1024

    def compression_ratio(self, dense: "StorageEstimate") -> float:
        """Dense footprint over this footprint (higher is better)."""
        if self.total_bits == 0:
            raise SparsityError("empty storage has no compression ratio")
        return dense.total_bits / self.total_bits


def dense_storage(rows: int, cols: int, word_bits: int = 16) -> StorageEstimate:
    """Uncompressed row-major storage."""
    if word_bits < 1:
        raise SparsityError(f"word_bits must be >= 1, got {word_bits}")
    return StorageEstimate("dense", data_bits=rows * cols * word_bits, metadata_bits=0)


def csr_storage(pattern: SparsePattern, word_bits: int = 16) -> StorageEstimate:
    """Compressed sparse row: values + column indices + row pointers."""
    nnz = pattern.total_nnz
    col_bits = max(1, ilog2_ceil(max(2, pattern.cols)))
    ptr_bits = max(1, ilog2_ceil(max(2, nnz + 1)))
    return StorageEstimate(
        "csr",
        data_bits=nnz * word_bits,
        metadata_bits=nnz * col_bits + (pattern.rows + 1) * ptr_bits,
    )


def csc_storage(pattern: SparsePattern, word_bits: int = 16) -> StorageEstimate:
    """Compressed sparse column: values + row indices + column pointers."""
    nnz = pattern.total_nnz
    row_bits = max(1, ilog2_ceil(max(2, pattern.rows)))
    ptr_bits = max(1, ilog2_ceil(max(2, nnz + 1)))
    return StorageEstimate(
        "csc",
        data_bits=nnz * word_bits,
        metadata_bits=nnz * row_bits + (pattern.cols + 1) * ptr_bits,
    )


def blocked_ellpack_storage(pattern: SparsePattern, word_bits: int = 16) -> StorageEstimate:
    """Blocked ELLPACK: per-nonzero value + log2(block) in-block index."""
    nnz = pattern.total_nnz
    meta_bits_per_nnz = ilog2_ceil(pattern.block_size)
    return StorageEstimate(
        "ellpack_block",
        data_bits=nnz * word_bits,
        metadata_bits=nnz * meta_bits_per_nnz,
    )


def storage_for_representation(
    representation: str, pattern: SparsePattern, word_bits: int = 16
) -> StorageEstimate:
    """Dispatch on the config's ``SparseRep`` knob."""
    table = {
        "csr": csr_storage,
        "csc": csc_storage,
        "ellpack_block": blocked_ellpack_storage,
    }
    if representation not in table:
        raise SparsityError(
            f"unknown sparse representation {representation!r}; "
            f"expected one of {sorted(table)}"
        )
    return table[representation](pattern, word_bits)
