"""SCALE-Sim v3 reproduction: a modular cycle-accurate systolic simulator.

Public API quick tour::

    from repro import Simulator, get_preset, get_model

    config = get_preset("google_tpu_v2")
    result = Simulator(config).run(get_model("resnet18", scale=8))
    print(result.total_cycles, result.total_stall_cycles)

Feature packages:

* :mod:`repro.core`      — cycle-accurate systolic compute model.
* :mod:`repro.memory`    — double-buffered scratchpads, request queues.
* :mod:`repro.dram`      — RamulatorLite DRAM model.
* :mod:`repro.multicore` — spatio-temporal partitioning, shared L2.
* :mod:`repro.sparsity`  — N:M sparse GEMM support.
* :mod:`repro.layout`    — multi-bank data-layout / bank-conflict model.
* :mod:`repro.energy`    — AccelergyLite energy and power estimation.
"""

from repro.config import SystemConfig, get_preset, load_config
from repro.core import Dataflow, Simulator
from repro.topology import ConvLayer, GemmLayer, Topology, get_model

__version__ = "3.0.0"

__all__ = [
    "SystemConfig",
    "get_preset",
    "load_config",
    "Dataflow",
    "Simulator",
    "ConvLayer",
    "GemmLayer",
    "Topology",
    "get_model",
    "__version__",
]
