"""Workload partitioning across tensor cores (paper Section III-A).

Three schemes over a ``Pr x Pc`` core grid and a mapped GEMM (Sr, Sc, T):

* **spatial** (Eq. 1, inherited from v2) — split Sr across Pr and Sc
  across Pc.
* **spatiotemporal 1** (Eq. 2) — split Sr across Pr and T across Pc.
* **spatiotemporal 2** (Eq. 3) — split T across Pr and Sc across Pc.

Each scheme trades compute cycles against memory footprint (Figure 3):
splitting a spatial dimension duplicates the operand indexed by the
*other* spatial dimension across the grid, while splitting T duplicates
outputs (partial sums) instead.

Footprints count L1 words across all cores (with duplication); the
shared-L2 footprint deduplicates rows/columns of the grid (Figure 4).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.core.dataflow import (
    Dataflow,
    GemmMapping,
    map_gemm,
    spatial_runtime,
    spatiotemporal1_runtime,
    spatiotemporal2_runtime,
)
from repro.errors import MappingError
from repro.topology.layer import GemmShape
from repro.utils.math import ceil_div


class PartitionScheme(enum.Enum):
    """The three partitioning strategies."""

    SPATIAL = "spatial"
    SPATIOTEMPORAL_1 = "spatiotemporal_1"
    SPATIOTEMPORAL_2 = "spatiotemporal_2"

    @classmethod
    def parse(cls, text: str) -> "PartitionScheme":
        """Parse a scheme name (case-insensitive)."""
        lowered = text.strip().lower()
        for member in cls:
            if member.value == lowered:
                return member
        raise MappingError(f"unknown partition scheme {text!r}")


_RUNTIME_FN = {
    PartitionScheme.SPATIAL: spatial_runtime,
    PartitionScheme.SPATIOTEMPORAL_1: spatiotemporal1_runtime,
    PartitionScheme.SPATIOTEMPORAL_2: spatiotemporal2_runtime,
}


def partition_runtime(
    mapping: GemmMapping,
    scheme: PartitionScheme,
    rows: int,
    cols: int,
    partitions_row: int,
    partitions_col: int,
) -> int:
    """Per-core runtime (all cores run in lockstep on equal shares)."""
    return _RUNTIME_FN[scheme](mapping, rows, cols, partitions_row, partitions_col)


def l1_footprint_words(
    mapping: GemmMapping,
    scheme: PartitionScheme,
    partitions_row: int,
    partitions_col: int,
) -> int:
    """Total words across all cores' L1s, duplication included.

    Operand sizes in mapped terms: the row-fed operand is Sr x T, the
    column-fed operand is T x Sc, outputs are Sr x Sc.
    """
    sr, sc, t = mapping.sr, mapping.sc, mapping.t
    pr, pc = partitions_row, partitions_col
    if pr < 1 or pc < 1:
        raise MappingError(f"bad partition grid {pr}x{pc}")
    if scheme is PartitionScheme.SPATIAL:
        # Input slice shared along grid rows, weight slice along columns.
        return sr * t * pc + t * sc * pr + sr * sc
    if scheme is PartitionScheme.SPATIOTEMPORAL_1:
        # Sr and T split; outputs (partials) duplicated across Pc.
        return sr * t + t * sc * pr + sr * sc * pc
    # SPATIOTEMPORAL_2: T and Sc split; outputs duplicated across Pr.
    return sr * t * pc + t * sc + sr * sc * pr


def l2_footprint_words(mapping: GemmMapping) -> int:
    """Deduplicated footprint with a shared L2 (each operand held once)."""
    sr, sc, t = mapping.sr, mapping.sc, mapping.t
    return sr * t + t * sc + sr * sc


@dataclass(frozen=True)
class PartitionChoice:
    """One evaluated (scheme, Pr, Pc) point."""

    scheme: PartitionScheme
    partitions_row: int
    partitions_col: int
    runtime_cycles: int
    l1_footprint: int
    l2_footprint: int

    @property
    def num_cores(self) -> int:
        """Cores used by this partitioning."""
        return self.partitions_row * self.partitions_col


def _factor_pairs(num_cores: int) -> list[tuple[int, int]]:
    if num_cores < 1:
        raise MappingError(f"num_cores must be >= 1, got {num_cores}")
    pairs = []
    for pr in range(1, num_cores + 1):
        if num_cores % pr == 0:
            pairs.append((pr, num_cores // pr))
    return pairs


def enumerate_partitions(
    shape: GemmShape,
    dataflow: Dataflow,
    scheme: PartitionScheme,
    rows: int,
    cols: int,
    num_cores: int,
) -> list[PartitionChoice]:
    """All (Pr, Pc) factorisations of ``num_cores`` under one scheme."""
    mapping = map_gemm(shape, dataflow)
    choices = []
    for pr, pc in _factor_pairs(num_cores):
        choices.append(
            PartitionChoice(
                scheme=scheme,
                partitions_row=pr,
                partitions_col=pc,
                runtime_cycles=partition_runtime(mapping, scheme, rows, cols, pr, pc),
                l1_footprint=l1_footprint_words(mapping, scheme, pr, pc),
                l2_footprint=l2_footprint_words(mapping),
            )
        )
    return choices


def best_partition(
    shape: GemmShape,
    dataflow: Dataflow,
    scheme: PartitionScheme,
    rows: int,
    cols: int,
    num_cores: int,
    objective: str = "cycles",
) -> PartitionChoice:
    """Best (Pr, Pc) under an objective (Figure 3's two optimisations).

    ``objective='cycles'`` minimises runtime (footprint as tie-break);
    ``objective='footprint'`` minimises L1 footprint (runtime tie-break).
    """
    choices = enumerate_partitions(shape, dataflow, scheme, rows, cols, num_cores)
    if objective == "cycles":
        return min(choices, key=lambda c: (c.runtime_cycles, c.l1_footprint))
    if objective == "footprint":
        return min(choices, key=lambda c: (c.l1_footprint, c.runtime_cycles))
    raise MappingError(f"unknown objective {objective!r}; expected cycles/footprint")


def partition_tradeoff(
    shape: GemmShape,
    dataflow: Dataflow,
    rows: int,
    cols: int,
    num_cores: int,
    objective: str = "cycles",
) -> dict[PartitionScheme, PartitionChoice]:
    """The Figure-3 comparison: best point of each scheme for one config."""
    return {
        scheme: best_partition(shape, dataflow, scheme, rows, cols, num_cores, objective)
        for scheme in PartitionScheme
    }


def partition_shape(
    shape: GemmShape,
    dataflow: Dataflow,
    scheme: PartitionScheme,
    partitions_row: int,
    partitions_col: int,
) -> GemmShape:
    """The per-core sub-GEMM (ceiling share) for a partitioning.

    The mapped (Sr, Sc, T) splits are translated back to M/N/K via the
    mapping's dimension names so a per-core :class:`ComputeSimulator`
    can run the sub-problem directly.
    """
    mapping = map_gemm(shape, dataflow)
    if scheme is PartitionScheme.SPATIAL:
        split = {mapping.sr_name: partitions_row, mapping.sc_name: partitions_col}
    elif scheme is PartitionScheme.SPATIOTEMPORAL_1:
        split = {mapping.sr_name: partitions_row, mapping.t_name: partitions_col}
    else:
        split = {mapping.t_name: partitions_row, mapping.sc_name: partitions_col}
    dims = {"M": shape.m, "N": shape.n, "K": shape.k}
    for name, parts in split.items():
        dims[name] = ceil_div(dims[name], parts)
    return GemmShape(m=dims["M"], n=dims["N"], k=dims["K"])
