"""Multi tensor-core simulation (paper Section III)."""

from repro.multicore.partition import (
    PartitionChoice,
    PartitionScheme,
    best_partition,
    l1_footprint_words,
    l2_footprint_words,
    partition_runtime,
    partition_shape,
    partition_tradeoff,
)
from repro.multicore.simd import SimdUnit
from repro.multicore.noc import NopLink, nonuniform_shares
from repro.multicore.multicore_sim import (
    CoreSpec,
    MultiCoreGemmResult,
    MultiCoreSimulator,
)

__all__ = [
    "PartitionChoice",
    "PartitionScheme",
    "best_partition",
    "l1_footprint_words",
    "l2_footprint_words",
    "partition_runtime",
    "partition_shape",
    "partition_tradeoff",
    "SimdUnit",
    "NopLink",
    "nonuniform_shares",
    "CoreSpec",
    "MultiCoreGemmResult",
    "MultiCoreSimulator",
]
