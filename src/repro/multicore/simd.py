"""SIMD / vector unit model (paper Section III-C).

Tensor cores pair the matrix unit with a vector unit for the non-GEMM
work: activations, softmax, quantisation (Google TPU / Meta MTIA style).
The latency per element is customisable per the paper ("the latency of
SIMD units is customization as per the use case") — lookup-table
approximations of exp/sigmoid/tanh cost more than a ReLU.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.utils.math import ceil_div

#: Representative per-element latencies (cycles) for common vector ops.
DEFAULT_OP_LATENCY = {
    "relu": 1.0,
    "add": 1.0,
    "quantize": 2.0,
    "dequantize": 2.0,
    "exp": 4.0,
    "sigmoid": 4.0,
    "tanh": 4.0,
    "softmax": 6.0,  # exp + reduce + divide
    "layernorm": 5.0,
}


@dataclass(frozen=True)
class SimdUnit:
    """A vector unit: ``lanes`` elements per issue, configurable latency."""

    lanes: int
    latency_per_element: float = 1.0

    def __post_init__(self) -> None:
        if self.lanes < 1:
            raise ConfigError(f"SIMD lanes must be >= 1, got {self.lanes}")
        if self.latency_per_element <= 0:
            raise ConfigError("SIMD latency_per_element must be positive")

    def cycles(self, elements: int, op: str | None = None) -> int:
        """Cycles to apply one vector op over ``elements`` values.

        With ``op`` given, the per-op table scales the unit's base
        latency; otherwise the base latency applies directly.
        """
        if elements < 0:
            raise ConfigError(f"negative element count {elements}")
        if elements == 0:
            return 0
        scale = DEFAULT_OP_LATENCY.get(op, 1.0) if op else 1.0
        issues = ceil_div(elements, self.lanes)
        return max(1, round(issues * self.latency_per_element * scale))
