"""Network-on-Package model and non-uniform workload partitioning.

Multi-chip-module accelerators (Simba et al.) have per-chiplet NoP
latencies that grow with hop distance from the memory controller
(paper Section III-D).  With uniform work shares the farthest chiplet
dominates; non-uniform partitioning gives distant cores less work so
every core finishes together.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.utils.math import ceil_div


@dataclass(frozen=True)
class NopLink:
    """A core's link to main memory: hop count and per-hop latency."""

    hops: int
    latency_per_hop: int = 1
    words_per_cycle: int = 1

    def __post_init__(self) -> None:
        if self.hops < 0:
            raise ConfigError(f"hops must be >= 0, got {self.hops}")
        if self.latency_per_hop < 0:
            raise ConfigError("latency_per_hop must be >= 0")
        if self.words_per_cycle < 1:
            raise ConfigError("words_per_cycle must be >= 1")

    @property
    def base_latency(self) -> int:
        """Head latency of one transfer."""
        return self.hops * self.latency_per_hop

    def transfer_cycles(self, words: int) -> int:
        """Cycles to move ``words`` across this link."""
        if words < 0:
            raise ConfigError(f"negative transfer size {words}")
        if words == 0:
            return 0
        return self.base_latency + ceil_div(words, self.words_per_cycle)


def nonuniform_shares(
    nop_latencies: list[int],
    total_work_cycles: int,
) -> list[float]:
    """Work shares that equalise finish times across cores.

    Core ``i`` finishes at ``share_i * total_work_cycles + nop_i``;
    equalising gives ``share_i = (L - nop_i) / total_work_cycles`` with
    ``L`` chosen so shares sum to one.  Cores whose NoP latency exceeds
    ``L`` receive zero work (they cannot help).
    """
    if total_work_cycles <= 0:
        raise ConfigError(f"total_work_cycles must be positive, got {total_work_cycles}")
    if not nop_latencies:
        raise ConfigError("need at least one core")
    if any(lat < 0 for lat in nop_latencies):
        raise ConfigError("NoP latencies must be non-negative")

    # Water-filling: drop cores that cannot contribute, then solve L.
    active = sorted(range(len(nop_latencies)), key=lambda i: nop_latencies[i])
    while active:
        lats = [nop_latencies[i] for i in active]
        level = (total_work_cycles + sum(lats)) / len(active)
        if level >= lats[-1]:
            break
        active.pop()  # the slowest active core gets no work
    shares = [0.0] * len(nop_latencies)
    for i in active:
        shares[i] = (level - nop_latencies[i]) / total_work_cycles
    return shares


def finish_time_uniform(nop_latencies: list[int], total_work_cycles: int) -> float:
    """Makespan with equal shares: slowest core dominates."""
    if not nop_latencies:
        raise ConfigError("need at least one core")
    share = total_work_cycles / len(nop_latencies)
    return max(share + lat for lat in nop_latencies)


def finish_time_nonuniform(nop_latencies: list[int], total_work_cycles: int) -> float:
    """Makespan with the equalising shares of :func:`nonuniform_shares`."""
    shares = nonuniform_shares(nop_latencies, total_work_cycles)
    return max(
        share * total_work_cycles + (lat if share > 0 else 0)
        for share, lat in zip(shares, nop_latencies)
    )
