"""Multi tensor-core simulator (paper Section III).

Combines the pieces of this package:

* the GEMM is partitioned per the configured scheme (Section III-A),
* each core runs its sub-GEMM through a per-core
  :class:`ComputeSimulator` (heterogeneous cores get their own array
  dimensions and SIMD units, Section III-C),
* the hierarchical memory check sizes the shared L2 against the
  deduplicated partitions (Section III-B),
* non-uniform NoP latencies skew per-core finish times, optionally
  rebalanced by non-uniform workload shares (Section III-D).

Layer latency is the slowest core's finish time plus the vector unit's
post-processing of the layer's outputs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.compute_sim import ComputeSimulator, LayerComputeResult
from repro.core.dataflow import Dataflow
from repro.errors import ConfigError, SimulationError
from repro.multicore.noc import NopLink, nonuniform_shares
from repro.multicore.partition import (
    PartitionScheme,
    l1_footprint_words,
    l2_footprint_words,
    partition_shape,
)
from repro.core.dataflow import map_gemm
from repro.multicore.simd import SimdUnit
from repro.topology.layer import GemmLayer, GemmShape, Layer
from repro.topology.topology import Topology

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.memory.double_buffer import MemoryBackend


@dataclass(frozen=True)
class CoreSpec:
    """One tensor core: array shape plus an optional vector unit."""

    array_rows: int
    array_cols: int
    simd: SimdUnit | None = None
    nop: NopLink | None = None

    def __post_init__(self) -> None:
        if self.array_rows < 1 or self.array_cols < 1:
            raise ConfigError(f"bad core array {self.array_rows}x{self.array_cols}")

    @property
    def num_pes(self) -> int:
        """PEs in this core's array."""
        return self.array_rows * self.array_cols


@dataclass
class CoreOutcome:
    """One core's resolved work for a layer."""

    core_index: int
    spec: CoreSpec
    compute: LayerComputeResult
    work_share: float
    compute_cycles: int
    nop_cycles: int
    simd_cycles: int
    dram_cycles: int = 0  # wait for the core's operands behind the memory seam

    @property
    def finish_cycles(self) -> int:
        """Core-local finish time."""
        return self.compute_cycles + self.nop_cycles + self.simd_cycles + self.dram_cycles


@dataclass
class MultiCoreGemmResult:
    """The whole grid's outcome for one layer."""

    layer_name: str
    shape: GemmShape
    scheme: PartitionScheme
    partitions_row: int
    partitions_col: int
    cores: list[CoreOutcome] = field(default_factory=list)
    l1_footprint_words: int = 0
    l2_footprint_words: int = 0
    l2_required_kb: float = 0.0
    l2_fits: bool = True

    @property
    def latency_cycles(self) -> int:
        """Layer latency: slowest core's finish."""
        return max(core.finish_cycles for core in self.cores)

    @property
    def num_cores(self) -> int:
        """Cores in the grid."""
        return len(self.cores)

    @property
    def total_macs(self) -> int:
        """MACs actually executed across cores (ceiling shares overlap)."""
        return sum(core.compute.macs for core in self.cores)


class MultiCoreSimulator:
    """Simulates layers over a grid of (possibly heterogeneous) cores."""

    def __init__(
        self,
        cores: list[CoreSpec],
        partitions_row: int,
        partitions_col: int,
        dataflow: Dataflow | str,
        scheme: PartitionScheme | str = PartitionScheme.SPATIAL,
        l2_sram_kb: int = 2048,
        word_bytes: int = 2,
        nonuniform: bool = False,
        memory_backend: "MemoryBackend | None" = None,
    ) -> None:
        if partitions_row * partitions_col != len(cores):
            raise ConfigError(
                f"grid {partitions_row}x{partitions_col} needs "
                f"{partitions_row * partitions_col} cores, got {len(cores)}"
            )
        self.cores = cores
        self.partitions_row = partitions_row
        self.partitions_col = partitions_col
        self.dataflow = Dataflow.parse(dataflow) if isinstance(dataflow, str) else dataflow
        self.scheme = (
            PartitionScheme.parse(scheme) if isinstance(scheme, str) else scheme
        )
        if l2_sram_kb < 1:
            raise ConfigError(f"l2_sram_kb must be >= 1, got {l2_sram_kb}")
        self.l2_sram_kb = l2_sram_kb
        self.word_bytes = word_bytes
        self.nonuniform = nonuniform
        # Optional shared main memory behind the engine seam
        # (repro.dram.engine): when set, every core's operand traffic is
        # routed through it, so cores contend for the same DRAM banks,
        # buses and request queues the single-core datapath models.
        self.memory_backend = memory_backend
        self._memory_clock = 0

    @classmethod
    def homogeneous(
        cls,
        num_cores_row: int,
        num_cores_col: int,
        array_rows: int,
        array_cols: int,
        dataflow: Dataflow | str,
        scheme: PartitionScheme | str = PartitionScheme.SPATIAL,
        simd: SimdUnit | None = None,
        l2_sram_kb: int = 2048,
    ) -> "MultiCoreSimulator":
        """Convenience constructor for a uniform grid."""
        cores = [
            CoreSpec(array_rows=array_rows, array_cols=array_cols, simd=simd)
            for _ in range(num_cores_row * num_cores_col)
        ]
        return cls(
            cores=cores,
            partitions_row=num_cores_row,
            partitions_col=num_cores_col,
            dataflow=dataflow,
            scheme=scheme,
            l2_sram_kb=l2_sram_kb,
        )

    # ------------------------------------------------------------------ API

    def simulate_layer(self, layer: Layer) -> MultiCoreGemmResult:
        """Partition and simulate one layer across the grid."""
        shape = layer.to_gemm()
        sub_shape = partition_shape(
            shape, self.dataflow, self.scheme, self.partitions_row, self.partitions_col
        )
        shares = self._work_shares(shape)

        outcomes: list[CoreOutcome] = []
        layer_start = self._memory_clock
        for index, spec in enumerate(self.cores):
            core_shape = self._scaled_shape(sub_shape, shares[index] * len(self.cores))
            sim = ComputeSimulator(
                array_rows=spec.array_rows,
                array_cols=spec.array_cols,
                dataflow=self.dataflow,
            )
            sub_layer = GemmLayer(
                name=f"{layer.name}@core{index}",
                m=core_shape.m,
                n=core_shape.n,
                k=core_shape.k,
            )
            compute = sim.simulate_layer(sub_layer, with_fold_specs=False)
            nop_cycles = 0
            if spec.nop is not None:
                nop_cycles = spec.nop.transfer_cycles(
                    core_shape.ifmap_words + core_shape.ofmap_words
                )
            simd_cycles = 0
            if spec.simd is not None:
                simd_cycles = spec.simd.cycles(core_shape.ofmap_words, op="relu")
            dram_cycles = 0
            if self.memory_backend is not None:
                dram_cycles = self._core_memory_cycles(index, core_shape, layer_start)
            outcomes.append(
                CoreOutcome(
                    core_index=index,
                    spec=spec,
                    compute=compute,
                    work_share=shares[index],
                    compute_cycles=compute.compute_cycles,
                    nop_cycles=nop_cycles,
                    simd_cycles=simd_cycles,
                    dram_cycles=dram_cycles,
                )
            )

        mapping = map_gemm(shape, self.dataflow)
        l1_words = l1_footprint_words(
            mapping, self.scheme, self.partitions_row, self.partitions_col
        )
        l2_words = l2_footprint_words(mapping)
        l2_required_kb = l2_words * self.word_bytes / 1024
        return MultiCoreGemmResult(
            layer_name=layer.name,
            shape=shape,
            scheme=self.scheme,
            partitions_row=self.partitions_row,
            partitions_col=self.partitions_col,
            cores=outcomes,
            l1_footprint_words=l1_words,
            l2_footprint_words=l2_words,
            l2_required_kb=l2_required_kb,
            l2_fits=l2_required_kb <= self.l2_sram_kb,
        )

    def simulate_topology(self, topology: Topology) -> list[MultiCoreGemmResult]:
        """Simulate every layer; returns per-layer results."""
        return [self.simulate_layer(layer) for layer in topology]

    def total_latency(self, topology: Topology) -> int:
        """Sum of layer latencies across a topology."""
        return sum(result.latency_cycles for result in self.simulate_topology(topology))

    # ------------------------------------------------------------ internals

    def _core_memory_cycles(
        self, core_index: int, core_shape: GemmShape, layer_start: int
    ) -> int:
        """Route one core's operand traffic through the shared memory seam.

        Each core fetches its *own* slice of the operand regions (cores
        hold disjoint partitions, so their spans are offset by the core
        index) and writes back its ofmap partition; all cores issue
        against the same backend, so a later core's DMA sees the banks,
        buses and request queues the earlier cores left busy — the
        shared-memory contention of the paper's multi-core evaluation
        (Section III-B).
        """
        from repro.core.compute_sim import TileFetch

        backend = self.memory_backend
        assert backend is not None
        fetches = (
            TileFetch(
                "ifmap", core_index * core_shape.ifmap_words, core_shape.ifmap_words
            ),
            TileFetch(
                "filter", core_index * core_shape.filter_words, core_shape.filter_words
            ),
            TileFetch(
                "ofmap",
                core_index * core_shape.ofmap_words,
                core_shape.ofmap_words,
                is_write=True,
            ),
        )
        ready = backend.complete_fetches(fetches, layer_start)
        if ready > self._memory_clock:
            self._memory_clock = ready
        return max(0, ready - layer_start)

    def _work_shares(self, shape: GemmShape) -> list[float]:
        """Per-core work fractions (uniform unless NoP-aware rebalancing)."""
        count = len(self.cores)
        throughput = [spec.num_pes for spec in self.cores]
        total_tp = sum(throughput)
        base = [tp / total_tp for tp in throughput]
        if not self.nonuniform:
            return base
        nop_lats = [spec.nop.base_latency if spec.nop else 0 for spec in self.cores]
        if not any(nop_lats):
            return base
        # Finish time of core i ~ share_i * W + base_latency_i, where W
        # bundles the workload's compute time on one core-equivalent plus
        # the full data-transfer time (both scale with the share).
        ref = max(self.cores, key=lambda s: s.num_pes)
        from repro.core.dataflow import analytical_runtime

        total_work = analytical_runtime(shape, self.dataflow, ref.array_rows, ref.array_cols)
        links = [spec.nop for spec in self.cores if spec.nop is not None]
        if links:
            words_per_cycle = links[0].words_per_cycle
            total_work += (shape.ifmap_words + shape.ofmap_words) // words_per_cycle
        if total_work <= 0:
            raise SimulationError("degenerate workload for non-uniform partitioning")
        shares = nonuniform_shares(nop_lats, total_work)
        # Blend with throughput weighting for heterogeneous grids.
        blended = [s * b * count for s, b in zip(shares, base)]
        norm = sum(blended)
        if norm <= 0:
            return base
        return [b / norm for b in blended]

    @staticmethod
    def _scaled_shape(sub_shape: GemmShape, relative_share: float) -> GemmShape:
        """Scale a core's sub-GEMM by its relative work share.

        The temporal dimension absorbs the scaling (spatial tiles are
        fixed by the partitioning); a share of zero still costs one
        column of work (the core participates in the grid handshake).
        """
        if relative_share <= 0:
            return GemmShape(m=sub_shape.m, n=1, k=sub_shape.k)
        n = max(1, round(sub_shape.n * relative_share))
        return GemmShape(m=sub_shape.m, n=n, k=sub_shape.k)
