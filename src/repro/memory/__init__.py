"""On-chip memory models: double buffering, request queues, L1/L2 glue."""

from repro.memory.request_queue import RequestQueue
from repro.memory.double_buffer import (
    DoubleBufferMemory,
    IdealBandwidthBackend,
    MemoryBackend,
    MemoryTimeline,
)

__all__ = [
    "RequestQueue",
    "DoubleBufferMemory",
    "IdealBandwidthBackend",
    "MemoryBackend",
    "MemoryTimeline",
]
