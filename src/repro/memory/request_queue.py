"""Finite memory request queues (paper Section V-A2).

The accelerator logs demand requests into read/write queues of
configurable depth.  Read entries clear when data returns; write entries
clear when the memory controller accepts them.  A full queue stalls the
front-end: the issue time of the next request is pushed to the earliest
completion among in-flight entries.

The queue tracks *completion times* rather than request objects — enough
to model backpressure exactly while staying cheap (a heap of ints).
"""

from __future__ import annotations

import heapq

from repro.errors import MemoryModelError


class RequestQueue:
    """A fixed-capacity queue of in-flight memory transactions."""

    def __init__(self, capacity: int, name: str = "queue") -> None:
        if capacity < 1:
            raise MemoryModelError(f"{name}: capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.name = name
        self._completions: list[int] = []  # min-heap of completion cycles
        self.total_enqueued = 0
        self.total_stall_cycles = 0
        self.peak_occupancy = 0

    def occupancy_at(self, cycle: int) -> int:
        """Entries still in flight at ``cycle`` (retires finished ones)."""
        while self._completions and self._completions[0] <= cycle:
            heapq.heappop(self._completions)
        return len(self._completions)

    def earliest_issue(self, cycle: int) -> int:
        """Earliest cycle >= ``cycle`` at which a new request can enter.

        If the queue is full, this is the completion time of the oldest
        in-flight entry.
        """
        if self.occupancy_at(cycle) < self.capacity:
            return cycle
        return self._completions[0]

    def push(self, issue_cycle: int, completion_cycle: int) -> int:
        """Insert a request, stalling if full; returns actual issue cycle.

        Args:
            issue_cycle: when the front-end wants to issue.
            completion_cycle: when the transaction will complete, as
                computed by the memory model (must be > issue time).
        """
        actual = self.earliest_issue(issue_cycle)
        # Retire whatever has completed by the resolved issue time so the
        # occupancy reflects the queue state at that cycle.
        self.occupancy_at(actual)
        if completion_cycle < actual:
            raise MemoryModelError(
                f"{self.name}: completion {completion_cycle} before issue {actual}"
            )
        self.total_stall_cycles += actual - issue_cycle
        heapq.heappush(self._completions, completion_cycle)
        self.total_enqueued += 1
        self.peak_occupancy = max(self.peak_occupancy, len(self._completions))
        return actual

    def record_stall(self, cycles: int) -> None:
        """Attribute externally-resolved backpressure stalls to this queue.

        Used by callers that query :meth:`earliest_issue` themselves (to
        time a dependent computation) before calling :meth:`push`.
        """
        if cycles < 0:
            raise MemoryModelError(f"{self.name}: negative stall {cycles}")
        self.total_stall_cycles += cycles

    def drain_time(self) -> int:
        """Cycle at which every in-flight entry has completed."""
        return max(self._completions) if self._completions else 0

    def reset(self) -> None:
        """Clear all state (between layers)."""
        self._completions.clear()
