"""Double-buffered SRAM with prefetch, and the fold-level stall model.

SCALE-Sim's scratchpads are double buffered: while the array computes on
the active half, the other half prefetches the next fold's tiles from
backing store (ideal-bandwidth interface in v2, RamulatorLite in v3).

:class:`DoubleBufferMemory` walks a layer's :class:`FoldSpec` schedule:

* fold 0's fetches are issued at cycle 0 (cold start — pure latency),
* fold ``i+1``'s fetches are issued when fold ``i`` starts computing,
* a fold may only start once its data has arrived; the gap between the
  compute-ready time and the data-ready time is the *stall*.

Backends implement :class:`MemoryBackend`; the ideal one models v2's
monolithic interface (fixed words/cycle), the DRAM one lives in
:mod:`repro.dram.backend` and adds request-queue backpressure plus
cycle-accurate bank timing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol

from repro.core.compute_sim import FoldSpec, TileFetch
from repro.errors import MemoryModelError
from repro.utils.math import ceil_div


class MemoryBackend(Protocol):
    """Anything that can complete a batch of tile fetches."""

    def complete_fetches(self, fetches: tuple[TileFetch, ...], issue_cycle: int) -> int:
        """Return the cycle at which all read data has arrived.

        Writes must be accepted (possibly with backpressure) but do not
        gate the returned read-completion time unless the write path
        blocks issue.
        """
        ...

    def drain(self) -> int:
        """Cycle at which all outstanding traffic (incl. writes) completes."""
        ...

    @property
    def stall_cycles_from_backpressure(self) -> int:
        """Issue cycles lost to backend backpressure (0 for ideal memory)."""
        ...


class IdealBandwidthBackend:
    """SCALE-Sim v2's monolithic memory: fixed bandwidth, zero conflicts."""

    def __init__(self, bandwidth_words: int, latency_cycles: int = 0) -> None:
        if bandwidth_words < 1:
            raise MemoryModelError(f"bandwidth must be >= 1, got {bandwidth_words}")
        if latency_cycles < 0:
            raise MemoryModelError(f"latency must be >= 0, got {latency_cycles}")
        self.bandwidth_words = bandwidth_words
        self.latency_cycles = latency_cycles
        self._busy_until = 0
        self.total_read_words = 0
        self.total_write_words = 0

    def complete_fetches(self, fetches: tuple[TileFetch, ...], issue_cycle: int) -> int:
        read_words = sum(f.num_words for f in fetches if not f.is_write)
        write_words = sum(f.num_words for f in fetches if f.is_write)
        self.total_read_words += read_words
        self.total_write_words += write_words
        start = max(issue_cycle, self._busy_until)
        transfer = ceil_div(read_words + write_words, self.bandwidth_words) if (
            read_words or write_words
        ) else 0
        self._busy_until = start + transfer
        return start + transfer + (self.latency_cycles if read_words else 0)

    def drain(self) -> int:
        return self._busy_until

    @property
    def stall_cycles_from_backpressure(self) -> int:
        """An ideal interface never backpressures the front-end."""
        return 0


@dataclass
class FoldTiming:
    """Resolved timing of one fold after memory stalls."""

    fold_index: int
    data_ready: int
    compute_start: int
    compute_end: int
    stall_cycles: int


@dataclass
class MemoryTimeline:
    """The stall-resolved execution timeline of one layer."""

    compute_cycles: int
    total_cycles: int
    stall_cycles: int
    cold_start_cycles: int
    fold_timings: list[FoldTiming] = field(default_factory=list, repr=False)

    @property
    def stall_fraction(self) -> float:
        """Stalls (incl. cold start) as a fraction of total cycles."""
        if self.total_cycles == 0:
            return 0.0
        return (self.stall_cycles + self.cold_start_cycles) / self.total_cycles


class DoubleBufferMemory:
    """Walks a fold schedule against a backend and resolves stalls."""

    def __init__(self, backend: MemoryBackend) -> None:
        self.backend = backend

    def run(
        self,
        fold_specs: list[FoldSpec],
        keep_timings: bool = False,
        start_cycle: int = 0,
        line_batches: list | None = None,
    ) -> MemoryTimeline:
        """Resolve the timeline for one layer's fold schedule.

        ``start_cycle`` places this layer on a continuous run timeline so
        a backend shared across layers (one DRAM, one bus) sees globally
        consistent issue times; the returned cycle counts are all
        layer-relative.

        ``line_batches`` optionally carries each fold's traffic as a
        prebuilt :class:`~repro.dram.engine.LineRequestBatch` (one per
        fold, aligned with ``fold_specs``); the backend must then expose
        ``complete_batch`` (the DRAM backend does).  A fan-out sharing
        one fold schedule across many backends uses this to chop and
        order the line streams once instead of once per config — the
        resolved timeline is bit-identical to the fetch-span path.
        """
        if not fold_specs:
            return MemoryTimeline(0, 0, 0, 0)
        if line_batches is not None and len(line_batches) != len(fold_specs):
            raise MemoryModelError(
                f"{len(line_batches)} line batches for {len(fold_specs)} folds"
            )

        if line_batches is None:
            def complete(index: int, cycle: int) -> int:
                return self.backend.complete_fetches(fold_specs[index].fetches, cycle)
        else:
            def complete(index: int, cycle: int) -> int:
                return self.backend.complete_batch(line_batches[index], cycle)

        timings: list[FoldTiming] = []
        # Cold start: fold 0's data fetched before compute begins.
        ready = complete(0, start_cycle)
        cold_start = ready - start_cycle
        clock = ready
        stall_total = 0
        compute_total = 0

        for index, spec in enumerate(fold_specs):
            compute_start = max(clock, ready)
            stall = compute_start - clock
            stall_total += stall
            compute_end = compute_start + spec.cycles
            compute_total += spec.cycles
            if keep_timings:
                timings.append(
                    FoldTiming(
                        fold_index=index,
                        data_ready=ready,
                        compute_start=compute_start,
                        compute_end=compute_end,
                        stall_cycles=stall,
                    )
                )
            # Prefetch the next fold while this one computes.
            if index + 1 < len(fold_specs):
                ready = complete(index + 1, compute_start)
            clock = compute_end

        # Note: ``clock`` started at ``ready``, so the cold start is not
        # part of ``stall_total`` — the two are reported separately and
        # summed in :attr:`MemoryTimeline.stall_fraction`.
        return MemoryTimeline(
            compute_cycles=compute_total,
            total_cycles=clock - start_cycle,
            stall_cycles=stall_total,
            cold_start_cycles=cold_start,
            fold_timings=timings,
        )
