"""Data-layout specification: nested-loop order over a multi-bank SRAM.

Following Figure 11, the multi-bank on-chip memory is a 2D array whose
rows ("lines") aggregate the same-index row of every bank.  A layout is
the pair of nested loop orders:

* **inter-line** — which (c1, h1, w1) block a line holds, with steps
  ``c1_step`` / ``h1_step`` / ``w1_step``;
* **intra-line** — the order of elements within the line (w2, h2, c2
  loops with unit steps; c fastest, matching the address encoding of
  :mod:`repro.core.operand_matrix`).

The index equations are the paper's (Section VI-B)::

    line_id = (c//c1) * ceil(H/h1) * ceil(W/w1) + (h//h1) * ceil(W/w1) + (w//w1)
    col_id  = (w%w1) * h1 * c1 + (h%h1) * c1 + (c%c1)
    bank_id = col_id // bandwidth_per_bank
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import LayoutError
from repro.utils.math import ceil_div


@dataclass(frozen=True)
class TensorView:
    """Interpret a flat operand address range as a C x H x W tensor.

    The core's conv address encoding is ``addr = (h * W + w) * C + c``
    (channel fastest); GEMM operands are given a synthetic H x W split
    of their second axis so the same machinery applies.
    """

    c_dim: int
    h_dim: int
    w_dim: int

    def __post_init__(self) -> None:
        for name in ("c_dim", "h_dim", "w_dim"):
            if getattr(self, name) < 1:
                raise LayoutError(f"{name} must be >= 1, got {getattr(self, name)}")

    @property
    def num_elements(self) -> int:
        """Total elements of the tensor."""
        return self.c_dim * self.h_dim * self.w_dim

    def coords(self, offsets: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Vectorised (c, h, w) decomposition of flat offsets."""
        if (offsets < 0).any():
            raise LayoutError("negative offsets cannot be decomposed")
        wrapped = offsets % self.num_elements
        c = wrapped % self.c_dim
        hw = wrapped // self.c_dim
        w = hw % self.w_dim
        h = hw // self.w_dim
        return c, h, w

    @classmethod
    def for_matrix(cls, rows: int, cols: int) -> "TensorView":
        """View a ``rows x cols`` matrix as C=cols, with H x W ~ rows.

        W is the largest power-of-two-ish divisor near sqrt(rows) so the
        synthetic split stays balanced.
        """
        if rows < 1 or cols < 1:
            raise LayoutError(f"bad matrix {rows}x{cols}")
        w = max(1, int(rows**0.5))
        while rows % w:
            w -= 1
        return cls(c_dim=cols, h_dim=rows // w, w_dim=w)


@dataclass(frozen=True)
class LayoutSpec:
    """One concrete layout of a tensor over a banked SRAM."""

    view: TensorView
    c1_step: int
    h1_step: int
    w1_step: int
    num_banks: int
    bandwidth_per_bank: int  # elements per bank line
    ports_per_bank: int = 1

    def __post_init__(self) -> None:
        for name in ("c1_step", "h1_step", "w1_step", "num_banks", "bandwidth_per_bank", "ports_per_bank"):
            if getattr(self, name) < 1:
                raise LayoutError(f"{name} must be >= 1, got {getattr(self, name)}")
        if self.line_elements > self.num_banks * self.bandwidth_per_bank:
            raise LayoutError(
                f"a line holds {self.line_elements} elements but the banks "
                f"provide only {self.num_banks * self.bandwidth_per_bank}"
            )

    @property
    def line_elements(self) -> int:
        """Elements per aggregated line (one inter-line block)."""
        return self.c1_step * self.h1_step * self.w1_step

    @property
    def total_bandwidth(self) -> int:
        """Elements deliverable per cycle across all banks."""
        return self.num_banks * self.bandwidth_per_bank * self.ports_per_bank

    @property
    def num_lines(self) -> int:
        """Lines needed to hold the whole tensor."""
        view = self.view
        return (
            ceil_div(view.c_dim, self.c1_step)
            * ceil_div(view.h_dim, self.h1_step)
            * ceil_div(view.w_dim, self.w1_step)
        )

    def locate(self, offsets: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Vectorised (line_id, col_id, bank_id) for flat element offsets."""
        c, h, w = self.view.coords(np.asarray(offsets, dtype=np.int64))
        h_blocks = ceil_div(self.view.h_dim, self.h1_step)
        w_blocks = ceil_div(self.view.w_dim, self.w1_step)
        line_id = (
            (c // self.c1_step) * h_blocks * w_blocks
            + (h // self.h1_step) * w_blocks
            + (w // self.w1_step)
        )
        col_id = (
            (w % self.w1_step) * self.h1_step * self.c1_step
            + (h % self.h1_step) * self.c1_step
            + (c % self.c1_step)
        )
        bank_id = col_id // self.bandwidth_per_bank
        return line_id, col_id, bank_id

    @classmethod
    def default_for(
        cls,
        view: TensorView,
        num_banks: int,
        bandwidth_per_bank: int,
        ports_per_bank: int = 1,
    ) -> "LayoutSpec":
        """A reasonable layout: fill the line with C first, then H, then W.

        Mirrors Figure 11's ``C64 H8 W8 -> W2 H4 C16`` style: the
        intra-line capacity ``num_banks * bandwidth_per_bank`` is packed
        greedily with channel elements, then spatial rows/cols.
        """
        capacity = num_banks * bandwidth_per_bank
        c1 = min(view.c_dim, capacity)
        remaining = max(1, capacity // c1)
        h1 = min(view.h_dim, remaining)
        remaining = max(1, remaining // h1)
        w1 = min(view.w_dim, remaining)
        return cls(
            view=view,
            c1_step=c1,
            h1_step=h1,
            w1_step=w1,
            num_banks=num_banks,
            bandwidth_per_bank=bandwidth_per_bank,
            ports_per_bank=ports_per_bank,
        )
