"""Multi-bank on-chip data-layout modelling (paper Section VI)."""

from repro.layout.spec import LayoutSpec, TensorView
from repro.layout.conflict import BankConflictEvaluator, CycleCost
from repro.layout.integrate import LayoutEvalResult, evaluate_layout_slowdown

__all__ = [
    "LayoutSpec",
    "TensorView",
    "BankConflictEvaluator",
    "CycleCost",
    "LayoutEvalResult",
    "evaluate_layout_slowdown",
]
