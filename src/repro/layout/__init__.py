"""Multi-bank on-chip data-layout modelling (paper Section VI)."""

from repro.layout.spec import LayoutSpec, TensorView
from repro.layout.conflict import (
    AVAILABLE_LAYOUT_EVALUATORS,
    BankConflictEvaluator,
    CycleCost,
    make_conflict_evaluator,
)
from repro.layout.conflict_vectorized import VectorizedConflictEvaluator
from repro.layout.integrate import LayoutEvalResult, evaluate_layout_slowdown

__all__ = [
    "AVAILABLE_LAYOUT_EVALUATORS",
    "LayoutSpec",
    "TensorView",
    "BankConflictEvaluator",
    "VectorizedConflictEvaluator",
    "CycleCost",
    "LayoutEvalResult",
    "evaluate_layout_slowdown",
    "make_conflict_evaluator",
]
