"""Multi-bank on-chip data-layout modelling (paper Section VI)."""

from repro.layout.spec import LayoutSpec, TensorView
from repro.layout.conflict import (
    AVAILABLE_LAYOUT_EVALUATORS,
    BankConflictEvaluator,
    CycleCost,
    FoldDemand,
    build_fold_demand,
    make_conflict_evaluator,
)
from repro.layout.conflict_vectorized import VectorizedConflictEvaluator
from repro.layout.integrate import (
    LayoutEvalConfig,
    LayoutEvalResult,
    evaluate_layout_slowdown,
    evaluate_layout_slowdown_many,
)

__all__ = [
    "AVAILABLE_LAYOUT_EVALUATORS",
    "LayoutSpec",
    "TensorView",
    "BankConflictEvaluator",
    "VectorizedConflictEvaluator",
    "CycleCost",
    "FoldDemand",
    "LayoutEvalConfig",
    "LayoutEvalResult",
    "build_fold_demand",
    "evaluate_layout_slowdown",
    "evaluate_layout_slowdown_many",
    "make_conflict_evaluator",
]
