"""Layout-aware memory latency for whole layers (Figures 12 and 13).

Couples the cycle-accurate demand traces of :class:`TraceEngine` with
the bank-conflict evaluator seam: the ifmap SRAM is the multi-banked
buffer under study (it serves the highest-rate stream in every
dataflow), and each compute cycle's ifmap requests are costed under the
realistic bank model versus SCALE-Sim v2's flat bandwidth model.

Two entry points share one pipeline:

* :func:`evaluate_layout_slowdown` — one (banks, bandwidth, layout)
  configuration.  Traces stream fold by fold — each fold's demand is
  consumed (and released) before the next is generated, so memory
  stays O(one fold) rather than O(whole layer).
* :func:`evaluate_layout_slowdown_many` — the **trace fan-out**: one
  streaming pass over the layer's fold traces feeds an arbitrary grid
  of evaluator configurations simultaneously.  The layout-independent
  work (operand matrices, trace generation, ifmap masking, the
  per-fold (cycle, offset) sort/dedup — see
  :class:`repro.layout.conflict.FoldDemand`) runs once; only the
  address -> (bank, line) mapping and the LRU stack-distance cascade
  run per configuration, with configurations sharing inter-line steps
  also sharing one (line, col) decode of the element space.  Results
  are bit-identical to independent calls — both paths consume the same
  artifacts.  ``workers > 1`` additionally fans the per-configuration
  evaluation over a process pool (fold artifacts are then materialised
  for the batch, trading the O(one fold) footprint for parallelism).

The default ``vectorized`` evaluator
(:mod:`repro.layout.conflict_vectorized`) resolves each fold in a few
numpy passes, which is what lets Figures 12/13 run at the paper's
128x128 array on full-layer traces; ``evaluator="reference"`` selects
the scalar executable specification for cross-validation.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence
from dataclasses import dataclass

import numpy as np

from repro.core.dataflow import Dataflow
from repro.core.operand_matrix import FILTER_BASE, IFMAP_BASE, operand_matrices
from repro.core.systolic import TraceEngine
from repro.errors import LayoutError
from repro.layout.conflict import (
    BankConflictEvaluator,
    FoldDemand,
    build_fold_demand,
    make_conflict_evaluator,
)
from repro.layout.conflict_vectorized import (
    _LUT_MAX_ELEMENTS,
    VectorizedConflictEvaluator,
)
from repro.layout.spec import LayoutSpec, TensorView
from repro.store.artifact_store import active_store, canonical_artifact, content_address
from repro.topology.layer import ConvLayer, GemmLayer, Layer
from repro.utils.pool import pool_context


@dataclass(frozen=True)
class LayoutEvalResult:
    """Layout-vs-bandwidth comparison for one layer."""

    layer_name: str
    dataflow: Dataflow
    num_banks: int
    total_bandwidth: int
    cycles_evaluated: int
    layout_cycles: int
    bandwidth_cycles: int
    slowdown: float
    evaluator: str = "vectorized"


@dataclass(frozen=True)
class LayoutEvalConfig:
    """One evaluator configuration of a layout fan-out grid."""

    num_banks: int
    total_bandwidth_words: int
    ports_per_bank: int = 1
    layout: LayoutSpec | None = None
    evaluator: str = "vectorized"
    row_buffers_per_bank: int = 4

    def resolve_layout(self, view: TensorView) -> LayoutSpec:
        """The configuration's layout (explicit, or the documented default)."""
        if self.total_bandwidth_words % self.num_banks:
            raise LayoutError(
                f"total bandwidth {self.total_bandwidth_words} not divisible by "
                f"{self.num_banks} banks"
            )
        if self.layout is not None:
            return self.layout
        return LayoutSpec.default_for(
            view,
            num_banks=self.num_banks,
            bandwidth_per_bank=self.total_bandwidth_words // self.num_banks,
            ports_per_bank=self.ports_per_bank,
        )


def _view_for_layer(layer: Layer) -> TensorView:
    if isinstance(layer, ConvLayer):
        return TensorView(c_dim=layer.channels, h_dim=layer.ifmap_h, w_dim=layer.ifmap_w)
    if isinstance(layer, GemmLayer):
        # X operand is K x N with addr = k * N + n: N plays "channel"
        # (fastest axis), K splits into a synthetic H x W.
        return TensorView.for_matrix(layer.k, layer.n)
    raise LayoutError(f"unsupported layer type: {type(layer).__name__}")


def fold_demand_store_key(
    layer: Layer,
    dataflow: Dataflow,
    array_rows: int,
    array_cols: int,
    max_folds: int | None,
) -> str:
    """Artifact-store content address of a layer's fold-demand stream.

    The stream is a pure function of (layer, dataflow, array shape) —
    no ``layout.*`` knob enters; ``max_folds`` is part of the key so
    capped studies never alias full-layer streams.
    """
    return content_address(
        "fold_demand",
        {
            "layer": canonical_artifact(layer),
            "dataflow": str(dataflow),
            "array_rows": array_rows,
            "array_cols": array_cols,
            "max_folds": max_folds,
        },
    )


def _fold_demand_stream(
    layer: Layer,
    dataflow: Dataflow,
    array_rows: int,
    array_cols: int,
    max_folds: int | None,
) -> Iterator[FoldDemand]:
    """Each fold's ifmap demand artifact, in execution order.

    With an active artifact store the whole per-layer stream is served
    from (or persisted to) disk — skipping trace generation and the
    per-fold (cycle, offset) sort entirely on a warm run — at the cost
    of materialising the fold list instead of streaming it.  Without a
    store the folds stream lazily with O(one fold) memory, exactly as
    before.
    """
    store = active_store()
    if store is not None:
        key = fold_demand_store_key(layer, dataflow, array_rows, array_cols, max_folds)
        folds = store.get("fold_demand", key)
        if folds is None:
            folds = list(
                _generate_fold_demand(layer, dataflow, array_rows, array_cols, max_folds)
            )
            store.put("fold_demand", key, folds)
        return iter(folds)
    return _generate_fold_demand(layer, dataflow, array_rows, array_cols, max_folds)


def _generate_fold_demand(
    layer: Layer,
    dataflow: Dataflow,
    array_rows: int,
    array_cols: int,
    max_folds: int | None,
) -> Iterator[FoldDemand]:
    """Yield each fold's ifmap demand artifact, in execution order."""
    engine = TraceEngine(operand_matrices(layer), dataflow, array_rows, array_cols)
    for index, fold in enumerate(engine.fold_traces()):
        if max_folds is not None and index >= max_folds:
            break
        for matrix in (fold.row_port_demand, fold.col_port_demand):
            top = int(matrix.max()) if matrix.size else -1
            if top < IFMAP_BASE:
                continue  # bubbles only — the reference skips these too
            if top < FILTER_BASE:
                # Pure ifmap stream: feed the trace through unmasked.
                yield build_fold_demand(matrix, base_offset=IFMAP_BASE)
                continue
            ifmap_only = np.where(
                (matrix >= IFMAP_BASE) & (matrix < FILTER_BASE), matrix, -1
            )
            if (ifmap_only >= 0).any():
                yield build_fold_demand(ifmap_only, base_offset=IFMAP_BASE)


def _make_evaluators(
    configs: Sequence[LayoutEvalConfig],
    layouts: Sequence[LayoutSpec],
) -> list[BankConflictEvaluator]:
    """Build one evaluator per configuration, sharing decode work.

    Vectorized evaluators whose layouts share inter-line steps decode
    the element space once (one ``locate`` call) and derive each
    configuration's (bank, line) LUT from it — bit-exact to the LUT
    each would lazily build on its own.
    """
    evaluators = [
        make_conflict_evaluator(
            cfg.evaluator,
            layout,
            bandwidth_model_words=cfg.total_bandwidth_words,
            row_buffers_per_bank=cfg.row_buffers_per_bank,
        )
        for cfg, layout in zip(configs, layouts)
    ]
    by_steps: dict[
        tuple[TensorView, int, int, int], list[VectorizedConflictEvaluator]
    ] = {}
    for evaluator, layout in zip(evaluators, layouts):
        if (
            isinstance(evaluator, VectorizedConflictEvaluator)
            and layout.view.num_elements <= _LUT_MAX_ELEMENTS
        ):
            # Keyed by the full (view, steps) decode identity: explicit
            # layouts may view the operand differently, and sharing a
            # decode across views would be wrong.
            steps = (layout.view, layout.c1_step, layout.h1_step, layout.w1_step)
            by_steps.setdefault(steps, []).append(evaluator)
    for group in by_steps.values():
        if len(group) < 2:
            continue  # a lone config's lazy LUT costs the same
        element_space = np.arange(group[0].layout.view.num_elements, dtype=np.int64)
        line_id, col_id, _ = group[0].layout.locate(element_space)
        for evaluator in group:
            evaluator.prime_key_lut(line_id, col_id)
    return evaluators


def _results_from_evaluators(
    layer: Layer,
    dataflow: Dataflow,
    configs: Sequence[LayoutEvalConfig],
    evaluators: Sequence[BankConflictEvaluator],
) -> list[LayoutEvalResult]:
    return [
        LayoutEvalResult(
            layer_name=layer.name,
            dataflow=dataflow,
            num_banks=cfg.num_banks,
            total_bandwidth=cfg.total_bandwidth_words,
            cycles_evaluated=evaluator.cycles_evaluated,
            layout_cycles=evaluator.total_layout_cycles,
            bandwidth_cycles=evaluator.total_bandwidth_cycles,
            slowdown=evaluator.slowdown,
            evaluator=cfg.evaluator,
        )
        for cfg, evaluator in zip(configs, evaluators)
    ]


# ------------------------------------------------------------- worker pool

#: Per-worker fold artifacts, installed by the pool initializer so the
#: batch is shipped once per worker instead of once per configuration.
_FANOUT_FOLDS: list[FoldDemand] = []


def _fanout_init(folds: list[FoldDemand]) -> None:
    global _FANOUT_FOLDS
    _FANOUT_FOLDS = folds


def _fanout_chunk(
    args: tuple[Layer, Dataflow, list[LayoutEvalConfig], list[LayoutSpec]],
) -> list[LayoutEvalResult]:
    """Worker entry point: run one chunk of configurations over the folds."""
    layer, dataflow, configs, layouts = args
    evaluators = _make_evaluators(configs, layouts)
    for fold in _FANOUT_FOLDS:
        for evaluator in evaluators:
            evaluator.add_fold_demand(fold)
    return _results_from_evaluators(layer, dataflow, configs, evaluators)


# ------------------------------------------------------------ entry points


def evaluate_layout_slowdown_many(
    layer: Layer,
    dataflow: Dataflow | str,
    array_rows: int,
    array_cols: int,
    configs: Sequence[LayoutEvalConfig],
    max_folds: int | None = None,
    workers: int = 1,
) -> list[LayoutEvalResult]:
    """Evaluate a whole grid of layout configurations in one trace pass.

    Generates each fold's demand artifact once and broadcasts it to
    every configuration's evaluator; results come back in ``configs``
    order and are bit-identical to ``len(configs)`` independent
    :func:`evaluate_layout_slowdown` calls (enforced by
    ``tests/layout/test_fanout_equivalence.py``).

    Args:
        configs: the evaluator configurations to fan out over.
        max_folds: cap on folds traced (None, the default, traces the
            full layer).
        workers: process count for the per-configuration evaluation;
            ``1`` (the default) streams folds with O(one fold) memory,
            more workers materialise the fold artifacts once and split
            the configurations across a pool (identical results).
    """
    if isinstance(dataflow, str):
        dataflow = Dataflow.parse(dataflow)
    configs = list(configs)
    if not configs:
        return []
    view = _view_for_layer(layer)
    layouts = [cfg.resolve_layout(view) for cfg in configs]
    stream = _fold_demand_stream(layer, dataflow, array_rows, array_cols, max_folds)

    if workers > 1 and len(configs) > 1:
        folds = list(stream)
        processes = min(workers, len(configs))
        chunks = [
            (layer, dataflow, configs[lo::processes], layouts[lo::processes])
            for lo in range(processes)
        ]
        with pool_context().Pool(
            processes=processes, initializer=_fanout_init, initargs=(folds,)
        ) as pool:
            chunk_results = pool.map(_fanout_chunk, chunks, chunksize=1)
        results: list[LayoutEvalResult | None] = [None] * len(configs)
        for lo, chunk in enumerate(chunk_results):
            results[lo :: len(chunk_results)] = chunk
        assert all(result is not None for result in results)
        return results  # type: ignore[return-value]

    evaluators = _make_evaluators(configs, layouts)
    for fold in stream:
        for evaluator in evaluators:
            evaluator.add_fold_demand(fold)
    return _results_from_evaluators(layer, dataflow, configs, evaluators)


def evaluate_layout_slowdown(
    layer: Layer,
    dataflow: Dataflow | str,
    array_rows: int,
    array_cols: int,
    num_banks: int,
    total_bandwidth_words: int,
    ports_per_bank: int = 1,
    layout: LayoutSpec | None = None,
    max_folds: int | None = None,
    evaluator: str = "vectorized",
) -> LayoutEvalResult:
    """Slowdown of the banked-layout model versus the flat-BW model.

    Args:
        total_bandwidth_words: the on-chip bandwidth both models share;
            the layout model splits it evenly across ``num_banks``.
        layout: explicit layout; defaults to
            :meth:`LayoutSpec.default_for` on the layer's ifmap view.
        max_folds: cap on folds traced (None, the default, traces the
            full layer).
        evaluator: ``"vectorized"`` (default) or ``"reference"`` — both
            produce bit-identical results.
    """
    [result] = evaluate_layout_slowdown_many(
        layer,
        dataflow,
        array_rows,
        array_cols,
        [
            LayoutEvalConfig(
                num_banks=num_banks,
                total_bandwidth_words=total_bandwidth_words,
                ports_per_bank=ports_per_bank,
                layout=layout,
                evaluator=evaluator,
            )
        ],
        max_folds=max_folds,
    )
    return result
