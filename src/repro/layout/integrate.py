"""Layout-aware memory latency for whole layers (Figures 12 and 13).

Couples the cycle-accurate demand traces of :class:`TraceEngine` with
the bank-conflict evaluator seam: the ifmap SRAM is the multi-banked
buffer under study (it serves the highest-rate stream in every
dataflow), and each compute cycle's ifmap requests are costed under the
realistic bank model versus SCALE-Sim v2's flat bandwidth model.

Traces stream fold by fold — each fold's demand matrix is consumed (and
released) before the next is generated, so memory stays O(one fold)
rather than O(whole layer).  The default ``vectorized`` evaluator
(:mod:`repro.layout.conflict_vectorized`) resolves each fold in a few
numpy passes, which is what lets Figures 12/13 run at the paper's
128x128 array on full-layer traces; ``evaluator="reference"`` selects
the scalar executable specification for cross-validation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.dataflow import Dataflow
from repro.core.operand_matrix import FILTER_BASE, IFMAP_BASE, operand_matrices
from repro.core.systolic import TraceEngine
from repro.errors import LayoutError
from repro.layout.conflict import make_conflict_evaluator
from repro.layout.spec import LayoutSpec, TensorView
from repro.topology.layer import ConvLayer, GemmLayer, Layer


@dataclass(frozen=True)
class LayoutEvalResult:
    """Layout-vs-bandwidth comparison for one layer."""

    layer_name: str
    dataflow: Dataflow
    num_banks: int
    total_bandwidth: int
    cycles_evaluated: int
    layout_cycles: int
    bandwidth_cycles: int
    slowdown: float
    evaluator: str = "vectorized"


def _view_for_layer(layer: Layer) -> TensorView:
    if isinstance(layer, ConvLayer):
        return TensorView(c_dim=layer.channels, h_dim=layer.ifmap_h, w_dim=layer.ifmap_w)
    if isinstance(layer, GemmLayer):
        # X operand is K x N with addr = k * N + n: N plays "channel"
        # (fastest axis), K splits into a synthetic H x W.
        return TensorView.for_matrix(layer.k, layer.n)
    raise LayoutError(f"unsupported layer type: {type(layer).__name__}")


def evaluate_layout_slowdown(
    layer: Layer,
    dataflow: Dataflow | str,
    array_rows: int,
    array_cols: int,
    num_banks: int,
    total_bandwidth_words: int,
    ports_per_bank: int = 1,
    layout: LayoutSpec | None = None,
    max_folds: int | None = None,
    evaluator: str = "vectorized",
) -> LayoutEvalResult:
    """Slowdown of the banked-layout model versus the flat-BW model.

    Args:
        total_bandwidth_words: the on-chip bandwidth both models share;
            the layout model splits it evenly across ``num_banks``.
        layout: explicit layout; defaults to
            :meth:`LayoutSpec.default_for` on the layer's ifmap view.
        max_folds: cap on folds traced (None, the default, traces the
            full layer).
        evaluator: ``"vectorized"`` (default) or ``"reference"`` — both
            produce bit-identical results.
    """
    if isinstance(dataflow, str):
        dataflow = Dataflow.parse(dataflow)
    if total_bandwidth_words % num_banks:
        raise LayoutError(
            f"total bandwidth {total_bandwidth_words} not divisible by "
            f"{num_banks} banks"
        )
    view = _view_for_layer(layer)
    if layout is None:
        layout = LayoutSpec.default_for(
            view,
            num_banks=num_banks,
            bandwidth_per_bank=total_bandwidth_words // num_banks,
            ports_per_bank=ports_per_bank,
        )
    conflict = make_conflict_evaluator(
        evaluator, layout, bandwidth_model_words=total_bandwidth_words
    )
    engine = TraceEngine(operand_matrices(layer), dataflow, array_rows, array_cols)

    for index, fold in enumerate(engine.fold_traces()):
        if max_folds is not None and index >= max_folds:
            break
        for matrix in (fold.row_port_demand, fold.col_port_demand):
            top = int(matrix.max()) if matrix.size else -1
            if top < IFMAP_BASE:
                continue  # bubbles only — the reference skips these too
            if top < FILTER_BASE:
                # Pure ifmap stream: feed the trace through unmasked.
                conflict.add_demand_matrix(matrix, base_offset=IFMAP_BASE)
                continue
            ifmap_only = np.where(
                (matrix >= IFMAP_BASE) & (matrix < FILTER_BASE), matrix, -1
            )
            if (ifmap_only >= 0).any():
                conflict.add_demand_matrix(ifmap_only, base_offset=IFMAP_BASE)

    return LayoutEvalResult(
        layer_name=layer.name,
        dataflow=dataflow,
        num_banks=num_banks,
        total_bandwidth=total_bandwidth_words,
        cycles_evaluated=conflict.cycles_evaluated,
        layout_cycles=conflict.total_layout_cycles,
        bandwidth_cycles=conflict.total_bandwidth_cycles,
        slowdown=conflict.slowdown,
        evaluator=evaluator,
    )
