"""Layout-aware memory latency for whole layers (Figures 12 and 13).

Couples the cycle-accurate demand traces of :class:`TraceEngine` with
:class:`BankConflictEvaluator`: the ifmap SRAM is the multi-banked
buffer under study (it serves the highest-rate stream in every
dataflow), and each compute cycle's ifmap requests are costed under the
realistic bank model versus SCALE-Sim v2's flat bandwidth model.

Full traces are O(cycles x ports), so callers bound the work with
``max_folds``; the slowdown ratio converges after a handful of folds
because the access pattern is periodic.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.dataflow import Dataflow
from repro.core.operand_matrix import FILTER_BASE, IFMAP_BASE, operand_matrices
from repro.core.systolic import TraceEngine
from repro.errors import LayoutError
from repro.layout.conflict import BankConflictEvaluator
from repro.layout.spec import LayoutSpec, TensorView
from repro.topology.layer import ConvLayer, GemmLayer, Layer


@dataclass(frozen=True)
class LayoutEvalResult:
    """Layout-vs-bandwidth comparison for one layer."""

    layer_name: str
    dataflow: Dataflow
    num_banks: int
    total_bandwidth: int
    cycles_evaluated: int
    layout_cycles: int
    bandwidth_cycles: int
    slowdown: float


def _view_for_layer(layer: Layer) -> TensorView:
    if isinstance(layer, ConvLayer):
        return TensorView(c_dim=layer.channels, h_dim=layer.ifmap_h, w_dim=layer.ifmap_w)
    if isinstance(layer, GemmLayer):
        # X operand is K x N with addr = k * N + n: N plays "channel"
        # (fastest axis), K splits into a synthetic H x W.
        return TensorView.for_matrix(layer.k, layer.n)
    raise LayoutError(f"unsupported layer type: {type(layer).__name__}")


def evaluate_layout_slowdown(
    layer: Layer,
    dataflow: Dataflow | str,
    array_rows: int,
    array_cols: int,
    num_banks: int,
    total_bandwidth_words: int,
    ports_per_bank: int = 1,
    layout: LayoutSpec | None = None,
    max_folds: int | None = 8,
) -> LayoutEvalResult:
    """Slowdown of the banked-layout model versus the flat-BW model.

    Args:
        total_bandwidth_words: the on-chip bandwidth both models share;
            the layout model splits it evenly across ``num_banks``.
        layout: explicit layout; defaults to
            :meth:`LayoutSpec.default_for` on the layer's ifmap view.
        max_folds: cap on folds traced (None = all folds).
    """
    if isinstance(dataflow, str):
        dataflow = Dataflow.parse(dataflow)
    if total_bandwidth_words % num_banks:
        raise LayoutError(
            f"total bandwidth {total_bandwidth_words} not divisible by "
            f"{num_banks} banks"
        )
    view = _view_for_layer(layer)
    if layout is None:
        layout = LayoutSpec.default_for(
            view,
            num_banks=num_banks,
            bandwidth_per_bank=total_bandwidth_words // num_banks,
            ports_per_bank=ports_per_bank,
        )
    evaluator = BankConflictEvaluator(layout, bandwidth_model_words=total_bandwidth_words)
    engine = TraceEngine(operand_matrices(layer), dataflow, array_rows, array_cols)

    for index, fold in enumerate(engine.fold_traces()):
        if max_folds is not None and index >= max_folds:
            break
        for matrix in (fold.row_port_demand, fold.col_port_demand):
            ifmap_only = np.where(
                (matrix >= IFMAP_BASE) & (matrix < FILTER_BASE), matrix, -1
            )
            if (ifmap_only >= 0).any():
                evaluator.add_demand_matrix(ifmap_only, base_offset=IFMAP_BASE)

    return LayoutEvalResult(
        layer_name=layer.name,
        dataflow=dataflow,
        num_banks=num_banks,
        total_bandwidth=total_bandwidth_words,
        cycles_evaluated=evaluator.cycles_evaluated,
        layout_cycles=evaluator.total_layout_cycles,
        bandwidth_cycles=evaluator.total_bandwidth_cycles,
        slowdown=evaluator.slowdown,
    )
