"""VectorizedConflictEvaluator: offline bank-LRU evaluation with numpy.

Bit-exact to :class:`repro.layout.conflict.BankConflictEvaluator`, but
the per-cycle Python loop (per-bank ``OrderedDict`` LRUs) is replaced by
array passes over whole demand matrices:

* **request extraction + decode** — the layout-independent half
  (boolean masking, per-cycle request counts, the (cycle, offset) sort
  and per-cycle offset dedup) lives in
  :func:`repro.layout.conflict.build_fold_demand`, so a fan-out over
  many evaluator configurations computes it once per fold
  (:meth:`VectorizedConflictEvaluator.add_fold_demand`); (bank, line)
  keys come from a lazily-built lookup table over the tensor's element
  space (the trace re-reads the same elements thousands of times, so
  decoding each distinct offset once beats re-running the index
  arithmetic per request), and fan-outs whose configurations share
  inter-line steps derive each LUT from one shared decode
  (:meth:`VectorizedConflictEvaluator.prime_key_lut`).
* **per-cycle dedup** — the reference walks ``np.unique`` keys per
  cycle; one global sort of ``cycle * key_space + key`` reproduces that
  exact (cycle, then ascending key) touch order for the whole matrix.
* **LRU hits via stack distances** — a touch of a (bank, line) is a
  buffered hit iff ``D < row_buffers_per_bank``, where ``D`` is the
  number of distinct lines touched in that bank since the line's
  previous touch.  With ``p[k]`` the per-bank position of the previous
  touch and ``gap = k - p[k] - 1`` (touches in between), ``D`` resolves
  through an exact three-tier cascade:

  1. ``gap < B`` — hit (``D <= gap``), no counting needed;
  2. ``p[k] >= max(p[j] for j < k in the bank)`` — no line inside the
     window repeats, so ``D = gap`` exactly (the segmented running-max
     is one scan).  This covers the periodic line-cycling that
     dominates systolic traces;
  3. residual touches — ``D = #{j in window : p[j] <= p[k]}``, counted
     directly: one vector pass per window offset while windows stay
     shallow, one contiguous slice per touch when residuals are few,
     and otherwise a full offline prev-greater merge count (sorted
     blocks + one global ``searchsorted`` per level, banks kept
     disjoint by segment offsets).

* **cost reduction** — per-(cycle, bank) new-line counts and the
  per-cycle ``worst_new`` maximum are segmented ``reduceat`` scans; the
  layout/bandwidth cycle totals are array sums.

State across calls (the per-bank LRU buffers the scalar reference
carries between folds) is exact: each call is prefixed with synthetic
*preamble* touches replaying every bank's open lines in LRU order, and
ends by re-extracting the ``row_buffers_per_bank`` most recently used
distinct lines per bank.
"""

from __future__ import annotations

import numpy as np

from repro.layout.conflict import (
    BankConflictEvaluator,
    CycleCost,
    FoldDemand,
    build_fold_demand,
)
from repro.layout.spec import LayoutSpec

#: Tensors up to this many elements get a (bank, line) decode LUT.
_LUT_MAX_ELEMENTS = 1 << 22

_INT32_MAX = np.iinfo(np.int32).max

#: Residual windows are counted directly (one contiguous slice per
#: touch) while their summed lengths stay under this budget; beyond it
#: the gap-class difference-array passes or the offline merge count
#: take over (see the residual dispatch in ``_resolve_worst_new``).
_WINDOW_SCAN_BUDGET = 1 << 24


def _count_prev_greater(values: np.ndarray) -> np.ndarray:
    """For each i: ``#{j < i : values[j] > values[i]}`` (values >= 0).

    Bottom-up merge counting: at each level the array is sorted within
    blocks of ``width``; every right-half element is ranked against its
    left half with one global ``searchsorted`` (per-block offsets keep
    the concatenated left halves globally sorted), then blocks merge by
    an axis sort.  O(n log^2 n) in a handful of numpy passes per level.
    """
    n = values.size
    counts = np.zeros(n, dtype=np.int64)
    if n < 2:
        return counts
    arr = values.astype(np.int64) + 1  # pads are 0, real values >= 1
    perm = np.arange(n, dtype=np.int64)
    width = 1
    while width < arr.size:
        size = 2 * width
        nblocks = -(-arr.size // size)
        padded = nblocks * size
        if padded != arr.size:
            arr = np.concatenate([arr, np.zeros(padded - arr.size, dtype=np.int64)])
            perm = np.concatenate(
                [perm, np.full(padded - perm.size, -1, dtype=np.int64)]
            )
        blocks = arr.reshape(nblocks, size)
        lefts = blocks[:, :width]
        rights = blocks[:, width:]
        span = int(arr.max()) + 1
        offsets = np.arange(nblocks, dtype=np.int64)[:, None] * span
        flat_lefts = (lefts + offsets).ravel()
        queries = (rights + offsets).ravel()
        le_within = np.searchsorted(flat_lefts, queries, side="right").astype(
            np.int64
        ) - np.repeat(np.arange(nblocks, dtype=np.int64) * width, width)
        greater = width - le_within
        right_perm = perm.reshape(nblocks, size)[:, width:].ravel()
        real = right_perm >= 0
        # Each original index occupies exactly one slot per level, so a
        # plain fancy-index accumulate is safe (and much faster than ufunc.at).
        counts[right_perm[real]] += greater[real]
        order = np.argsort(blocks, axis=1, kind="stable")
        arr = np.take_along_axis(blocks, order, axis=1).ravel()
        perm = np.take_along_axis(perm.reshape(nblocks, size), order, axis=1).ravel()
        width = size
    return counts


def _segmented_running_max_exclusive(
    values: np.ndarray, seg_id: np.ndarray, seg_starts: np.ndarray
) -> np.ndarray:
    """Per-segment exclusive running max (segments contiguous, -2 seed)."""
    n = values.size
    big = np.int64(int(values.max()) + 4)  # segment stride above any shifted value
    shifted = (values + 2) + seg_id * big  # values >= -1 -> strictly positive
    running = np.maximum.accumulate(shifted)
    exclusive = np.empty(n, dtype=np.int64)
    exclusive[0] = 0
    exclusive[1:] = running[:-1]
    exclusive[seg_starts] = 0  # no predecessor within the segment
    return exclusive - seg_id * big - 2  # 0 maps below any real value


class VectorizedConflictEvaluator(BankConflictEvaluator):
    """Drop-in vectorized evaluator (see module docstring).

    Inherits the reference's validated construction, accumulation
    counters and ``slowdown`` property; every evaluation path funnels
    through the offline :meth:`_evaluate_fold` pass over a
    :class:`~repro.layout.conflict.FoldDemand` artifact.
    """

    def __init__(
        self,
        layout: LayoutSpec,
        bandwidth_model_words: int,
        row_buffers_per_bank: int = 4,
    ) -> None:
        super().__init__(
            layout,
            bandwidth_model_words=bandwidth_model_words,
            row_buffers_per_bank=row_buffers_per_bank,
        )
        # Per-bank open lines, LRU -> MRU (each list <= row_buffers long).
        self._bank_lines: dict[int, list[int]] = {}
        self._key_lut: np.ndarray | None = None

    # ------------------------------------------------------------ public API

    def cost_of_cycle(self, offsets: np.ndarray) -> CycleCost:
        """Cost of one cycle's element requests (flat offsets)."""
        offsets = np.asarray(offsets, dtype=np.int64)
        if offsets.size == 0:
            return CycleCost(0, 1, 1)
        if (offsets < 0).any():
            self.layout.locate(offsets)  # raises the reference's LayoutError
        costs = self._evaluate_fold(
            build_fold_demand(offsets.reshape(1, -1), dedup=False),
            accumulate=False,
            return_costs=True,
        )
        assert costs is not None
        return costs[0]

    def add_cycle(self, offsets: np.ndarray) -> CycleCost:
        """Evaluate and accumulate one cycle."""
        offsets = np.asarray(offsets, dtype=np.int64)
        if (offsets < 0).any():
            self.layout.locate(offsets)  # raises the reference's LayoutError
        costs = self._evaluate_fold(
            build_fold_demand(offsets.reshape(1, -1), dedup=False),
            accumulate=True,
            return_costs=True,
        )
        assert costs is not None
        return costs[0]

    def add_demand_matrix(
        self,
        demand: np.ndarray,
        base_offset: int = 0,
        return_costs: bool = False,
    ) -> list[CycleCost] | None:
        """Evaluate every row of a (cycles x ports) demand matrix."""
        return self._evaluate_fold(
            build_fold_demand(demand, base_offset, dedup=False),
            accumulate=True,
            return_costs=return_costs,
        )

    def add_fold_demand(
        self, fold: FoldDemand, return_costs: bool = False
    ) -> list[CycleCost] | None:
        """Evaluate one fold from its layout-independent artifact.

        The fan-out entry point: the caller builds the
        :class:`~repro.layout.conflict.FoldDemand` once per fold and
        broadcasts it to every evaluator configuration; only the
        address -> (bank, line) mapping and the LRU stack-distance
        cascade below run per configuration.
        """
        return self._evaluate_fold(fold, accumulate=True, return_costs=return_costs)

    # ----------------------------------------------------------- decode LUT

    def prime_key_lut(self, line_id: np.ndarray, col_id: np.ndarray) -> None:
        """Adopt a shared (line, col) decode of the tensor's element space.

        ``line_id`` / ``col_id`` depend only on the layout's inter-line
        steps, not on its bank split, so a fan-out over configurations
        sharing those steps computes them once (one
        :meth:`~repro.layout.spec.LayoutSpec.locate` over the element
        space) and derives each configuration's key LUT here with two
        cheap array ops.  Bit-exact: this is precisely the LUT
        :meth:`_keys_for` would build from its own ``locate`` call.
        """
        layout = self.layout
        num_elements = layout.view.num_elements
        if num_elements > _LUT_MAX_ELEMENTS:
            return  # the LUT path is disabled for huge tensors anyway
        if line_id.shape != (num_elements,) or col_id.shape != (num_elements,):
            raise ValueError(
                f"decode arrays must cover the element space ({num_elements},)"
            )
        num_lines1 = layout.num_lines + 1
        keys = (col_id // layout.bandwidth_per_bank) * num_lines1 + line_id
        key_space = layout.num_banks * num_lines1
        dtype = np.int32 if key_space <= _INT32_MAX else np.int64
        self._key_lut = keys.astype(dtype, copy=False)

    def _keys_for(self, offsets: np.ndarray) -> np.ndarray:
        """(bank, line) keys (``bank * (num_lines+1) + line``) per offset."""
        layout = self.layout
        num_lines1 = layout.num_lines + 1
        num_elements = layout.view.num_elements
        if num_elements > _LUT_MAX_ELEMENTS:
            line_id, _, bank_id = layout.locate(offsets)
            return bank_id * num_lines1 + line_id
        if offsets.size and int(offsets.min()) < 0:
            # locate() would reject these; preserve the reference's error.
            layout.locate(offsets)
        if self._key_lut is None:
            element_space = np.arange(num_elements, dtype=np.int64)
            line_id, _, bank_id = layout.locate(element_space)
            keys = bank_id * num_lines1 + line_id
            key_space = layout.num_banks * num_lines1
            dtype = np.int32 if key_space <= _INT32_MAX else np.int64
            self._key_lut = keys.astype(dtype)
        return self._key_lut[offsets % num_elements]

    # --------------------------------------------------------- offline pass

    def _evaluate_fold(
        self,
        fold: FoldDemand,
        accumulate: bool,
        return_costs: bool,
    ) -> list[CycleCost] | None:
        rows = fold.cycles
        requests = fold.requests
        worst_new = np.zeros(rows, dtype=np.int64)

        if fold.offsets.size:
            keys = self._keys_for(fold.offsets)
            num_lines1 = self.layout.num_lines + 1
            key_space = self.layout.num_banks * num_lines1
            # One global sort reproduces the reference's per-cycle
            # ascending-key walk; adjacent duplicates are distinct
            # offsets sharing a (cycle, bank, line).
            if rows * key_space <= _INT32_MAX:
                combined = fold.cycle_index.astype(np.int32) * np.int32(key_space)
                combined += keys.astype(np.int32, copy=False)
            else:
                combined = fold.cycle_index * np.int64(key_space) + keys
            combined.sort()
            keep = np.empty(combined.size, dtype=bool)
            keep[0] = True
            np.not_equal(combined[1:], combined[:-1], out=keep[1:])
            touches = combined[keep]
            self._resolve_worst_new(touches, key_space, num_lines1, worst_new)

        layout_cycles = np.maximum(1, -(-worst_new // self.layout.ports_per_bank))
        bandwidth_cycles = np.maximum(1, -(-requests // self.bandwidth_model_words))

        if accumulate:
            self.total_layout_cycles += int(layout_cycles.sum())
            self.total_bandwidth_cycles += int(bandwidth_cycles.sum())
            self.total_requests += int(requests.sum())
            self.cycles_evaluated += rows
        if not return_costs:
            return None
        return [
            CycleCost(int(r), int(l), int(b))
            for r, l, b in zip(requests, layout_cycles, bandwidth_cycles)
        ]

    # ------------------------------------------------------- hit resolution

    def _resolve_worst_new(
        self,
        touches: np.ndarray,
        key_space: int,
        num_lines1: int,
        worst_new: np.ndarray,
    ) -> None:
        """Fill per-cycle worst new-line counts; update the bank state.

        ``touches`` is the deduped, (cycle, key)-sorted stream encoded
        as ``cycle * key_space + key``.  The stream is prefixed with
        preamble touches replaying the per-bank LRU buffers carried
        from earlier calls (one synthetic negative group each, so they
        never merge with real touches), and the end-of-call state is
        re-extracted afterwards.
        """
        row_buffers = self.row_buffers_per_bank
        num_banks = key_space // num_lines1
        t_key = touches % key_space
        # cycle * num_banks + bank — group identity in one division.
        t_grp = touches // num_lines1
        pre_key_list = [
            bank * num_lines1 + line
            for bank, lines in self._bank_lines.items()
            for line in lines
        ]
        n_pre = len(pre_key_list)
        if n_pre:
            pre_keys = np.array(pre_key_list, dtype=t_key.dtype)
            key_all = np.concatenate([pre_keys, t_key])
            # One synthetic pre-cycle group per preamble touch, keyed so
            # grp % num_banks still recovers the touch's true bank.
            pre_grp = (
                np.arange(-n_pre, 0, dtype=t_grp.dtype) * num_banks
                + pre_keys // num_lines1
            )
            grp_all = np.concatenate([pre_grp, t_grp])
        else:
            key_all = t_key
            grp_all = t_grp
        n = key_all.size
        pos_dtype = np.int32 if n < _INT32_MAX else np.int64
        index = np.arange(n, dtype=pos_dtype)

        # --- (cycle, bank) groups: contiguous runs of the touch stream.
        group_start = np.empty(n, dtype=bool)
        group_start[0] = True
        np.not_equal(grp_all[1:], grp_all[:-1], out=group_start[1:])
        g_starts = group_start.nonzero()[0]

        if num_banks == 1:
            # Single bank: the stream order *is* the bank's time order.
            r = index
        else:
            # --- per-bank positions r without a touch-level sort: order
            # the (few) groups by bank, prefix-sum their sizes per bank,
            # and scatter the fused (base - start) offsets back.
            g_size = np.diff(np.append(g_starts, n))
            g_id = np.repeat(np.arange(g_starts.size, dtype=pos_dtype), g_size)
            g_bank = grp_all[g_starts] % num_banks  # group-level, cheap
            g_by_bank = np.argsort(g_bank, kind="stable")
            bank_sorted = g_bank[g_by_bank]
            b_start = np.empty(g_by_bank.size, dtype=bool)
            b_start[0] = True
            b_start[1:] = bank_sorted[1:] != bank_sorted[:-1]
            b_seg = np.cumsum(b_start) - 1
            sizes_sorted = g_size[g_by_bank]
            csum = np.cumsum(sizes_sorted) - sizes_sorted  # exclusive
            base_sorted = csum - csum[b_start.nonzero()[0]][b_seg]
            g_offset = np.empty(g_by_bank.size, dtype=pos_dtype)
            g_offset[g_by_bank] = base_sorted
            g_offset -= g_starts.astype(pos_dtype)
            r = index + g_offset[g_id]

        # --- previous occurrence of the same (bank, line), as a per-bank
        # position p (-1 when the line was never touched before).  The
        # narrowest integer view keeps the stable (radix) sort to as few
        # passes as possible.
        if key_space <= 1 << 16:
            by_key = np.argsort(key_all.astype(np.uint16), kind="stable")
        elif key_all.dtype == np.int64 and key_space <= _INT32_MAX:
            by_key = np.argsort(key_all.astype(np.int32), kind="stable")
        else:
            by_key = np.argsort(key_all, kind="stable")
        ks = key_all[by_key]
        same = ks[1:] == ks[:-1]
        r_sorted = r[by_key]
        p_sorted = np.empty(n, dtype=pos_dtype)
        p_sorted[0] = -1
        np.copyto(p_sorted[1:], r_sorted[:-1])
        p_sorted[1:][~same] = -1
        p = np.empty(n, dtype=pos_dtype)
        p[by_key] = p_sorted
        has_prev = p >= 0
        gap = r - p  # true gap + 1; only compared under has_prev

        # --- per-bank running max of p over the time order: an inclusive
        # within-group scan (p[k] equals the running max iff it beats every
        # earlier p in its group) plus a per-bank carry across groups.
        if num_banks == 1:
            tier2 = np.maximum.accumulate(p) == p
        else:
            big = np.int64(n + 4)
            shifted = p + g_id * big
            tier2 = np.maximum.accumulate(shifted) == shifted
            g_max = np.maximum.reduceat(p, g_starts)
            carry_sorted = _segmented_running_max_exclusive(
                g_max[g_by_bank], b_seg, b_start.nonzero()[0]
            )
            g_carry = np.empty(g_by_bank.size, dtype=np.int64)
            g_carry[g_by_bank] = carry_sorted
            tier2 &= p >= g_carry[g_id]

        # --- exact three-tier cascade (module docstring).
        hit = has_prev & (gap <= row_buffers)  # gap here is true gap + 1
        residual = has_prev & ~hit & ~tier2
        res_idx = residual.nonzero()[0]
        if res_idx.size:
            bank_all = key_all // num_lines1
            if num_banks <= 1 << 8:
                by_bank = np.argsort(bank_all.astype(np.uint8), kind="stable")
            elif num_banks <= 1 << 16:
                by_bank = np.argsort(bank_all.astype(np.uint16), kind="stable")
            else:
                by_bank = np.argsort(bank_all, kind="stable")
            p_seq = p[by_bank].astype(np.int64)
            bank_seq = bank_all[by_bank]
            res_gap = gap[res_idx].astype(np.int64)
            seg_first = np.searchsorted(
                bank_seq, np.arange(num_banks, dtype=bank_seq.dtype)
            ).astype(np.int64)
            gap_classes, class_counts = np.unique(res_gap, return_counts=True)
            # Dominant window lengths (periodic revisit strides) resolve
            # with one O(n) pass each; the straggler classes (typically
            # fold-boundary touches) fall to the per-touch slice count.
            # Strategy choice is by estimated work: per-touch slices cost
            # their summed window lengths, a gap-class pass costs O(n).
            dominant = class_counts >= max(64, res_idx.size // 64)
            stragglers = int(class_counts[~dominant].sum())
            total_window = int(res_gap.sum()) - res_idx.size
            if res_idx.size <= 16384 and total_window <= _WINDOW_SCAN_BUDGET:
                self._resolve_residuals_by_slice(
                    res_idx, p, r, bank_all, p_seq, seg_first, hit
                )
            elif dominant.sum() <= 32 and stragglers <= 16384:
                self._resolve_residuals_by_gap_class(
                    res_idx,
                    res_gap,
                    gap_classes[dominant],
                    p,
                    bank_all,
                    p_seq,
                    bank_seq,
                    seg_first,
                    hit,
                )
                if stragglers:
                    strag = np.isin(res_gap, gap_classes[~dominant]).nonzero()[0]
                    self._resolve_residuals_by_slice(
                        res_idx[strag], p, r, bank_all, p_seq, seg_first, hit
                    )
            else:
                # Many residuals over many window lengths: one offline
                # merge count resolves every touch's distance at once.
                seg_start = np.empty(n, dtype=bool)
                seg_start[0] = True
                seg_start[1:] = bank_seq[1:] != bank_seq[:-1]
                seg_id = np.cumsum(seg_start) - 1
                inversions = _count_prev_greater(
                    (p_seq + 1) + seg_id * np.int64(n + 2)
                )
                distance_seq = (gap[by_bank] - 1) - inversions
                exact_hit = np.empty(n, dtype=bool)
                exact_hit[by_bank] = distance_seq < row_buffers
                hit[residual] = exact_hit[residual]

        # --- per-(cycle, bank) new-line counts over the real groups, then
        # the per-cycle max (preamble groups are exactly the first n_pre).
        real_starts = g_starts[n_pre:]
        miss = ~hit
        new_per_group = np.add.reduceat(miss.astype(np.int32), real_starts)
        g_cyc = grp_all[real_starts] // num_banks
        c_start = np.empty(g_cyc.size, dtype=bool)
        c_start[0] = True
        c_start[1:] = g_cyc[1:] != g_cyc[:-1]
        c_starts = c_start.nonzero()[0]
        worst_new[g_cyc[c_starts]] = np.maximum.reduceat(new_per_group, c_starts)

        # --- end-of-call state: per bank, the last `row_buffers` distinct
        # lines in recency order (preamble touches included, so carried
        # state merges exactly).
        is_last = np.empty(n, dtype=bool)
        is_last[-1] = True
        is_last[:-1] = ~same
        last_global = by_key[is_last]
        lg_key = key_all[last_global]
        order = np.argsort(
            (lg_key // num_lines1) * np.int64(n + 1) + last_global, kind="stable"
        )
        lg = last_global[order]
        lg_key = key_all[lg]
        lg_bank = lg_key // num_lines1
        lg_line = lg_key % num_lines1
        lb_start = np.empty(lg.size, dtype=bool)
        lb_start[0] = True
        lb_start[1:] = lg_bank[1:] != lg_bank[:-1]
        bounds = lb_start.nonzero()[0].tolist() + [lg.size]
        state: dict[int, list[int]] = {}
        for lo, hi in zip(bounds[:-1], bounds[1:]):
            keep_lo = max(lo, hi - row_buffers)
            state[int(lg_bank[lo])] = lg_line[keep_lo:hi].tolist()
        self._bank_lines = state

    def _resolve_residuals_by_slice(
        self,
        res_idx: np.ndarray,
        p: np.ndarray,
        r: np.ndarray,
        bank_all: np.ndarray,
        p_seq: np.ndarray,
        seg_first: np.ndarray,
        hit: np.ndarray,
    ) -> None:
        """Resolve residual windows with one contiguous slice count each.

        ``D = #{j in window : p[j] <= p[k]}`` — the first-in-window
        touches are exactly the distinct lines.
        """
        row_buffers = self.row_buffers_per_bank
        starts = seg_first[bank_all[res_idx]]
        for t, start, lo_t in zip(
            res_idx.tolist(), starts.tolist(), p[res_idx].tolist()
        ):
            window = p_seq[start + lo_t + 1 : start + int(r[t])]
            hit[t] = int(np.count_nonzero(window <= lo_t)) < row_buffers

    def _resolve_residuals_by_gap_class(
        self,
        res_idx: np.ndarray,
        res_gap: np.ndarray,
        gap_classes: np.ndarray,
        p: np.ndarray,
        bank_all: np.ndarray,
        p_seq: np.ndarray,
        bank_seq: np.ndarray,
        seg_first: np.ndarray,
        hit: np.ndarray,
    ) -> None:
        """Resolve residual windows exactly, one O(n) pass per window length.

        Periodic systolic traces revisit lines at a handful of fixed
        strides, so residual touches cluster into very few distinct gap
        values.  For one gap ``g`` every query is a length-(g-1)
        sliding window, and the distinct-line count of *every* window
        start resolves offline: per-bank position ``j`` is
        first-in-window (``p[j] <= s``) for exactly the window starts
        ``s in [max(p[j], j - g + 1), j - 1]``, so two ``bincount``
        difference arrays plus one ``cumsum`` yield
        ``D(s) = #{first-in-window touches}`` for all ``s`` at once.
        Queries then gather their window start's count.
        """
        n = p_seq.size
        row_buffers = self.row_buffers_per_bank
        index = np.arange(n, dtype=np.int64)
        seg_start_j = seg_first[bank_seq]  # global start of each touch's bank
        # Class-independent interval floor: the window start can never
        # precede the line's previous touch or the segment start.
        floor = seg_start_j + np.maximum(p_seq, 0)
        q_pos = seg_first[bank_all[res_idx]] + p[res_idx]  # window starts, global
        for g in gap_classes.tolist():
            sel = (res_gap == g).nonzero()[0]
            lo = np.maximum(floor, index - g + 1)
            valid = lo < index  # interval [lo, j - 1] non-empty
            add = np.bincount(lo[valid], minlength=n)
            sub = np.bincount(index[valid], minlength=n)
            counts = np.cumsum(add[:n] - sub[:n])
            hit[res_idx[sel]] = counts[q_pos[sel]] < row_buffers
