"""Bank-conflict evaluation: per-cycle request sets -> access latency.

For every compute cycle the array requests a set of elements.  Each bank
serves its requests from ``row_buffers`` open-line buffers (the 'bank
size' knob of Section VII-C): a request to an already-open line is a
buffered hit, while each newly-opened line costs one of the bank's
``ports_per_bank`` accesses for the cycle::

    cost = max(1, max_over_banks ceil(new_lines_in_bank / ports))

SCALE-Sim v2's pure bandwidth model instead charges
``ceil(requests / total_bandwidth)``.  The slowdown the paper plots
(Figures 12/13) is the ratio of the two totals minus one, which can be
negative: an open line delivers many elements per access, so well-laid-
out requests beat the flat bandwidth assumption.

Like the DRAM datapath (:mod:`repro.dram.engine`), the evaluation runs
behind a *pluggable seam*:

* :class:`BankConflictEvaluator` — the scalar semantics, one compute
  cycle at a time with per-bank ``OrderedDict`` LRUs.  It is the
  executable specification every other evaluator is validated against.
* :class:`repro.layout.conflict_vectorized.VectorizedConflictEvaluator`
  — the vectorized evaluator (offline LRU stack distances over whole
  demand matrices), exact to the reference bit for bit.

Both are selected by name through :func:`make_conflict_evaluator`
(config ``[layout] Evaluator``, CLI ``--layout-evaluator``, sweepable
as ``layout.evaluator``).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro.config.system import VALID_LAYOUT_EVALUATORS
from repro.errors import LayoutError
from repro.layout.spec import LayoutSpec
from repro.utils.math import ceil_div

#: Evaluator implementations selectable via ``layout.evaluator`` (the
#: canonical list lives in :mod:`repro.config.system` so the config
#: layer stays a leaf; this alias is the seam-side name).
AVAILABLE_LAYOUT_EVALUATORS = VALID_LAYOUT_EVALUATORS


@dataclass(frozen=True)
class CycleCost:
    """Cost of serving one cycle's requests under both models."""

    requests: int
    layout_cycles: int
    bandwidth_cycles: int


class BankConflictEvaluator:
    """Accumulates per-cycle costs for a layout and a bandwidth budget.

    Args:
        layout: the banked-SRAM layout under evaluation.
        bandwidth_model_words: words/cycle assumed by the flat model.
        row_buffers_per_bank: open-line buffers per bank (LRU); lines in
            a buffer are re-read for free on later cycles.
    """

    def __init__(
        self,
        layout: LayoutSpec,
        bandwidth_model_words: int,
        row_buffers_per_bank: int = 4,
    ) -> None:
        if bandwidth_model_words < 1:
            raise LayoutError(
                f"bandwidth_model_words must be >= 1, got {bandwidth_model_words}"
            )
        if row_buffers_per_bank < 1:
            raise LayoutError(
                f"row_buffers_per_bank must be >= 1, got {row_buffers_per_bank}"
            )
        self.layout = layout
        self.bandwidth_model_words = bandwidth_model_words
        self.row_buffers_per_bank = row_buffers_per_bank
        self.total_layout_cycles = 0
        self.total_bandwidth_cycles = 0
        self.total_requests = 0
        self.cycles_evaluated = 0
        # Per-bank LRU of open line ids.
        self._open_lines: dict[int, OrderedDict[int, None]] = {}

    def _bank_buffer(self, bank: int) -> OrderedDict[int, None]:
        if bank not in self._open_lines:
            self._open_lines[bank] = OrderedDict()
        return self._open_lines[bank]

    def cost_of_cycle(self, offsets: np.ndarray) -> CycleCost:
        """Cost of one cycle's element requests (flat offsets).

        Updates the per-bank open-line state as a side effect.
        """
        offsets = np.asarray(offsets, dtype=np.int64)
        requests = int(offsets.size)
        if requests == 0:
            return CycleCost(0, 1, 1)
        line_id, _, bank_id = self.layout.locate(offsets)
        keys = bank_id * (self.layout.num_lines + 1) + line_id
        unique_keys = np.unique(keys)

        worst_new = 0
        per_bank_new: dict[int, int] = {}
        for key in unique_keys.tolist():
            bank = key // (self.layout.num_lines + 1)
            line = key % (self.layout.num_lines + 1)
            buffer = self._bank_buffer(bank)
            if line in buffer:
                buffer.move_to_end(line)
                continue
            buffer[line] = None
            while len(buffer) > self.row_buffers_per_bank:
                buffer.popitem(last=False)
            per_bank_new[bank] = per_bank_new.get(bank, 0) + 1
        if per_bank_new:
            worst_new = max(per_bank_new.values())

        layout_cycles = max(1, ceil_div(worst_new, self.layout.ports_per_bank)) if worst_new else 1
        bandwidth_cycles = max(1, ceil_div(requests, self.bandwidth_model_words))
        return CycleCost(requests, layout_cycles, bandwidth_cycles)

    def add_cycle(self, offsets: np.ndarray) -> CycleCost:
        """Evaluate and accumulate one cycle."""
        cost = self.cost_of_cycle(offsets)
        self.total_layout_cycles += cost.layout_cycles
        self.total_bandwidth_cycles += cost.bandwidth_cycles
        self.total_requests += cost.requests
        self.cycles_evaluated += 1
        return cost

    def add_demand_matrix(
        self,
        demand: np.ndarray,
        base_offset: int = 0,
        return_costs: bool = False,
    ) -> list[CycleCost] | None:
        """Evaluate every row of a (cycles x ports) demand matrix.

        Entries below zero are bubbles; ``base_offset`` is subtracted to
        convert operand-region addresses to tensor-local offsets.  With
        ``return_costs`` the per-cycle :class:`CycleCost` stream is
        returned (used by the cross-evaluator equivalence fuzz).
        """
        demand = np.asarray(demand)
        costs: list[CycleCost] | None = [] if return_costs else None
        for row in demand:
            valid = row[row >= 0]
            if valid.size:
                cost = self.add_cycle(valid - base_offset)
            else:
                cost = CycleCost(0, 1, 1)
                self.total_layout_cycles += 1
                self.total_bandwidth_cycles += 1
                self.cycles_evaluated += 1
            if costs is not None:
                costs.append(cost)
        return costs

    @property
    def slowdown(self) -> float:
        """Layout-model total over bandwidth-model total, minus one."""
        if self.total_bandwidth_cycles == 0:
            return 0.0
        return self.total_layout_cycles / self.total_bandwidth_cycles - 1.0


def make_conflict_evaluator(
    name: str,
    layout: LayoutSpec,
    bandwidth_model_words: int,
    row_buffers_per_bank: int = 4,
) -> "BankConflictEvaluator":
    """Build a bank-conflict evaluator by name.

    ``reference`` is the scalar executable specification above;
    ``vectorized`` (the default everywhere) resolves whole demand
    matrices with numpy stack-distance scans.  Both expose the same
    interface and produce bit-identical cost streams.
    """
    key = name.strip().lower()
    if key == "reference":
        return BankConflictEvaluator(
            layout,
            bandwidth_model_words=bandwidth_model_words,
            row_buffers_per_bank=row_buffers_per_bank,
        )
    if key == "vectorized":
        from repro.layout.conflict_vectorized import VectorizedConflictEvaluator

        return VectorizedConflictEvaluator(
            layout,
            bandwidth_model_words=bandwidth_model_words,
            row_buffers_per_bank=row_buffers_per_bank,
        )
    raise LayoutError(
        f"unknown layout evaluator {name!r}; "
        f"available: {', '.join(AVAILABLE_LAYOUT_EVALUATORS)}"
    )
