"""Bank-conflict evaluation: per-cycle request sets -> access latency.

For every compute cycle the array requests a set of elements.  Each bank
serves its requests from ``row_buffers`` open-line buffers (the 'bank
size' knob of Section VII-C): a request to an already-open line is a
buffered hit, while each newly-opened line costs one of the bank's
``ports_per_bank`` accesses for the cycle::

    cost = max(1, max_over_banks ceil(new_lines_in_bank / ports))

SCALE-Sim v2's pure bandwidth model instead charges
``ceil(requests / total_bandwidth)``.  The slowdown the paper plots
(Figures 12/13) is the ratio of the two totals minus one, which can be
negative: an open line delivers many elements per access, so well-laid-
out requests beat the flat bandwidth assumption.

Like the DRAM datapath (:mod:`repro.dram.engine`), the evaluation runs
behind a *pluggable seam*:

* :class:`BankConflictEvaluator` — the scalar semantics, one compute
  cycle at a time with per-bank ``OrderedDict`` LRUs.  It is the
  executable specification every other evaluator is validated against.
* :class:`repro.layout.conflict_vectorized.VectorizedConflictEvaluator`
  — the vectorized evaluator (offline LRU stack distances over whole
  demand matrices), exact to the reference bit for bit.

Both are selected by name through :func:`make_conflict_evaluator`
(config ``[layout] Evaluator``, CLI ``--layout-evaluator``, sweepable
as ``layout.evaluator``).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro.config.system import VALID_LAYOUT_EVALUATORS
from repro.errors import LayoutError
from repro.layout.spec import LayoutSpec
from repro.utils.math import ceil_div

#: Evaluator implementations selectable via ``layout.evaluator`` (the
#: canonical list lives in :mod:`repro.config.system` so the config
#: layer stays a leaf; this alias is the seam-side name).
AVAILABLE_LAYOUT_EVALUATORS = VALID_LAYOUT_EVALUATORS


@dataclass(frozen=True)
class CycleCost:
    """Cost of serving one cycle's requests under both models."""

    requests: int
    layout_cycles: int
    bandwidth_cycles: int


@dataclass(frozen=True)
class FoldDemand:
    """Layout-independent demand artifact for one demand-matrix feed.

    Everything a conflict evaluator needs that does *not* depend on the
    layout under test, precomputed once so a whole grid of evaluator
    configurations can consume the same fold (the trace fan-out of
    :func:`repro.layout.integrate.evaluate_layout_slowdown_many`):

    * ``cycles`` / ``requests`` — the matrix's row count and the raw
      (pre-dedup) valid-request count per row, which the flat bandwidth
      model charges.
    * ``cycle_index`` / ``offsets`` — the per-cycle demand stream,
      sorted by (cycle, offset) and deduplicated per cycle.  Equal
      offsets share a (bank, line) under every layout, so this dedup is
      layout-independent; evaluators still dedup per-cycle *keys* (two
      distinct offsets may share a line).

    Feeding an evaluator through :meth:`BankConflictEvaluator.
    add_fold_demand` is bit-identical to feeding it the raw matrix
    through ``add_demand_matrix`` — for the reference and the
    vectorized implementation alike, which is what keeps the
    cross-evaluator fuzz meaningful for the fan-out path.
    """

    cycles: int
    requests: np.ndarray  # (cycles,) int64 raw request counts
    cycle_index: np.ndarray  # (n,) int64, non-decreasing
    offsets: np.ndarray  # (n,) int64 tensor-local offsets

    @property
    def total_requests(self) -> int:
        """Raw requests across the fold (pre-dedup)."""
        return int(self.requests.sum())


def build_fold_demand(
    demand: np.ndarray, base_offset: int = 0, dedup: bool = True
) -> "FoldDemand":
    """Extract the layout-independent artifact from a demand matrix.

    Entries below zero are bubbles; ``base_offset`` is subtracted to
    convert operand-region addresses to tensor-local offsets (exactly
    as ``add_demand_matrix`` would).

    ``dedup=False`` skips the (cycle, offset) sort and per-cycle offset
    dedup, leaving the stream in raw matrix order (still grouped by
    cycle).  Evaluation is bit-identical either way — evaluators dedup
    per-cycle *keys* regardless — so single-consumer feeds use the
    cheap form while fan-outs pay the one sort that every
    configuration then shares.
    """
    demand = np.asarray(demand, dtype=np.int64)
    if demand.ndim != 2:
        raise LayoutError(f"demand matrix must be 2-D, got shape {demand.shape}")
    rows = demand.shape[0]
    valid = demand >= 0
    if demand.size:
        requests = valid.sum(axis=1, dtype=np.int64)
    else:
        requests = np.zeros(rows, dtype=np.int64)
    offsets = demand[valid]
    if base_offset:
        offsets -= base_offset  # demand[valid] is already a copy
    if not offsets.size:
        return FoldDemand(
            cycles=rows,
            requests=requests,
            cycle_index=np.empty(0, dtype=np.int64),
            offsets=offsets,
        )
    if not dedup:
        return FoldDemand(
            cycles=rows,
            requests=requests,
            cycle_index=np.repeat(np.arange(rows, dtype=np.int64), requests),
            offsets=offsets,
        )
    # One packed sort yields the (cycle, offset) order and the per-cycle
    # offset dedup in a handful of array passes.
    lo = int(offsets.min())
    span = int(offsets.max()) - lo + 1
    if rows * span >= np.iinfo(np.int64).max:
        raise LayoutError(
            f"demand matrix too large to pack: {rows} cycles x offset span {span}"
        )
    combined = np.repeat(np.arange(rows, dtype=np.int64) * span, requests)
    combined += offsets - lo
    combined.sort()
    keep = np.empty(combined.size, dtype=bool)
    keep[0] = True
    np.not_equal(combined[1:], combined[:-1], out=keep[1:])
    combined = combined[keep]
    return FoldDemand(
        cycles=rows,
        requests=requests,
        cycle_index=combined // span,
        offsets=combined % span + lo,
    )


class BankConflictEvaluator:
    """Accumulates per-cycle costs for a layout and a bandwidth budget.

    Args:
        layout: the banked-SRAM layout under evaluation.
        bandwidth_model_words: words/cycle assumed by the flat model.
        row_buffers_per_bank: open-line buffers per bank (LRU); lines in
            a buffer are re-read for free on later cycles.
    """

    def __init__(
        self,
        layout: LayoutSpec,
        bandwidth_model_words: int,
        row_buffers_per_bank: int = 4,
    ) -> None:
        if bandwidth_model_words < 1:
            raise LayoutError(
                f"bandwidth_model_words must be >= 1, got {bandwidth_model_words}"
            )
        if row_buffers_per_bank < 1:
            raise LayoutError(
                f"row_buffers_per_bank must be >= 1, got {row_buffers_per_bank}"
            )
        self.layout = layout
        self.bandwidth_model_words = bandwidth_model_words
        self.row_buffers_per_bank = row_buffers_per_bank
        self.total_layout_cycles = 0
        self.total_bandwidth_cycles = 0
        self.total_requests = 0
        self.cycles_evaluated = 0
        # Per-bank LRU of open line ids.
        self._open_lines: dict[int, OrderedDict[int, None]] = {}

    def _bank_buffer(self, bank: int) -> OrderedDict[int, None]:
        if bank not in self._open_lines:
            self._open_lines[bank] = OrderedDict()
        return self._open_lines[bank]

    def cost_of_cycle(self, offsets: np.ndarray) -> CycleCost:
        """Cost of one cycle's element requests (flat offsets).

        Updates the per-bank open-line state as a side effect.
        """
        offsets = np.asarray(offsets, dtype=np.int64)
        requests = int(offsets.size)
        if requests == 0:
            return CycleCost(0, 1, 1)
        return self._cost_of_deduped_cycle(offsets, requests)

    def _cost_of_deduped_cycle(self, offsets: np.ndarray, requests: int) -> CycleCost:
        """One cycle's cost from (possibly pre-deduplicated) offsets.

        ``requests`` is the raw request count the bandwidth model
        charges; the LRU walk dedups per-cycle keys anyway, so feeding
        offset-deduplicated streams (``FoldDemand``) is bit-exact.
        """
        line_id, _, bank_id = self.layout.locate(offsets)
        keys = bank_id * (self.layout.num_lines + 1) + line_id
        unique_keys = np.unique(keys)

        worst_new = 0
        per_bank_new: dict[int, int] = {}
        for key in unique_keys.tolist():
            bank = key // (self.layout.num_lines + 1)
            line = key % (self.layout.num_lines + 1)
            buffer = self._bank_buffer(bank)
            if line in buffer:
                buffer.move_to_end(line)
                continue
            buffer[line] = None
            while len(buffer) > self.row_buffers_per_bank:
                buffer.popitem(last=False)
            per_bank_new[bank] = per_bank_new.get(bank, 0) + 1
        if per_bank_new:
            worst_new = max(per_bank_new.values())

        layout_cycles = max(1, ceil_div(worst_new, self.layout.ports_per_bank)) if worst_new else 1
        bandwidth_cycles = max(1, ceil_div(requests, self.bandwidth_model_words))
        return CycleCost(requests, layout_cycles, bandwidth_cycles)

    def add_cycle(self, offsets: np.ndarray) -> CycleCost:
        """Evaluate and accumulate one cycle."""
        cost = self.cost_of_cycle(offsets)
        self.total_layout_cycles += cost.layout_cycles
        self.total_bandwidth_cycles += cost.bandwidth_cycles
        self.total_requests += cost.requests
        self.cycles_evaluated += 1
        return cost

    def add_demand_matrix(
        self,
        demand: np.ndarray,
        base_offset: int = 0,
        return_costs: bool = False,
    ) -> list[CycleCost] | None:
        """Evaluate every row of a (cycles x ports) demand matrix.

        Entries below zero are bubbles; ``base_offset`` is subtracted to
        convert operand-region addresses to tensor-local offsets.  With
        ``return_costs`` the per-cycle :class:`CycleCost` stream is
        returned (used by the cross-evaluator equivalence fuzz).
        """
        demand = np.asarray(demand)
        costs: list[CycleCost] | None = [] if return_costs else None
        for row in demand:
            valid = row[row >= 0]
            if valid.size:
                cost = self.add_cycle(valid - base_offset)
            else:
                cost = CycleCost(0, 1, 1)
                self.total_layout_cycles += 1
                self.total_bandwidth_cycles += 1
                self.cycles_evaluated += 1
            if costs is not None:
                costs.append(cost)
        return costs

    def add_fold_demand(
        self, fold: FoldDemand, return_costs: bool = False
    ) -> list[CycleCost] | None:
        """Evaluate one fold from its layout-independent artifact.

        Bit-identical to feeding the raw matrix through
        :meth:`add_demand_matrix`: the artifact's per-cycle offset dedup
        never changes the per-cycle key set, and the raw request counts
        it carries keep the bandwidth model exact.
        """
        costs: list[CycleCost] | None = [] if return_costs else None
        bounds = np.searchsorted(
            fold.cycle_index, np.arange(fold.cycles + 1, dtype=np.int64)
        )
        for row in range(fold.cycles):
            raw = int(fold.requests[row])
            if raw:
                cost = self._cost_of_deduped_cycle(
                    fold.offsets[bounds[row] : bounds[row + 1]], raw
                )
                self.total_layout_cycles += cost.layout_cycles
                self.total_bandwidth_cycles += cost.bandwidth_cycles
                self.total_requests += cost.requests
                self.cycles_evaluated += 1
            else:
                cost = CycleCost(0, 1, 1)
                self.total_layout_cycles += 1
                self.total_bandwidth_cycles += 1
                self.cycles_evaluated += 1
            if costs is not None:
                costs.append(cost)
        return costs

    @property
    def slowdown(self) -> float:
        """Layout-model total over bandwidth-model total, minus one."""
        if self.total_bandwidth_cycles == 0:
            return 0.0
        return self.total_layout_cycles / self.total_bandwidth_cycles - 1.0


def make_conflict_evaluator(
    name: str,
    layout: LayoutSpec,
    bandwidth_model_words: int,
    row_buffers_per_bank: int = 4,
) -> "BankConflictEvaluator":
    """Build a bank-conflict evaluator by name.

    ``reference`` is the scalar executable specification above;
    ``vectorized`` (the default everywhere) resolves whole demand
    matrices with numpy stack-distance scans.  Both expose the same
    interface and produce bit-identical cost streams.
    """
    key = name.strip().lower()
    if key == "reference":
        return BankConflictEvaluator(
            layout,
            bandwidth_model_words=bandwidth_model_words,
            row_buffers_per_bank=row_buffers_per_bank,
        )
    if key == "vectorized":
        from repro.layout.conflict_vectorized import VectorizedConflictEvaluator

        return VectorizedConflictEvaluator(
            layout,
            bandwidth_model_words=bandwidth_model_words,
            row_buffers_per_bank=row_buffers_per_bank,
        )
    raise LayoutError(
        f"unknown layout evaluator {name!r}; "
        f"available: {', '.join(AVAILABLE_LAYOUT_EVALUATORS)}"
    )
