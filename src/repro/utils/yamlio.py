"""Minimal YAML emission and parsing for Accelergy-compatible artifacts.

Accelergy consumes YAML architecture descriptions and action-count files.
This package has no external YAML dependency, so we provide a small
emitter covering the subset we generate: nested mappings, lists of
mappings, scalars (str/int/float/bool/None).  The output is valid YAML
and is also parseable by :func:`parse_simple_yaml` for round-trip tests.
"""

from __future__ import annotations

from collections.abc import Mapping
from pathlib import Path
from typing import Any

_INDENT = "  "


def _format_scalar(value: Any) -> str:
    if value is None:
        return "null"
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, (int, float)):
        return repr(value)
    text = str(value)

    def _looks_numeric(candidate: str) -> bool:
        try:
            float(candidate)
        except ValueError:
            return False
        return True

    needs_quotes = (
        text == ""
        or text != text.strip()
        or any(ch in text for ch in ":#{}[],&*!|>'\"%@`")
        or text.lower() in {"null", "true", "false", "yes", "no"}
        or _looks_numeric(text)
    )
    if needs_quotes:
        escaped = text.replace("\\", "\\\\").replace('"', '\\"')
        return f'"{escaped}"'
    return text


def _is_container(value: Any) -> bool:
    return isinstance(value, (Mapping, list, tuple))


def _empty_marker(value: Any) -> str:
    return "{}" if isinstance(value, Mapping) else "[]"


def _emit(value: Any, indent: int, lines: list[str]) -> None:
    prefix = _INDENT * indent
    if isinstance(value, Mapping):
        for key, item in value.items():
            if _is_container(item) and item:
                lines.append(f"{prefix}{key}:")
                _emit(item, indent + 1, lines)
            elif _is_container(item):
                lines.append(f"{prefix}{key}: {_empty_marker(item)}")
            else:
                lines.append(f"{prefix}{key}: {_format_scalar(item)}")
        return
    if isinstance(value, (list, tuple)):
        for item in value:
            if isinstance(item, Mapping) and item:
                first = True
                for key, sub in item.items():
                    marker = f"{prefix}- " if first else f"{prefix}{_INDENT}"
                    first = False
                    if _is_container(sub) and sub:
                        lines.append(f"{marker}{key}:")
                        _emit(sub, indent + 2, lines)
                    elif _is_container(sub):
                        lines.append(f"{marker}{key}: {_empty_marker(sub)}")
                    else:
                        lines.append(f"{marker}{key}: {_format_scalar(sub)}")
            else:
                lines.append(f"{prefix}- {_format_scalar(item)}")
        return
    lines.append(f"{prefix}{_format_scalar(value)}")


def dump_yaml(data: Mapping[str, Any]) -> str:
    """Serialise a nested mapping to a YAML string."""
    if not data:
        return "{}\n"
    lines: list[str] = []
    _emit(data, 0, lines)
    return "\n".join(lines) + "\n"


def write_yaml(path: str | Path, data: Mapping[str, Any]) -> Path:
    """Serialise ``data`` and write it to ``path`` (parents created)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(dump_yaml(data))
    return path


def _parse_scalar(text: str) -> Any:
    text = text.strip()
    if text in {"null", "~", ""}:
        return None
    if text == "true":
        return True
    if text == "false":
        return False
    if text == "{}":
        return {}
    if text == "[]":
        return []
    if text.startswith('"') and text.endswith('"') and len(text) >= 2:
        return text[1:-1].replace('\\"', '"').replace("\\\\", "\\")
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    return text


class _Cursor:
    """Line cursor over (indent, content) pairs for recursive descent."""

    def __init__(self, lines: list[tuple[int, str]]) -> None:
        self.lines = lines
        self.pos = 0

    def peek(self) -> tuple[int, str] | None:
        if self.pos >= len(self.lines):
            return None
        return self.lines[self.pos]

    def advance(self) -> tuple[int, str]:
        line = self.lines[self.pos]
        self.pos += 1
        return line


def _parse_block(cursor: _Cursor, indent: int) -> Any:
    """Parse the block whose lines all have indentation >= ``indent``."""
    head = cursor.peek()
    if head is None:
        return None
    if head[1].startswith("- "):
        return _parse_list(cursor, indent)
    return _parse_mapping(cursor, indent)


def _parse_list(cursor: _Cursor, indent: int) -> list[Any]:
    items: list[Any] = []
    while True:
        head = cursor.peek()
        if head is None or head[0] < indent or not head[1].startswith("- "):
            return items
        line_indent, content = cursor.advance()
        body = content[2:].strip()
        if ":" in body:
            # Inline first key of a mapping item; remaining keys sit at
            # the column just past the "- " marker (indent + 1).
            key, _, rest = body.partition(":")
            item: dict[str, Any] = {}
            if rest.strip():
                item[key.strip()] = _parse_scalar(rest)
            else:
                item[key.strip()] = _parse_block(cursor, line_indent + 2)
            nxt = cursor.peek()
            if nxt is not None and nxt[0] == line_indent + 1 and not nxt[1].startswith("- "):
                rest_map = _parse_mapping(cursor, line_indent + 1)
                item.update(rest_map)
            items.append(item)
        else:
            items.append(_parse_scalar(body))


def _parse_mapping(cursor: _Cursor, indent: int) -> dict[str, Any]:
    mapping: dict[str, Any] = {}
    while True:
        head = cursor.peek()
        if head is None or head[0] < indent or head[1].startswith("- "):
            return mapping
        line_indent, content = cursor.advance()
        if line_indent != indent:
            raise ValueError(f"unexpected indentation at: {content!r}")
        key, sep, rest = content.partition(":")
        if not sep:
            raise ValueError(f"expected 'key: value' line, got {content!r}")
        key = key.strip()
        if rest.strip():
            mapping[key] = _parse_scalar(rest)
        else:
            nxt = cursor.peek()
            if nxt is None or nxt[0] <= indent:
                mapping[key] = None
            else:
                mapping[key] = _parse_block(cursor, nxt[0])


def parse_simple_yaml(text: str) -> Any:
    """Parse the YAML subset produced by :func:`dump_yaml`.

    Supports nested mappings and lists of scalars or flat mappings.  This
    is intentionally not a general YAML parser; it exists so tests can
    round-trip the artifacts we emit.
    """
    stripped = text.strip()
    if stripped in {"", "{}"}:
        return {}
    lines: list[tuple[int, str]] = []
    for raw in text.splitlines():
        if not raw.strip() or raw.lstrip().startswith("#"):
            continue
        indent_chars = len(raw) - len(raw.lstrip(" "))
        if indent_chars % len(_INDENT) != 0:
            raise ValueError(f"indentation must be multiples of two spaces: {raw!r}")
        lines.append((indent_chars // len(_INDENT), raw.strip()))
    cursor = _Cursor(lines)
    result = _parse_block(cursor, 0)
    if cursor.peek() is not None:
        raise ValueError(f"trailing unparsed content at line {cursor.pos}")
    return result
