"""CSV helpers for topology files and report emission.

SCALE-Sim's native interchange format is CSV: workload topologies come in
as CSV and every report goes out as CSV.  These helpers keep quoting and
header handling in one place.
"""

from __future__ import annotations

import csv
from collections.abc import Iterable, Mapping, Sequence
from pathlib import Path

from repro.errors import ReportError, TopologyError


def read_csv_rows(path: str | Path) -> list[list[str]]:
    """Read a CSV file into a list of stripped string rows.

    Blank lines and lines whose first cell starts with ``#`` are skipped,
    matching how SCALE-Sim tolerates comments in topology files.
    """
    path = Path(path)
    if not path.exists():
        raise TopologyError(f"CSV file not found: {path}")
    rows: list[list[str]] = []
    with path.open(newline="") as handle:
        for raw in csv.reader(handle):
            cells = [cell.strip() for cell in raw]
            if not cells or all(not cell for cell in cells):
                continue
            if cells[0].startswith("#"):
                continue
            rows.append(cells)
    return rows


def write_csv(
    path: str | Path,
    header: Sequence[str],
    rows: Iterable[Sequence[object]],
) -> Path:
    """Write ``rows`` under ``header`` to ``path``, creating parents."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(list(header))
        for row in rows:
            if len(row) != len(header):
                raise ReportError(
                    f"row width {len(row)} does not match header width "
                    f"{len(header)} while writing {path}"
                )
            writer.writerow(list(row))
    return path


def write_dict_rows(
    path: str | Path,
    rows: Sequence[Mapping[str, object]],
    field_order: Sequence[str] | None = None,
) -> Path:
    """Write a list of dict rows as CSV, deriving the header if needed."""
    if not rows:
        raise ReportError(f"refusing to write empty report to {path}")
    header = list(field_order) if field_order else list(rows[0].keys())
    materialised = [[row.get(key, "") for key in header] for row in rows]
    return write_csv(path, header, materialised)
