"""Deterministic random number generation.

All stochastic choices in the simulator (row-wise N:M draws, synthetic
operand values) flow through :func:`make_rng` so that every experiment is
reproducible from a single integer seed.
"""

from __future__ import annotations

import numpy as np

DEFAULT_SEED = 0xC0FFEE


def make_rng(seed: int | None = None) -> np.random.Generator:
    """Create a seeded :class:`numpy.random.Generator`.

    Args:
        seed: integer seed; ``None`` selects the package default so that
            "unseeded" runs are still reproducible.
    """
    if seed is None:
        seed = DEFAULT_SEED
    return np.random.default_rng(seed)


def derive_rng(rng: np.random.Generator, stream: int) -> np.random.Generator:
    """Derive an independent child generator for a numbered sub-stream.

    Used so per-layer randomness does not depend on the order in which
    layers are simulated.
    """
    if stream < 0:
        raise ValueError(f"stream must be non-negative, got {stream}")
    seed = int(rng.bit_generator.seed_seq.entropy or DEFAULT_SEED)  # type: ignore[union-attr]
    return np.random.default_rng(np.random.SeedSequence(entropy=seed, spawn_key=(stream,)))
