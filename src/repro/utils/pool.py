"""Shared multiprocessing helpers."""

from __future__ import annotations

import multiprocessing


def pool_context() -> multiprocessing.context.BaseContext:
    """The preferred start-method context for worker pools.

    ``fork`` where available (cheap, inherits read-only state such as
    fan-out fold artifacts zero-copy), ``spawn`` otherwise.  Both the
    sweep runner and the layout fan-out use this one helper so a future
    start-method tweak applies to every pool.
    """
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")
