"""Shared utility helpers (integer math, CSV/YAML io, deterministic RNG)."""

from repro.utils.math import (
    ceil_div,
    clamp,
    ilog2_ceil,
    is_power_of_two,
    next_power_of_two,
    prod,
)
from repro.utils.rng import make_rng

__all__ = [
    "ceil_div",
    "clamp",
    "ilog2_ceil",
    "is_power_of_two",
    "next_power_of_two",
    "prod",
    "make_rng",
]
