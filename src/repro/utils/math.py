"""Small integer-math helpers used across the simulator.

These are deliberately tiny, pure functions: the cycle-accounting code
calls them in tight loops, and keeping them branch-light keeps the hot
paths readable.
"""

from __future__ import annotations

import math
from collections.abc import Iterable


def ceil_div(numerator: int, denominator: int) -> int:
    """Integer ceiling division.

    Raises:
        ValueError: if ``denominator`` is not positive or ``numerator`` is
            negative (cycle counts and fold counts are never negative).
    """
    if denominator <= 0:
        raise ValueError(f"denominator must be positive, got {denominator}")
    if numerator < 0:
        raise ValueError(f"numerator must be non-negative, got {numerator}")
    return -(-numerator // denominator)


def prod(values: Iterable[int]) -> int:
    """Product of an iterable of integers (empty product is 1)."""
    result = 1
    for value in values:
        result *= value
    return result


def clamp(value: int, low: int, high: int) -> int:
    """Clamp ``value`` into the inclusive range [low, high]."""
    if low > high:
        raise ValueError(f"empty clamp range [{low}, {high}]")
    return max(low, min(high, value))


def is_power_of_two(value: int) -> bool:
    """True when ``value`` is a positive power of two."""
    return value > 0 and (value & (value - 1)) == 0


def next_power_of_two(value: int) -> int:
    """Smallest power of two >= ``value`` (value must be positive)."""
    if value <= 0:
        raise ValueError(f"value must be positive, got {value}")
    return 1 << (value - 1).bit_length()


def ilog2_ceil(value: int) -> int:
    """Ceiling of log2, as used for metadata bit-width computation.

    ``ilog2_ceil(1) == 0`` — a block of one element needs no metadata bits.
    """
    if value <= 0:
        raise ValueError(f"value must be positive, got {value}")
    return math.ceil(math.log2(value)) if value > 1 else 0
