"""Content-addressed persistence for mid-level simulation artifacts."""

from repro.store.artifact_store import (
    STORE_SCHEMA_VERSION,
    ArtifactStore,
    active_store,
    canonical_artifact,
    content_address,
    dump_json_atomic,
    dump_pickle_atomic,
    load_json_guarded,
    load_pickle_guarded,
    set_active_store,
)

__all__ = [
    "ArtifactStore",
    "STORE_SCHEMA_VERSION",
    "active_store",
    "canonical_artifact",
    "content_address",
    "dump_json_atomic",
    "dump_pickle_atomic",
    "load_json_guarded",
    "load_pickle_guarded",
    "set_active_store",
]
