"""Content-addressed persistence for mid-level simulation artifacts."""

from repro.store.artifact_store import (
    STORE_SCHEMA_VERSION,
    ArtifactStore,
    active_store,
    append_json_line,
    canonical_artifact,
    content_address,
    dump_json_atomic,
    dump_pickle_atomic,
    load_json_guarded,
    load_pickle_guarded,
    read_json_lines,
    set_active_store,
)

__all__ = [
    "ArtifactStore",
    "STORE_SCHEMA_VERSION",
    "active_store",
    "append_json_line",
    "canonical_artifact",
    "content_address",
    "dump_json_atomic",
    "dump_pickle_atomic",
    "load_json_guarded",
    "load_pickle_guarded",
    "read_json_lines",
    "set_active_store",
]
