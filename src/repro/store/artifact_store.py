"""Content-addressed, atomic on-disk store for mid-level artifacts.

:class:`~repro.run.sweep.ResultCache` persists *final* simulation
payloads; everything in between — per-layer compute schedules
(:class:`~repro.core.simulator.ComputePlan` pieces), layout demand
artifacts (:class:`~repro.layout.conflict.FoldDemand` streams) and
decoded DRAM line streams
(:class:`~repro.dram.engine_batched.PreparedLineBatch`) — used to die
with the process.  :class:`ArtifactStore` content-addresses those
mid-level artifacts on disk so a cold process loads them instead of
rebuilding them:

* **keys** are SHA-256 hashes of a canonical JSON rendering of the
  artifact's *inputs* (never of the artifact itself), salted with
  :data:`STORE_SCHEMA_VERSION` — bump the version whenever a stored
  artifact's shape or meaning changes and every existing store
  re-populates instead of serving stale objects;
* **writes** are atomic: pickle to a per-process temp name, then
  ``os.replace`` into place — the same discipline as
  ``ResultCache.put``, so any number of processes can share one store
  directory without ever exposing a half-written file;
* **reads** are guarded: a truncated or corrupt pickle (a crashed
  writer on a non-atomic filesystem, a disk error) counts as a miss and
  the bad file is unlinked so the next write repairs it.

Producers look the store up through the *active-store* seam
(:func:`set_active_store` / :func:`active_store`) so the hot functions
they hook — ``layer_compute``, the fold-demand stream, the shared line
batches — keep their signatures; :class:`~repro.run.sweep.SweepRunner`
installs the store around each simulation unit.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pickle
from pathlib import Path
from typing import Callable

#: Schema-version salt folded into every key.  Bump whenever any stored
#: artifact's shape or meaning changes without an input change, so
#: existing store directories re-populate instead of serving stale
#: objects (mirrors ``repro.run.sweep._SEMANTICS_SALT``).
STORE_SCHEMA_VERSION = "store-v1-2026-08"

#: Errors a corrupt/truncated/vanished pickle can raise on load; all are
#: treated as a miss (and the bad file removed) rather than propagated.
_CORRUPT_PICKLE_ERRORS = (EOFError, pickle.UnpicklingError, OSError)


def load_pickle_guarded(path: Path) -> object | None:
    """Load a pickle, treating corruption as absence.

    A truncated or corrupt file — a crashed writer, a disk error — is
    unlinked so the next ``put`` repairs it; a file another process
    removed mid-read simply reads as missing.  Returns ``None`` in
    every failure case (stored payloads are never ``None``).
    """
    try:
        with path.open("rb") as handle:
            return pickle.load(handle)
    except _CORRUPT_PICKLE_ERRORS:
        try:
            path.unlink(missing_ok=True)
        except OSError:  # pragma: no cover - unlink race / read-only dir
            pass
        return None


def dump_pickle_atomic(path: Path, payload: object) -> None:
    """Write a pickle via a per-process temp name + atomic replace.

    Concurrent writers sharing a directory never interleave into one
    temp file (the pid disambiguates) and readers never observe a
    partial payload (``os.replace`` is atomic on every supported OS).
    """
    tmp = path.with_suffix(f".{os.getpid()}.tmp")
    with tmp.open("wb") as handle:
        pickle.dump(payload, handle)
    tmp.replace(path)


def load_json_guarded(path: Path) -> dict | None:
    """Load a small JSON sidecar, treating corruption as absence.

    The JSON counterpart of :func:`load_pickle_guarded` — used for the
    queue executor's lease sidecars, which a SIGKILLed worker can leave
    truncated.  Unlike the pickle guard the bad file is *not* unlinked:
    a lease sidecar's existence is itself information (the claim is
    held), and the mtime fallback still applies to it.
    """
    try:
        with path.open("r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, ValueError):
        return None
    return payload if isinstance(payload, dict) else None


def dump_json_atomic(path: Path, payload: dict) -> None:
    """Write a small JSON file via a per-process temp name + replace.

    Same discipline as :func:`dump_pickle_atomic`; swallows ``OSError``
    because lease sidecars are written into batch directories a
    concurrent producer may retire at any moment — a failed heartbeat
    write just means the lease ages toward reclaim, which is correct.
    """
    tmp = path.with_suffix(f".{os.getpid()}.tmp")
    try:
        with tmp.open("w", encoding="utf-8") as handle:
            json.dump(payload, handle)
        tmp.replace(path)
    except OSError:
        try:
            tmp.unlink(missing_ok=True)
        except OSError:  # pragma: no cover - double fault
            pass


def append_json_line(path: Path, payload: dict) -> None:
    """Append one JSON object as a line to an append-only journal.

    Unlike the replace-based writers above, journals grow by appending:
    the record is written as a single ``write`` call on an ``O_APPEND``
    handle and fsynced, so concurrent appenders never interleave within
    a line and a crash can tear at most the final line — which
    :func:`read_json_lines` then skips.  The payload must be a single
    JSON object with no embedded newlines.
    """
    line = json.dumps(payload, sort_keys=True, default=str)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("a", encoding="utf-8") as handle:
        handle.write(line + "\n")
        handle.flush()
        os.fsync(handle.fileno())


def read_json_lines(path: Path) -> list[dict]:
    """Replay an append-only JSON-lines journal, tolerating a torn tail.

    A line that fails to decode (a writer SIGKILLed mid-append, a disk
    error) ends the replay: everything before it is returned, everything
    from it on is ignored.  Only the *suffix* is dropped — a corrupt
    line mid-file would hide later events, but appends are single
    ``write`` calls so corruption can only be a tail.  A missing file
    reads as an empty journal.
    """
    try:
        text = path.read_text(encoding="utf-8")
    except OSError:
        return []
    events: list[dict] = []
    for line in text.splitlines():
        if not line.strip():
            continue
        try:
            payload = json.loads(line)
        except ValueError:
            break
        if not isinstance(payload, dict):
            break
        events.append(payload)
    return events


def canonical_artifact(value: object) -> object:
    """A JSON-ready canonical rendering of an artifact-key ingredient.

    Dataclasses (layers, config sections) render as their field dict
    tagged with the class name — two different layer types with equal
    fields must not collide — and everything else passes through to
    ``json.dumps(default=str)``.
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        data = dataclasses.asdict(value)
        data["__kind__"] = type(value).__name__
        return data
    return value


def content_address(kind: str, payload: dict) -> str:
    """Stable SHA-256 key of an artifact's inputs under the current schema."""
    blob = json.dumps(
        {"schema": STORE_SCHEMA_VERSION, "kind": kind, "payload": payload},
        sort_keys=True,
        default=str,
    ).encode()
    return hashlib.sha256(blob).hexdigest()


class ArtifactStore:
    """Content-addressed pickle store, one subdirectory per artifact kind.

    Safe to share between processes: writes are atomic, reads treat
    corruption as a miss.  ``hits`` / ``misses`` count this instance's
    lookups only (worker processes keep their own counters).
    """

    def __init__(self, directory: str | Path) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0

    def key(self, kind: str, payload: dict) -> str:
        """Content address of one artifact's inputs (see module docs)."""
        return content_address(kind, payload)

    def path(self, kind: str, key: str) -> Path:
        """On-disk location of one artifact."""
        return self.directory / kind / f"{key}.pkl"

    def get(self, kind: str, key: str) -> object | None:
        """Look an artifact up, counting the hit or miss."""
        payload = load_pickle_guarded(self.path(kind, key))
        if payload is None:
            self.misses += 1
            return None
        self.hits += 1
        return payload

    def put(self, kind: str, key: str, payload: object) -> None:
        """Store an artifact atomically."""
        path = self.path(kind, key)
        path.parent.mkdir(parents=True, exist_ok=True)
        dump_pickle_atomic(path, payload)

    def get_or_build(self, kind: str, key: str, build: Callable[[], object]) -> object:
        """Serve an artifact from disk, building (and storing) on a miss."""
        payload = self.get(kind, key)
        if payload is None:
            payload = build()
            self.put(kind, key, payload)
        return payload

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ArtifactStore({str(self.directory)!r}, "
            f"hits={self.hits}, misses={self.misses})"
        )


# ------------------------------------------------------------ active store

#: The process-wide store producers consult (see module docstring).
_ACTIVE_STORE: ArtifactStore | None = None


def set_active_store(store: ArtifactStore | None) -> ArtifactStore | None:
    """Install the process-wide store; returns the previous one.

    Callers restore the returned value when their scope ends, so nested
    installs (a sweep unit inside a test that set its own store) unwind
    correctly.
    """
    global _ACTIVE_STORE
    previous = _ACTIVE_STORE
    _ACTIVE_STORE = store
    return previous


def active_store() -> ArtifactStore | None:
    """The store producers should consult, or ``None`` when disabled."""
    return _ACTIVE_STORE


__all__ = [
    "ArtifactStore",
    "STORE_SCHEMA_VERSION",
    "active_store",
    "append_json_line",
    "canonical_artifact",
    "content_address",
    "dump_json_atomic",
    "dump_pickle_atomic",
    "load_json_guarded",
    "load_pickle_guarded",
    "read_json_lines",
    "set_active_store",
]
