"""A polite stdlib client for the sweep service.

:class:`ServiceClient` wraps ``urllib.request`` with the behaviour the
server's admission contract expects: a 429 or 503 answer is not an
error but a *schedule* — the client sleeps ``max(Retry-After, jittered
exponential backoff)`` and retries, up to ``max_retries`` times, before
surfacing :class:`~repro.errors.ServiceError`.  Connection errors
(server restarting mid-drain) retry on the same schedule.  The jitter
comes from the executors' :func:`~repro.run.executors._backoff_seconds`
with a private ``random.Random`` so tests can pin ``backoff_seed`` and
assert exact sleep sequences.

Used by the ``scale-sim-repro submit/status/fetch`` subcommands and by
the service tests; importable on its own for scripting::

    client = ServiceClient("http://127.0.0.1:8537")
    job = client.submit({"preset": "scale_sim_v2_default", "model": "toy_gemm"})
    client.wait(job["id"])
    print(client.fetch_report(job["id"]))
"""

from __future__ import annotations

import json
import random
import time
import urllib.error
import urllib.request

from repro.errors import ServiceError
from repro.run.executors import DEFAULT_BACKOFF_BASE, _backoff_seconds

#: HTTP statuses that mean "try again later", per the admission contract.
RETRYABLE_STATUSES = (429, 503)


class ServiceClient:
    """Talks to one sweep server; retries 429/503 with capped backoff.

    Args:
        base_url: e.g. ``http://127.0.0.1:8537`` (trailing slash ok).
        timeout: per-request socket timeout in seconds.
        max_retries: attempts beyond the first for retryable answers;
            0 disables retrying entirely.
        backoff_base: first retry delay (doubles per retry, capped).
        backoff_seed: seed for deterministic jitter (tests); ``None``
            for OS entropy.
        sleep: test seam replacing :func:`time.sleep`.
    """

    def __init__(
        self,
        base_url: str,
        timeout: float = 10.0,
        max_retries: int = 5,
        backoff_base: float = DEFAULT_BACKOFF_BASE,
        backoff_seed: int | None = None,
        sleep=time.sleep,
    ) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.max_retries = max_retries
        self.backoff_base = backoff_base
        self._rng = random.Random(backoff_seed)
        self._sleep = sleep

    # ------------------------------------------------------------ transport

    def _request(self, method: str, path: str, payload: dict | None = None):
        """One HTTP exchange -> (status, headers, body bytes).

        4xx/5xx come back as ordinary values (the retry loop and the
        error mapping live in :meth:`_call`); only transport-level
        failures raise, as :class:`ConnectionError`.
        """
        data = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            data = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            self.base_url + path, data=data, method=method, headers=headers
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return response.status, dict(response.headers), response.read()
        except urllib.error.HTTPError as exc:
            return exc.code, dict(exc.headers), exc.read()
        except (urllib.error.URLError, OSError) as exc:
            raise ConnectionError(str(exc)) from exc

    def _call(self, method: str, path: str, payload: dict | None = None) -> dict:
        """Request with the retry schedule; returns the decoded JSON body."""
        last_error = "no attempts made"
        for retry in range(self.max_retries + 1):
            try:
                status, headers, body = self._request(method, path, payload)
            except ConnectionError as exc:
                last_error = f"connection failed: {exc}"
                status = None
            else:
                if status not in RETRYABLE_STATUSES:
                    return self._decode(status, body)
                last_error = f"HTTP {status}: {body.decode('utf-8', 'replace')}"
            if retry == self.max_retries:
                break
            delay = _backoff_seconds(self.backoff_base, retry + 1, self._rng)
            if status is not None:
                retry_after = _parse_retry_after(headers)
                delay = max(delay, retry_after)
            self._sleep(delay)
        raise ServiceError(
            f"{method} {path} failed after {self.max_retries + 1} attempt(s): "
            f"{last_error}"
        )

    @staticmethod
    def _decode(status: int, body: bytes) -> dict:
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            payload = {"error": "BadResponse", "message": body[:200].decode(
                "utf-8", "replace"
            )}
        if status >= 400:
            raise ServiceError(
                f"HTTP {status}: {payload.get('message', payload.get('error', '?'))}"
            )
        return payload

    # ----------------------------------------------------------------- api

    def submit(self, payload: dict) -> dict:
        """POST /jobs; returns the accepted job's status document."""
        return self._call("POST", "/jobs", payload)

    def status(self, job_id: str) -> dict:
        return self._call("GET", f"/jobs/{job_id}")

    def list_jobs(self) -> list[dict]:
        return self._call("GET", "/jobs")["jobs"]

    def cancel(self, job_id: str) -> dict:
        return self._call("DELETE", f"/jobs/{job_id}")

    def health(self) -> dict:
        return self._call("GET", "/healthz")

    def ready(self) -> bool:
        try:
            status, _, _ = self._request("GET", "/readyz")
        except ConnectionError:
            return False
        return status == 200

    def wait(self, job_id: str, timeout: float = 300.0, poll: float = 0.2) -> dict:
        """Poll until the job reaches a terminal state; returns its status."""
        deadline = time.monotonic() + timeout
        while True:
            status = self.status(job_id)
            if status["state"] in ("done", "degraded", "failed", "cancelled"):
                return status
            if time.monotonic() >= deadline:
                raise ServiceError(
                    f"job {job_id} still {status['state']} after {timeout}s"
                )
            self._sleep(poll)

    def fetch_report(self, job_id: str, which: str = "report") -> bytes:
        """GET the job's ``report`` or ``failures`` CSV as raw bytes."""
        if which not in ("report", "failures"):
            raise ServiceError(f"which must be 'report' or 'failures', got {which!r}")
        status, _, body = self._request("GET", f"/jobs/{job_id}/{which}.csv")
        if status != 200:
            raise ServiceError(
                f"fetching {which}.csv for {job_id} failed: HTTP {status}"
            )
        return body


def _parse_retry_after(headers: dict) -> float:
    """The Retry-After header in seconds; 0.0 when absent or unparsable."""
    raw = headers.get("Retry-After")
    if raw is None:
        return 0.0
    try:
        return max(0.0, float(raw))
    except (TypeError, ValueError):
        return 0.0


__all__ = ["RETRYABLE_STATUSES", "ServiceClient"]
