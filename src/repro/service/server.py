"""The HTTP face of the sweep service: stdlib server, JSON in and out.

A deliberately thin layer: every route parses the request, calls one
:class:`~repro.service.jobs.JobManager` method, and serialises the
answer.  All policy — admission, journaling, recovery, drain — lives in
the manager; all transport — threading, sockets, signals — lives here.

Routes::

    GET    /healthz                 liveness + counters (always 200)
    GET    /readyz                  200 accepting / 503 draining
    POST   /jobs                    submit a job (JSON body)
    GET    /jobs                    list jobs
    GET    /jobs/<id>               job status + progress + failures
    GET    /jobs/<id>/report.csv    the sweep report (terminal jobs)
    GET    /jobs/<id>/failures.csv  the failure report (degraded jobs)
    DELETE /jobs/<id>               cancel

Service errors map to HTTP statuses via their ``http_status`` attribute
(:class:`~repro.service.jobs.QueueFullError` additionally sets
``Retry-After``).  :func:`serve` wires SIGTERM/SIGINT to graceful
drain: admission stops (``/readyz`` flips to 503), in-flight jobs get
``drain_timeout`` seconds to finish, then the process exits — 0 for a
clean drain, 1 if jobs had to be journaled ``interrupted``.
"""

from __future__ import annotations

import json
import signal
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path

from repro.errors import ServiceError
from repro.service.jobs import JobManager, QueueFullError

#: Largest request body the server will read, in bytes.  Inline
#: topology CSVs and config texts are small; anything bigger is abuse.
MAX_BODY_BYTES = 4 * 1024 * 1024


class SweepHTTPServer(ThreadingHTTPServer):
    """A ThreadingHTTPServer that carries the job manager.

    ``daemon_threads`` so wedged request handlers can never block
    process exit after drain, and ``allow_reuse_address`` so a
    restarted server rebinds its port immediately.
    """

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address: tuple[str, int], manager: JobManager) -> None:
        super().__init__(address, _Handler)
        self.manager = manager


class _Handler(BaseHTTPRequestHandler):
    server: SweepHTTPServer
    protocol_version = "HTTP/1.1"

    # ------------------------------------------------------------- plumbing

    def log_message(self, format: str, *args: object) -> None:  # noqa: A002
        pass  # request logging is noise for an API server; healthz suffices

    def _send_json(
        self, status: int, payload: dict, extra_headers: dict | None = None
    ) -> None:
        body = json.dumps(payload, sort_keys=True, default=str).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (extra_headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_error(self, exc: ServiceError) -> None:
        status = getattr(exc, "http_status", 500)
        headers = {}
        if isinstance(exc, QueueFullError):
            headers["Retry-After"] = str(max(1, round(exc.retry_after)))
        self._send_json(
            status,
            {"error": type(exc).__name__, "message": str(exc)},
            headers,
        )

    def _send_file(self, path: Path, content_type: str) -> None:
        if not path.exists():
            self._send_json(404, {"error": "NotFound", "message": path.name})
            return
        body = path.read_bytes()
        self.send_response(200)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_json_body(self) -> object:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            raise ServiceError("request body required")
        if length > MAX_BODY_BYTES:
            raise ServiceError(f"request body exceeds {MAX_BODY_BYTES} bytes")
        raw = self.rfile.read(length)
        try:
            return json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ServiceError(f"request body is not valid JSON: {exc}") from exc

    def _dispatch(self, method: str) -> None:
        manager = self.server.manager
        parts = [part for part in self.path.split("?", 1)[0].split("/") if part]
        try:
            route = (method, *parts)
            if route == ("GET", "healthz"):
                self._send_json(200, manager.health())
            elif route == ("GET", "readyz"):
                if manager.draining:
                    self._send_json(503, {"status": "draining"})
                else:
                    self._send_json(200, {"status": "ok"})
            elif route == ("POST", "jobs"):
                job = manager.submit(self._read_json_body())
                self._send_json(202, job.status_dict())
            elif route == ("GET", "jobs"):
                self._send_json(
                    200, {"jobs": [job.summary_dict() for job in manager.jobs()]}
                )
            elif method == "GET" and len(parts) == 2 and parts[0] == "jobs":
                self._send_json(200, manager.get(parts[1]).status_dict())
            elif (
                method == "GET"
                and len(parts) == 3
                and parts[0] == "jobs"
                and parts[2] == "report.csv"
            ):
                self._send_file(manager.get(parts[1]).report_path, "text/csv")
            elif (
                method == "GET"
                and len(parts) == 3
                and parts[0] == "jobs"
                and parts[2] == "failures.csv"
            ):
                self._send_file(manager.get(parts[1]).failures_path, "text/csv")
            elif method == "DELETE" and len(parts) == 2 and parts[0] == "jobs":
                self._send_json(200, manager.cancel(parts[1]).status_dict())
            else:
                self._send_json(
                    404, {"error": "NotFound", "message": f"no route {self.path}"}
                )
        except ServiceError as exc:
            self._send_error(exc)
        except Exception as exc:  # noqa: BLE001 - a handler must answer
            self._send_json(
                500, {"error": type(exc).__name__, "message": str(exc)}
            )

    def do_GET(self) -> None:  # noqa: N802
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802
        self._dispatch("POST")

    def do_DELETE(self) -> None:  # noqa: N802
        self._dispatch("DELETE")


def start_server(manager: JobManager, host: str = "127.0.0.1", port: int = 0):
    """In-process server for tests: started manager + listening socket.

    Returns ``(httpd, thread)``; the caller owns shutdown
    (``httpd.shutdown()`` then ``manager.drain()``).
    """
    manager.start()
    httpd = SweepHTTPServer((host, port), manager)
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    return httpd, thread


def serve(
    manager: JobManager,
    host: str = "127.0.0.1",
    port: int = 8537,
    drain_timeout: float = 30.0,
) -> int:
    """Run the service until SIGTERM/SIGINT, then drain; returns exit code.

    Prints ``serving on http://host:port`` (flushed) once the socket is
    bound, so wrappers and tests can discover an ephemeral ``--port 0``.
    """
    manager.start()
    httpd = SweepHTTPServer((host, port), manager)
    stop = threading.Event()

    def _on_signal(signum: int, frame: object) -> None:
        manager.begin_drain()  # readyz flips to 503 before we stop serving
        stop.set()

    previous = {
        signal.SIGTERM: signal.signal(signal.SIGTERM, _on_signal),
        signal.SIGINT: signal.signal(signal.SIGINT, _on_signal),
    }
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    bound_host, bound_port = httpd.server_address[:2]
    print(f"serving on http://{bound_host}:{bound_port}", flush=True)
    try:
        stop.wait()
        clean = manager.drain(timeout=drain_timeout)
        httpd.shutdown()
        thread.join(timeout=5.0)
        return 0 if clean else 1
    finally:
        httpd.server_close()
        for signum, handler in previous.items():
            signal.signal(signum, handler)


__all__ = ["MAX_BODY_BYTES", "SweepHTTPServer", "serve", "start_server"]
