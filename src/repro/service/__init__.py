"""Sweep-as-a-service: a crash-safe HTTP job server over the sweep seams.

The package turns the existing sweep machinery (SweepSpec -> SweepRunner
-> executors -> ResultCache/ArtifactStore) into a long-running service:

* :mod:`repro.service.journal` — durable append-only job journals, the
  crash-proof source of truth;
* :mod:`repro.service.jobs` — job specs, the job state machine, and the
  :class:`JobManager` (admission control, recovery, graceful drain);
* :mod:`repro.service.server` — the stdlib HTTP layer;
* :mod:`repro.service.client` — a retrying client that honours the
  server's 429/503 + ``Retry-After`` admission contract.

Entry points: ``scale-sim-repro serve`` runs the server,
``scale-sim-repro submit/status/fetch`` talk to it.
"""

from repro.service.client import ServiceClient
from repro.service.jobs import (
    DrainingError,
    InvalidJobError,
    Job,
    JobCancelled,
    JobManager,
    JobSpec,
    JobStateError,
    QueueFullError,
    UnknownJobError,
)
from repro.service.journal import JOURNAL_FILENAME, TERMINAL_EVENTS, JobJournal
from repro.service.server import SweepHTTPServer, serve, start_server

__all__ = [
    "DrainingError",
    "InvalidJobError",
    "JOURNAL_FILENAME",
    "Job",
    "JobCancelled",
    "JobJournal",
    "JobManager",
    "JobSpec",
    "JobStateError",
    "QueueFullError",
    "ServiceClient",
    "SweepHTTPServer",
    "TERMINAL_EVENTS",
    "UnknownJobError",
    "serve",
    "start_server",
]
