"""Job specs, the job state machine, and the crash-safe job manager.

The service half that knows nothing about HTTP.  :class:`JobSpec`
validates a wire payload and turns it into a
:class:`~repro.run.sweep.SweepSpec`; :class:`Job` is one accepted job's
state machine (``queued -> running -> done/degraded/failed/cancelled``)
riding on a durable :class:`~repro.service.journal.JobJournal`; and
:class:`JobManager` owns admission control, the worker threads, crash
recovery, and graceful drain:

* **admission control** — a bounded queue (``max_queued``) and a
  bounded set of concurrently-running jobs (``max_active`` worker
  threads, each running its job's units through the configured
  executor at ``workers`` parallelism — the server's concurrent-unit
  budget is ``max_active x workers``).  Past the queue bound
  :meth:`JobManager.submit` raises :class:`QueueFullError`, which the
  HTTP layer maps to 429 + ``Retry-After``;
* **crash recovery** — :meth:`JobManager.recover` (run at startup)
  replays every job journal under the data directory: jobs with a
  terminal event are loaded as finished history, jobs without one are
  re-enqueued.  Re-running is idempotent: completed units are hits in
  the shared on-disk :class:`~repro.run.sweep.ResultCache`, so only
  results lost with the dead process are re-simulated;
* **graceful drain** — :meth:`begin_drain` stops admission (new
  submits raise :class:`DrainingError` -> 503), :meth:`drain` waits for
  running jobs up to a timeout, journals the stragglers as
  ``interrupted``, hands the process's spool claims back to surviving
  workers (:func:`repro.run.executors.release_claims`), and stamps the
  server journal with a clean/dirty stop marker.

Everything here is stdlib + the existing run/store seams — no new
dependencies.
"""

from __future__ import annotations

import re
import threading
import time
import uuid
from collections import deque
from pathlib import Path

from repro.config.parser import parse_config_text
from repro.config.presets import available_presets, get_preset
from repro.core.report import write_failure_report, write_sweep_report
from repro.errors import ReproError, ServiceError
from repro.run.executors import (
    _TASK_SUFFIX,
    QueueExecutor,
    make_executor,
    release_claims,
)
from repro.run.sweep import (
    FAILURE_POLICIES,
    Axis,
    ResultCache,
    SweepRunner,
    SweepSpec,
)
from repro.service.journal import JobJournal
from repro.store import ArtifactStore, dump_json_atomic
from repro.topology.models import available_models, get_model
from repro.topology.topology import Topology

#: Every state a job can be in, in lifecycle order.
JOB_STATES = ("queued", "running", "done", "degraded", "failed", "cancelled")

#: States a job never leaves.
TERMINAL_STATES = ("done", "degraded", "failed", "cancelled")

#: Job names must stay path- and CSV-safe.
_NAME_RE = re.compile(r"^[A-Za-z0-9_.-]{1,64}$")

#: Subdirectory of the data dir holding one directory per job.
JOBS_DIRNAME = "jobs"


class InvalidJobError(ServiceError):
    """A submitted payload failed validation (HTTP 400)."""

    http_status = 400


class UnknownJobError(ServiceError):
    """No job with the requested id exists (HTTP 404)."""

    http_status = 404


class JobStateError(ServiceError):
    """The job is in the wrong state for the request (HTTP 409)."""

    http_status = 409


class QueueFullError(ServiceError):
    """The bounded job queue is at capacity (HTTP 429 + Retry-After)."""

    http_status = 429

    def __init__(self, message: str, retry_after: float = 1.0) -> None:
        super().__init__(message)
        self.retry_after = retry_after


class DrainingError(ServiceError):
    """The server is draining and admits no new work (HTTP 503)."""

    http_status = 503


class JobCancelled(Exception):
    """Raised inside a running job when its cancellation was requested."""


# ------------------------------------------------------------------ spec


class JobSpec:
    """A validated job submission: what to sweep, and how.

    The wire payload is a JSON object::

        {
          "name": "channels",                  # optional, path-safe
          "preset": "scale_sim_v2_default",    # XOR "config_text": "..."
          "model": "resnet18",                 # XOR "topology_csv": "..."
          "scale": 8,                          # model divisor, default 1
          "topology_name": "resnet18",         # name for inline CSVs
          "axes": {"dram.channels": [1, 2]},   # or [{"field":..,"values":[..]}]
          "failure_policy": "degrade",         # default degrade
          "max_attempts": 3                    # optional, >= 1
        }

    Exactly one config source and one workload source are required.
    The payload round-trips: it is journaled verbatim in the job's
    ``submitted`` event and is sufficient to rebuild the sweep after a
    crash.
    """

    def __init__(
        self,
        name: str,
        preset: str | None,
        config_text: str | None,
        model: str | None,
        topology_csv: str | None,
        topology_name: str,
        scale: int,
        axes: list[tuple[str, list]],
        failure_policy: str,
        max_attempts: int | None,
    ) -> None:
        self.name = name
        self.preset = preset
        self.config_text = config_text
        self.model = model
        self.topology_csv = topology_csv
        self.topology_name = topology_name
        self.scale = scale
        self.axes = axes
        self.failure_policy = failure_policy
        self.max_attempts = max_attempts

    @classmethod
    def from_payload(cls, payload: object) -> JobSpec:
        """Validate a wire payload; raises :class:`InvalidJobError`."""
        if not isinstance(payload, dict):
            raise InvalidJobError("job payload must be a JSON object")
        known = {
            "name", "preset", "config_text", "model", "topology_csv",
            "topology_name", "scale", "axes", "failure_policy", "max_attempts",
        }
        unknown = sorted(set(payload) - known)
        if unknown:
            raise InvalidJobError(f"unknown job field(s): {', '.join(unknown)}")

        name = payload.get("name", "job")
        if not isinstance(name, str) or not _NAME_RE.match(name):
            raise InvalidJobError(
                "job name must be 1-64 characters of [A-Za-z0-9_.-]"
            )

        preset = payload.get("preset")
        config_text = payload.get("config_text")
        if (preset is None) == (config_text is None):
            raise InvalidJobError(
                "exactly one of 'preset' or 'config_text' is required"
            )
        if preset is not None and preset not in available_presets():
            raise InvalidJobError(
                f"unknown preset {preset!r}; available: "
                f"{', '.join(available_presets())}"
            )
        if config_text is not None and not isinstance(config_text, str):
            raise InvalidJobError("'config_text' must be a string")

        model = payload.get("model")
        topology_csv = payload.get("topology_csv")
        if (model is None) == (topology_csv is None):
            raise InvalidJobError(
                "exactly one of 'model' or 'topology_csv' is required"
            )
        if model is not None and model not in available_models():
            raise InvalidJobError(
                f"unknown model {model!r}; available: "
                f"{', '.join(available_models())}"
            )
        if topology_csv is not None and not isinstance(topology_csv, str):
            raise InvalidJobError("'topology_csv' must be a string")
        topology_name = payload.get("topology_name", "topology")
        if not isinstance(topology_name, str) or not _NAME_RE.match(topology_name):
            raise InvalidJobError(
                "topology_name must be 1-64 characters of [A-Za-z0-9_.-]"
            )

        scale = payload.get("scale", 1)
        if not isinstance(scale, int) or isinstance(scale, bool) or scale < 1:
            raise InvalidJobError(f"scale must be a positive integer, got {scale!r}")

        axes = _normalize_axes(payload.get("axes", []))

        failure_policy = payload.get("failure_policy", "degrade")
        if failure_policy not in FAILURE_POLICIES:
            raise InvalidJobError(
                f"failure_policy must be one of {FAILURE_POLICIES}, "
                f"got {failure_policy!r}"
            )

        max_attempts = payload.get("max_attempts")
        if max_attempts is not None and (
            not isinstance(max_attempts, int)
            or isinstance(max_attempts, bool)
            or max_attempts < 1
        ):
            raise InvalidJobError(
                f"max_attempts must be a positive integer, got {max_attempts!r}"
            )

        return cls(
            name=name,
            preset=preset,
            config_text=config_text,
            model=model,
            topology_csv=topology_csv,
            topology_name=topology_name,
            scale=scale,
            axes=axes,
            failure_policy=failure_policy,
            max_attempts=max_attempts,
        )

    def to_payload(self) -> dict:
        """The canonical wire form (journaled; rebuilds this spec)."""
        payload: dict = {"name": self.name}
        if self.preset is not None:
            payload["preset"] = self.preset
        if self.config_text is not None:
            payload["config_text"] = self.config_text
        if self.model is not None:
            payload["model"] = self.model
        if self.topology_csv is not None:
            payload["topology_csv"] = self.topology_csv
            payload["topology_name"] = self.topology_name
        if self.scale != 1:
            payload["scale"] = self.scale
        if self.axes:
            payload["axes"] = [
                {"field": field, "values": values} for field, values in self.axes
            ]
        payload["failure_policy"] = self.failure_policy
        if self.max_attempts is not None:
            payload["max_attempts"] = self.max_attempts
        return payload

    def build_sweep_spec(self, job_dir: Path) -> SweepSpec:
        """Materialise the concrete :class:`SweepSpec` for this job.

        Validation above is wire-level; config parsing and axis/field
        resolution can still reject here (e.g. an unknown sweep field),
        which the manager reports as a failed job rather than a crash.
        """
        if self.preset is not None:
            config = get_preset(self.preset)
        else:
            assert self.config_text is not None
            config = parse_config_text(self.config_text)
        if self.model is not None:
            topology = get_model(self.model, scale=self.scale)
        else:
            assert self.topology_csv is not None
            csv_path = job_dir / "topology.csv"
            if not csv_path.exists():
                csv_path.write_text(self.topology_csv, encoding="utf-8")
            topology = Topology.from_csv(csv_path, name=self.topology_name)
        return SweepSpec(
            base=config,
            axes=[Axis(field, tuple(values)) for field, values in self.axes],
            topologies=[topology],
            name=self.name,
        )


def _normalize_axes(raw: object) -> list[tuple[str, list]]:
    """Accept ``{"f": [v]}`` or ``[{"field": f, "values": [v]}]`` forms."""
    if isinstance(raw, dict):
        items = [{"field": field, "values": values} for field, values in raw.items()]
    elif isinstance(raw, list):
        items = raw
    else:
        raise InvalidJobError("axes must be an object or a list of axis objects")
    axes: list[tuple[str, list]] = []
    for item in items:
        if not isinstance(item, dict) or "field" not in item or "values" not in item:
            raise InvalidJobError(
                "each axis needs 'field' and 'values', "
                f"got {item!r}"
            )
        field = item["field"]
        values = item["values"]
        if not isinstance(field, str) or not field:
            raise InvalidJobError(f"axis field must be a non-empty string, got {field!r}")
        if not isinstance(values, list) or not values:
            raise InvalidJobError(f"axis {field!r} needs a non-empty list of values")
        for value in values:
            if not isinstance(value, (int, float, str, bool)):
                raise InvalidJobError(
                    f"axis {field!r} values must be scalars, got {value!r}"
                )
        axes.append((field, list(values)))
    return axes


# ------------------------------------------------------------------- job


class Job:
    """One accepted job: durable identity plus volatile run state."""

    def __init__(self, job_id: str, spec: JobSpec, job_dir: Path) -> None:
        self.id = job_id
        self.spec = spec
        self.dir = job_dir
        self.journal = JobJournal.for_job_dir(job_dir)
        self.state = "queued"
        self.created_at = time.time()
        self.started_at: float | None = None
        self.finished_at: float | None = None
        self.attempt = 0
        self.units_done = 0
        self.units_total: int | None = None
        self.points: int | None = None
        self.rows = 0
        self.failures: list[dict] = []
        self.error: dict | None = None
        self.cancel_requested = threading.Event()
        self.recovered = False

    @property
    def report_path(self) -> Path:
        return self.dir / f"{self.spec.name}_report.csv"

    @property
    def failures_path(self) -> Path:
        return self.dir / f"{self.spec.name}_failures.csv"

    def status_dict(self) -> dict:
        """The GET /jobs/<id> body."""
        status: dict = {
            "id": self.id,
            "name": self.spec.name,
            "state": self.state,
            "created_at": self.created_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "attempt": self.attempt,
            "recovered": self.recovered,
            "cancel_requested": self.cancel_requested.is_set(),
            "progress": {
                "units_done": self.units_done,
                "units_total": self.units_total,
            },
            "points": self.points,
            "rows": self.rows,
            "failures": self.failures,
        }
        if self.error is not None:
            status["error"] = self.error
        if self.state in ("done", "degraded"):
            status["report"] = self.report_path.name
            if self.failures_path.exists():
                status["failures_report"] = self.failures_path.name
        return status

    def summary_dict(self) -> dict:
        """The GET /jobs list entry."""
        return {
            "id": self.id,
            "name": self.spec.name,
            "state": self.state,
            "created_at": self.created_at,
            "units_done": self.units_done,
            "units_total": self.units_total,
        }


# ---------------------------------------------------------------- manager


class JobManager:
    """Owns the job table, the queue, the workers, and recovery.

    Thread-safe: the HTTP layer calls :meth:`submit` / :meth:`get` /
    :meth:`cancel` / :meth:`health` from request threads while
    ``max_active`` worker threads run jobs.  All shared state is
    guarded by one condition variable; job execution itself happens
    outside the lock.

    Args:
        data_dir: root of all durable state (jobs, cache, store, spool).
        executor_name: ``serial`` (default), ``pool`` or ``queue`` —
            how each job's simulation units execute.
        workers: per-job unit parallelism for the ``pool`` executor.
        max_queued: admission bound on jobs waiting to run.
        max_active: worker threads = jobs running concurrently.
        max_attempts / lease_ttl: executor fault-tolerance overrides.
        use_store: keep a shared on-disk ArtifactStore under the data
            dir (mid-level artifact reuse across jobs and restarts).
        external_workers: with the ``queue`` executor, don't drain the
            spool in-process — remote ``scale-sim-repro worker``
            processes own execution.
        job_runner: test seam — replaces the real sweep execution with
            ``fn(manager, job)``; everything else (journal, states,
            admission, drain) runs unchanged.
    """

    def __init__(
        self,
        data_dir: str | Path,
        executor_name: str = "serial",
        workers: int = 1,
        max_queued: int = 16,
        max_active: int = 1,
        max_attempts: int | None = None,
        lease_ttl: float | None = None,
        use_store: bool = True,
        external_workers: bool = False,
        job_runner=None,
    ) -> None:
        if max_queued < 1:
            raise ServiceError(f"max_queued must be >= 1, got {max_queued}")
        if max_active < 1:
            raise ServiceError(f"max_active must be >= 1, got {max_active}")
        self.data_dir = Path(data_dir)
        self.jobs_dir = self.data_dir / JOBS_DIRNAME
        self.jobs_dir.mkdir(parents=True, exist_ok=True)
        self.executor_name = executor_name
        self.workers = workers
        self.max_queued = max_queued
        self.max_active = max_active
        self.max_attempts = max_attempts
        self.lease_ttl = lease_ttl
        self.external_workers = external_workers
        self.cache = ResultCache(self.data_dir / "cache")
        self.store = ArtifactStore(self.data_dir / "store") if use_store else None
        self.spool_dir = self.data_dir / "spool"
        self.server_journal = JobJournal(self.data_dir / "server.jsonl")
        self._job_runner = job_runner if job_runner is not None else _run_sweep_job
        self._jobs: dict[str, Job] = {}
        self._order: list[str] = []
        self._queue: deque[str] = deque()
        self._cond = threading.Condition()
        self._draining = False
        self._stopping = False
        self._threads: list[threading.Thread] = []
        self._active = 0
        self.started_at = time.time()

    # ------------------------------------------------------------ lifecycle

    def start(self) -> None:
        """Recover journaled jobs, then start the worker threads."""
        self.recover()
        self.server_journal.append(
            "server_started",
            executor=self.executor_name,
            max_queued=self.max_queued,
            max_active=self.max_active,
        )
        for number in range(self.max_active):
            thread = threading.Thread(
                target=self._worker_loop, name=f"job-worker-{number}", daemon=True
            )
            thread.start()
            self._threads.append(thread)

    def recover(self) -> int:
        """Replay every job directory; re-enqueue unfinished work.

        Jobs with a terminal journal event are registered as finished
        history (their reports are already on disk).  Jobs without one
        — the server died while they were queued or running — are
        re-enqueued in submission order, *bypassing* the admission
        bound: they were admitted once and are owed.  Returns the
        number of jobs re-enqueued.
        """
        recovered = 0
        entries = []
        for job_dir in self.jobs_dir.iterdir() if self.jobs_dir.exists() else []:
            if not job_dir.is_dir():
                continue
            journal = JobJournal.for_job_dir(job_dir)
            events = journal.replay()
            submitted = next(
                (event for event in events if event.get("event") == "submitted"), None
            )
            if submitted is None:
                # A directory with no intact submitted line: the server
                # died inside submit() before the journal's first fsync
                # finished.  The client never got an id back, so nothing
                # is owed; leave the husk for operators.
                continue
            entries.append((submitted.get("time", 0.0), job_dir, events, submitted))
        for _, job_dir, events, submitted in sorted(entries, key=lambda item: item[0]):
            payload = submitted.get("payload")
            try:
                spec = JobSpec.from_payload(payload)
            except ServiceError:
                continue  # journaled by an incompatible future/past version
            job = Job(job_dir.name, spec, job_dir)
            job.created_at = submitted.get("time", job.created_at)
            terminal = None
            for event in reversed(events):
                if event.get("event") in TERMINAL_STATES:
                    terminal = event
                    break
            with self._cond:
                self._jobs[job.id] = job
                self._order.append(job.id)
                if terminal is not None:
                    _load_finished(job, events, terminal)
                else:
                    job.recovered = True
                    job.attempt = sum(
                        1 for event in events if event.get("event") == "started"
                    )
                    job.journal.append("recovered")
                    self._queue.append(job.id)
                    recovered += 1
                    self._cond.notify()
        return recovered

    def begin_drain(self) -> None:
        """Stop admission; running jobs continue.  Safe to call twice."""
        with self._cond:
            if self._draining:
                return
            self._draining = True
            self._cond.notify_all()

    def drain(self, timeout: float = 30.0) -> bool:
        """Wait for running jobs, then stamp the stop marker.

        Queued jobs stay journaled (a restart re-enqueues them); only
        *running* jobs are waited for.  On timeout the stragglers are
        journaled ``interrupted`` and the process's spool claims are
        handed back so surviving remote workers pick the units up
        immediately.  Returns ``True`` for a clean (fully drained)
        stop.
        """
        self.begin_drain()
        deadline = time.monotonic() + timeout
        with self._cond:
            while self._active > 0 and time.monotonic() < deadline:
                self._cond.wait(timeout=min(0.2, max(0.01, deadline - time.monotonic())))
            clean = self._active == 0
            stragglers = [
                job for job in self._jobs.values() if job.state == "running"
            ]
            queued = len(self._queue)
            self._stopping = True
            self._cond.notify_all()
        for job in stragglers:
            job.journal.append("interrupted", reason="drain timeout")
        if self.spool_dir.exists():
            release_claims(self.spool_dir)
        self.server_journal.append(
            "server_stopped",
            clean=clean,
            interrupted=len(stragglers),
            queued_left=queued,
        )
        return clean

    # ------------------------------------------------------------ admission

    def submit(self, payload: object) -> Job:
        """Admit one job (or raise); the accepted job is already durable.

        Order matters for crash-safety: the job directory and its
        ``submitted`` journal line are written *before* the job becomes
        visible in the queue, so any job a client ever saw an id for is
        recoverable, and a crash inside submit leaves at most an inert
        directory without a journal.
        """
        spec = JobSpec.from_payload(payload)
        with self._cond:
            if self._draining:
                raise DrainingError("server is draining; not accepting jobs")
            if len(self._queue) >= self.max_queued:
                raise QueueFullError(
                    f"job queue is full ({self.max_queued} queued)",
                    retry_after=1.0,
                )
            job_id = uuid.uuid4().hex[:12]
            job_dir = self.jobs_dir / job_id
        job_dir.mkdir(parents=True)
        job = Job(job_id, spec, job_dir)
        dump_json_atomic(job_dir / "spec.json", spec.to_payload())
        job.journal.append("submitted", job_id=job_id, payload=spec.to_payload())
        with self._cond:
            if self._draining:
                # Drain began between validation and enqueue: journal the
                # rejection so the directory self-describes, and refuse.
                job.journal.append("cancelled", reason="server draining at submit")
                raise DrainingError("server is draining; not accepting jobs")
            self._jobs[job_id] = job
            self._order.append(job_id)
            self._queue.append(job_id)
            self._cond.notify()
        return job

    def get(self, job_id: str) -> Job:
        with self._cond:
            job = self._jobs.get(job_id)
        if job is None:
            raise UnknownJobError(f"no such job: {job_id}")
        return job

    def jobs(self) -> list[Job]:
        with self._cond:
            return [self._jobs[job_id] for job_id in self._order]

    def cancel(self, job_id: str) -> Job:
        """Cancel a queued job now, or request a running job to stop.

        A queued job transitions to ``cancelled`` immediately.  A
        running job gets its flag set and transitions at the next unit
        boundary (a unit is never interrupted mid-simulation).
        Cancelling a terminal job raises :class:`JobStateError`.
        """
        job = self.get(job_id)
        with self._cond:
            if job.state == "queued":
                try:
                    self._queue.remove(job_id)
                except ValueError:  # pragma: no cover - popped concurrently
                    pass
                else:
                    job.state = "cancelled"
                    job.finished_at = time.time()
                    job.journal.append("cancelled", reason="client request")
                    return job
            if job.state in TERMINAL_STATES:
                raise JobStateError(f"job {job_id} is already {job.state}")
        job.cancel_requested.set()
        return job

    # -------------------------------------------------------------- health

    def spool_depth(self) -> int:
        """Unclaimed task files waiting in the spool (queue executor)."""
        if not self.spool_dir.exists():
            return 0
        return sum(1 for _ in self.spool_dir.glob(f"*/unit_*{_TASK_SUFFIX}"))

    def health(self) -> dict:
        """The GET /healthz body: states, counters, backlog, warmth."""
        with self._cond:
            states = {state: 0 for state in JOB_STATES}
            for job in self._jobs.values():
                states[job.state] += 1
            queued_depth = len(self._queue)
            draining = self._draining
        store_counters = (
            {"hits": self.store.hits, "misses": self.store.misses}
            if self.store is not None
            else None
        )
        return {
            "status": "draining" if draining else "ok",
            "uptime_seconds": time.time() - self.started_at,
            "executor": self.executor_name,
            "jobs": states,
            "queue": {"depth": queued_depth, "max_queued": self.max_queued},
            "active": {"running": states["running"], "max_active": self.max_active},
            "result_cache": {"hits": self.cache.hits, "misses": self.cache.misses},
            "artifact_store": store_counters,
            "spool": {"depth": self.spool_depth()},
        }

    @property
    def draining(self) -> bool:
        with self._cond:
            return self._draining

    # -------------------------------------------------------------- workers

    def _worker_loop(self) -> None:
        while True:
            with self._cond:
                while not self._stopping and (self._draining or not self._queue):
                    self._cond.wait(timeout=0.5)
                    if self._stopping:
                        break
                if self._stopping:
                    return
                job_id = self._queue.popleft()
                job = self._jobs[job_id]
                if job.state != "queued":  # cancelled while queued
                    continue
                job.state = "running"
                job.started_at = time.time()
                job.attempt += 1
                self._active += 1
            try:
                job.journal.append("started", attempt=job.attempt)
                if job.cancel_requested.is_set():
                    raise JobCancelled()
                self._job_runner(self, job)
            except JobCancelled:
                job.journal.append("cancelled", reason="client request")
                self._finish(job, "cancelled")
            except ReproError as exc:
                self._record_failure(job, exc)
            except Exception as exc:  # noqa: BLE001 - jobs must not kill workers
                self._record_failure(job, exc)
            else:
                state = "degraded" if job.failures else "done"
                job.journal.append(
                    state,
                    rows=job.rows,
                    failures=len(job.failures),
                    report=job.report_path.name,
                )
                self._finish(job, state)

    def _record_failure(self, job: Job, exc: Exception) -> None:
        job.error = {"error_class": type(exc).__name__, "message": str(exc)}
        job.journal.append("failed", **job.error)
        self._finish(job, "failed")

    def _finish(self, job: Job, state: str) -> None:
        with self._cond:
            job.state = state
            job.finished_at = time.time()
            self._active -= 1
            self._cond.notify_all()

    # ------------------------------------------------------------ execution

    def _make_executor(self):
        """A fresh executor per job (queue-executor state is per-batch)."""
        if self.executor_name == "serial" and self.workers > 1:
            return make_executor("pool", workers=self.workers)
        if self.executor_name == "queue":
            return QueueExecutor(
                self.spool_dir,
                run_local_worker=not self.external_workers,
                timeout=None,
                max_attempts=(
                    self.max_attempts if self.max_attempts is not None else 3
                ),
                lease_ttl=self.lease_ttl if self.lease_ttl is not None else 300.0,
            )
        return make_executor(
            self.executor_name,
            workers=self.workers,
            spool_dir=self.spool_dir,
            max_attempts=self.max_attempts,
            lease_ttl=self.lease_ttl,
        )


def _load_finished(job: Job, events: list[dict], terminal: dict) -> None:
    """Rebuild a finished job's visible state from its journal."""
    job.state = terminal["event"]
    job.finished_at = terminal.get("time")
    job.attempt = sum(1 for event in events if event.get("event") == "started")
    for event in events:
        if event.get("event") == "started" and job.started_at is None:
            job.started_at = event.get("time")
        if event.get("event") == "progress":
            job.units_done = int(event.get("units_done", 0))
            job.units_total = int(event.get("units_total", 0)) or None
    if terminal["event"] in ("done", "degraded"):
        job.rows = int(terminal.get("rows", 0))
        job.points = job.rows + int(terminal.get("failures", 0))
    if terminal["event"] == "failed":
        job.error = {
            "error_class": str(terminal.get("error_class", "unknown")),
            "message": str(terminal.get("message", "")),
        }


def _run_sweep_job(manager: JobManager, job: Job) -> None:
    """The real job runner: one SweepRunner pass through the seams.

    Progress callbacks double as the cancellation poll: the executor
    invokes them between units (and on every queue-executor poll pass),
    and a raised :class:`JobCancelled` aborts the run at that boundary.
    Reports are written *before* the terminal journal event, so a crash
    between the two re-runs the job into pure cache hits and rewrites
    identical bytes.
    """
    spec = job.spec.build_sweep_spec(job.dir)

    def progress(done: int, total: int) -> None:
        if job.cancel_requested.is_set():
            raise JobCancelled()
        if (done, total) != (job.units_done, job.units_total):
            job.units_done = done
            job.units_total = total
            job.journal.append("progress", units_done=done, units_total=total)

    executor = manager._make_executor()
    runner = SweepRunner(
        cache=manager.cache,
        store=manager.store,
        executor=executor,
        failure_policy=job.spec.failure_policy,
        progress=progress,
    )
    results = runner.run(spec)
    if job.cancel_requested.is_set():
        # Cancellation that raced the last unit: the work is done and
        # cached, but the client asked for a cancel — honour it.
        raise JobCancelled()
    job.rows = len(results)
    job.points = len(results) + len(runner.last_failures)
    job.failures = [
        {
            "index": failure.index,
            "topology": failure.topology_name,
            "assignment": dict(failure.assignment),
            "attempts": failure.attempts,
            "error_class": failure.error_class,
            "message": failure.message,
        }
        for failure in runner.last_failures
    ]
    if results:
        write_sweep_report(results, job.report_path)
    write_failure_report(runner.last_failures, job.failures_path)
    if not results:
        raise ServiceError("sweep produced no successful points")


__all__ = [
    "DrainingError",
    "InvalidJobError",
    "JOB_STATES",
    "Job",
    "JobCancelled",
    "JobManager",
    "JobSpec",
    "JobStateError",
    "QueueFullError",
    "TERMINAL_STATES",
    "UnknownJobError",
]
