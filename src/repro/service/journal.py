"""Durable job journals: the service's crash-proof source of truth.

Every job the service accepts lives in its own directory under
``<data-dir>/jobs/``, and everything that ever happened to it is one
line in that directory's append-only ``journal.jsonl``.  The journal —
not any in-memory structure — is the authoritative record: the server
can be SIGKILLed at any instant and a restart replays the journals to
rebuild exactly the jobs it owed its clients.

The format is deliberately boring: one JSON object per line, appended
via a single ``write`` + ``fsync`` (:func:`repro.store.append_json_line`)
so a crash can tear at most the final line, which replay then ignores
(:func:`repro.store.read_json_lines`).  Each line carries at least
``event`` and ``time``; the first line of a valid journal is always the
``submitted`` event embedding the job's full wire payload, so the
journal alone is enough to re-run the job.

Event vocabulary (see DESIGN.md "Sweep-as-a-service"):

* ``submitted``  — payload accepted; embeds the job spec.
* ``started``    — a run attempt began (repeats after recovery).
* ``progress``   — ``units_done`` / ``units_total`` advanced.
* ``recovered``  — a restarted server re-enqueued this unfinished job.
* ``interrupted``— a draining server timed out with this job running.
* ``done`` / ``degraded`` / ``failed`` / ``cancelled`` — terminal.

A journal whose last terminal event exists describes a finished job;
one without describes work the server still owes and must re-enqueue on
startup.  Re-running is idempotent because every simulated point lands
in the shared on-disk :class:`~repro.run.sweep.ResultCache` *before*
the terminal event is journaled — a replayed job re-simulates only the
units whose results were lost with the process.
"""

from __future__ import annotations

import time
from pathlib import Path

from repro.store import append_json_line, read_json_lines

#: File name of a job's journal inside its job directory.
JOURNAL_FILENAME = "journal.jsonl"

#: Events that end a job's life; at most one per journal.
TERMINAL_EVENTS = ("done", "degraded", "failed", "cancelled")


class JobJournal:
    """Append-only event log of one job (or of the server itself)."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)

    @classmethod
    def for_job_dir(cls, job_dir: str | Path) -> JobJournal:
        return cls(Path(job_dir) / JOURNAL_FILENAME)

    def append(self, event: str, **fields: object) -> dict:
        """Durably append one event line; returns the written record."""
        record: dict = {"event": event, "time": time.time(), **fields}
        append_json_line(self.path, record)
        return record

    def replay(self) -> list[dict]:
        """All intact events, oldest first (torn tail dropped)."""
        return read_json_lines(self.path)

    def terminal_event(self) -> dict | None:
        """The job's terminal event, or ``None`` while work is owed."""
        for record in reversed(self.replay()):
            if record.get("event") in TERMINAL_EVENTS:
                return record
        return None


__all__ = ["JOURNAL_FILENAME", "TERMINAL_EVENTS", "JobJournal"]
