"""Exception hierarchy for the SCALE-Sim v3 reproduction.

Every error raised by this package derives from :class:`ReproError`, so
callers can catch one type at the API boundary.  Sub-classes mirror the
subsystems of the simulator (configuration, topology, compute, memory,
DRAM, sparsity, layout, energy) so failures self-describe their origin.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class ConfigError(ReproError):
    """Raised for invalid, missing, or inconsistent configuration values."""


class TopologyError(ReproError):
    """Raised for malformed workload topologies or layer descriptions."""


class MappingError(ReproError):
    """Raised when a GEMM cannot be mapped onto the requested array/dataflow."""


class SimulationError(ReproError):
    """Raised when a simulation reaches an impossible internal state."""


class MemoryModelError(ReproError):
    """Raised by the on-chip memory models (double buffer, scratchpads)."""


class DramError(ReproError):
    """Raised by the RamulatorLite DRAM model."""


class SparsityError(ReproError):
    """Raised for invalid sparsity configurations (e.g. N > M)."""


class LayoutError(ReproError):
    """Raised for invalid data-layout specifications."""


class EnergyModelError(ReproError):
    """Raised by the AccelergyLite energy model."""


class ReportError(ReproError):
    """Raised when a report cannot be generated or written."""


class ServiceError(ReproError):
    """Raised by the sweep service: job server, job manager, and client.

    Subclasses in :mod:`repro.service` refine it (bad job spec, unknown
    job, queue full, draining) and carry the HTTP status the server
    maps them to.
    """


class ExecutionError(ReproError):
    """Raised when a simulation unit exhausts its executor attempt budget.

    Carries the failing unit's last traceback in its message; when the
    original exception could be transported across the process boundary
    it is chained as ``__cause__``.
    """
