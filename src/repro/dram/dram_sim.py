"""RamulatorLite front-end: channels, shared data buses, statistics.

The model is open-page with in-order scheduling per channel.  For the
streaming access patterns a systolic accelerator produces (long
sequential tile fetches), in-order + open-page behaves like FR-FCFS —
nearly every access after the first in a row is a row hit — while
keeping the simulator simple and fast.  Per-request round-trip latencies
and the row-hit/miss/conflict taxonomy match Ramulator's reporting.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dram.address import LINE_BYTES, AddressMapper
from repro.dram.bank import CONFLICT, HIT, MISS, BankState
from repro.dram.timing import DramTiming, get_timing_preset
from repro.errors import DramError


@dataclass
class DramStats:
    """Aggregate statistics across all channels."""

    reads: int = 0
    writes: int = 0
    row_hits: int = 0
    row_misses: int = 0
    row_conflicts: int = 0
    total_read_latency: int = 0
    last_completion: int = 0
    first_request_cycle: int | None = None
    bytes_transferred: int = 0

    @property
    def requests(self) -> int:
        """All requests served."""
        return self.reads + self.writes

    @property
    def row_hit_rate(self) -> float:
        """Fraction of accesses that hit an open row."""
        total = self.row_hits + self.row_misses + self.row_conflicts
        return self.row_hits / total if total else 0.0

    @property
    def average_read_latency(self) -> float:
        """Mean round-trip latency of read requests, in cycles."""
        return self.total_read_latency / self.reads if self.reads else 0.0

    def throughput_gbps(self, tck_ns: float) -> float:
        """Achieved bandwidth over the active window, in GB/s."""
        if self.first_request_cycle is None:
            return 0.0
        window = self.last_completion - self.first_request_cycle
        if window <= 0:
            return 0.0
        return self.bytes_transferred / (window * tck_ns)


@dataclass
class _Channel:
    """One channel: its banks and shared data bus."""

    banks: list[list[BankState]]  # [rank][bank]
    bus_ready: int = 0
    stats: DramStats = field(default_factory=DramStats)


class RamulatorLite:
    """Cycle-accurate-enough DRAM: submit requests, get completion times.

    Requests must be submitted in non-decreasing issue-cycle order per
    caller; the model keeps per-bank and per-bus state so interleaved
    operand streams still contend realistically.
    """

    def __init__(
        self,
        technology: str | DramTiming = "ddr4",
        channels: int = 1,
        ranks_per_channel: int = 1,
        banks_per_rank: int = 16,
        capacity_gb_per_channel: float = 0.5,
        address_mapping: str = "ro_ba_ra_co_ch",
    ) -> None:
        self.timing = (
            technology
            if isinstance(technology, DramTiming)
            else get_timing_preset(technology)
        )
        if channels < 1:
            raise DramError(f"channels must be >= 1, got {channels}")
        self.mapper = AddressMapper(
            mapping=address_mapping,
            channels=channels,
            ranks=ranks_per_channel,
            banks=banks_per_rank,
            row_bytes=self.timing.row_bytes,
            capacity_bytes_per_channel=int(capacity_gb_per_channel * (1 << 30)),
        )
        self._channels = [
            _Channel(
                banks=[
                    [BankState() for _ in range(banks_per_rank)]
                    for _ in range(ranks_per_channel)
                ]
            )
            for _ in range(channels)
        ]

    @property
    def num_channels(self) -> int:
        """Number of independent channels."""
        return len(self._channels)

    def submit(self, byte_address: int, cycle: int, is_write: bool = False) -> int:
        """Submit one 64B-line request; returns its completion cycle.

        For reads the completion is when data arrives at the requester;
        for writes, when the write data has been accepted on the bus.
        """
        if cycle < 0:
            raise DramError(f"negative cycle {cycle}")
        decoded = self.mapper.decode(byte_address)
        channel = self._channels[decoded.channel]
        bank = channel.banks[decoded.rank][decoded.bank]

        data_start, category = bank.access(cycle, decoded.row, is_write, self.timing)
        # Win the shared data bus for t_burst cycles.
        bus_start = max(data_start, channel.bus_ready)
        channel.bus_ready = bus_start + self.timing.t_burst
        completion = bus_start + self.timing.t_burst

        stats = channel.stats
        if category == HIT:
            stats.row_hits += 1
        elif category == MISS:
            stats.row_misses += 1
        elif category == CONFLICT:
            stats.row_conflicts += 1
        if is_write:
            stats.writes += 1
        else:
            stats.reads += 1
            stats.total_read_latency += completion - cycle
        if stats.first_request_cycle is None:
            stats.first_request_cycle = cycle
        stats.last_completion = max(stats.last_completion, completion)
        stats.bytes_transferred += LINE_BYTES
        return completion

    def channel_stats(self, channel: int) -> DramStats:
        """Statistics for one channel."""
        return self._channels[channel].stats

    def aggregate_stats(self) -> DramStats:
        """Merged statistics across all channels."""
        merged = DramStats()
        firsts = []
        for channel in self._channels:
            s = channel.stats
            merged.reads += s.reads
            merged.writes += s.writes
            merged.row_hits += s.row_hits
            merged.row_misses += s.row_misses
            merged.row_conflicts += s.row_conflicts
            merged.total_read_latency += s.total_read_latency
            merged.last_completion = max(merged.last_completion, s.last_completion)
            merged.bytes_transferred += s.bytes_transferred
            if s.first_request_cycle is not None:
                firsts.append(s.first_request_cycle)
        merged.first_request_cycle = min(firsts) if firsts else None
        return merged

    def reset_stats(self) -> None:
        """Zero all statistics (bank state is kept)."""
        for channel in self._channels:
            channel.stats = DramStats()
