"""BatchedEngine: the vectorized memory-datapath engine.

Bit-exact to :class:`repro.dram.engine.ReferenceEngine`, but the
per-64B-line Python loop is replaced by array passes over whole line
batches:

* **address decode** is stride arithmetic over the full batch
  (:meth:`repro.dram.address.AddressMapper.decode_batch`);
* **front-end pacing + queue backpressure** become one running-max
  scan.  With ``c = max_issue_per_cycle``, the scalar recurrence
  "bump the clock every c issues, jump to the oldest in-flight
  completion when a queue is full" has the closed form
  ``issue[i] = (i + max_{j<=i}(c*g[j] - j)) // c`` where ``g[j]`` is
  the queue constraint of request ``j`` — an order statistic of the
  queue's past completions (see below);
* **bank timing** is resolved per row-hit streak: within a streak the
  recurrence ``issue[k] = max(cycle[k], issue[k-1] + delta[k-1])``
  telescopes to a prefix sum plus a segmented running max, so whole
  streaks (the overwhelmingly common case for streaming tile fetches)
  resolve in one vector op.  Row misses/conflicts — the rare streak
  boundaries — are walked scalar;
* **bus arbitration** per channel is the same max-plus telescoping:
  ``ready[k] = max(data[k], ready[k-1]) + t_burst`` becomes
  ``(k+1)*t_burst + runmax(data[k] - k*t_burst)``;
* **statistics** are array reductions accumulated once per batch.

The queue constraint ``g`` is exact, not heuristic.  For a queue of
capacity ``Q``, the j-th push can issue no earlier than the
``(j-Q)``-th smallest of all completions pushed before it (when the
queue is full, the front-end jumps to the oldest in-flight completion;
retired entries only make the constraint vacuous).  Those order
statistics are consumed in strictly increasing rank order, so the
engine keeps a sorted ``pending`` pool per queue and processes lines in
sub-blocks of at most ``Q`` pushes per queue — every constraint a block
needs is then a completion from *before* the block.  A cheap vectorized
check (no in-block completion may undercut a later consumed constraint)
guards the one case where an in-block completion could reorder the
statistics; on the rare violation the block is truncated and re-run.

Small batches skip the array machinery entirely and run through an
inlined scalar loop over the same state — identical semantics, no
numpy dispatch overhead.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from itertools import chain
from typing import TYPE_CHECKING

import numpy as np

from repro.dram.address import LINE_BYTES
from repro.dram.dram_sim import DramStats, RamulatorLite
from repro.dram.engine import BatchResult, LineRequestBatch
from repro.errors import DramError, MemoryModelError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.compute_sim import TileFetch

_LOW = -(1 << 42)  # "no constraint" sentinel (far below any real cycle)
_BIG = 1 << 44  # segment offset for segmented running-max scans


def issue_order_arrays(batch: LineRequestBatch) -> tuple[np.ndarray, np.ndarray]:
    """The batch's round-robin issue order as ``(lines, is_write)`` arrays.

    Exactly the construction the vector path performs on entry (stream
    concatenation, then a (round, stream) key sort), factored out so a
    fan-out can decode the stream once and share it across engines.
    """
    streams = [s for s in batch.streams if s.num_lines]
    lines = np.concatenate(
        [
            np.arange(s.first_line, s.first_line + s.num_lines, dtype=np.int64)
            for s in streams
        ]
    )
    is_write = np.concatenate(
        [np.full(s.num_lines, s.is_write, dtype=bool) for s in streams]
    )
    if len(streams) > 1:
        # Sort by (round, stream) — the round-robin issue order.
        num_streams = len(streams)
        keys = np.concatenate(
            [
                np.arange(s.num_lines, dtype=np.int64) * num_streams + stream_id
                for stream_id, s in enumerate(streams)
            ]
        )
        order = np.argsort(keys)
        lines = lines[order]
        is_write = is_write[order]
    return lines, is_write


@dataclass(frozen=True)
class PreparedLineBatch(LineRequestBatch):
    """A line batch with its vector-path issue order precomputed.

    Behaves exactly like a plain :class:`LineRequestBatch` everywhere
    (the reference engine, the scalar and fast paths read the streams);
    the vector path skips its interleave/sort step and consumes the
    attached read-only arrays.  Built by :func:`prepare_line_batch` so
    the DRAM fan-out shares one decoded line stream per word size
    across a whole config grid.
    """

    lines_in_order: np.ndarray | None = field(
        default=None, compare=False, repr=False
    )
    writes_in_order: np.ndarray | None = field(
        default=None, compare=False, repr=False
    )


def prepare_line_batch(
    fetches: tuple["TileFetch", ...], word_bytes: int
) -> LineRequestBatch:
    """Chop fetches into lines and precompute the vector issue order.

    Batches below the vector threshold stay plain (the scalar and
    single-stream paths never touch the arrays).
    """
    base = LineRequestBatch.from_fetches(fetches, word_bytes)
    if base.total_lines < BatchedEngine.vector_threshold:
        return base
    lines, is_write = issue_order_arrays(base)
    return PreparedLineBatch(
        streams=base.streams, lines_in_order=lines, writes_in_order=is_write
    )


def _interleave(batch: LineRequestBatch) -> tuple[list[int], list[int]]:
    """Materialize the round-robin line order as flat Python lists.

    Streams are peeled in phases of equal remaining length: within a
    phase every active stream contributes one line per round (a C-speed
    ``zip`` of ranges), and streams drop out exactly at round ends —
    the same order :meth:`LineRequestBatch.iter_round_robin` yields.
    Returns ``(lines, writes)`` with writes as 0/1 ints.
    """
    active = [
        [s.first_line, s.num_lines, 1 if s.is_write else 0]
        for s in batch.streams
        if s.num_lines
    ]
    lines: list[int] = []
    writes: list[int] = []
    while active:
        rounds = min(entry[1] for entry in active)
        if len(active) == 1:
            first, count, is_write = active[0]
            lines.extend(range(first, first + count))
            writes.extend([is_write] * count)
            break
        lines.extend(
            chain.from_iterable(
                zip(*[range(entry[0], entry[0] + rounds) for entry in active])
            )
        )
        writes.extend([entry[2] for entry in active] * rounds)
        for entry in active:
            entry[0] += rounds
            entry[1] -= rounds
        active = [entry for entry in active if entry[1]]
    return lines, writes


class _EngineQueue:
    """Request-queue state + statistics (mirrors ``RequestQueue``'s API).

    ``outstanding`` is the lazily-retired min-heap of in-flight
    completions (exactly the reference queue's heap); ``pending`` holds
    completions whose backpressure rank has not been consumed yet —
    the sorted pool the vector path reads constraints from.
    """

    __slots__ = (
        "name",
        "capacity",
        "outstanding",
        "pending",
        "pushed",
        "total_enqueued",
        "total_stall_cycles",
        "peak_occupancy",
    )

    def __init__(self, capacity: int, name: str) -> None:
        if capacity < 1:
            raise MemoryModelError(f"{name}: capacity must be >= 1, got {capacity}")
        self.name = name
        self.capacity = capacity
        self.outstanding: list[int] = []
        self.pending: list[int] = []
        self.pushed = 0
        self.total_enqueued = 0
        self.total_stall_cycles = 0
        self.peak_occupancy = 0

    def drain_time(self) -> int:
        """Cycle at which every in-flight entry has completed."""
        return max(self.outstanding) if self.outstanding else 0


class BatchedEngine:
    """Vectorized line pipeline, bit-exact to the reference engine."""

    #: Batches below this many lines run the inlined scalar loop.  Tuned
    #: by ``benchmarks/perf/test_perf_batched_small.py``: the vector
    #: path's fixed numpy-dispatch cost (~100 array ops) only amortizes
    #: beyond ~190 lines.
    vector_threshold = 192

    #: Closed-form fast path for single-stream read-only batches (the
    #: many ~30-line prefetch bursts): whole (bank, row) streaks resolve
    #: as affine sequences with O(streaks) Python work — no per-line
    #: loop, no numpy dispatch.  Exactness is guarded (and fuzzed); any
    #: batch the guards reject falls through to scalar/vector.
    single_stream_fast_path = True

    def __init__(
        self,
        dram: RamulatorLite,
        read_queue_entries: int = 128,
        write_queue_entries: int = 128,
        max_issue_per_cycle: int = 1,
    ) -> None:
        if max_issue_per_cycle < 1:
            raise DramError("max_issue_per_cycle must be >= 1")
        self.timing = dram.timing
        self.mapper = dram.mapper
        self.max_issue_per_cycle = max_issue_per_cycle
        self.read_queue = _EngineQueue(read_queue_entries, "read_queue")
        self.write_queue = _EngineQueue(write_queue_entries, "write_queue")
        self._issue_clock = 0

        mapper = self.mapper
        self.channels = mapper.channels
        self.ranks = mapper.ranks
        self.banks = mapper.banks
        num_banks = self.channels * self.ranks * self.banks
        # Canonical state is plain Python (fast for the scalar path);
        # the vector path snapshots it into arrays per batch.
        self._open_row = [-1] * num_banks
        self._ready = [0] * num_banks
        self._act = [-(10**9)] * num_banks
        self._bus_ready = [0] * self.channels
        # Per-channel statistics.
        self._s_reads = [0] * self.channels
        self._s_writes = [0] * self.channels
        self._s_hits = [0] * self.channels
        self._s_misses = [0] * self.channels
        self._s_conflicts = [0] * self.channels
        self._s_lat = [0] * self.channels
        self._s_last = [0] * self.channels
        self._s_first: list[int | None] = [None] * self.channels
        self._s_bytes = [0] * self.channels
        # Decode plan shared with AddressMapper: (line // stride) % size.
        self._strides = mapper.field_strides
        self._sizes = mapper.field_sizes

    # ------------------------------------------------------------- protocol

    def process_batch(self, batch: LineRequestBatch, issue_cycle: int) -> BatchResult:
        """Issue every line of ``batch``; return the read-ready horizon."""
        if issue_cycle < 0:
            raise DramError(f"negative cycle {issue_cycle}")
        clock0 = max(issue_cycle, self._issue_clock)
        total = batch.total_lines
        if total == 0:
            self._issue_clock = clock0
            return BatchResult(ready_cycle=clock0, lines_read=0, lines_written=0)
        result = self._try_fast_paths(batch, clock0, total)
        if result is not None:
            return result
        if total < self.vector_threshold:
            return self._process_scalar(batch, clock0)
        return self._process_vector(batch, clock0)

    def _try_fast_paths(
        self, batch: LineRequestBatch, clock0: int, total: int
    ) -> BatchResult | None:
        """Attempt the closed-form single-stream paths; ``None`` declines.

        Factored out of :meth:`process_batch` so the grid-batched engine
        (:mod:`repro.dram.engine_grid`) can peel off the configs these
        O(streaks) paths accept before its shared vector pass — the
        guards and commits are per-config state anyway.
        """
        if not self.single_stream_fast_path:
            return None
        result = self._process_single_stream(batch, clock0, total)
        if result is None and total > self.read_queue.capacity:
            result = self._process_single_stream_saturated(batch, clock0, total)
        return result

    def drain(self) -> int:
        """Cycle when every in-flight read and write has completed."""
        return max(self.read_queue.drain_time(), self.write_queue.drain_time())

    def aggregate_stats(self) -> DramStats:
        """Merged statistics across all channels."""
        merged = DramStats()
        firsts = [f for f in self._s_first if f is not None]
        merged.reads = sum(self._s_reads)
        merged.writes = sum(self._s_writes)
        merged.row_hits = sum(self._s_hits)
        merged.row_misses = sum(self._s_misses)
        merged.row_conflicts = sum(self._s_conflicts)
        merged.total_read_latency = sum(self._s_lat)
        merged.last_completion = max(self._s_last)
        merged.bytes_transferred = sum(self._s_bytes)
        merged.first_request_cycle = min(firsts) if firsts else None
        return merged

    def channel_stats(self, channel: int) -> DramStats:
        """Statistics for one channel."""
        return DramStats(
            reads=self._s_reads[channel],
            writes=self._s_writes[channel],
            row_hits=self._s_hits[channel],
            row_misses=self._s_misses[channel],
            row_conflicts=self._s_conflicts[channel],
            total_read_latency=self._s_lat[channel],
            last_completion=self._s_last[channel],
            first_request_cycle=self._s_first[channel],
            bytes_transferred=self._s_bytes[channel],
        )

    # ------------------------------------------------- single-stream fast path

    def _process_single_stream(
        self, batch: LineRequestBatch, clock0: int, total: int
    ) -> BatchResult | None:
        """Closed-form pipeline for one contiguous read-only line stream.

        The common prefetch burst — a single stream of consecutive read
        lines on one channel, issued while every earlier read has already
        completed — reduces to per-(bank, row) streaks whose issue/bus
        recurrences telescope into affine sequences (``issue[i] = issue0
        + i*tCCD``; ``completion[i] = max(data[i], bus-chain) + tBURST``).
        Each streak costs O(1) Python arithmetic plus two ``range``
        materializations; anything outside the guarded regime returns
        ``None`` and takes the regular scalar/vector path.  Nothing is
        mutated until every exactness guard has passed.
        """
        streams = [s for s in batch.streams if s.num_lines]
        if len(streams) != 1 or streams[0].is_write or self.channels != 1:
            return None
        timing = self.timing
        t_ccd = timing.t_ccd
        t_cl = timing.t_cl
        t_burst = timing.t_burst
        if t_ccd < 1 or t_cl < 1 or t_burst < 1:
            return None  # the streak telescoping needs CAS >= pacing rate
        read_q = self.read_queue
        cap = read_q.capacity
        k = total
        if k > cap:
            return None  # backpressure possible
        out_r = read_q.outstanding
        if out_r and max(out_r) > clock0:
            return None  # in-flight prior reads complicate occupancy
        strides = self._strides
        candidates = [
            stride
            for stride, size in (
                (strides["ba"], self.banks),
                (strides["ra"], self.ranks),
                (strides["ro"], self._sizes["ro"]),
            )
            if size > 1
        ]
        s_min = min(candidates) if candidates else None
        first_line = streams[0].first_line
        if s_min is not None and (first_line % s_min) + k > s_min * max(2, k // 8):
            return None  # (bank, row) interleaving too fine — streaks degenerate

        st_ra, n_ra = strides["ra"], self.ranks
        st_ba, n_ba = strides["ba"], self.banks
        st_ro, n_ro_size = strides["ro"], self._sizes["ro"]
        ipc = self.max_issue_per_cycle

        # --- resolve every streak into locals (no state mutated yet).
        open_row = self._open_row
        ready = self._ready
        act = self._act
        t_ras, t_rp, t_rcd = timing.t_ras, timing.t_rp, timing.t_rcd
        bus_chain = self._bus_ready[0]
        completions: list[int] = []
        line = first_line
        remaining = k
        index = 0  # batch-wide issue index (paces the front-end clock)
        hits = misses = conflicts = 0
        # Deferred state updates: bank -> (open_row, ready, act).
        bank_updates: dict[int, tuple[int, int, int]] = {}
        while remaining:
            run = remaining if s_min is None else min(
                remaining, s_min - (line % s_min)
            )
            bank_index = ((line // st_ra) % n_ra) * n_ba + (line // st_ba) % n_ba
            row = (line // st_ro) % n_ro_size
            clock_first = clock0 + index // ipc
            orow, bank_ready, bank_act = bank_updates.get(
                bank_index,
                (open_row[bank_index], ready[bank_index], act[bank_index]),
            )
            start = bank_ready if bank_ready > clock_first else clock_first
            if orow == row:
                issue0 = start
                hits += run
            elif orow < 0:
                issue0 = start + t_rcd
                bank_act = issue0 - t_rcd
                misses += 1
                hits += run - 1
            else:
                pre = bank_act + t_ras
                if start > pre:
                    pre = start
                bank_act = pre + t_rp
                issue0 = bank_act + t_rcd
                conflicts += 1
                hits += run - 1
            issue_last = issue0 + (run - 1) * t_ccd
            bank_updates[bank_index] = (row, issue_last + t_ccd, bank_act)
            # completion[i] = max(data0 + i*tCCD, max(data0, bus) + i*tBURST) + tBURST
            data0 = issue0 + t_cl
            a0 = data0 + t_burst
            b0 = (data0 if data0 > bus_chain else bus_chain) + t_burst
            if t_ccd > t_burst:
                cross = -(-(b0 - a0) // (t_ccd - t_burst))
                cross = 0 if cross < 0 else (run if cross > run else cross)
            else:
                cross = run  # the bus chain dominates throughout
            completions.extend(range(b0, b0 + cross * t_burst, t_burst))
            completions.extend(
                range(a0 + cross * t_ccd, a0 + run * t_ccd, t_ccd)
            )
            bus_chain = completions[-1]
            line += run
            index += run
            remaining -= run

        clock_last = clock0 + (k - 1) // ipc
        if completions[0] <= clock_last:
            return None  # a completion would retire mid-batch

        # --- commit: bank state, bus, queue, statistics.
        for bank_index, (row, bank_ready, bank_act) in bank_updates.items():
            open_row[bank_index] = row
            ready[bank_index] = bank_ready
            act[bank_index] = bank_act
        self._bus_ready[0] = bus_chain
        self._issue_clock = clock_last
        # One pop per line once `pushed` reaches capacity (the scalar
        # loop's rank-consumption rule), never more than k in one batch.
        pops = min(k, max(0, read_q.pushed + k - cap))
        pend = read_q.pending
        if pops:
            pend.sort()
            del pend[:pops]
        pend.extend(completions)  # ascending appends keep the heap valid
        read_q.outstanding = completions.copy()
        read_q.pushed += k
        read_q.total_enqueued += k
        if k > read_q.peak_occupancy:
            read_q.peak_occupancy = k
        full, rem = divmod(k, ipc)
        clock_sum = k * clock0 + ipc * (full * (full - 1)) // 2 + rem * full
        self._s_reads[0] += k
        self._s_hits[0] += hits
        self._s_misses[0] += misses
        self._s_conflicts[0] += conflicts
        self._s_lat[0] += sum(completions) - clock_sum
        if completions[-1] > self._s_last[0]:
            self._s_last[0] = completions[-1]
        if self._s_first[0] is None:
            self._s_first[0] = clock0
        self._s_bytes[0] += LINE_BYTES * k
        return BatchResult(
            ready_cycle=completions[-1], lines_read=k, lines_written=0
        )

    # ------------------------------------------- saturated single-stream path

    def _process_single_stream_saturated(
        self, batch: LineRequestBatch, clock0: int, k: int
    ) -> BatchResult | None:
        """Steady-state block extrapolation for long read bursts.

        A single-stream read burst larger than the read queue saturates
        it: once every line's issue is gated by the jump to the oldest
        in-flight completion, the whole pipeline settles into an exact
        affine steady state — ``clock[i] = completion[i - Q]`` and
        ``completion[i] = completion[i - 1] + tBURST``, with the bank
        CAS chain trailing the clock by a non-increasing offset ``X``
        and every row-boundary penalty absorbed by the queue delay
        while ``X + tCL <= (Q - 1) * tBURST``.  Lines run through an
        exact specialized scalar recurrence until the lock conditions
        hold (a jump, the last ``Q`` completion gaps uniformly tBURST),
        then each remaining row-hit streak commits closed-form: an
        arithmetic completion series, per-line stall ``tBURST - bump``
        and latency ``Q * tBURST``, O(1) Python work per streak.
        Anything outside the guarded regime returns ``None`` untouched
        and takes the regular scalar/vector path.
        """
        streams = [s for s in batch.streams if s.num_lines]
        if len(streams) != 1 or streams[0].is_write or self.channels != 1:
            return None
        timing = self.timing
        t_ccd = timing.t_ccd
        t_cl = timing.t_cl
        t_burst = timing.t_burst
        ipc = self.max_issue_per_cycle
        if t_ccd < 1 or t_cl < 1 or t_burst < 1:
            return None
        if t_ccd > t_burst:
            return None  # CAS-paced: completions never settle on tBURST
        if t_burst < (2 if ipc == 1 else 1):
            return None  # the per-line queue jump would not persist
        read_q = self.read_queue
        cap = read_q.capacity
        if cap < 8:
            return None  # lock window too small to ever amortize
        out_r = read_q.outstanding
        if out_r and max(out_r) > clock0:
            return None  # in-flight prior reads complicate occupancy
        strides = self._strides
        candidates = [
            stride
            for stride, size in (
                (strides["ba"], self.banks),
                (strides["ra"], self.ranks),
                (strides["ro"], self._sizes["ro"]),
            )
            if size > 1
        ]
        s_min = min(candidates) if candidates else None
        if s_min is not None and s_min < 4:
            return None  # streaks degenerate: boundary work dominates

        st_ra, n_ra = strides["ra"], self.ranks
        st_ba, n_ba = strides["ba"], self.banks
        st_ro, n_ro = strides["ro"], self._sizes["ro"]
        t_ras, t_rp, t_rcd = timing.t_ras, timing.t_rp, timing.t_rcd
        open_row = self._open_row
        ready = self._ready
        act = self._act
        bump = 1 if ipc == 1 else 0

        # --- exact local recurrence; nothing mutated until commit.
        completions: list[int] = []
        bank_updates: dict[int, tuple[int, int, int]] = {}
        clock = clock0
        issued = 0
        pos = 0  # completions[:pos] have retired (lazily, like the heap)
        stall = 0
        lat_sum = 0
        peak = 0
        hits = misses = conflicts = 0
        uniform_since = 0  # completions[uniform_since:] spaced exactly tBURST
        first_clock: int | None = None
        bus_chain = self._bus_ready[0]
        line = streams[0].first_line
        i = 0
        while i < k:
            run = k - i if s_min is None else min(k - i, s_min - (line % s_min))
            bank_index = ((line // st_ra) % n_ra) * n_ba + (line // st_ba) % n_ba
            row = (line // st_ro) % n_ro
            orow, bank_ready, bank_act = bank_updates.get(
                bank_index,
                (open_row[bank_index], ready[bank_index], act[bank_index]),
            )
            consumed = 0
            while consumed < run:
                # Front-end pacing + lazy retirement + queue jump.
                if issued >= ipc:
                    clock += 1
                    issued = 0
                while pos < i and completions[pos] <= clock:
                    pos += 1
                jumped = False
                if i - pos >= cap:
                    target = completions[i - cap]
                    stall += target - clock
                    clock = target
                    issued = 0
                    jumped = True
                    while pos < i and completions[pos] <= clock:
                        pos += 1
                # Bank access.
                start = bank_ready if bank_ready > clock else clock
                if orow == row:
                    issue_bank = start
                    hits += 1
                elif orow < 0:
                    issue_bank = start + t_rcd
                    bank_act = start
                    orow = row
                    misses += 1
                else:
                    pre = bank_act + t_ras
                    if start > pre:
                        pre = start
                    bank_act = pre + t_rp
                    issue_bank = bank_act + t_rcd
                    orow = row
                    conflicts += 1
                bank_ready = issue_bank + t_ccd
                data = issue_bank + t_cl
                comp = (data if data > bus_chain else bus_chain) + t_burst
                if completions and comp - completions[-1] != t_burst:
                    uniform_since = i
                completions.append(comp)
                bus_chain = comp
                if first_clock is None:
                    first_clock = clock
                lat_sum += comp - clock
                occupancy = i + 1 - pos
                if occupancy > peak:
                    peak = occupancy
                issued += 1
                i += 1
                line += 1
                consumed += 1

                # --- steady-state lock: commit the rest of the streak.
                remaining = run - consumed
                if (
                    remaining
                    and jumped
                    and i - uniform_since > cap
                    and issue_bank - clock + t_cl <= (cap - 1) * t_burst
                ):
                    x = issue_bank - clock
                    completions.extend(
                        range(comp + t_burst, comp + remaining * t_burst + 1, t_burst)
                    )
                    stall += remaining * (t_burst - bump)
                    lat_sum += remaining * cap * t_burst
                    hits += remaining
                    i += remaining
                    line += remaining
                    consumed = run
                    clock = completions[i - 1 - cap]
                    pos = i - cap
                    issued = 1
                    x -= remaining * (t_burst - t_ccd)
                    if x < 0:
                        x = 0
                    issue_bank = clock + x
                    bank_ready = issue_bank + t_ccd
                    bus_chain = completions[-1]
            bank_updates[bank_index] = (orow, bank_ready, bank_act)

        # Final lazy retirement mirror: everything <= the final clock is
        # popped by the last line's processing.
        while pos < k and completions[pos] <= clock:
            pos += 1

        # --- commit: bank state, bus, queue, statistics.
        for bank_index, (orow, bank_ready, bank_act) in bank_updates.items():
            open_row[bank_index] = orow
            ready[bank_index] = bank_ready
            act[bank_index] = bank_act
        self._bus_ready[0] = bus_chain
        self._issue_clock = clock
        pops = min(k, max(0, read_q.pushed + k - cap))
        pend = read_q.pending
        pend.sort()
        if pops <= len(pend):
            del pend[:pops]
            pend.extend(completions)
        else:
            # Prior pend entries all precede the new completions (no
            # in-flight priors), so the overflow pops take the oldest
            # new completions — never the final one, pushed after the
            # last pop.
            read_q.pending = completions[pops - len(pend) :]
        read_q.outstanding = completions[pos:]
        read_q.pushed += k
        read_q.total_enqueued += k
        read_q.total_stall_cycles += stall
        if peak > read_q.peak_occupancy:
            read_q.peak_occupancy = peak
        self._s_reads[0] += k
        self._s_hits[0] += hits
        self._s_misses[0] += misses
        self._s_conflicts[0] += conflicts
        self._s_lat[0] += lat_sum
        if completions[-1] > self._s_last[0]:
            self._s_last[0] = completions[-1]
        if self._s_first[0] is None:
            self._s_first[0] = first_clock if first_clock is not None else clock0
        self._s_bytes[0] += LINE_BYTES * k
        return BatchResult(
            ready_cycle=completions[-1], lines_read=k, lines_written=0
        )

    # ---------------------------------------------------------- scalar path

    def _process_scalar(self, batch: LineRequestBatch, clock0: int) -> BatchResult:
        """Inlined per-line loop (reference semantics, no numpy)."""
        timing = self.timing
        t_burst = timing.t_burst
        t_ccd = timing.t_ccd
        t_ccd_wr = t_ccd + timing.t_wr
        t_rcd = timing.t_rcd
        t_rp = timing.t_rp
        t_ras = timing.t_ras
        t_cl = timing.t_cl
        t_cwl = timing.t_cwl
        strides = self._strides
        st_ch, n_ch = strides["ch"], self.channels
        st_ra, n_ra = strides["ra"], self.ranks
        st_ba, n_ba = strides["ba"], self.banks
        st_ro, n_ro = strides["ro"], self._sizes["ro"]
        open_row = self._open_row
        ready = self._ready
        act = self._act
        bus = self._bus_ready
        s_reads, s_writes = self._s_reads, self._s_writes
        s_hits, s_misses, s_conflicts = self._s_hits, self._s_misses, self._s_conflicts
        s_lat, s_last, s_first, s_bytes = (
            self._s_lat,
            self._s_last,
            self._s_first,
            self._s_bytes,
        )
        heappush, heappop = heapq.heappush, heapq.heappop
        read_q, write_q = self.read_queue, self.write_queue
        out_r, out_w = read_q.outstanding, write_q.outstanding
        pend_r, pend_w = read_q.pending, write_q.pending
        cap_r, cap_w = read_q.capacity, write_q.capacity
        pushed_r, pushed_w = read_q.pushed, write_q.pushed
        stall_r = stall_w = 0
        peak_r, peak_w = read_q.peak_occupancy, write_q.peak_occupancy
        ipc = self.max_issue_per_cycle

        clock = clock0
        issued = 0
        last_read = clock0
        lines_read = 0
        lines_written = 0

        lines, writes = _interleave(batch)
        for line, is_write in zip(lines, writes):
            # Front-end issue bandwidth: max_issue_per_cycle lines/cycle.
            if issued >= ipc:
                clock += 1
                issued = 0
            if is_write:
                out, pend, cap = out_w, pend_w, cap_w
            else:
                out, pend, cap = out_r, pend_r, cap_r
            while out and out[0] <= clock:
                heappop(out)
            if len(out) >= cap:
                issue_at = out[0]
                if is_write:
                    stall_w += issue_at - clock
                else:
                    stall_r += issue_at - clock
                clock = issue_at
                issued = 0
                while out and out[0] <= clock:
                    heappop(out)
            # Decode.
            chan = (line // st_ch) % n_ch
            bank_index = (
                (chan * n_ra + (line // st_ra) % n_ra) * n_ba + (line // st_ba) % n_ba
            )
            row = (line // st_ro) % n_ro
            # Bank access.
            start = ready[bank_index]
            if start < clock:
                start = clock
            orow = open_row[bank_index]
            if orow == row:
                issue_bank = start
                s_hits[chan] += 1
            elif orow < 0:
                issue_bank = start + t_rcd
                act[bank_index] = start
                s_misses[chan] += 1
                open_row[bank_index] = row
            else:
                pre = act[bank_index] + t_ras
                if start > pre:
                    pre = start
                new_act = pre + t_rp
                act[bank_index] = new_act
                issue_bank = new_act + t_rcd
                s_conflicts[chan] += 1
                open_row[bank_index] = row
            # Shared data bus.
            if is_write:
                data_start = issue_bank + t_cwl
                ready[bank_index] = issue_bank + t_ccd_wr
            else:
                data_start = issue_bank + t_cl
                ready[bank_index] = issue_bank + t_ccd
            bus_start = bus[chan]
            if data_start > bus_start:
                bus_start = data_start
            completion = bus_start + t_burst
            bus[chan] = completion
            # Statistics.
            if is_write:
                s_writes[chan] += 1
                lines_written += 1
            else:
                s_reads[chan] += 1
                s_lat[chan] += completion - clock
                lines_read += 1
                if completion > last_read:
                    last_read = completion
            if s_first[chan] is None:
                s_first[chan] = clock
            if completion > s_last[chan]:
                s_last[chan] = completion
            s_bytes[chan] += LINE_BYTES
            # Queue bookkeeping.
            heappush(out, completion)
            occupancy = len(out)
            if is_write:
                if occupancy > peak_w:
                    peak_w = occupancy
                if pushed_w >= cap_w:
                    heappop(pend)
                pushed_w += 1
            else:
                if occupancy > peak_r:
                    peak_r = occupancy
                if pushed_r >= cap_r:
                    heappop(pend)
                pushed_r += 1
            heappush(pend, completion)
            issued += 1

        read_q.pushed = pushed_r
        write_q.pushed = pushed_w
        read_q.total_enqueued += lines_read
        write_q.total_enqueued += lines_written
        read_q.total_stall_cycles += stall_r
        write_q.total_stall_cycles += stall_w
        read_q.peak_occupancy = peak_r
        write_q.peak_occupancy = peak_w
        self._issue_clock = clock
        return BatchResult(
            ready_cycle=last_read, lines_read=lines_read, lines_written=lines_written
        )

    # ---------------------------------------------------------- vector path

    def _process_vector(self, batch: LineRequestBatch, clock0: int) -> BatchResult:
        timing = self.timing
        t_burst = timing.t_burst
        t_ccd = timing.t_ccd
        t_wr = timing.t_wr
        t_rcd = timing.t_rcd
        t_rp = timing.t_rp
        t_ras = timing.t_ras
        t_cl = timing.t_cl
        t_cwl = timing.t_cwl
        ipc = self.max_issue_per_cycle
        read_q, write_q = self.read_queue, self.write_queue

        # --- 1. interleave + decode + per-call prefix counts --------------
        # Prepared batches arrive with the issue order rematerialized (the
        # fan-out shares one decoded stream across a config grid); plain
        # batches build it here.  Either way the arrays are read-only.
        if (
            isinstance(batch, PreparedLineBatch)
            and batch.lines_in_order is not None
        ):
            lines = batch.lines_in_order
            is_write = batch.writes_in_order
        else:
            lines, is_write = issue_order_arrays(batch)
        n = lines.size
        chan, rank, bank, row = self.mapper.decode_batch(lines)
        flat_bank = (chan * self.ranks + rank) * self.banks + bank
        index = np.arange(n + 1, dtype=np.int64)  # shared 0..n ramp
        writes_cum = np.cumsum(is_write)  # inclusive write count
        reads_cum = index[1:] - writes_cum

        # --- 2. numpy snapshots of the datapath state ---------------------
        open_row = np.array(self._open_row, dtype=np.int64)
        ready = np.array(self._ready, dtype=np.int64)
        act = np.array(self._act, dtype=np.int64)
        bus = np.array(self._bus_ready, dtype=np.int64)
        pend_r = np.sort(np.array(read_q.pending, dtype=np.int64))
        pend_w = np.sort(np.array(write_q.pending, dtype=np.int64))

        issue_all = np.empty(n, dtype=np.int64)
        comp_all = np.empty(n, dtype=np.int64)
        cat_all = np.empty(n, dtype=np.int8)  # 0 hit / 1 miss / 2 conflict

        pace_h = ipc * clock0  # running max in h-space (index origin: this call)
        pos = 0
        while pos < n:
            # Longest prefix with at most `capacity` pushes per queue: all
            # constraints then come from completions before the block.
            reads_base = int(reads_cum[pos - 1]) if pos else 0
            writes_base = int(writes_cum[pos - 1]) if pos else 0
            end_r = int(
                np.searchsorted(reads_cum, reads_base + read_q.capacity, side="right")
            )
            end_w = int(
                np.searchsorted(writes_cum, writes_base + write_q.capacity, side="right")
            )
            block = min(end_r, end_w, n) - pos

            while True:  # re-run with a shorter block on a rare rank violation
                sl = slice(pos, pos + block)
                wr_b = is_write[sl]
                write_pos = wr_b.nonzero()[0]
                read_pos = (~wr_b).nonzero()[0]

                # --- queue constraints g: consumed order statistics -------
                g = np.full(block, _LOW, dtype=np.int64)
                for queue, pend, positions in (
                    (read_q, pend_r, read_pos),
                    (write_q, pend_w, write_pos),
                ):
                    count = positions.size
                    if not count:
                        continue
                    skip = queue.capacity - queue.pushed
                    if skip < 0:
                        skip = 0
                    if count > skip:
                        g[positions[skip:]] = pend[: count - skip]

                # --- front-end pacing scan --------------------------------
                gidx = index[pos : pos + block]
                h = ipc * g - gidx
                hmax = np.maximum.accumulate(h)
                np.maximum(hmax, pace_h, out=hmax)
                issue = (gidx + hmax) // ipc
                h_prev = np.empty(block, dtype=np.int64)
                h_prev[0] = pace_h
                h_prev[1:] = hmax[:-1]
                stall = issue - (gidx + h_prev) // ipc

                # --- bank timing (grouped, streak scans) ------------------
                grouping = np.argsort(flat_bank[sl], kind="stable")
                fb_s = flat_bank[sl][grouping]
                row_s = row[sl][grouping]
                cyc_s = issue[grouping]
                wr_s = wr_b[grouping]
                is_start = np.empty(block, dtype=bool)
                is_start[0] = True
                np.not_equal(fb_s[1:], fb_s[:-1], out=is_start[1:])
                group_starts = is_start.nonzero()[0]
                prev_row = np.empty(block, dtype=np.int64)
                prev_row[1:] = row_s[:-1]
                prev_row[group_starts] = open_row[fb_s[group_starts]]
                hit = row_s == prev_row
                not_hit = ~hit
                all_hits = not not_hit.any()
                run_start = is_start | not_hit
                run_start[1:] |= not_hit[:-1]
                run_id = np.cumsum(run_start) - 1
                delta = np.where(wr_s, t_ccd + t_wr, t_ccd)
                d_excl = np.empty(block, dtype=np.int64)
                d_excl[0] = 0
                np.cumsum(delta[:-1], out=d_excl[1:])
                accum = cyc_s - d_excl + run_id * _BIG
                streak_max = np.maximum.accumulate(accum) - run_id * _BIG
                run_starts = run_start.nonzero()[0]
                seeds = np.empty(run_starts.size, dtype=np.int64)
                act_updates: list[tuple[int, int]] = []
                if all_hits:
                    # Every run starts a group here (one run per group).
                    seeds[:] = ready[fb_s[run_starts]] - d_excl[run_starts]
                else:
                    seeds[:] = _LOW
                    plain = hit[run_starts] & is_start[run_starts]
                    seeds[plain] = (
                        ready[fb_s[run_starts[plain]]] - d_excl[run_starts[plain]]
                    )
                    self._resolve_streak_boundaries(
                        fb_s,
                        cyc_s,
                        prev_row,
                        hit,
                        is_start,
                        run_id,
                        run_starts,
                        d_excl,
                        delta,
                        streak_max,
                        ready,
                        act,
                        seeds,
                        act_updates,
                        t_rcd,
                        t_rp,
                        t_ras,
                    )
                issue_bank = d_excl + np.maximum(seeds[run_id], streak_max)
                data_start_s = issue_bank + np.where(wr_s, t_cwl, t_cl)

                # --- bus arbitration per channel --------------------------
                data_start = np.empty(block, dtype=np.int64)
                data_start[grouping] = data_start_s
                if self.channels == 1:
                    elem = data_start - index[:block] * t_burst
                    if elem[0] < bus[0]:
                        elem[0] = bus[0]
                    completion = (
                        index[1 : block + 1] * t_burst + np.maximum.accumulate(elem)
                    )
                else:
                    chan_order = np.argsort(chan[sl], kind="stable")
                    chan_s = chan[sl][chan_order]
                    bus_in = data_start[chan_order]
                    cstart = np.empty(block, dtype=bool)
                    cstart[0] = True
                    np.not_equal(chan_s[1:], chan_s[:-1], out=cstart[1:])
                    chan_starts = cstart.nonzero()[0]
                    seg_end = np.empty(chan_starts.size, dtype=np.int64)
                    seg_end[:-1] = chan_starts[1:]
                    seg_end[-1] = block
                    within = index[:block] - np.repeat(
                        chan_starts, seg_end - chan_starts
                    )
                    elem = bus_in - within * t_burst
                    elem[chan_starts] = np.maximum(
                        elem[chan_starts], bus[chan_s[chan_starts]]
                    )
                    seg_id = np.cumsum(cstart) - 1
                    seg_max = (
                        np.maximum.accumulate(elem + seg_id * _BIG) - seg_id * _BIG
                    )
                    completion_s = (within + 1) * t_burst + seg_max
                    completion = np.empty(block, dtype=np.int64)
                    completion[chan_order] = completion_s

                # --- verify the order-statistic speculation ---------------
                # Fast accept: if no completion undercuts any constraint at
                # all, no in-block completion can displace a consumed rank.
                if int(completion.min()) >= int(g.max()):
                    break
                violation = block
                for positions in (read_pos, write_pos):
                    if positions.size < 2:
                        continue
                    comp_q = completion[positions]
                    run_min = np.minimum.accumulate(comp_q)
                    bad = (run_min[:-1] < g[positions[1:]]).nonzero()[0]
                    if bad.size:
                        violation = min(violation, int(positions[int(bad[0]) + 1]))
                if violation < block:
                    block = violation
                    continue
                break

            # --- commit the block ----------------------------------------
            issue_all[sl] = issue
            comp_all[sl] = completion
            category_s = np.where(hit, 0, np.where(prev_row < 0, 1, 2)).astype(np.int8)
            cat_all[sl][grouping] = category_s
            pace_h = int(hmax[-1])
            last_pos = np.empty(group_starts.size, dtype=np.int64)
            last_pos[:-1] = group_starts[1:]
            last_pos[-1] = block
            last_pos -= 1
            touched = fb_s[group_starts]
            open_row[touched] = row_s[last_pos]
            ready[touched] = issue_bank[last_pos] + delta[last_pos]
            for bank_index, value in act_updates:
                act[bank_index] = value
            if self.channels == 1:
                bus[0] = completion[-1]
            else:
                chan_last = np.empty(chan_starts.size, dtype=np.int64)
                chan_last[:-1] = chan_starts[1:]
                chan_last[-1] = block
                chan_last -= 1
                bus[chan_s[chan_starts]] = completion_s[chan_last]
            for queue, positions in ((read_q, read_pos), (write_q, write_pos)):
                count = positions.size
                if not count:
                    continue
                skip = queue.capacity - queue.pushed
                if skip < 0:
                    skip = 0
                consumed = count - skip if count > skip else 0
                merged = np.sort(
                    np.concatenate(
                        [
                            (pend_r if queue is read_q else pend_w)[consumed:],
                            completion[positions],
                        ]
                    )
                )
                if queue is read_q:
                    pend_r = merged
                else:
                    pend_w = merged
                queue.pushed += count
                queue.total_enqueued += count
                queue.total_stall_cycles += int(stall[positions].sum())
            pos += block

        # --- per-call queue occupancy + outstanding -----------------------
        reads_mask = ~is_write
        for queue, pend, mask in (
            (read_q, pend_r, reads_mask),
            (write_q, pend_w, is_write),
        ):
            positions = mask.nonzero()[0]
            if not positions.size:
                continue
            clocks = issue_all[positions]
            comps = comp_all[positions]
            prior = np.sort(np.array(queue.outstanding, dtype=np.int64))
            alive_prior = prior.size - np.searchsorted(prior, clocks, side="right")
            count = positions.size
            retire_at = np.searchsorted(clocks, comps, side="left")
            retired_cum = np.cumsum(
                np.bincount(np.minimum(retire_at, count), minlength=count + 1)
            )[:count]
            occupancy = alive_prior + index[1 : count + 1] - retired_cum
            peak = int(occupancy.max())
            if peak > queue.peak_occupancy:
                queue.peak_occupancy = peak
            final_clock = int(clocks[-1])
            keep_prior = prior[prior > final_clock]
            keep_new = comps[comps > final_clock]
            queue.outstanding = np.sort(
                np.concatenate([keep_prior, keep_new])
            ).tolist()
            queue.pending = pend.tolist()

        # --- per-call statistics ------------------------------------------
        lines_read = int(np.count_nonzero(reads_mask))
        lines_written = n - lines_read
        if self.channels == 1:
            read_lat = int(
                (comp_all[reads_mask] - issue_all[reads_mask]).sum()
            ) if lines_read else 0
            self._accumulate_channel(
                0,
                lines_read,
                lines_written,
                int(np.count_nonzero(cat_all == 0)),
                int(np.count_nonzero(cat_all == 1)),
                int(np.count_nonzero(cat_all == 2)),
                read_lat,
                int(comp_all.max()),
                int(issue_all[0]),
                n,
            )
        else:
            for chan_id in np.unique(chan).tolist():
                mask = chan == chan_id
                num = int(np.count_nonzero(mask))
                read_sel = mask & reads_mask
                cat_sel = cat_all[mask]
                self._accumulate_channel(
                    chan_id,
                    int(np.count_nonzero(read_sel)),
                    num - int(np.count_nonzero(read_sel)),
                    int(np.count_nonzero(cat_sel == 0)),
                    int(np.count_nonzero(cat_sel == 1)),
                    int(np.count_nonzero(cat_sel == 2)),
                    int((comp_all[read_sel] - issue_all[read_sel]).sum()),
                    int(comp_all[mask].max()),
                    int(issue_all[int(np.argmax(mask))]),
                    num,
                )

        # --- write the state back -----------------------------------------
        self._open_row = open_row.tolist()
        self._ready = ready.tolist()
        self._act = act.tolist()
        self._bus_ready = bus.tolist()
        self._issue_clock = int(issue_all[-1])

        if lines_read:
            ready_cycle = max(clock0, int(comp_all[reads_mask].max()))
        else:
            ready_cycle = clock0
        return BatchResult(
            ready_cycle=ready_cycle,
            lines_read=lines_read,
            lines_written=lines_written,
        )

    def _accumulate_channel(
        self,
        chan_id: int,
        reads: int,
        writes: int,
        hits: int,
        misses: int,
        conflicts: int,
        read_latency: int,
        last_completion: int,
        first_cycle: int,
        num_lines: int,
    ) -> None:
        """Fold one batch's per-channel reductions into the running stats."""
        self._s_reads[chan_id] += reads
        self._s_writes[chan_id] += writes
        self._s_hits[chan_id] += hits
        self._s_misses[chan_id] += misses
        self._s_conflicts[chan_id] += conflicts
        self._s_lat[chan_id] += read_latency
        if last_completion > self._s_last[chan_id]:
            self._s_last[chan_id] = last_completion
        if self._s_first[chan_id] is None:
            self._s_first[chan_id] = first_cycle
        self._s_bytes[chan_id] += LINE_BYTES * num_lines

    @staticmethod
    def _resolve_streak_boundaries(
        fb_s: np.ndarray,
        cyc_s: np.ndarray,
        prev_row: np.ndarray,
        hit: np.ndarray,
        is_start: np.ndarray,
        run_id: np.ndarray,
        run_starts: np.ndarray,
        d_excl: np.ndarray,
        delta: np.ndarray,
        streak_max: np.ndarray,
        ready: np.ndarray,
        act: np.ndarray,
        seeds: np.ndarray,
        act_updates: list[tuple[int, int]],
        t_rcd: int,
        t_rp: int,
        t_ras: int,
    ) -> None:
        """Walk the rare row-miss/conflict boundaries of one block.

        Only bank groups that contain a non-hit are visited; each group's
        streaks are chained scalar (a boundary's timing depends on the
        previous streak's final issue), with the hit-streaks in between
        still resolved by the precomputed segmented running max.
        """
        block = fb_s.size
        group_id = np.cumsum(is_start) - 1
        bad_groups = np.unique(group_id[~hit])
        group_bounds = np.append(is_start.nonzero()[0], block)
        run_bounds = np.append(run_starts, block)
        for group in bad_groups.tolist():
            start = int(group_bounds[group])
            end = int(group_bounds[group + 1])
            bank_index = int(fb_s[start])
            ready_c = int(ready[bank_index])
            act_c = int(act[bank_index])
            position = start
            while position < end:
                run = int(run_id[position])
                run_end = int(run_bounds[run + 1])
                if hit[position]:
                    seed = ready_c - int(d_excl[position])
                    seeds[run] = seed
                    last = run_end - 1
                    issue_last = int(d_excl[last]) + max(seed, int(streak_max[last]))
                    ready_c = issue_last + int(delta[last])
                else:
                    demand = int(cyc_s[position])
                    bank_start = demand if demand > ready_c else ready_c
                    if int(prev_row[position]) < 0:  # row miss (bank idle)
                        issue_b = bank_start + t_rcd
                        act_c = bank_start
                    else:  # row conflict: PRE (after tRAS), ACT, CAS
                        pre = act_c + t_ras
                        if bank_start > pre:
                            pre = bank_start
                        act_c = pre + t_rp
                        issue_b = act_c + t_rcd
                    seeds[run] = issue_b - int(d_excl[position])
                    ready_c = issue_b + int(delta[position])
                position = run_end
            act_updates.append((bank_index, act_c))
