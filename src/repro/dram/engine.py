"""The memory-datapath engine seam: line batches in, completions out.

The v3 memory datapath (paper Section V-B step 3) chops every fold's
tile fetches into 64B lines and runs them through the front-end
(issue-bandwidth pacing + finite request queues) and the DRAM model
(banks + shared data buses).  This module makes that pipeline a
*pluggable seam*:

* :class:`LineRequestBatch` — one fold's demand traffic as per-operand
  contiguous line streams, issued round-robin across streams (the
  concurrent per-operand DMA engines of the accelerator).  The DRAM
  fan-out shares one batch (and, via
  :class:`repro.dram.engine_batched.PreparedLineBatch`, one
  precomputed issue order) across a whole ``dram.*`` config grid.
* :class:`MemoryEngine` — the protocol: ``process_batch`` consumes a
  batch at an issue cycle and returns a :class:`BatchResult`.
* :class:`ReferenceEngine` — the scalar semantics, line by line,
  extracted verbatim from the original ``DramBackend`` loop.  It is the
  executable specification every other engine is validated against.
* :class:`repro.dram.engine_batched.BatchedEngine` — the vectorized
  engine (numpy array passes instead of per-line Python calls), exact
  to the reference bit for bit.

Engines own *all* datapath state — request queues, bank state, bus
state, statistics — so alternative backends (async, distributed,
trace-driven) can plug in behind :func:`make_engine` without touching
the simulator above the seam.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator, Protocol

from repro.config.system import VALID_DRAM_ENGINES
from repro.core.operand_matrix import FILTER_BASE, IFMAP_BASE, OFMAP_BASE
from repro.dram.address import LINE_BYTES
from repro.dram.dram_sim import DramStats, RamulatorLite
from repro.errors import DramError
from repro.memory.request_queue import RequestQueue

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.compute_sim import TileFetch

#: Byte base of each operand's address region (word offsets scaled by
#: the word size when a batch is built).
OPERAND_BASE_WORDS = {
    "ifmap": IFMAP_BASE,
    "filter": FILTER_BASE,
    "ofmap": OFMAP_BASE,
}

#: Engine implementations selectable via ``dram.engine`` (the canonical
#: list lives in :mod:`repro.config.system` so the config layer stays a
#: leaf; this alias is the seam-side name).
AVAILABLE_ENGINES = VALID_DRAM_ENGINES


@dataclass(frozen=True)
class LineStream:
    """One operand's contiguous run of 64B line requests."""

    first_line: int
    num_lines: int
    is_write: bool = False

    def __post_init__(self) -> None:
        if self.first_line < 0 or self.num_lines < 0:
            raise DramError(
                f"bad line stream [{self.first_line}, +{self.num_lines})"
            )


@dataclass(frozen=True)
class LineRequestBatch:
    """One fold's fetches as line streams, issued round-robin.

    The per-operand DMA engines run concurrently, so lines from the
    fold's fetches are interleaved round-robin across operand streams —
    the mix that makes DRAM bank behaviour (and request queues) matter
    for combined read/write traffic.
    """

    streams: tuple[LineStream, ...]

    @classmethod
    def from_fetches(
        cls, fetches: tuple["TileFetch", ...], word_bytes: int
    ) -> "LineRequestBatch":
        """Chop tile fetches (word spans) into 64B line streams."""
        streams: list[LineStream] = []
        for fetch in fetches:
            if fetch.num_words == 0:
                continue
            base_byte = OPERAND_BASE_WORDS[fetch.operand] * word_bytes
            start_byte = base_byte + fetch.start_word * word_bytes
            num_bytes = fetch.num_words * word_bytes
            first_line = start_byte // LINE_BYTES
            last_line = (start_byte + num_bytes - 1) // LINE_BYTES
            streams.append(
                LineStream(first_line, last_line - first_line + 1, fetch.is_write)
            )
        return cls(streams=tuple(streams))

    @property
    def total_lines(self) -> int:
        """Line requests in the batch."""
        return sum(stream.num_lines for stream in self.streams)

    @property
    def read_lines(self) -> int:
        """Read-line requests in the batch."""
        return sum(s.num_lines for s in self.streams if not s.is_write)

    @property
    def write_lines(self) -> int:
        """Write-line requests in the batch."""
        return sum(s.num_lines for s in self.streams if s.is_write)

    def iter_round_robin(self) -> Iterator[tuple[int, bool]]:
        """Yield ``(line, is_write)`` in front-end issue order.

        Round-robin across streams; a stream drops out of the rotation
        at the end of the round in which it exhausts (matching the
        per-operand DMA interleave of the scalar datapath).
        """
        iterators = [
            (iter(range(s.first_line, s.first_line + s.num_lines)), s.is_write)
            for s in self.streams
            if s.num_lines
        ]
        while iterators:
            exhausted = []
            for index, (lines, is_write) in enumerate(iterators):
                line = next(lines, None)
                if line is None:
                    exhausted.append(index)
                    continue
                yield line, is_write
            for index in reversed(exhausted):
                iterators.pop(index)


@dataclass(frozen=True)
class BatchResult:
    """What one batch did: completion horizon plus line counts."""

    ready_cycle: int  # all read data has arrived (>= the issue clock)
    lines_read: int
    lines_written: int


class MemoryEngine(Protocol):
    """Anything that can run line batches through a memory datapath.

    Engines own the full datapath state: front-end clock, request
    queues, DRAM bank/bus state and statistics.  ``process_batch``
    calls must be made in non-decreasing ``issue_cycle`` order.
    """

    read_queue: object  # queue-stats view (capacity/stalls/peak/...)
    write_queue: object

    def process_batch(self, batch: LineRequestBatch, issue_cycle: int) -> BatchResult:
        """Issue every line of ``batch``; return the read-ready horizon."""
        ...

    def drain(self) -> int:
        """Cycle when every in-flight read and write has completed."""
        ...

    def aggregate_stats(self) -> DramStats:
        """Merged DRAM statistics across all channels."""
        ...


class ReferenceEngine:
    """The scalar line pipeline — the executable specification.

    One Python-level iteration per 64B line: front-end pacing
    (``max_issue_per_cycle``), request-queue backpressure, then
    :meth:`RamulatorLite.submit` for bank timing and bus arbitration.
    Slow, but every alternative engine is fuzzed against it bit for bit.
    """

    def __init__(
        self,
        dram: RamulatorLite,
        read_queue_entries: int = 128,
        write_queue_entries: int = 128,
        max_issue_per_cycle: int = 1,
    ) -> None:
        if max_issue_per_cycle < 1:
            raise DramError("max_issue_per_cycle must be >= 1")
        self.dram = dram
        self.max_issue_per_cycle = max_issue_per_cycle
        self.read_queue = RequestQueue(read_queue_entries, "read_queue")
        self.write_queue = RequestQueue(write_queue_entries, "write_queue")
        self._issue_clock = 0

    def process_batch(self, batch: LineRequestBatch, issue_cycle: int) -> BatchResult:
        if issue_cycle < 0:
            raise DramError(f"negative cycle {issue_cycle}")
        clock = max(issue_cycle, self._issue_clock)
        last_read_done = clock
        issued_this_cycle = 0
        lines_read = 0
        lines_written = 0

        for line, is_write in batch.iter_round_robin():
            # Front-end issue bandwidth: max_issue_per_cycle lines/cycle.
            if issued_this_cycle >= self.max_issue_per_cycle:
                clock += 1
                issued_this_cycle = 0
            queue = self.write_queue if is_write else self.read_queue
            issue_at = queue.earliest_issue(clock)
            if issue_at > clock:
                queue.record_stall(issue_at - clock)
                clock = issue_at
                issued_this_cycle = 0
            completion = self.dram.submit(line * LINE_BYTES, clock, is_write=is_write)
            queue.push(clock, completion)
            issued_this_cycle += 1
            if is_write:
                lines_written += 1
            else:
                lines_read += 1
                last_read_done = max(last_read_done, completion)

        self._issue_clock = clock
        return BatchResult(
            ready_cycle=last_read_done,
            lines_read=lines_read,
            lines_written=lines_written,
        )

    def drain(self) -> int:
        return max(self.read_queue.drain_time(), self.write_queue.drain_time())

    def aggregate_stats(self) -> DramStats:
        return self.dram.aggregate_stats()

    def channel_stats(self, channel: int) -> DramStats:
        """Statistics for one channel."""
        return self.dram.channel_stats(channel)


def make_engine(
    name: str,
    dram: RamulatorLite,
    read_queue_entries: int = 128,
    write_queue_entries: int = 128,
    max_issue_per_cycle: int = 1,
) -> MemoryEngine:
    """Build a memory engine by name (``reference`` or ``batched``)."""
    key = name.strip().lower()
    if key == "reference":
        return ReferenceEngine(
            dram,
            read_queue_entries=read_queue_entries,
            write_queue_entries=write_queue_entries,
            max_issue_per_cycle=max_issue_per_cycle,
        )
    if key == "batched":
        from repro.dram.engine_batched import BatchedEngine

        return BatchedEngine(
            dram,
            read_queue_entries=read_queue_entries,
            write_queue_entries=write_queue_entries,
            max_issue_per_cycle=max_issue_per_cycle,
        )
    raise DramError(
        f"unknown memory engine {name!r}; available: {', '.join(AVAILABLE_ENGINES)}"
    )
