"""Physical address decomposition into channel/rank/bank/row/column.

The mapping string names the fields from most-significant to least-
significant, underscore-separated, using Ramulator's two-letter codes:
``ro`` (row), ``ba`` (bank), ``ra`` (rank), ``co`` (column), ``ch``
(channel).  The default ``ro_ba_ra_co_ch`` puts the channel bits lowest,
so consecutive 64B lines interleave across channels — the layout that
makes streaming workloads scale with channel count (paper Figure 9).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import DramError

if TYPE_CHECKING:  # pragma: no cover - typing only
    import numpy as np

LINE_BYTES = 64

_FIELD_CODES = ("ro", "ba", "ra", "co", "ch")


@dataclass(frozen=True)
class DecodedAddress:
    """One 64B line's location in the DRAM hierarchy."""

    channel: int
    rank: int
    bank: int
    row: int
    column: int


class AddressMapper:
    """Decodes byte addresses according to a mapping string."""

    def __init__(
        self,
        mapping: str,
        channels: int,
        ranks: int,
        banks: int,
        row_bytes: int,
        capacity_bytes_per_channel: int,
    ) -> None:
        fields = tuple(mapping.strip().lower().split("_"))
        if sorted(fields) != sorted(_FIELD_CODES):
            raise DramError(
                f"mapping must be a permutation of {_FIELD_CODES}, got {mapping!r}"
            )
        if channels < 1 or ranks < 1 or banks < 1:
            raise DramError("channels/ranks/banks must all be >= 1")
        if row_bytes < LINE_BYTES or row_bytes % LINE_BYTES:
            raise DramError(f"row_bytes must be a multiple of {LINE_BYTES}")
        self.mapping = fields
        self.channels = channels
        self.ranks = ranks
        self.banks = banks
        self.columns = row_bytes // LINE_BYTES  # lines per row
        capacity_lines = capacity_bytes_per_channel * channels // LINE_BYTES
        denom = channels * ranks * banks * self.columns
        self.rows = max(1, capacity_lines // denom)
        self._sizes = {
            "ch": self.channels,
            "ra": self.ranks,
            "ba": self.banks,
            "co": self.columns,
            "ro": self.rows,
        }
        # Stride plan: field value = (line // stride) % size, with
        # ``stride`` the product of all less-significant field sizes —
        # the closed form of the divmod peel in :meth:`decode`, shared
        # by :meth:`decode_batch` and the engines' inline decoders.
        self._strides: dict[str, int] = {}
        stride = 1
        for code in reversed(self.mapping):
            self._strides[code] = stride
            stride *= self._sizes[code]

    @property
    def field_sizes(self) -> dict[str, int]:
        """Field sizes by two-letter code (``ch``/``ra``/``ba``/``co``/``ro``)."""
        return dict(self._sizes)

    @property
    def field_strides(self) -> dict[str, int]:
        """Decode strides by two-letter code (see the stride plan above)."""
        return dict(self._strides)

    def decode(self, byte_address: int) -> DecodedAddress:
        """Decode a byte address into its line's DRAM coordinates."""
        if byte_address < 0:
            raise DramError(f"negative address {byte_address}")
        line = byte_address // LINE_BYTES
        values: dict[str, int] = {}
        # Fields are listed MSB-first; peel from the LSB side (reversed).
        for code in reversed(self.mapping):
            size = self._sizes[code]
            values[code] = line % size
            line //= size
        # Whatever overflows the row field wraps (modelling a smaller
        #-than-address-space device, as Ramulator does with its capacity
        # check disabled).
        values["ro"] = values["ro"] % self.rows
        return DecodedAddress(
            channel=values["ch"],
            rank=values["ra"],
            bank=values["ba"],
            row=values["ro"],
            column=values["co"],
        )

    def decode_batch(
        self, line_indices: "np.ndarray"
    ) -> tuple["np.ndarray", "np.ndarray", "np.ndarray", "np.ndarray"]:
        """Decode an array of line indices into (channel, rank, bank, row).

        Vectorized twin of :meth:`decode`, using the precomputed stride
        plan — including the row wrap for devices smaller than the
        address space.
        """
        sizes = self._sizes
        strides = self._strides
        channel = (line_indices // strides["ch"]) % sizes["ch"]
        rank = (line_indices // strides["ra"]) % sizes["ra"]
        bank = (line_indices // strides["ba"]) % sizes["ba"]
        row = (line_indices // strides["ro"]) % sizes["ro"]
        return channel, rank, bank, row

    def lines_in_range(self, start_byte: int, num_bytes: int) -> range:
        """Line indices overlapping ``[start_byte, start_byte + num_bytes)``."""
        if num_bytes <= 0:
            return range(0)
        first = start_byte // LINE_BYTES
        last = (start_byte + num_bytes - 1) // LINE_BYTES
        return range(first, last + 1)
