"""DRAM timing parameters and technology presets.

All timings are in memory-controller clock cycles; ``tck_ns`` converts
to wall time.  The presets carry the standard datasheet parameters for
each technology family, scaled from their usual speed grades.  They are
deliberately representative rather than bit-exact to any one part — the
experiments sweep *relative* behaviour (channels, queue sizes, row
locality), which these capture.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import DramError


@dataclass(frozen=True)
class DramTiming:
    """Timing and geometry of one DRAM channel."""

    name: str
    tck_ns: float  # clock period
    t_rcd: int  # ACT -> RD/WR
    t_rp: int  # PRE -> ACT
    t_cl: int  # RD -> data (CAS latency)
    t_cwl: int  # WR -> data
    t_ras: int  # ACT -> PRE minimum
    t_ccd: int  # RD -> RD (same bank group, min gap)
    t_wr: int  # write recovery
    t_burst: int  # data-bus cycles per 64B line transfer
    row_bytes: int  # row-buffer (page) size
    bus_bytes_per_cycle: int  # data bus width x rate

    def __post_init__(self) -> None:
        if self.tck_ns <= 0:
            raise DramError(f"{self.name}: tck_ns must be positive")
        for field_name in (
            "t_rcd",
            "t_rp",
            "t_cl",
            "t_cwl",
            "t_ras",
            "t_ccd",
            "t_wr",
            "t_burst",
            "row_bytes",
            "bus_bytes_per_cycle",
        ):
            value = getattr(self, field_name)
            if value < 1:
                raise DramError(f"{self.name}: {field_name} must be >= 1, got {value}")

    @property
    def row_miss_latency(self) -> int:
        """ACT + CAS latency for a read to a closed row."""
        return self.t_rcd + self.t_cl

    @property
    def row_conflict_latency(self) -> int:
        """PRE + ACT + CAS latency for a read conflicting with an open row."""
        return self.t_rp + self.t_rcd + self.t_cl

    @property
    def peak_bandwidth_gbps(self) -> float:
        """Peak per-channel bandwidth in GB/s."""
        return self.bus_bytes_per_cycle / self.tck_ns

    def cycles_from_ns(self, ns: float) -> int:
        """Convert nanoseconds to (ceiling) controller cycles."""
        if ns < 0:
            raise DramError(f"negative time {ns}")
        return int(-(-ns // self.tck_ns))


# One preset per technology the paper lists for Ramulator (Section II-C).
_PRESETS: dict[str, DramTiming] = {
    "ddr3": DramTiming(
        name="DDR3-1600",
        tck_ns=1.25,
        t_rcd=11,
        t_rp=11,
        t_cl=11,
        t_cwl=8,
        t_ras=28,
        t_ccd=4,
        t_wr=12,
        t_burst=4,
        row_bytes=8192,
        bus_bytes_per_cycle=16,
    ),
    "ddr4": DramTiming(
        name="DDR4-2400",
        tck_ns=0.833,
        t_rcd=16,
        t_rp=16,
        t_cl=16,
        t_cwl=12,
        t_ras=39,
        t_ccd=4,
        t_wr=18,
        t_burst=4,
        row_bytes=8192,
        bus_bytes_per_cycle=16,
    ),
    "lpddr4": DramTiming(
        name="LPDDR4-3200",
        tck_ns=0.625,
        t_rcd=29,
        t_rp=34,
        t_cl=28,
        t_cwl=14,
        t_ras=67,
        t_ccd=8,
        t_wr=28,
        t_burst=8,
        row_bytes=4096,
        bus_bytes_per_cycle=8,
    ),
    "gddr5": DramTiming(
        name="GDDR5-6000",
        tck_ns=0.667,
        t_rcd=18,
        t_rp=18,
        t_cl=18,
        t_cwl=6,
        t_ras=42,
        t_ccd=3,
        t_wr=18,
        t_burst=2,
        row_bytes=2048,
        bus_bytes_per_cycle=32,
    ),
    "hbm": DramTiming(
        name="HBM-1000",
        tck_ns=1.0,
        t_rcd=14,
        t_rp=14,
        t_cl=14,
        t_cwl=4,
        t_ras=34,
        t_ccd=2,
        t_wr=16,
        t_burst=4,
        row_bytes=2048,
        bus_bytes_per_cycle=16,
    ),
    "hbm2": DramTiming(
        name="HBM2-2000",
        tck_ns=0.5,
        t_rcd=16,
        t_rp=16,
        t_cl=16,
        t_cwl=4,
        t_ras=39,
        t_ccd=2,
        t_wr=18,
        t_burst=4,
        row_bytes=2048,
        bus_bytes_per_cycle=16,
    ),
    "wio2": DramTiming(
        name="WIO2-800",
        tck_ns=1.25,
        t_rcd=12,
        t_rp=12,
        t_cl=12,
        t_cwl=6,
        t_ras=30,
        t_ccd=2,
        t_wr=14,
        t_burst=4,
        row_bytes=4096,
        bus_bytes_per_cycle=16,
    ),
}


#: The per-cycle timing knobs the batched engines consume, in the order
#: :func:`timing_param_arrays` packs them.
BROADCAST_TIMING_FIELDS = (
    "t_rcd",
    "t_rp",
    "t_cl",
    "t_cwl",
    "t_ras",
    "t_ccd",
    "t_wr",
    "t_burst",
)


def timing_param_arrays(timings) -> dict:
    """Pack a sequence of :class:`DramTiming` into broadcast arrays.

    Returns one ``int64`` array per field in
    :data:`BROADCAST_TIMING_FIELDS`, each of length ``len(timings)`` —
    the per-config parameter axis the grid-batched engine
    (:mod:`repro.dram.engine_grid`) broadcasts against element data.
    """
    import numpy as np

    return {
        name: np.array([getattr(t, name) for t in timings], dtype=np.int64)
        for name in BROADCAST_TIMING_FIELDS
    }


def available_timing_presets() -> tuple[str, ...]:
    """Names of all DRAM technology presets."""
    return tuple(sorted(_PRESETS))


def get_timing_preset(technology: str) -> DramTiming:
    """Look up a technology preset (case-insensitive)."""
    key = technology.strip().lower()
    if key not in _PRESETS:
        raise DramError(
            f"unknown DRAM technology {technology!r}; "
            f"available: {', '.join(available_timing_presets())}"
        )
    return _PRESETS[key]
