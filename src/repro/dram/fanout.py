"""The DRAM fan-out: one compute plan, an arbitrary ``dram.*`` grid.

Fourth instance of the fan-out seam (see DESIGN.md "The fan-out seam"):
the paper's memory-system studies (fig 9 channels, fig 10 request
queues, the DRAM ablations) sweep only ``dram.*`` knobs, yet each point
used to re-run the identical dense compute pass and re-plan the
identical fetch streams before the backend ever differed.  Here the
shared upstream artifact is the :class:`~repro.core.simulator.ComputePlan`
— per-layer fold schedules plus fetch plans, a pure function of the
architecture section — and :func:`simulate_many_dram` resolves it
against every memory configuration of a grid:

* the plan is built (and memoized) once;
* configs sharing a word size share one decoded line stream — the
  fetch-to-64B-line chop plus the round-robin issue order the vector
  engine would otherwise rematerialize per config (mirroring the
  ``prime_key_lut`` sharing of the layout fan-out);
* batched-engine configs sharing a word size resolve *together*: one
  :class:`~repro.dram.engine_grid.GridBatchedEngine` pass walks the
  whole grid's stalls per line batch instead of one config at a time
  (the fifth engine-seam instance — see
  :mod:`repro.dram.engine_grid`);
* ``workers > 1`` splits the grid over a worker pool
  (:func:`repro.utils.pool.pool_context`); each worker runs the same
  serial resolver — grid passes included — on its share of the
  configs.  Under ``fork`` the plan and streams are inherited zero-copy
  via the pool initializer; under ``spawn`` each worker is shipped only
  the line streams for the word sizes its configs actually use.

Results are bit-identical to ``Simulator(config).run(topology)`` per
config — enforced by ``tests/dram/test_dram_fanout_equivalence.py`` and
``tests/dram/test_grid_engine_equivalence.py``.  The sweep runner
(:mod:`repro.run.sweep`) dispatches groups of points that differ only
in ``dram.*`` / ``layout.*`` axes through this seam.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import TYPE_CHECKING

from repro.config.system import SystemConfig
from repro.dram.engine import LineRequestBatch
from repro.dram.engine_batched import prepare_line_batch
from repro.errors import DramError
from repro.store.artifact_store import ArtifactStore, active_store
from repro.utils.pool import pool_context

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    # The simulator imports repro.dram.backend (whose package init loads
    # this module), so the runtime imports below are deferred into the
    # functions; annotations stay string-typed via __future__.
    from repro.core.simulator import ComputePlan, RunResult

#: Per-layer, per-fold line batches for one word size.
_LineBatches = list[list[LineRequestBatch]]


def _build_line_batches(plan: ComputePlan, word_bytes: int) -> _LineBatches:
    return [
        [prepare_line_batch(spec.fetches, word_bytes) for spec in compute.fold_specs]
        for compute in plan.computes
    ]


def _shared_line_batches(
    plan: ComputePlan,
    configs: Sequence[SystemConfig],
    store: ArtifactStore | None = None,
) -> dict[int, _LineBatches]:
    """One decoded line stream per word size appearing in the grid.

    Only DRAM-enabled configs consume line batches (the ideal-bandwidth
    backend works in words, straight from the fold specs).  With an
    artifact store (and a plan that carries its content address) each
    word size's stream is served from / persisted to disk, keyed on the
    plan key + word size, so a cold process skips the fetch-to-line
    chop and the issue-order sort.
    """
    batches: dict[int, _LineBatches] = {}
    for word_bytes in sorted({c.arch.word_bytes for c in configs if c.dram.enabled}):
        if store is not None and plan.store_key:
            key = store.key(
                "line_batches",
                {"plan": plan.store_key, "word_bytes": word_bytes},
            )
            batches[word_bytes] = store.get_or_build(
                "line_batches", key, lambda: _build_line_batches(plan, word_bytes)
            )
        else:
            batches[word_bytes] = _build_line_batches(plan, word_bytes)
    return batches


def _resolve_config(
    plan: ComputePlan,
    config: SystemConfig,
    line_batches: _LineBatches | None,
) -> RunResult:
    """One config's stall resolution against a fresh backend."""
    from repro.core.simulator import make_memory_backend, resolve_plan

    backend = make_memory_backend(config)
    return resolve_plan(
        plan,
        backend,
        config.run.run_name,
        line_batches=line_batches if config.dram.enabled else None,
    )


def _grid_groups(configs: Sequence[SystemConfig]) -> dict[int, list[int]]:
    """Indices of batched-engine DRAM configs, grouped by word size.

    Only groups of two or more resolve through the grid engine —
    a lone config gains nothing from the config axis, and reference /
    custom engines and DRAM-disabled points keep the per-config path.
    """
    groups: dict[int, list[int]] = {}
    for index, config in enumerate(configs):
        if config.dram.enabled and config.dram.engine == "batched":
            groups.setdefault(config.arch.word_bytes, []).append(index)
    return {word: members for word, members in groups.items() if len(members) > 1}


def _resolve_serial(
    plan: ComputePlan,
    configs: Sequence[SystemConfig],
    batches: dict[int, _LineBatches],
) -> list[RunResult]:
    """Resolve a grid in-process: grid passes first, stragglers alone."""
    from repro.dram.engine_grid import resolve_plan_grid

    results: list[RunResult | None] = [None] * len(configs)
    grid_members: set[int] = set()
    for word_bytes, members in sorted(_grid_groups(configs).items()):
        grid_members.update(members)
        for index, result in zip(
            members,
            resolve_plan_grid(
                plan, [configs[i] for i in members], batches[word_bytes]
            ),
        ):
            results[index] = result
    for index, config in enumerate(configs):
        if index not in grid_members:
            results[index] = _resolve_config(
                plan, config, batches.get(config.arch.word_bytes)
            )
    return results  # type: ignore[return-value]


# --------------------------------------------------------------- worker pool

#: Installed once per fork worker by the pool initializer: the plan plus
#: the shared per-word-size line streams (inherited zero-copy).
_WORKER_PLAN: ComputePlan | None = None
_WORKER_BATCHES: dict[int, _LineBatches] = {}


def _fanout_init(plan: ComputePlan, batches: dict[int, _LineBatches]) -> None:
    global _WORKER_PLAN, _WORKER_BATCHES
    _WORKER_PLAN = plan
    _WORKER_BATCHES = batches


def _slim(result: RunResult) -> tuple:
    """Strip a RunResult to what the parent can't reconstruct.

    The full :class:`RunResult` embeds the plan's compute records
    (thousands of fold specs); shipping those back through the pipe per
    config would dwarf the actual result.  Workers return only the
    per-layer timelines + counters and the parent reattaches the plan's
    computes — reconstructing a bit-identical ``RunResult``.
    """
    return (
        [
            (layer.timeline, layer.backpressure_stall_cycles, layer.drain_cycles)
            for layer in result.layers
        ],
        result.dram_stats,
    )


def _fanout_chunk_shared(configs: list[SystemConfig]) -> list[tuple]:
    """Fork-worker entry point: resolve one chunk against inherited state."""
    assert _WORKER_PLAN is not None
    return [
        _slim(result)
        for result in _resolve_serial(_WORKER_PLAN, configs, _WORKER_BATCHES)
    ]


def _fanout_chunk(
    plan: ComputePlan,
    configs: list[SystemConfig],
    batches: dict[int, _LineBatches],
) -> list[tuple]:
    """Spawn-worker entry point: everything arrives as task arguments.

    ``batches`` is pre-sliced by the parent to the word sizes this
    chunk's configs actually use, so a spawn pool never pickles line
    streams a worker would ignore.
    """
    return [_slim(result) for result in _resolve_serial(plan, configs, batches)]


def _rebuild_result(
    plan: ComputePlan, config: SystemConfig, reduced: tuple
) -> RunResult:
    """Reattach the plan's compute records to a worker's slim outcome."""
    from repro.core.simulator import LayerResult, RunResult

    layers, dram_stats = reduced
    return RunResult(
        run_name=config.run.run_name,
        topology_name=plan.topology_name,
        layers=[
            LayerResult(
                layer_name=compute.layer_name,
                compute=compute,
                timeline=timeline,
                backpressure_stall_cycles=backpressure,
                drain_cycles=drain,
            )
            for compute, (timeline, backpressure, drain) in zip(plan.computes, layers)
        ],
        dram_stats=dram_stats,
    )


# ---------------------------------------------------------------- entry point


def simulate_many_dram(
    plan: ComputePlan,
    configs: Sequence[SystemConfig],
    workers: int = 1,
    store: ArtifactStore | None = None,
) -> list[RunResult]:
    """Resolve one compute plan against a grid of memory configurations.

    Every config must share the plan's compute schedule — same array,
    dataflow and SRAM working sizes (:func:`plan_signature`); the
    ``dram.*`` section (engine, technology, channels, queues, mapping,
    issue rate), ``arch.word_bytes`` (with SRAM kilobytes scaled to
    keep the word capacity fixed) and ``arch.bandwidth_words`` (the
    DRAM-disabled ideal backend) are free to vary.  Results come back
    in ``configs`` order, each bit-identical to
    ``Simulator(config).run(topology)`` for the planned topology.

    Batched-engine configs sharing a word size resolve through one
    :class:`~repro.dram.engine_grid.GridBatchedEngine` pass per line
    batch; other configs (reference engines, DRAM-disabled points)
    resolve one at a time.

    Args:
        plan: the shared compute plan (:meth:`Simulator.plan`).
        configs: memory configurations to fan out over.
        workers: process count; ``1`` (the default) resolves in-process,
            more split the configs round-robin over a worker pool, each
            chunk resolved by the same serial path (grid passes
            included).
        store: artifact store for the shared decoded line streams;
            defaults to the process's active store (see
            :mod:`repro.store`).
    """
    from repro.core.simulator import plan_signature

    configs = list(configs)
    if not configs:
        return []
    for config in configs:
        signature = plan_signature(config.arch)
        if signature != plan.signature:
            raise DramError(
                f"config {config.run.run_name!r} has compute signature "
                f"{signature}, plan was built for {plan.signature}; "
                "dram.* fan-out requires an identical fold schedule"
            )
    batches = _shared_line_batches(
        plan, configs, store if store is not None else active_store()
    )

    if workers > 1 and len(configs) > 1:
        processes = min(workers, len(configs))
        chunk_indices = [list(range(i, len(configs), processes)) for i in range(processes)]
        chunks = [[configs[i] for i in chunk] for chunk in chunk_indices]
        context = pool_context()
        if context.get_start_method() == "fork":
            with context.Pool(
                processes=processes,
                initializer=_fanout_init,
                initargs=(plan, batches),
            ) as pool:
                outcomes = pool.map(_fanout_chunk_shared, chunks, chunksize=1)
        else:
            tasks = []
            for chunk in chunks:
                words = {c.arch.word_bytes for c in chunk if c.dram.enabled}
                needed = {w: b for w, b in batches.items() if w in words}
                tasks.append((plan, chunk, needed))
            with context.Pool(processes=processes) as pool:
                outcomes = pool.starmap(_fanout_chunk, tasks, chunksize=1)
        results: list[RunResult | None] = [None] * len(configs)
        for chunk, chunk_outcomes in zip(chunk_indices, outcomes):
            for index, outcome in zip(chunk, chunk_outcomes):
                results[index] = _rebuild_result(plan, configs[index], outcome)
        return results  # type: ignore[return-value]

    return _resolve_serial(plan, configs, batches)


__all__ = ["simulate_many_dram"]
