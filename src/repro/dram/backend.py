"""Adapter: tile fetches -> line batches -> a pluggable memory engine.

This is v3's "memory datapath" (paper Section V-B step 3): demand spans
are chopped into 64B lines, issued at most ``issue_per_cycle`` per cycle
into finite read/write request queues, and each line's round-trip
latency comes from the DRAM model.  A full queue blocks issue — that
backpressure is what makes small queues slow (Figure 10).

The line pipeline itself lives behind the engine seam
(:mod:`repro.dram.engine`): this backend only translates
:class:`TileFetch` spans into a :class:`LineRequestBatch` and routes it
through the configured :class:`MemoryEngine` (scalar reference or the
vectorized batched engine).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.compute_sim import TileFetch
from repro.dram.dram_sim import DramStats, RamulatorLite
from repro.dram.engine import LineRequestBatch, MemoryEngine, make_engine
from repro.errors import DramError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.config.system import DramConfig


def make_ramulator(dram_cfg: "DramConfig") -> RamulatorLite:
    """A fresh :class:`RamulatorLite` for one ``[memory]`` section.

    The single place a :class:`~repro.config.system.DramConfig` turns
    into DRAM timing/geometry state — used by the simulator's backend
    factory and by the grid-batched engine when it instantiates its
    per-config datapaths.
    """
    return RamulatorLite(
        technology=dram_cfg.technology,
        channels=dram_cfg.channels,
        ranks_per_channel=dram_cfg.ranks_per_channel,
        banks_per_rank=dram_cfg.banks_per_rank,
        capacity_gb_per_channel=dram_cfg.capacity_gb_per_channel,
        address_mapping=dram_cfg.address_mapping,
    )


class DramBackend:
    """A :class:`repro.memory.double_buffer.MemoryBackend` backed by DRAM."""

    def __init__(
        self,
        dram: RamulatorLite,
        read_queue_entries: int = 128,
        write_queue_entries: int = 128,
        word_bytes: int = 2,
        max_issue_per_cycle: int = 1,
        engine: str | MemoryEngine = "batched",
    ) -> None:
        """Build the adapter.

        ``engine`` is either a name resolved through
        :func:`repro.dram.engine.make_engine` (using ``dram``, the queue
        sizes and ``max_issue_per_cycle``), or an already-constructed
        :class:`MemoryEngine` — in which case the engine's own DRAM,
        queues and issue rate are what the simulation uses.
        """
        if word_bytes < 1:
            raise DramError(f"word_bytes must be >= 1, got {word_bytes}")
        if max_issue_per_cycle < 1:
            raise DramError("max_issue_per_cycle must be >= 1")
        self.dram = dram
        self.word_bytes = word_bytes
        self.max_issue_per_cycle = max_issue_per_cycle
        self.engine: MemoryEngine = (
            make_engine(
                engine,
                dram,
                read_queue_entries=read_queue_entries,
                write_queue_entries=write_queue_entries,
                max_issue_per_cycle=max_issue_per_cycle,
            )
            if isinstance(engine, str)
            else engine
        )
        self.total_lines_read = 0
        self.total_lines_written = 0

    # ------------------------------------------------------------- protocol

    def complete_fetches(self, fetches: tuple[TileFetch, ...], issue_cycle: int) -> int:
        """Issue all lines of a fold's fetches; return read-data-ready cycle.

        The per-operand DMA engines run concurrently, so lines from the
        fold's fetches are issued round-robin across operand streams —
        the interleaving that makes DRAM bank behaviour (and request
        queues) matter for mixed traffic.
        """
        return self.complete_batch(
            LineRequestBatch.from_fetches(fetches, self.word_bytes), issue_cycle
        )

    def complete_batch(self, batch: LineRequestBatch, issue_cycle: int) -> int:
        """Issue a prebuilt line batch; return the read-data-ready cycle.

        The DRAM fan-out uses this to share one fetch-to-line chop (and
        the precomputed issue order of a
        :class:`~repro.dram.engine_batched.PreparedLineBatch`) across a
        grid of backends; ``complete_fetches`` is the 1-config case.
        """
        result = self.engine.process_batch(batch, issue_cycle)
        self.total_lines_read += result.lines_read
        self.total_lines_written += result.lines_written
        return result.ready_cycle

    def drain(self) -> int:
        """Cycle when every in-flight read and write has completed."""
        return self.engine.drain()

    # ------------------------------------------------------------- reporting

    @property
    def read_queue(self):
        """The engine's read-queue state/statistics."""
        return self.engine.read_queue

    @property
    def write_queue(self):
        """The engine's write-queue state/statistics."""
        return self.engine.write_queue

    @property
    def stall_cycles_from_backpressure(self) -> int:
        """Issue cycles lost to full request queues."""
        return (
            self.engine.read_queue.total_stall_cycles
            + self.engine.write_queue.total_stall_cycles
        )

    def dram_stats(self) -> DramStats:
        """Aggregate DRAM statistics across all channels."""
        return self.engine.aggregate_stats()
