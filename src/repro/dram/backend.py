"""Adapter: tile fetches -> line requests -> RamulatorLite.

This is v3's "memory datapath" (paper Section V-B step 3): demand spans
are chopped into 64B lines, issued at most one per cycle into finite
read/write request queues, and each line's round-trip latency comes from
the DRAM model.  A full queue blocks issue — that backpressure is what
makes small queues slow (Figure 10).
"""

from __future__ import annotations

from repro.core.compute_sim import TileFetch
from repro.core.operand_matrix import FILTER_BASE, IFMAP_BASE, OFMAP_BASE
from repro.dram.address import LINE_BYTES
from repro.dram.dram_sim import RamulatorLite
from repro.errors import DramError
from repro.memory.request_queue import RequestQueue

_OPERAND_BASE_WORDS = {
    "ifmap": IFMAP_BASE,
    "filter": FILTER_BASE,
    "ofmap": OFMAP_BASE,
}


class DramBackend:
    """A :class:`repro.memory.double_buffer.MemoryBackend` backed by DRAM."""

    def __init__(
        self,
        dram: RamulatorLite,
        read_queue_entries: int = 128,
        write_queue_entries: int = 128,
        word_bytes: int = 2,
        max_issue_per_cycle: int = 1,
    ) -> None:
        if word_bytes < 1:
            raise DramError(f"word_bytes must be >= 1, got {word_bytes}")
        if max_issue_per_cycle < 1:
            raise DramError("max_issue_per_cycle must be >= 1")
        self.dram = dram
        self.word_bytes = word_bytes
        self.max_issue_per_cycle = max_issue_per_cycle
        self.read_queue = RequestQueue(read_queue_entries, "read_queue")
        self.write_queue = RequestQueue(write_queue_entries, "write_queue")
        self._issue_clock = 0
        self.total_lines_read = 0
        self.total_lines_written = 0

    # ------------------------------------------------------------- protocol

    def complete_fetches(self, fetches: tuple[TileFetch, ...], issue_cycle: int) -> int:
        """Issue all lines of a fold's fetches; return read-data-ready cycle.

        The per-operand DMA engines run concurrently, so lines from the
        fold's fetches are issued round-robin across operand streams —
        the interleaving that makes DRAM bank behaviour (and request
        queues) matter for mixed traffic.
        """
        clock = max(issue_cycle, self._issue_clock)
        last_read_done = clock
        issued_this_cycle = 0

        streams: list[tuple[range, bool]] = []
        for fetch in fetches:
            if fetch.num_words == 0:
                continue
            base_byte = _OPERAND_BASE_WORDS[fetch.operand] * self.word_bytes
            start_byte = base_byte + fetch.start_word * self.word_bytes
            num_bytes = fetch.num_words * self.word_bytes
            first_line = start_byte // LINE_BYTES
            last_line = (start_byte + num_bytes - 1) // LINE_BYTES
            streams.append((range(first_line, last_line + 1), fetch.is_write))

        iterators = [(iter(lines), is_write) for lines, is_write in streams]
        while iterators:
            exhausted = []
            for index, (lines, is_write) in enumerate(iterators):
                line = next(lines, None)
                if line is None:
                    exhausted.append(index)
                    continue
                # Front-end issue bandwidth: max_issue_per_cycle lines/cycle.
                if issued_this_cycle >= self.max_issue_per_cycle:
                    clock += 1
                    issued_this_cycle = 0
                queue = self.write_queue if is_write else self.read_queue
                issue_at = queue.earliest_issue(clock)
                if issue_at > clock:
                    queue.record_stall(issue_at - clock)
                    clock = issue_at
                    issued_this_cycle = 0
                completion = self.dram.submit(line * LINE_BYTES, clock, is_write=is_write)
                queue.push(clock, completion)
                issued_this_cycle += 1
                if is_write:
                    self.total_lines_written += 1
                else:
                    self.total_lines_read += 1
                    last_read_done = max(last_read_done, completion)
            for index in reversed(exhausted):
                iterators.pop(index)

        self._issue_clock = clock
        return last_read_done

    def drain(self) -> int:
        """Cycle when every in-flight read and write has completed."""
        return max(self.read_queue.drain_time(), self.write_queue.drain_time())

    # ------------------------------------------------------------- reporting

    @property
    def stall_cycles_from_backpressure(self) -> int:
        """Issue cycles lost to full request queues."""
        return self.read_queue.total_stall_cycles + self.write_queue.total_stall_cycles
