"""RamulatorLite: a cycle-accurate banked DRAM model (paper Section V).

The line pipeline (front-end pacing + request queues + banks/buses)
lives behind the pluggable engine seam in :mod:`repro.dram.engine`.
"""

from repro.dram.timing import DramTiming, get_timing_preset
from repro.dram.address import LINE_BYTES, AddressMapper, DecodedAddress
from repro.dram.dram_sim import DramStats, RamulatorLite
from repro.dram.backend import DramBackend
from repro.dram.engine import (
    AVAILABLE_ENGINES,
    BatchResult,
    LineRequestBatch,
    LineStream,
    MemoryEngine,
    ReferenceEngine,
    make_engine,
)
from repro.dram.engine_batched import (
    BatchedEngine,
    PreparedLineBatch,
    issue_order_arrays,
    prepare_line_batch,
)
from repro.dram.engine_grid import GridBatchedEngine, resolve_plan_grid
from repro.dram.fanout import simulate_many_dram

__all__ = [
    "DramTiming",
    "get_timing_preset",
    "LINE_BYTES",
    "AddressMapper",
    "DecodedAddress",
    "DramStats",
    "RamulatorLite",
    "DramBackend",
    "AVAILABLE_ENGINES",
    "BatchResult",
    "LineRequestBatch",
    "LineStream",
    "MemoryEngine",
    "ReferenceEngine",
    "BatchedEngine",
    "PreparedLineBatch",
    "issue_order_arrays",
    "prepare_line_batch",
    "GridBatchedEngine",
    "resolve_plan_grid",
    "make_engine",
    "simulate_many_dram",
]
