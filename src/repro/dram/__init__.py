"""RamulatorLite: a cycle-accurate banked DRAM model (paper Section V)."""

from repro.dram.timing import DramTiming, get_timing_preset
from repro.dram.address import AddressMapper, DecodedAddress
from repro.dram.dram_sim import DramStats, RamulatorLite
from repro.dram.backend import DramBackend

__all__ = [
    "DramTiming",
    "get_timing_preset",
    "AddressMapper",
    "DecodedAddress",
    "DramStats",
    "RamulatorLite",
    "DramBackend",
]
