"""GridBatchedEngine: one vectorized stall walk for a whole ``dram.*`` grid.

The fifth engine-seam instance (see DESIGN.md): where
:class:`~repro.dram.engine_batched.BatchedEngine` replaced the per-line
Python loop with array passes over one config's line batches, this
module promotes the *config* to an extra array axis.  A pure ``dram.*``
grid shares one compute plan and one decoded line stream per word size
(PR 5's fan-out), so the only per-config work left is the stall walk —
and those walks are data-parallel over identical line sequences.

State layout.  Each config keeps its own :class:`BatchedEngine` as the
canonical state owner (plain Python lists — the scalar and closed-form
fast paths run on them unchanged, per config).  Per batch, the grid
pass snapshots the participating engines' bank/channel state into
*offset-flattened* arrays: config ``p``'s flat bank ids live in
``[bank_off[p], bank_off[p+1])`` and its channel ids in
``[chan_off[p], chan_off[p+1])``.  Ragged geometries (1 channel next to
8, 2 banks next to 16) need no bucketing — the offsets make every
(config, bank) and (config, channel) pair globally unique, so one
stable sort groups the whole grid's traffic and the segmented
running-max scans of the batched engine apply verbatim with per-config
parameters gathered per element:

* per-config timing (tRCD/tRP/tCAS/tRAS/tCCD/tWR/tBURST), queue
  capacities, channel counts and issue rates become broadcast arrays
  (:func:`repro.dram.timing.timing_param_arrays`);
* the front-end pacing scan seeds each config's segment with its own
  ``pace_h`` and runs one segmented running max over the concatenation;
* the row-hit-streak scan and the bus max-plus scan segment on the
  offset bank/channel ids — runs never cross configs;
* queue-constraint construction, violation checks and pending-pool
  merges stay per config (small ``O(capacity)`` array ops).

Exactness.  Each config advances through the *same* block sequence it
would take alone — block bounds come from its own queue capacities and
cursor, and violation truncation re-runs only that config's segment —
so every intermediate array restricted to one config's segment is
element-for-element the one ``BatchedEngine._process_vector`` computes.
Configs a closed-form fast path accepts (single-stream bursts, the
saturated affine steady state) take it *per config* before the shared
pass; each config locks into its own ``completion[i - Q]`` recurrence
exactly as it would alone.  The whole thing is pinned bit-identical by
``tests/dram/test_grid_engine_equivalence.py``.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import TYPE_CHECKING

import numpy as np

from repro.config.system import SystemConfig
from repro.dram.backend import make_ramulator
from repro.dram.engine import BatchResult, LineRequestBatch
from repro.dram.engine_batched import (
    _BIG,
    _LOW,
    BatchedEngine,
    PreparedLineBatch,
    issue_order_arrays,
)
from repro.dram.timing import timing_param_arrays
from repro.errors import DramError, MemoryModelError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.simulator import ComputePlan, RunResult


class GridBatchedEngine:
    """A grid of batched engines resolved by one shared vector pass.

    ``configs`` must all be DRAM-enabled and share ``arch.word_bytes``
    (they consume one decoded line stream).  :meth:`process_batch`
    issues the same batch into every config's datapath and returns one
    :class:`BatchResult` per config, bit-identical to calling each
    config's :class:`BatchedEngine` alone.
    """

    def __init__(self, configs: Sequence[SystemConfig]) -> None:
        configs = list(configs)
        if not configs:
            raise DramError("grid engine needs at least one config")
        word_sizes = {config.arch.word_bytes for config in configs}
        if len(word_sizes) != 1:
            raise DramError(
                f"grid configs span word sizes {sorted(word_sizes)}; "
                "one grid pass shares one decoded line stream"
            )
        for config in configs:
            if not config.dram.enabled:
                raise DramError(
                    f"config {config.run.run_name!r} has dram.enabled=False; "
                    "the grid engine only resolves DRAM datapaths"
                )
        self.configs = configs
        self.engines = [
            BatchedEngine(
                make_ramulator(config.dram),
                read_queue_entries=config.dram.read_queue_entries,
                write_queue_entries=config.dram.write_queue_entries,
                max_issue_per_cycle=config.dram.issue_per_cycle,
            )
            for config in configs
        ]
        engines = self.engines
        k = len(engines)
        # Broadcast parameter axes (one int64 entry per config).
        self._timing = timing_param_arrays([e.timing for e in engines])
        self._t_ccd_wr = self._timing["t_ccd"] + self._timing["t_wr"]
        self._ipc = np.array([e.max_issue_per_cycle for e in engines], dtype=np.int64)
        self._cap_r = np.array([e.read_queue.capacity for e in engines], dtype=np.int64)
        self._cap_w = np.array(
            [e.write_queue.capacity for e in engines], dtype=np.int64
        )
        # Decode plan per config: field = (line // stride) % size.
        self._st = {
            name: np.array([e._strides[name] for e in engines], dtype=np.int64)
            for name in ("ch", "ra", "ba", "ro")
        }
        self._sz = {
            name: np.array([e._sizes[name] for e in engines], dtype=np.int64)
            for name in ("ch", "ra", "ba", "ro")
        }
        # Offset-flattened state geometry: config p's banks/channels map to
        # [off[p], off[p+1]) — ragged shapes concatenate without bucketing.
        nbanks = np.array(
            [e.channels * e.ranks * e.banks for e in engines], dtype=np.int64
        )
        nchan = np.array([e.channels for e in engines], dtype=np.int64)
        self._bank_off = np.zeros(k + 1, dtype=np.int64)
        np.cumsum(nbanks, out=self._bank_off[1:])
        self._chan_off = np.zeros(k + 1, dtype=np.int64)
        np.cumsum(nchan, out=self._chan_off[1:])
        # Homogeneous-parameter fast flags: a grid sweeping only geometry
        # (channels, banks, mapping) shares every timing constant, so the
        # per-element parameter gathers collapse to Python ints.
        self._uniform_timing = all(
            int(arr.min()) == int(arr.max()) for arr in self._timing.values()
        ) and int(self._ipc.min()) == int(self._ipc.max())
        self._caps_uniform = (
            int(self._cap_r.min()) == int(self._cap_r.max())
            and int(self._cap_w.min()) == int(self._cap_w.max())
        )
        self._cap_r0 = int(self._cap_r[0])
        self._cap_w0 = int(self._cap_w[0])
        self._ramp = np.arange(0, dtype=np.int64)  # lazily grown scratch

    # ------------------------------------------------------------- protocol

    def process_batch(
        self, batch: LineRequestBatch, issue_cycles: Sequence[int]
    ) -> list[BatchResult]:
        """Issue every line of ``batch`` into every config's datapath.

        ``issue_cycles`` carries one issue cycle per config.  Configs a
        per-config fast path accepts commit immediately through their
        own engine; the rest resolve together in the shared grid pass.
        """
        engines = self.engines
        if len(issue_cycles) != len(engines):
            raise DramError(
                f"{len(issue_cycles)} issue cycles for {len(engines)} configs"
            )
        total = batch.total_lines
        results: list[BatchResult | None] = [None] * len(engines)
        rest: list[int] = []
        clock0s: list[int] = []
        for index, engine in enumerate(engines):
            cycle = int(issue_cycles[index])
            if cycle < 0:
                raise DramError(f"negative cycle {cycle}")
            clock0 = max(cycle, engine._issue_clock)
            if total == 0:
                engine._issue_clock = clock0
                results[index] = BatchResult(
                    ready_cycle=clock0, lines_read=0, lines_written=0
                )
                continue
            fast = engine._try_fast_paths(batch, clock0, total)
            if fast is not None:
                results[index] = fast
                continue
            rest.append(index)
            clock0s.append(clock0)
        if rest:
            if total < BatchedEngine.vector_threshold:
                # Small batches: the per-config inlined scalar loop beats
                # any array machinery (same dispatch rule as one engine).
                for index, clock0 in zip(rest, clock0s):
                    results[index] = engines[index]._process_scalar(batch, clock0)
            elif len(rest) == 1:
                results[rest[0]] = engines[rest[0]]._process_vector(
                    batch, clock0s[0]
                )
            else:
                for index, result in zip(
                    rest, self._process_vector_grid(batch, rest, clock0s)
                ):
                    results[index] = result
        return results  # type: ignore[return-value]

    def backpressure_stalls(self) -> list[int]:
        """Per-config issue cycles lost to full request queues."""
        return [
            e.read_queue.total_stall_cycles + e.write_queue.total_stall_cycles
            for e in self.engines
        ]

    def drains(self) -> list[int]:
        """Per-config cycle when all in-flight traffic has completed."""
        return [e.drain() for e in self.engines]

    # ------------------------------------------------------ shared grid pass

    def _process_vector_grid(
        self, batch: LineRequestBatch, part: list[int], clock0s: list[int]
    ) -> list[BatchResult]:
        """One vector pass resolving the stall walk for many configs.

        ``part`` names the participating configs; per-participant state
        is snapshotted from (and written back to) their engines' Python
        lists, exactly like ``_process_vector`` does for one engine.
        """
        engines = [self.engines[c] for c in part]
        num = len(part)
        idx = np.asarray(part, dtype=np.int64)
        # Per-participant parameters (gathered once per call).
        ipc_a = self._ipc[idx]
        cap_r_a = self._cap_r[idx]
        cap_w_a = self._cap_w[idx]
        t_burst_a = self._timing["t_burst"][idx]
        t_ccd_a = self._timing["t_ccd"][idx]
        t_ccd_wr_a = self._t_ccd_wr[idx]
        t_rcd_a = self._timing["t_rcd"][idx]
        t_rp_a = self._timing["t_rp"][idx]
        t_ras_a = self._timing["t_ras"][idx]
        t_cl_a = self._timing["t_cl"][idx]
        t_cwl_a = self._timing["t_cwl"][idx]
        nbanks = np.array(
            [e.channels * e.ranks * e.banks for e in engines], dtype=np.int64
        )
        nchan = np.array([e.channels for e in engines], dtype=np.int64)
        bank_off = np.zeros(num + 1, dtype=np.int64)
        np.cumsum(nbanks, out=bank_off[1:])
        chan_off = np.zeros(num + 1, dtype=np.int64)
        np.cumsum(nchan, out=chan_off[1:])
        cap_r_l = cap_r_a.tolist()
        cap_w_l = cap_w_a.tolist()

        # --- 1. shared issue order + per-config decode --------------------
        if (
            isinstance(batch, PreparedLineBatch)
            and batch.lines_in_order is not None
        ):
            lines = batch.lines_in_order
            is_write = batch.writes_in_order
        else:
            lines, is_write = issue_order_arrays(batch)
        n = lines.size
        index = np.arange(n + 1, dtype=np.int64)
        writes_cum = np.cumsum(is_write)
        reads_cum = index[1:] - writes_cum
        ln = lines[None, :]
        sz_ra = self._sz["ra"][idx]
        sz_ba = self._sz["ba"][idx, None]
        chan = (ln // self._st["ch"][idx, None]) % self._sz["ch"][idx, None]
        bankl = (ln // self._st["ba"][idx, None]) % sz_ba
        row = (ln // self._st["ro"][idx, None]) % self._sz["ro"][idx, None]
        if (sz_ra == 1).all():
            # Single-rank grids (the common case) skip the rank divmod.
            flat_bank = chan * sz_ba + bankl
        else:
            rank = (ln // self._st["ra"][idx, None]) % sz_ra[:, None]
            flat_bank = (chan * sz_ra[:, None] + rank) * sz_ba + bankl
            del rank
        flat_bank += bank_off[:-1, None]
        gchan = chan + chan_off[:-1, None]
        del ln, bankl

        # --- 2. offset-concatenated snapshots of the datapath state -------
        open_row = np.concatenate(
            [np.asarray(e._open_row, dtype=np.int64) for e in engines]
        )
        ready = np.concatenate(
            [np.asarray(e._ready, dtype=np.int64) for e in engines]
        )
        act = np.concatenate([np.asarray(e._act, dtype=np.int64) for e in engines])
        bus = np.concatenate(
            [np.asarray(e._bus_ready, dtype=np.int64) for e in engines]
        )
        pend_r = [
            np.sort(np.asarray(e.read_queue.pending, dtype=np.int64))
            for e in engines
        ]
        pend_w = [
            np.sort(np.asarray(e.write_queue.pending, dtype=np.int64))
            for e in engines
        ]
        pushed_r = [e.read_queue.pushed for e in engines]
        pushed_w = [e.write_queue.pushed for e in engines]
        # Equal-length pending matrices (the lockstep steady state): queue
        # gates and merges become one 2D op instead of a per-config loop.
        # Invalidated whenever a commit leaves rows ragged.
        pend2_r = (
            np.stack(pend_r) if len({a.size for a in pend_r}) == 1 else None
        )
        pend2_w = (
            np.stack(pend_w) if len({a.size for a in pend_w}) == 1 else None
        )
        enq_r = [0] * num
        enq_w = [0] * num
        stall_r = [0] * num
        stall_w = [0] * num

        issue_all = np.empty((num, n), dtype=np.int64)
        comp_all = np.empty((num, n), dtype=np.int64)
        cat_all = np.empty((num, n), dtype=np.int8)  # 0 hit / 1 miss / 2 conflict

        pace_h = [int(ipc) * c0 for ipc, c0 in zip(ipc_a.tolist(), clock0s)]
        pos = [0] * num
        block_override = [0] * num  # violation re-run lengths (0 = none)
        caps_uniform = self._caps_uniform
        uniform_timing = self._uniform_timing
        if uniform_timing:
            ccd0 = int(t_ccd_a[0])
            ccdwr0 = int(t_ccd_wr_a[0])
            cl0 = int(t_cl_a[0])
            cwl0 = int(t_cwl_a[0])
            tb0 = int(t_burst_a[0])
            ipc0 = int(ipc_a[0])
            ipc1 = ipc0 == 1
            # Power-of-two issue rates (1, 2, 4...) turn the pacing
            # divides into shifts; h >= 0 after the pace seeding, so
            # the arithmetic shift matches floor division exactly.
            ipc_sh = ipc0.bit_length() - 1 if ipc0 & (ipc0 - 1) == 0 else None
        else:
            ipc1 = False
            ipc_sh = None

        # --- 3. lockstep block loop ---------------------------------------
        # Every participant advances through exactly the block sequence it
        # would take alone (its own capacities, cursor and violation
        # truncations); segments concatenate per iteration so the scans
        # stay single numpy calls.
        while True:
            active = [p for p in range(num) if pos[p] < n]
            if not active:
                break
            num_act = len(active)
            all_act = num_act == num
            act_sel = None if all_act else np.asarray(active, dtype=np.int64)
            ov = [block_override[p] for p in active]
            has_ov = any(ov)
            if has_ov:
                for p in active:
                    block_override[p] = 0
            # Longest prefix with at most `capacity` pushes per queue:
            # constraints then predate the block.  The lockstep steady
            # state (shared cursor, shared caps or a truncate-all retry)
            # needs only two scalar searchsorted calls.
            starts_set = {pos[p] for p in active}
            if len(starts_set) == 1 and (
                (has_ov and ov[0] > 0 and ov.count(ov[0]) == num_act)
                or (not has_ov and caps_uniform)
            ):
                p0 = next(iter(starts_set))
                if has_ov:
                    blk = ov[0]
                else:
                    rb = int(reads_cum[p0 - 1]) if p0 else 0
                    wb = int(writes_cum[p0 - 1]) if p0 else 0
                    er = int(
                        reads_cum.searchsorted(rb + self._cap_r0, side="right")
                    )
                    ew = int(
                        writes_cum.searchsorted(wb + self._cap_w0, side="right")
                    )
                    blk = min(er, ew, n) - p0
                starts = [p0] * num_act
                blocks = [blk] * num_act
                uniform = True
            else:
                base_arr = np.asarray([pos[p] for p in active], dtype=np.int64)
                # One searchsorted per queue covers every participant
                # (the needle array need not be sorted); base 0 reads
                # cum[-1] harmlessly — masked out.
                reads_base = np.where(base_arr > 0, reads_cum[base_arr - 1], 0)
                writes_base = np.where(base_arr > 0, writes_cum[base_arr - 1], 0)
                cr = cap_r_a if all_act else cap_r_a[act_sel]
                cw = cap_w_a if all_act else cap_w_a[act_sel]
                end_r = reads_cum.searchsorted(reads_base + cr, side="right")
                end_w = writes_cum.searchsorted(writes_base + cw, side="right")
                seg_len = np.minimum(np.minimum(end_r, end_w), n) - base_arr
                if has_ov:
                    override = np.asarray(ov, dtype=np.int64)
                    seg_len = np.where(override > 0, override, seg_len)
                starts = base_arr.tolist()
                blocks = seg_len.tolist()
                # The truncate-all retry keeps equal-capacity grids in
                # perfect lockstep, so the uniform rectangle lane is the
                # steady state; the ragged lane only runs for mixed
                # queue capacities.
                uniform = (
                    starts.count(starts[0]) == num_act
                    and blocks.count(blocks[0]) == num_act
                )

            # Per-active parameter rows (identity while every config is
            # still active — the steady state).
            if all_act:
                ipc_act = ipc_a
                tccd_act = t_ccd_a
                tccdwr_act = t_ccd_wr_a
                tcl_act = t_cl_a
                tcwl_act = t_cwl_a
                tburst_act = t_burst_a
                pace_arr = np.asarray(pace_h, dtype=np.int64)
            else:
                ipc_act = ipc_a[act_sel]
                tccd_act = t_ccd_a[act_sel]
                tccdwr_act = t_ccd_wr_a[act_sel]
                tcl_act = t_cl_a[act_sel]
                tcwl_act = t_cwl_a[act_sel]
                tburst_act = t_burst_a[act_sel]
                pace_arr = np.asarray(
                    [pace_h[p] for p in active], dtype=np.int64
                )

            ends = [s + b for s, b in zip(starts, blocks)]
            if uniform:
                # ---- uniform lane: one (configs, block) rectangle --------
                # Same math as the ragged lane element-for-element, but
                # every per-segment construct (offset trick, segment
                # seeding, searchsorted partitions) collapses into 2D
                # slicing and axis-1 scans; the participant/block-local
                # coordinates of any flat element index are just
                # divmod(element, block).
                s0 = starts[0]
                e0 = ends[0]
                blk = blocks[0]
                total = num_act * blk
                gidx_blk = index[s0:e0]
                wr_blk = is_write[s0:e0]
                if all_act:
                    fb_c = flat_bank[:, s0:e0].ravel()
                    row_c = row[:, s0:e0].ravel()
                    gch_c = gchan[:, s0:e0].ravel()
                else:
                    fb_c = flat_bank[act_sel, s0:e0].ravel()
                    row_c = row[act_sel, s0:e0].ravel()
                    gch_c = gchan[act_sel, s0:e0].ravel()

                # Queue constraints g: consumed order statistics; the
                # block-local read/write positions are shared by rows.
                if wr_blk.any():
                    rd_local = (~wr_blk).nonzero()[0]
                    wr_local = wr_blk.nonzero()[0]
                    rd_contig = False
                else:
                    # Read-only block (the common fetch stream): the
                    # read positions are just 0..blk-1, so downstream
                    # column gathers become plain slices.
                    rd_local = index[:blk]
                    wr_local = index[:0]
                    rd_contig = True
                g2 = np.full((num_act, blk), _LOW, dtype=np.int64)
                for local, contig, pend2, pend_l, caps, pushed_l in (
                    (rd_local, rd_contig, pend2_r, pend_r, cap_r_l, pushed_r),
                    (wr_local, False, pend2_w, pend_w, cap_w_l, pushed_w),
                ):
                    count = local.size
                    if not count:
                        continue
                    if all_act and pend2 is not None:
                        skip0 = caps[0] - pushed_l[0]
                        if skip0 < 0:
                            skip0 = 0
                        same = True
                        for p in active:
                            skip = caps[p] - pushed_l[p]
                            if (skip if skip > 0 else 0) != skip0:
                                same = False
                                break
                        if same:
                            if count > skip0:
                                if contig:
                                    g2[:, skip0:count] = pend2[
                                        :, : count - skip0
                                    ]
                                else:
                                    g2[:, local[skip0:]] = pend2[
                                        :, : count - skip0
                                    ]
                            continue
                    for a_i, p in enumerate(active):
                        skip = caps[p] - pushed_l[p]
                        if skip < 0:
                            skip = 0
                        if count > skip:
                            g2[a_i, local[skip:]] = pend_l[p][: count - skip]

                # Front-end pacing: row-wise running max, no segment
                # offsets needed.
                if ipc1:
                    # One line per cycle: h = g - i and issue = i + hmax,
                    # skipping the (expensive) integer divides entirely.
                    h2 = g2 - gidx_blk
                elif ipc_sh is not None:
                    h2 = (g2 << ipc_sh) - gidx_blk
                else:
                    ipc_col = ipc_act[:, None]
                    h2 = ipc_col * g2 - gidx_blk
                np.maximum(h2[:, 0], pace_arr, out=h2[:, 0])
                hmax2 = np.maximum.accumulate(h2, axis=1)
                if ipc1:
                    issue2 = gidx_blk + hmax2
                elif ipc_sh is not None:
                    issue2 = (gidx_blk + hmax2) >> ipc_sh
                else:
                    issue2 = (gidx_blk + hmax2) // ipc_col
                issue = issue2.ravel()
            else:
                # ---- ragged lane: offset-concatenated segments -----------
                bounds = np.zeros(num_act + 1, dtype=np.int64)
                np.cumsum(seg_len, out=bounds[1:])
                total = int(bounds[-1])
                pae = np.repeat(np.arange(num_act, dtype=np.int64), seg_len)
                gidx = np.concatenate([index[s:e] for s, e in zip(starts, ends)])
                wr = is_write[gidx]
                fb_c = np.concatenate(
                    [flat_bank[p, s:e] for p, s, e in zip(active, starts, ends)]
                )
                row_c = np.concatenate(
                    [row[p, s:e] for p, s, e in zip(active, starts, ends)]
                )
                gch_c = np.concatenate(
                    [gchan[p, s:e] for p, s, e in zip(active, starts, ends)]
                )

                # Queue constraints g: consumed order statistics.
                g = np.full(total, _LOW, dtype=np.int64)
                wr_nz = wr.nonzero()[0]
                rd_nz = (~wr).nonzero()[0]
                r_bounds = np.searchsorted(rd_nz, bounds)
                w_bounds = np.searchsorted(wr_nz, bounds)
                for a_i, p in enumerate(active):
                    for nz, qb, pend, cap, pushed in (
                        (rd_nz, r_bounds, pend_r[p], cap_r_l[p], pushed_r[p]),
                        (wr_nz, w_bounds, pend_w[p], cap_w_l[p], pushed_w[p]),
                    ):
                        positions = nz[qb[a_i] : qb[a_i + 1]]
                        count = positions.size
                        if not count:
                            continue
                        skip = cap - pushed
                        if skip < 0:
                            skip = 0
                        if count > skip:
                            g[positions[skip:]] = pend[: count - skip]

                # Front-end pacing: per-config segmented running max.
                ipc_e = ipc_act[pae]
                h = ipc_e * g - gidx
                seg_starts = bounds[:-1]
                # Seeding each segment start with pace_h (always >= 0)
                # keeps segment values strictly above any carried maximum
                # from the previous segment under the +pae*_BIG offset.
                h[seg_starts] = np.maximum(h[seg_starts], pace_arr)
                seg_off = pae * _BIG
                hmax = np.maximum.accumulate(h + seg_off) - seg_off
                issue = (gidx + hmax) // ipc_e
                h_prev = np.empty(total, dtype=np.int64)
                h_prev[1:] = hmax[:-1]
                h_prev[seg_starts] = pace_arr
                stall = issue - (gidx + h_prev) // ipc_e

            # --- bank timing (globally grouped, streak scans) -------------
            grouping = fb_c.argsort(kind="stable")
            fb_s = fb_c[grouping]
            row_s = row_c[grouping]
            cyc_s = issue[grouping]
            if uniform:
                # Block-local coordinates and the write mask materialize
                # only when a consumer needs them: read-only blocks (the
                # common fetch stream) need neither, and the prefix commit
                # derives j_s only on a violation.
                j_s = None
                pae_s = None
                wr_s = (
                    np.broadcast_to(wr_blk, (num_act, blk)).ravel()[grouping]
                    if wr_local.size
                    else None
                )
            else:
                wr_s = wr[grouping]
                pae_s = pae[grouping]
            is_start = np.empty(total, dtype=bool)
            is_start[0] = True
            np.not_equal(fb_s[1:], fb_s[:-1], out=is_start[1:])
            group_starts = is_start.nonzero()[0]
            prev_row = np.empty(total, dtype=np.int64)
            prev_row[1:] = row_s[:-1]
            prev_row[group_starts] = open_row[fb_s[group_starts]]
            hit = row_s == prev_row
            not_hit = ~hit
            all_hits = not not_hit.any()
            if all_hits:
                # Runs coincide with bank groups: reuse their boundaries.
                run_start = is_start
            else:
                run_start = is_start | not_hit
                run_start[1:] |= not_hit[:-1]
            run_id = run_start.cumsum() - 1
            if uniform_timing:
                # ``delta is None`` encodes a constant ccd0 everywhere —
                # the exclusive cumsum collapses to a scaled ramp.
                delta = (
                    None
                    if wr_s is None or ccdwr0 == ccd0
                    else np.where(wr_s, ccdwr0, ccd0)
                )
            else:
                if pae_s is None:
                    pae_s = grouping // blk
                delta = (
                    tccd_act[pae_s]
                    if wr_s is None
                    else np.where(wr_s, tccdwr_act[pae_s], tccd_act[pae_s])
                )
            if delta is None:
                if self._ramp.size < total:
                    self._ramp = np.arange(total, dtype=np.int64)
                d_excl = self._ramp[:total] * ccd0
            else:
                d_excl = np.empty(total, dtype=np.int64)
                d_excl[0] = 0
                delta[:-1].cumsum(out=d_excl[1:])
            rid_off = run_id * _BIG
            streak_max = np.maximum.accumulate(cyc_s - d_excl + rid_off) - rid_off
            run_starts = group_starts if all_hits else run_start.nonzero()[0]
            # Provisional seeds as if every run opened at a group start
            # with a row hit; for bad (miss-carrying) groups the walker
            # overwrites the seed of *every* run it visits, so the
            # provisional values never survive where they are wrong.
            seeds = ready[fb_s[run_starts]] - d_excl[run_starts]
            act_updates: list[tuple[int, int, int]] = []
            if not all_hits:
                _resolve_streak_boundaries_grid(
                    fb_s,
                    cyc_s,
                    prev_row,
                    hit,
                    group_starts,
                    run_id,
                    run_starts,
                    d_excl,
                    delta,
                    streak_max,
                    ready,
                    act,
                    seeds,
                    act_updates,
                    # The walker needs only one participant id per bad
                    # group; deriving it from grouping//blk in Python
                    # beats materializing the whole pae_s array.
                    (grouping, blk) if pae_s is None else pae_s,
                    t_rcd_a if all_act else t_rcd_a[act_sel],
                    t_rp_a if all_act else t_rp_a[act_sel],
                    t_ras_a if all_act else t_ras_a[act_sel],
                    ccd0 if delta is None else None,
                )
            issue_bank = d_excl + np.maximum(seeds[run_id], streak_max)
            if uniform_timing:
                if wr_s is None or cwl0 == cl0:
                    data_start_s = issue_bank + cl0
                else:
                    data_start_s = issue_bank + np.where(wr_s, cwl0, cl0)
            else:
                data_start_s = issue_bank + (
                    tcl_act[pae_s]
                    if wr_s is None
                    else np.where(wr_s, tcwl_act[pae_s], tcl_act[pae_s])
                )

            # --- bus arbitration per (config, channel) --------------------
            data_start = np.empty(total, dtype=np.int64)
            data_start[grouping] = data_start_s
            chan_order = gch_c.argsort(kind="stable")
            chan_s = gch_c[chan_order]
            bus_in = data_start[chan_order]
            cstart = np.empty(total, dtype=bool)
            cstart[0] = True
            np.not_equal(chan_s[1:], chan_s[:-1], out=cstart[1:])
            chan_starts = cstart.nonzero()[0]
            seg_end = np.empty(chan_starts.size, dtype=np.int64)
            seg_end[:-1] = chan_starts[1:]
            seg_end[-1] = total
            if self._ramp.size < total:
                self._ramp = np.arange(total, dtype=np.int64)
            # The per-segment offset only needs distinct nondecreasing
            # values — the sorted channel ids themselves qualify, saving
            # a cumsum.
            seg_off = chan_s * _BIG
            if uniform_timing:
                # Uniform burst: measure elements against the *global*
                # ramp instead of a segment-local one — the segment base
                # (chan_start * tb0) cancels between the seeded ``elem``
                # and the final completion, so the per-segment ``within``
                # ramp (and its np.repeat) never materializes.
                ramp_tb = self._ramp[:total] * tb0
                elem = bus_in - ramp_tb
                elem[chan_starts] = np.maximum(
                    elem[chan_starts],
                    bus[chan_s[chan_starts]] - ramp_tb[chan_starts],
                )
                seg_max = np.maximum.accumulate(elem + seg_off) - seg_off
                completion_s = ramp_tb + tb0 + seg_max
            else:
                within = self._ramp[:total] - np.repeat(
                    chan_starts, seg_end - chan_starts
                )
                tb_e = tburst_act[
                    chan_order // blk if uniform else pae[chan_order]
                ]
                wtb = within * tb_e
                elem = bus_in - wtb
                elem[chan_starts] = np.maximum(
                    elem[chan_starts], bus[chan_s[chan_starts]]
                )
                seg_max = np.maximum.accumulate(elem + seg_off) - seg_off
                completion_s = wtb + tb_e + seg_max
            completion = np.empty(total, dtype=np.int64)
            completion[chan_order] = completion_s

            # --- verify the order-statistic speculation per config --------
            v_min = None
            if uniform:
                cut = blk
                completion2 = completion.reshape(num_act, blk)
                suspects = completion2.min(axis=1) < g2.max(axis=1)
                for a_i in suspects.nonzero()[0].tolist():
                    violation = blk
                    for local in (rd_local, wr_local):
                        if local.size < 2:
                            continue
                        run_min = np.minimum.accumulate(completion2[a_i, local])
                        bad = (run_min[:-1] < g2[a_i, local[1:]]).nonzero()[0]
                        if bad.size:
                            violation = min(
                                violation, int(local[int(bad[0]) + 1])
                            )
                    if violation < blk:
                        v_pos = s0 + violation
                        v_min = v_pos if v_min is None else min(v_min, v_pos)
                if v_min is not None:
                    # Every element value before the violation frontier is
                    # already exact: scans are prefix-causal per (config,
                    # bank, channel) — bank groups never cross configs, so
                    # even the walker's ACT chain ascends in position —
                    # and the clean prefix commits directly: no retry pass.
                    cut = v_min - s0
            else:
                # One reduceat pair replaces a per-participant min/max
                # sweep; segments are never empty (each block holds >= 1
                # line).
                comp_min = np.minimum.reduceat(completion, bounds[:-1])
                g_max = np.maximum.reduceat(g, bounds[:-1])
                for a_i in (comp_min < g_max).nonzero()[0].tolist():
                    lo, hi = int(bounds[a_i]), int(bounds[a_i + 1])
                    violation = hi - lo
                    for nz, qb in ((rd_nz, r_bounds), (wr_nz, w_bounds)):
                        positions = nz[qb[a_i] : qb[a_i + 1]]
                        if positions.size < 2:
                            continue
                        comp_q = completion[positions]
                        run_min = np.minimum.accumulate(comp_q)
                        bad = (run_min[:-1] < g[positions[1:]]).nonzero()[0]
                        if bad.size:
                            violation = min(
                                violation, int(positions[int(bad[0]) + 1]) - lo
                            )
                    if violation < hi - lo:
                        v_pos = starts[a_i] + violation
                        v_min = v_pos if v_min is None else min(v_min, v_pos)
                if v_min is not None:
                    # Retry the whole iteration with every segment cut at
                    # the violation frontier: block partitioning is
                    # refinement-independent (scans re-seed from committed
                    # state), so truncating a non-violating config is free
                    # — and keeping all configs advancing in lockstep
                    # preserves the shared passes instead of re-running
                    # stragglers one by one.
                    for a_i, p in enumerate(active):
                        trunc = v_min - starts[a_i]
                        block_override[p] = (
                            trunc if 0 < trunc < blocks[a_i] else blocks[a_i]
                        )
                    continue

            # --- commit (the verified span of every segment) ---------------
            if all_hits:
                cat_c = None  # every access a row hit: category 0 everywhere
            else:
                # hit -> 0, miss on a closed row -> 1, conflict -> 2,
                # as int8 arithmetic (cheaper than nested np.where).
                category_s = not_hit.view(np.int8) * (
                    (prev_row >= 0).view(np.int8) + np.int8(1)
                )
                cat_c = np.empty(total, dtype=np.int8)
                cat_c[grouping] = category_s
            if uniform and cut < blk:
                # Prefix state commit: each bank group / channel segment
                # advances to its last kept element (position < cut);
                # groups with nothing kept stay untouched.
                if j_s is None:
                    j_s = grouping % blk
                kept = (j_s < cut).nonzero()[0]
                gid_k = group_starts.searchsorted(kept, side="right") - 1
                lk = np.empty(kept.size, dtype=bool)
                lk[-1] = True
                np.not_equal(gid_k[:-1], gid_k[1:], out=lk[:-1])
                last_k = kept[lk]
                touched = fb_s[last_k]
                open_row[touched] = row_s[last_k]
                ready[touched] = issue_bank[last_k] + (
                    ccd0 if delta is None else delta[last_k]
                )
                kept_c = ((chan_order % blk) < cut).nonzero()[0]
                cid_k = chan_starts.searchsorted(kept_c, side="right") - 1
                lc = np.empty(kept_c.size, dtype=bool)
                lc[-1] = True
                np.not_equal(cid_k[:-1], cid_k[1:], out=lc[:-1])
                last_c = kept_c[lc]
                bus[chan_s[last_c]] = completion_s[last_c]
                for bank_index, position, value in act_updates:
                    if int(j_s[position]) < cut:
                        act[bank_index] = value
            else:
                last_pos = np.empty(group_starts.size, dtype=np.int64)
                last_pos[:-1] = group_starts[1:]
                last_pos[-1] = total
                last_pos -= 1
                touched = fb_s[group_starts]
                open_row[touched] = row_s[last_pos]
                ready[touched] = issue_bank[last_pos] + (
                    ccd0 if delta is None else delta[last_pos]
                )
                bus[chan_s[chan_starts]] = completion_s[seg_end - 1]
                for bank_index, _, value in act_updates:
                    act[bank_index] = value
            if uniform:
                ec = s0 + cut
                if all_act:
                    issue_all[:, s0:ec] = issue2[:, :cut]
                    comp_all[:, s0:ec] = completion2[:, :cut]
                    if cat_c is None:
                        cat_all[:, s0:ec] = 0
                    else:
                        cat_all[:, s0:ec] = cat_c.reshape(num_act, blk)[
                            :, :cut
                        ]
                else:
                    issue_all[act_sel, s0:ec] = issue2[:, :cut]
                    comp_all[act_sel, s0:ec] = completion2[:, :cut]
                    if cat_c is None:
                        cat_all[act_sel, s0:ec] = 0
                    else:
                        cat_all[act_sel, s0:ec] = cat_c.reshape(num_act, blk)[
                            :, :cut
                        ]
                hlast = hmax2[:, cut - 1].tolist()
                for a_i, p in enumerate(active):
                    pace_h[p] = hlast[a_i]
                    pos[p] = ec
                # Stall accounting, deferred past the verify so aborted
                # iterations never pay for it.
                h_prev2 = np.empty_like(hmax2)
                h_prev2[:, 1:] = hmax2[:, :-1]
                h_prev2[:, 0] = pace_arr
                if ipc1:
                    stall2 = hmax2 - h_prev2
                elif ipc_sh is not None:
                    stall2 = issue2 - ((gidx_blk + h_prev2) >> ipc_sh)
                else:
                    stall2 = issue2 - (gidx_blk + h_prev2) // ipc_col
                # Column gathers + row-wise sums replace the per-queue
                # searchsorted partitions and reduceat stall totals; when
                # every participant consumes the same queue prefix (equal
                # caps and occupancy — the steady state) the per-config
                # merge sorts collapse into one axis-1 sort.
                for is_w, local, contig in (
                    (False, rd_local, rd_contig),
                    (True, wr_local, False),
                ):
                    if contig:
                        count = blk if cut == blk else cut
                    else:
                        count = (
                            local.size
                            if cut == blk
                            else int(local.searchsorted(cut))
                        )
                    if not count:
                        continue
                    if contig:
                        # Contiguous read positions: plain slices, no
                        # column gathers.
                        comp_q = completion2[:, :count]
                        stall_q = stall2[:, :count].sum(axis=1).tolist()
                    else:
                        kept_local = (
                            local if count == local.size else local[:count]
                        )
                        comp_q = completion2[:, kept_local]
                        stall_q = stall2[:, kept_local].sum(axis=1).tolist()
                    pend_l = pend_w if is_w else pend_r
                    pushed_l = pushed_w if is_w else pushed_r
                    caps = cap_w_l if is_w else cap_r_l
                    pend2 = pend2_w if is_w else pend2_r
                    consumed = []
                    for p in active:
                        skip = caps[p] - pushed_l[p]
                        if skip < 0:
                            skip = 0
                        consumed.append(count - skip if count > skip else 0)
                    c0 = consumed[0]
                    if (
                        all_act
                        and pend2 is not None
                        and all(c == c0 for c in consumed)
                    ):
                        merged2 = np.concatenate([pend2[:, c0:], comp_q], axis=1)
                        merged2.sort(axis=1)
                        if is_w:
                            pend2_w = merged2
                        else:
                            pend2_r = merged2
                        rows = merged2
                    else:
                        if is_w:
                            pend2_w = None
                        else:
                            pend2_r = None
                        rows = []
                        for a_i, p in enumerate(active):
                            merged = np.concatenate(
                                [pend_l[p][consumed[a_i] :], comp_q[a_i]]
                            )
                            merged.sort()
                            rows.append(merged)
                    for a_i, p in enumerate(active):
                        pend_l[p] = rows[a_i]
                        pushed_l[p] += count
                        if is_w:
                            enq_w[p] += count
                            stall_w[p] += stall_q[a_i]
                        else:
                            enq_r[p] += count
                            stall_r[p] += stall_q[a_i]
            else:
                pend2_r = None
                pend2_w = None
                for a_i, p in enumerate(active):
                    lo, hi = int(bounds[a_i]), int(bounds[a_i + 1])
                    sl = slice(starts[a_i], ends[a_i])
                    issue_all[p, sl] = issue[lo:hi]
                    comp_all[p, sl] = completion[lo:hi]
                    cat_all[p, sl] = 0 if cat_c is None else cat_c[lo:hi]
                    pace_h[p] = int(hmax[hi - 1])
                # Per-(participant, queue) stall totals in two reduceat
                # calls; empty segments return a stray neighbour value —
                # masked off.
                stall_sums = []
                for nz, qb in ((rd_nz, r_bounds), (wr_nz, w_bounds)):
                    if nz.size:
                        clamped = np.minimum(qb[:-1], nz.size - 1)
                        sums = np.add.reduceat(stall[nz], clamped)
                        sums[qb[:-1] == qb[1:]] = 0
                    else:
                        sums = np.zeros(num_act, dtype=np.int64)
                    stall_sums.append(sums)
                for a_i, p in enumerate(active):
                    for q_i, (is_w, nz, qb) in enumerate(
                        ((False, rd_nz, r_bounds), (True, wr_nz, w_bounds))
                    ):
                        positions = nz[qb[a_i] : qb[a_i + 1]]
                        count = positions.size
                        if not count:
                            continue
                        cap = cap_w_l[p] if is_w else cap_r_l[p]
                        pushed = pushed_w[p] if is_w else pushed_r[p]
                        pend = pend_w[p] if is_w else pend_r[p]
                        skip = cap - pushed
                        if skip < 0:
                            skip = 0
                        consumed = count - skip if count > skip else 0
                        merged = np.sort(
                            np.concatenate(
                                [pend[consumed:], completion[positions]]
                            )
                        )
                        stall_sum = int(stall_sums[q_i][a_i])
                        if is_w:
                            pend_w[p] = merged
                            pushed_w[p] += count
                            enq_w[p] += count
                            stall_w[p] += stall_sum
                        else:
                            pend_r[p] = merged
                            pushed_r[p] += count
                            enq_r[p] += count
                            stall_r[p] += stall_sum
                    pos[p] = ends[a_i]

        # --- 4. per-config queue occupancy + outstanding ------------------
        reads_mask = ~is_write
        rd_pos = reads_mask.nonzero()[0]
        wr_pos = is_write.nonzero()[0]
        lines_read = rd_pos.size
        lines_written = n - lines_read
        for p, engine in enumerate(engines):
            for queue, pend, positions, pushed, enq, stalled in (
                (engine.read_queue, pend_r[p], rd_pos, pushed_r[p], enq_r[p], stall_r[p]),
                (
                    engine.write_queue,
                    pend_w[p],
                    wr_pos,
                    pushed_w[p],
                    enq_w[p],
                    stall_w[p],
                ),
            ):
                queue.pushed = pushed
                queue.total_enqueued += enq
                queue.total_stall_cycles += stalled
                if not positions.size:
                    continue
                if positions.size == n:
                    clocks = issue_all[p]
                    comps = comp_all[p]
                else:
                    clocks = issue_all[p, positions]
                    comps = comp_all[p, positions]
                prior = np.asarray(queue.outstanding, dtype=np.int64)
                if queue.peak_occupancy < queue.capacity:
                    # Admission stalls when the queue is full, so
                    # occupancy is capped at capacity; once the peak has
                    # reached it, the alive/retire walk cannot move it.
                    prior_s = np.sort(prior)
                    alive_prior = prior_s.size - np.searchsorted(
                        prior_s, clocks, side="right"
                    )
                    count = positions.size
                    retire_at = np.searchsorted(clocks, comps, side="left")
                    retired_cum = np.cumsum(
                        np.bincount(
                            np.minimum(retire_at, count), minlength=count + 1
                        )
                    )[:count]
                    occupancy = alive_prior + index[1 : count + 1] - retired_cum
                    peak = int(occupancy.max())
                    if peak > queue.peak_occupancy:
                        queue.peak_occupancy = peak
                final_clock = int(clocks[-1])
                keep_prior = prior[prior > final_clock]
                keep_new = comps[comps > final_clock]
                queue.outstanding = np.sort(
                    np.concatenate([keep_prior, keep_new])
                ).tolist()
                queue.pending = pend.tolist()

        # --- 5. statistics: global bincounts over (config, channel) -------
        total_chan = int(chan_off[-1])
        counts3 = np.bincount(
            (gchan * 3 + cat_all).ravel(), minlength=3 * total_chan
        ).reshape(total_chan, 3)
        if lines_read:
            gch_r = gchan if not lines_written else gchan[:, rd_pos]
            lat_r = (
                comp_all - issue_all
                if not lines_written
                else comp_all[:, rd_pos] - issue_all[:, rd_pos]
            )
            reads_pc = np.bincount(gch_r.ravel(), minlength=total_chan)
            # Weighted bincount accumulates in float64 — exact while the
            # per-channel latency sum stays below 2**53 cycles.
            lat_pc = np.bincount(
                gch_r.ravel(), weights=lat_r.ravel(), minlength=total_chan
            )
        else:
            reads_pc = np.zeros(total_chan, dtype=np.int64)
            lat_pc = reads_pc
        if lines_written:
            writes_pc = np.bincount(gchan[:, wr_pos].ravel(), minlength=total_chan)
        else:
            writes_pc = np.zeros(total_chan, dtype=np.int64)

        # --- 6. write back per-config state + build results ---------------
        counts3_l = counts3.tolist()
        reads_l = reads_pc.tolist()
        writes_l = writes_pc.tolist()
        lat_l = lat_pc.tolist()
        bus_l = bus.tolist()
        results: list[BatchResult] = []
        for p, engine in enumerate(engines):
            base = int(chan_off[p])
            for local in range(engine.channels):
                gch = base + local
                reads = reads_l[gch]
                writes = writes_l[gch]
                num_lines = reads + writes
                if not num_lines:
                    continue
                first_cycle = 0
                if engine._s_first[local] is None:
                    first_cycle = int(
                        issue_all[p, int(np.argmax(chan[p] == local))]
                    )
                hits3 = counts3_l[gch]
                # bus[gch] is the channel's last completion this call (the
                # per-channel completion chain is monotone), hence the max.
                engine._accumulate_channel(
                    local,
                    reads,
                    writes,
                    hits3[0],
                    hits3[1],
                    hits3[2],
                    int(lat_l[gch]),
                    bus_l[gch],
                    first_cycle,
                    num_lines,
                )
            engine._open_row = open_row[bank_off[p] : bank_off[p + 1]].tolist()
            engine._ready = ready[bank_off[p] : bank_off[p + 1]].tolist()
            engine._act = act[bank_off[p] : bank_off[p + 1]].tolist()
            engine._bus_ready = bus[chan_off[p] : chan_off[p + 1]].tolist()
            engine._issue_clock = int(issue_all[p, -1])
            if lines_read:
                ready_cycle = max(clock0s[p], int(comp_all[p, rd_pos].max()))
            else:
                ready_cycle = clock0s[p]
            results.append(
                BatchResult(
                    ready_cycle=ready_cycle,
                    lines_read=lines_read,
                    lines_written=lines_written,
                )
            )
        return results


def _resolve_streak_boundaries_grid(
    fb_s: np.ndarray,
    cyc_s: np.ndarray,
    prev_row: np.ndarray,
    hit: np.ndarray,
    group_starts: np.ndarray,
    run_id: np.ndarray,
    run_starts: np.ndarray,
    d_excl: np.ndarray,
    delta: np.ndarray | None,
    streak_max: np.ndarray,
    ready: np.ndarray,
    act: np.ndarray,
    seeds: np.ndarray,
    act_updates: list[tuple[int, int, int]],
    pae_s: np.ndarray | tuple[np.ndarray, int],
    t_rcd_a: np.ndarray,
    t_rp_a: np.ndarray,
    t_ras_a: np.ndarray,
    ccd_const: int | None = None,
) -> None:
    """``BatchedEngine._resolve_streak_boundaries`` with per-config timing.

    Bank groups never cross configs (flat bank ids are offset per
    config), so each bad group resolves with its owner's tRCD/tRP/tRAS,
    looked up through ``pae_s``/the per-active timing arrays.

    ``ccd_const`` (a read-only block under uniform timing) declares the
    CAS gap constant: ``delta`` may then be ``None`` and the exclusive
    cumsum collapses to ``position * ccd_const`` — Python arithmetic in
    place of per-run array indexing, the hot path of this walk.

    ``pae_s`` is either the per-element participant array, or a
    ``(grouping, blk)`` pair from the uniform lane: the participant of
    a group is then ``grouping[start] // blk``, computed per bad group
    instead of for the whole block.
    """
    if isinstance(pae_s, tuple):
        grouping_a, blk_c = pae_s
        pae_s = None
    else:
        grouping_a = blk_c = None
    block = fb_s.size
    group_bounds = np.empty(group_starts.size + 1, dtype=np.int64)
    group_bounds[:-1] = group_starts
    group_bounds[-1] = block
    run_bounds = np.empty(run_starts.size + 1, dtype=np.int64)
    run_bounds[:-1] = run_starts
    run_bounds[-1] = block
    # Misses are sorted by position, so their (searchsorted) group ids
    # dedup with one neighbour comparison — no cumsum/unique needed.
    miss_groups = np.searchsorted(group_bounds, (~hit).nonzero()[0], side="right") - 1
    keep = np.empty(miss_groups.size, dtype=bool)
    keep[0] = True
    np.not_equal(miss_groups[1:], miss_groups[:-1], out=keep[1:])
    run_bounds_l = run_bounds.tolist()
    const = ccd_const is not None
    for group in miss_groups[keep].tolist():
        start = int(group_bounds[group])
        end = int(group_bounds[group + 1])
        participant = (
            int(grouping_a[start]) // blk_c
            if pae_s is None
            else int(pae_s[start])
        )
        t_rcd = int(t_rcd_a[participant])
        t_rp = int(t_rp_a[participant])
        t_ras = int(t_ras_a[participant])
        bank_index = int(fb_s[start])
        ready_c = int(ready[bank_index])
        act_c = int(act[bank_index])
        position = start
        # Runs tile a group contiguously, so the run index just
        # increments — no per-run run_id lookup.
        run = int(run_id[start])
        while position < end:
            run_end = run_bounds_l[run + 1]
            if hit[position]:
                d_pos = position * ccd_const if const else int(d_excl[position])
                seed = ready_c - d_pos
                seeds[run] = seed
                last = run_end - 1
                if const:
                    issue_last = last * ccd_const + max(
                        seed, int(streak_max[last])
                    )
                    ready_c = issue_last + ccd_const
                else:
                    issue_last = int(d_excl[last]) + max(
                        seed, int(streak_max[last])
                    )
                    ready_c = issue_last + int(delta[last])
            else:
                demand = int(cyc_s[position])
                bank_start = demand if demand > ready_c else ready_c
                if int(prev_row[position]) < 0:  # row miss (bank idle)
                    issue_b = bank_start + t_rcd
                    act_c = bank_start
                else:  # row conflict: PRE (after tRAS), ACT, CAS
                    pre = act_c + t_ras
                    if bank_start > pre:
                        pre = bank_start
                    act_c = pre + t_rp
                    issue_b = act_c + t_rcd
                if const:
                    seeds[run] = issue_b - position * ccd_const
                    ready_c = issue_b + ccd_const
                else:
                    seeds[run] = issue_b - int(d_excl[position])
                    ready_c = issue_b + int(delta[position])
                # One entry per miss (position-ascending within a group:
                # banks never cross configs) so a violation frontier can
                # commit the prefix's ACT chain exactly.
                act_updates.append((bank_index, position, act_c))
            position = run_end
            run += 1


def resolve_plan_grid(
    plan: "ComputePlan",
    configs: Sequence[SystemConfig],
    line_batches: list[list[LineRequestBatch]],
) -> list["RunResult"]:
    """Grid stall resolution: walk one plan against many DRAM configs.

    The config-axis twin of :func:`repro.core.simulator.resolve_plan`:
    one :class:`GridBatchedEngine` replays the double-buffer fold walk
    with per-config clock vectors, issuing each shared line batch into
    every datapath at once.  ``line_batches`` carries the shared decoded
    streams (outer list per layer, aligned with ``plan.computes``).
    Results are bit-identical to resolving each config alone.
    """
    from repro.core.simulator import LayerResult, RunResult
    from repro.memory.double_buffer import MemoryTimeline

    configs = list(configs)
    engine = GridBatchedEngine(configs)
    num = len(configs)
    results = [
        RunResult(run_name=config.run.run_name, topology_name=plan.topology_name)
        for config in configs
    ]
    clocks = [0] * num
    for layer_index, compute in enumerate(plan.computes):
        fold_specs = compute.fold_specs
        stalls_before = engine.backpressure_stalls()
        if not fold_specs:
            timelines = [MemoryTimeline(0, 0, 0, 0) for _ in range(num)]
        else:
            batches = line_batches[layer_index]
            if len(batches) != len(fold_specs):
                raise MemoryModelError(
                    f"{len(batches)} line batches for {len(fold_specs)} folds"
                )
            # The double-buffer recurrence of DoubleBufferMemory.run with
            # (clock, ready, stall) as per-config vectors.
            ready = [r.ready_cycle for r in engine.process_batch(batches[0], clocks)]
            cold = [rv - ck for rv, ck in zip(ready, clocks)]
            clock_l = list(ready)
            stall_tot = [0] * num
            compute_total = 0
            for index, spec in enumerate(fold_specs):
                compute_start = [
                    cl if cl > rv else rv for cl, rv in zip(clock_l, ready)
                ]
                for c in range(num):
                    stall_tot[c] += compute_start[c] - clock_l[c]
                if index + 1 < len(fold_specs):
                    ready = [
                        r.ready_cycle
                        for r in engine.process_batch(batches[index + 1], compute_start)
                    ]
                compute_total += spec.cycles
                clock_l = [cs + spec.cycles for cs in compute_start]
            timelines = [
                MemoryTimeline(
                    compute_cycles=compute_total,
                    total_cycles=clock_l[c] - clocks[c],
                    stall_cycles=stall_tot[c],
                    cold_start_cycles=cold[c],
                )
                for c in range(num)
            ]
        stalls_after = engine.backpressure_stalls()
        for c in range(num):
            clocks[c] += timelines[c].total_cycles
            results[c].layers.append(
                LayerResult(
                    layer_name=compute.layer_name,
                    compute=compute,
                    timeline=timelines[c],
                    backpressure_stall_cycles=stalls_after[c] - stalls_before[c],
                    drain_cycles=max(0, engine.engines[c].drain() - clocks[c]),
                )
            )
    for c in range(num):
        results[c].dram_stats = engine.engines[c].aggregate_stats()
    return results


__all__ = ["GridBatchedEngine", "resolve_plan_grid"]
