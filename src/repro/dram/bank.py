"""Per-bank DRAM state machine (open-page policy).

Each bank tracks its open row, when it can next accept a column command,
and when the current row's tRAS window expires.  An access classifies as

* **hit** — the target row is already open: pay CAS latency only,
* **miss** (empty) — no row open: ACT then CAS,
* **conflict** — another row open: PRE (after tRAS), ACT, then CAS.

The returned ``data_start`` still has to win the shared channel data bus
(see :mod:`repro.dram.dram_sim`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dram.timing import DramTiming

HIT = "hit"
MISS = "miss"
CONFLICT = "conflict"


@dataclass
class BankState:
    """Mutable timing state of one DRAM bank."""

    open_row: int | None = None
    ready_cycle: int = 0  # earliest next column command
    activate_cycle: int = field(default=-(10**9))  # last ACT time (for tRAS)

    def access(
        self, cycle: int, row: int, is_write: bool, timing: DramTiming
    ) -> tuple[int, str]:
        """Perform a line access; returns (data_available_cycle, category).

        ``cycle`` is when the controller presents the command; the bank
        may defer it until it is ready.
        """
        start = max(cycle, self.ready_cycle)
        cas = timing.t_cwl if is_write else timing.t_cl

        if self.open_row == row:
            category = HIT
            issue = start
        elif self.open_row is None:
            category = MISS
            issue = start + timing.t_rcd
            self.activate_cycle = start
        else:
            category = CONFLICT
            # Precharge may not begin before tRAS after the previous ACT.
            pre_start = max(start, self.activate_cycle + timing.t_ras)
            act = pre_start + timing.t_rp
            issue = act + timing.t_rcd
            self.activate_cycle = act

        self.open_row = row
        data_start = issue + cas
        # Next column command to this bank must respect tCCD; a write
        # additionally blocks the bank for write recovery.
        recovery = timing.t_wr if is_write else 0
        self.ready_cycle = issue + timing.t_ccd + recovery
        return data_start, category
