"""Pytest bootstrap: make ``src/`` importable without an installed wheel.

The environment used for reproduction has no network access, so
``pip install -e .`` cannot fetch the ``wheel`` build dependency.  This
shim keeps ``pytest tests/`` and ``pytest benchmarks/`` working from a
plain checkout; with a proper editable install it is a harmless no-op.
"""

import sys
from pathlib import Path

_SRC = str(Path(__file__).parent / "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)
