"""Property-based tests (hypothesis) on core invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.compute_sim import ComputeSimulator
from repro.core.dataflow import (
    Dataflow,
    analytical_runtime,
    map_gemm,
    mapping_efficiency,
    spatial_runtime,
)
from repro.core.operand_matrix import operand_matrices
from repro.core.systolic import TraceEngine
from repro.dram.address import LINE_BYTES, AddressMapper
from repro.dram.dram_sim import RamulatorLite
from repro.layout.spec import LayoutSpec, TensorView
from repro.memory.request_queue import RequestQueue
from repro.multicore.noc import nonuniform_shares
from repro.sparsity.formats import blocked_ellpack_storage, dense_storage
from repro.sparsity.pattern import layerwise_pattern, rowwise_pattern
from repro.topology.layer import GemmLayer, GemmShape, SparsityRatio
from repro.utils.rng import make_rng

dims = st.integers(min_value=1, max_value=40)
small_arrays = st.integers(min_value=1, max_value=12)
dataflows = st.sampled_from(list(Dataflow))


class TestRuntimeEquationProperties:
    @given(m=dims, n=dims, k=dims, r=small_arrays, c=small_arrays, df=dataflows)
    @settings(max_examples=60, deadline=None)
    def test_trace_length_equals_equation(self, m, n, k, r, c, df):
        """The cycle-accurate trace and Eq. 1 must always agree."""
        layer = GemmLayer("g", m=m, n=n, k=k)
        engine = TraceEngine(operand_matrices(layer), df, r, c)
        assert engine.total_cycles == analytical_runtime(layer.to_gemm(), df, r, c)

    @given(m=dims, n=dims, k=dims, r=small_arrays, c=small_arrays, df=dataflows)
    @settings(max_examples=60, deadline=None)
    def test_runtime_lower_bound(self, m, n, k, r, c, df):
        """Runtime is at least MACs / PEs (work conservation)."""
        shape = GemmShape(m, n, k)
        runtime = analytical_runtime(shape, df, r, c)
        assert runtime * r * c >= shape.macs

    @given(m=dims, n=dims, k=dims, df=dataflows,
           pr=st.integers(1, 4), pc=st.integers(1, 4))
    @settings(max_examples=60, deadline=None)
    def test_partitioning_never_hurts(self, m, n, k, df, pr, pc):
        mapping = map_gemm(GemmShape(m, n, k), df)
        single = spatial_runtime(mapping, 8, 8, 1, 1)
        multi = spatial_runtime(mapping, 8, 8, pr, pc)
        assert multi <= single

    @given(m=dims, n=dims, k=dims, r=small_arrays, c=small_arrays, df=dataflows)
    @settings(max_examples=60, deadline=None)
    def test_mapping_efficiency_in_unit_interval(self, m, n, k, r, c, df):
        mapping = map_gemm(GemmShape(m, n, k), df)
        eff = mapping_efficiency(mapping, r, c)
        assert 0 < eff <= 1


class TestSramCountProperties:
    @given(m=dims, n=dims, k=dims, df=dataflows)
    @settings(max_examples=40, deadline=None)
    def test_counts_match_traces(self, m, n, k, df):
        """Closed-form SRAM counts == summed trace counts, always."""
        layer = GemmLayer("g", m=m, n=n, k=k)
        engine = TraceEngine(operand_matrices(layer), df, 4, 4)
        result = ComputeSimulator(4, 4, df).simulate_layer(layer, with_fold_specs=False)
        traces = list(engine.fold_traces())
        assert sum(t.ifmap_reads for t in traces) == result.ifmap_sram_reads
        assert sum(t.filter_reads for t in traces) == result.filter_sram_reads
        assert sum(t.ofmap_writes for t in traces) == result.ofmap_sram_writes

    @given(m=dims, n=dims, k=dims, df=dataflows)
    @settings(max_examples=40, deadline=None)
    def test_stationary_operand_read_exactly_once(self, m, n, k, df):
        layer = GemmLayer("g", m=m, n=n, k=k)
        result = ComputeSimulator(4, 4, df).simulate_layer(layer, with_fold_specs=False)
        shape = layer.to_gemm()
        if df is Dataflow.WEIGHT_STATIONARY:
            assert result.filter_sram_reads == shape.filter_words
        elif df is Dataflow.INPUT_STATIONARY:
            assert result.ifmap_sram_reads == shape.ifmap_words
        else:
            assert result.ofmap_sram_writes == shape.ofmap_words


class TestDramProperties:
    @given(
        addresses=st.lists(st.integers(0, 1 << 24), min_size=1, max_size=60),
        channels=st.integers(1, 4),
    )
    @settings(max_examples=40, deadline=None)
    def test_completion_after_submission(self, addresses, channels):
        dram = RamulatorLite(technology="ddr4", channels=channels)
        cycle = 0
        for addr in addresses:
            done = dram.submit(addr, cycle)
            assert done > cycle
            cycle += 1

    @given(
        addresses=st.lists(st.integers(0, 1 << 24), min_size=1, max_size=60),
    )
    @settings(max_examples=40, deadline=None)
    def test_category_partition(self, addresses):
        dram = RamulatorLite(technology="ddr4", channels=2)
        for i, addr in enumerate(addresses):
            dram.submit(addr, i * 2)
        stats = dram.aggregate_stats()
        assert stats.row_hits + stats.row_misses + stats.row_conflicts == len(addresses)

    @given(address=st.integers(0, 1 << 40), channels=st.integers(1, 8),
           banks=st.integers(1, 16))
    @settings(max_examples=60, deadline=None)
    def test_address_decode_in_bounds(self, address, channels, banks):
        mapper = AddressMapper(
            "ro_ba_ra_co_ch", channels, 1, banks, 8192, 1 << 29
        )
        decoded = mapper.decode(address)
        assert 0 <= decoded.channel < channels
        assert 0 <= decoded.bank < banks
        assert 0 <= decoded.column < mapper.columns
        assert 0 <= decoded.row < mapper.rows

    @given(address=st.integers(0, 1 << 30))
    @settings(max_examples=40, deadline=None)
    def test_same_line_same_decode(self, address):
        mapper = AddressMapper("ro_ba_ra_co_ch", 4, 1, 8, 4096, 1 << 28)
        base = (address // LINE_BYTES) * LINE_BYTES
        assert mapper.decode(base) == mapper.decode(base + LINE_BYTES - 1)


class TestRequestQueueProperties:
    @given(
        durations=st.lists(st.integers(1, 500), min_size=1, max_size=50),
        capacity=st.integers(1, 8),
    )
    @settings(max_examples=40, deadline=None)
    def test_occupancy_never_exceeds_capacity(self, durations, capacity):
        queue = RequestQueue(capacity)
        cycle = 0
        for duration in durations:
            # Proper protocol: resolve the issue slot first, then compute
            # the completion from the actual issue time (as the DRAM
            # backend does).
            issue = queue.earliest_issue(cycle)
            actual = queue.push(cycle, issue + duration)
            assert actual == issue
            assert queue.occupancy_at(actual) <= capacity
            cycle = actual


class TestSparsityProperties:
    ratios = st.tuples(st.integers(0, 8), st.integers(1, 8)).filter(lambda t: t[0] <= t[1])

    @given(rows=dims, cols=dims, ratio=ratios)
    @settings(max_examples=60, deadline=None)
    def test_compressed_never_bigger_than_dense_plus_metadata(self, rows, cols, ratio):
        n, m = ratio
        pattern = layerwise_pattern(rows, cols, SparsityRatio(n, m))
        compressed = blocked_ellpack_storage(pattern)
        dense = dense_storage(rows, cols)
        # Data alone never exceeds dense; metadata is bounded by
        # log2(M)/wordbits of the data.
        assert compressed.data_bits <= dense.data_bits
        assert compressed.metadata_bits <= pattern.total_nnz * 16

    @given(rows=st.integers(1, 50), blocks=st.integers(1, 8),
           block=st.integers(2, 16), seed=st.integers(0, 1000))
    @settings(max_examples=60, deadline=None)
    def test_rowwise_respects_half_cap(self, rows, blocks, block, seed):
        cols = blocks * block  # whole blocks: the N <= M/2 bound is exact
        pattern = rowwise_pattern(rows, cols, block, make_rng(seed))
        assert int(pattern.nnz_per_block.max()) <= block // 2
        assert pattern.density <= 0.5 + 1e-9

    @given(rows=dims, cols=dims, ratio=ratios)
    @settings(max_examples=40, deadline=None)
    def test_mask_agrees_with_counts(self, rows, cols, ratio):
        n, m = ratio
        pattern = layerwise_pattern(rows, cols, SparsityRatio(n, m))
        assert int(pattern.to_mask().sum()) == pattern.total_nnz


class TestLayoutProperties:
    @given(
        c=st.integers(1, 32),
        h=st.integers(1, 16),
        w=st.integers(1, 16),
        banks=st.sampled_from([1, 2, 4, 8]),
    )
    @settings(max_examples=60, deadline=None)
    def test_locate_is_injective_per_tensor(self, c, h, w, banks):
        """(line, col) uniquely identifies an element: no two elements
        share a storage slot."""
        view = TensorView(c_dim=c, h_dim=h, w_dim=w)
        spec = LayoutSpec.default_for(view, num_banks=banks, bandwidth_per_bank=8)
        offsets = np.arange(view.num_elements)
        line, col, _ = spec.locate(offsets)
        slots = set(zip(line.tolist(), col.tolist()))
        assert len(slots) == view.num_elements

    @given(
        c=st.integers(1, 32),
        h=st.integers(1, 16),
        w=st.integers(1, 16),
    )
    @settings(max_examples=60, deadline=None)
    def test_bank_within_range(self, c, h, w):
        view = TensorView(c_dim=c, h_dim=h, w_dim=w)
        spec = LayoutSpec.default_for(view, num_banks=4, bandwidth_per_bank=8)
        _, _, bank = spec.locate(np.arange(view.num_elements))
        assert int(bank.max()) < 4


class TestNocProperties:
    @given(
        lats=st.lists(st.integers(0, 1000), min_size=1, max_size=16),
        work=st.integers(1, 100_000),
    )
    @settings(max_examples=60, deadline=None)
    def test_shares_valid_distribution(self, lats, work):
        shares = nonuniform_shares(lats, work)
        assert all(s >= 0 for s in shares)
        assert sum(shares) == 1 or abs(sum(shares) - 1) < 1e-9
