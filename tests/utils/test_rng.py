"""Unit tests for deterministic RNG helpers."""

from repro.utils.rng import DEFAULT_SEED, derive_rng, make_rng


class TestMakeRng:
    def test_same_seed_same_stream(self):
        a = make_rng(42).integers(0, 1000, size=10)
        b = make_rng(42).integers(0, 1000, size=10)
        assert (a == b).all()

    def test_different_seeds_differ(self):
        a = make_rng(1).integers(0, 1_000_000, size=10)
        b = make_rng(2).integers(0, 1_000_000, size=10)
        assert (a != b).any()

    def test_none_uses_default_seed(self):
        a = make_rng(None).integers(0, 1000, size=5)
        b = make_rng(DEFAULT_SEED).integers(0, 1000, size=5)
        assert (a == b).all()


class TestDeriveRng:
    def test_streams_are_independent(self):
        parent = make_rng(7)
        s0 = derive_rng(parent, 0).integers(0, 1_000_000, size=10)
        s1 = derive_rng(parent, 1).integers(0, 1_000_000, size=10)
        assert (s0 != s1).any()

    def test_streams_are_reproducible(self):
        a = derive_rng(make_rng(7), 3).integers(0, 1000, size=5)
        b = derive_rng(make_rng(7), 3).integers(0, 1000, size=5)
        assert (a == b).all()

    def test_order_independent(self):
        parent = make_rng(7)
        _ = derive_rng(parent, 0)
        late = derive_rng(parent, 5).integers(0, 1000, size=5)
        fresh = derive_rng(make_rng(7), 5).integers(0, 1000, size=5)
        assert (late == fresh).all()
