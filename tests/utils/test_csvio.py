"""Unit tests for repro.utils.csvio."""

import pytest

from repro.errors import ReportError, TopologyError
from repro.utils.csvio import read_csv_rows, write_csv, write_dict_rows


class TestReadCsvRows:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "t.csv"
        write_csv(path, ["a", "b"], [[1, 2], [3, 4]])
        rows = read_csv_rows(path)
        assert rows == [["a", "b"], ["1", "2"], ["3", "4"]]

    def test_skips_blank_lines(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("a,b\n\n1,2\n  \n")
        assert len(read_csv_rows(path)) == 2

    def test_skips_comment_lines(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("# header comment\na,b\n1,2\n")
        assert read_csv_rows(path)[0] == ["a", "b"]

    def test_strips_whitespace(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text(" a , b \n")
        assert read_csv_rows(path) == [["a", "b"]]

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(TopologyError):
            read_csv_rows(tmp_path / "nope.csv")


class TestWriteCsv:
    def test_creates_parent_dirs(self, tmp_path):
        path = tmp_path / "deep" / "dir" / "t.csv"
        write_csv(path, ["x"], [[1]])
        assert path.exists()

    def test_rejects_ragged_rows(self, tmp_path):
        with pytest.raises(ReportError):
            write_csv(tmp_path / "t.csv", ["a", "b"], [[1]])


class TestWriteDictRows:
    def test_header_from_first_row(self, tmp_path):
        path = write_dict_rows(tmp_path / "t.csv", [{"x": 1, "y": 2}])
        assert read_csv_rows(path)[0] == ["x", "y"]

    def test_explicit_field_order(self, tmp_path):
        path = write_dict_rows(
            tmp_path / "t.csv", [{"x": 1, "y": 2}], field_order=["y", "x"]
        )
        assert read_csv_rows(path)[0] == ["y", "x"]

    def test_missing_keys_become_empty(self, tmp_path):
        path = write_dict_rows(
            tmp_path / "t.csv", [{"x": 1}], field_order=["x", "z"]
        )
        assert read_csv_rows(path)[1] == ["1", ""]

    def test_empty_rows_rejected(self, tmp_path):
        with pytest.raises(ReportError):
            write_dict_rows(tmp_path / "t.csv", [])
