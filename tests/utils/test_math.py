"""Unit tests for repro.utils.math."""

import pytest

from repro.utils.math import (
    ceil_div,
    clamp,
    ilog2_ceil,
    is_power_of_two,
    next_power_of_two,
    prod,
)


class TestCeilDiv:
    def test_exact_division(self):
        assert ceil_div(8, 4) == 2

    def test_rounds_up(self):
        assert ceil_div(9, 4) == 3

    def test_zero_numerator(self):
        assert ceil_div(0, 5) == 0

    def test_one_denominator(self):
        assert ceil_div(7, 1) == 7

    def test_numerator_smaller_than_denominator(self):
        assert ceil_div(1, 100) == 1

    def test_negative_numerator_rejected(self):
        with pytest.raises(ValueError):
            ceil_div(-1, 4)

    def test_zero_denominator_rejected(self):
        with pytest.raises(ValueError):
            ceil_div(4, 0)

    def test_negative_denominator_rejected(self):
        with pytest.raises(ValueError):
            ceil_div(4, -2)


class TestProd:
    def test_empty_is_one(self):
        assert prod([]) == 1

    def test_single(self):
        assert prod([7]) == 7

    def test_many(self):
        assert prod([2, 3, 4]) == 24

    def test_with_zero(self):
        assert prod([5, 0, 3]) == 0


class TestClamp:
    def test_inside_range(self):
        assert clamp(5, 0, 10) == 5

    def test_below(self):
        assert clamp(-3, 0, 10) == 0

    def test_above(self):
        assert clamp(42, 0, 10) == 10

    def test_degenerate_range(self):
        assert clamp(5, 7, 7) == 7

    def test_empty_range_rejected(self):
        with pytest.raises(ValueError):
            clamp(5, 10, 0)


class TestPowersOfTwo:
    @pytest.mark.parametrize("value", [1, 2, 4, 8, 1024, 1 << 30])
    def test_is_power_of_two_true(self, value):
        assert is_power_of_two(value)

    @pytest.mark.parametrize("value", [0, -1, 3, 6, 12, 1000])
    def test_is_power_of_two_false(self, value):
        assert not is_power_of_two(value)

    @pytest.mark.parametrize(
        "value,expected", [(1, 1), (2, 2), (3, 4), (5, 8), (17, 32), (1024, 1024)]
    )
    def test_next_power_of_two(self, value, expected):
        assert next_power_of_two(value) == expected

    def test_next_power_of_two_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            next_power_of_two(0)


class TestIlog2Ceil:
    @pytest.mark.parametrize(
        "value,expected", [(1, 0), (2, 1), (3, 2), (4, 2), (5, 3), (8, 3), (9, 4)]
    )
    def test_values(self, value, expected):
        assert ilog2_ceil(value) == expected

    def test_block_size_four_needs_two_bits(self):
        # Figure 6's example: metadata bits = log2(block size) = log2(4).
        assert ilog2_ceil(4) == 2

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            ilog2_ceil(0)
