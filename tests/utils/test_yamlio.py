"""Unit tests for the minimal YAML emitter/parser."""

import pytest

from repro.utils.yamlio import dump_yaml, parse_simple_yaml, write_yaml


class TestDumpYaml:
    def test_flat_mapping(self):
        assert dump_yaml({"a": 1, "b": "x"}) == "a: 1\nb: x\n"

    def test_nested_mapping(self):
        text = dump_yaml({"outer": {"inner": 2}})
        assert "outer:" in text
        assert "  inner: 2" in text

    def test_list_of_scalars(self):
        text = dump_yaml({"items": [1, 2]})
        assert "- 1" in text and "- 2" in text

    def test_booleans_and_null(self):
        text = dump_yaml({"t": True, "f": False, "n": None})
        assert "t: true" in text and "f: false" in text and "n: null" in text

    def test_quotes_special_chars(self):
        text = dump_yaml({"k": "a: b"})
        assert 'k: "a: b"' in text

    def test_empty_mapping(self):
        assert dump_yaml({}) == "{}\n"


class TestRoundTrip:
    @pytest.mark.parametrize(
        "data",
        [
            {"a": 1},
            {"a": {"b": {"c": 3}}},
            {"a": [1, 2, 3]},
            {"a": [{"x": 1, "y": 2}, {"x": 3, "y": 4}]},
            {"a": 1.5, "b": "text", "c": True, "d": None},
            {"mixed": {"list": [1, 2], "scalar": "v"}},
        ],
    )
    def test_round_trip(self, data):
        assert parse_simple_yaml(dump_yaml(data)) == data

    def test_list_item_with_nested_mapping(self):
        data = {"local": [{"name": "pe", "attributes": {"width": 16}}]}
        assert parse_simple_yaml(dump_yaml(data)) == data

    def test_accelergy_like_structure(self):
        data = {
            "architecture": {
                "version": "0.4",
                "subtree": [
                    {
                        "name": "system",
                        "local": [
                            {"name": "sram", "class": "smartbuffer", "attributes": {"depth": 1024}},
                        ],
                    }
                ],
            }
        }
        assert parse_simple_yaml(dump_yaml(data)) == data


class TestWriteYaml:
    def test_writes_file(self, tmp_path):
        path = write_yaml(tmp_path / "a" / "b.yaml", {"k": "v"})
        assert path.read_text() == "k: v\n"

    def test_parse_empty(self):
        assert parse_simple_yaml("") == {}
        assert parse_simple_yaml("{}") == {}

    def test_parse_comments_skipped(self):
        assert parse_simple_yaml("# comment\na: 1\n") == {"a": 1}
