"""Unit tests for the double-buffer stall model and ideal backend."""

import pytest

from repro.core.compute_sim import FoldSpec, TileFetch
from repro.errors import MemoryModelError
from repro.memory.double_buffer import (
    DoubleBufferMemory,
    IdealBandwidthBackend,
    MemoryTimeline,
)


def _spec(index, cycles=100, fetch_words=50, write_words=0):
    fetches = []
    if fetch_words:
        fetches.append(TileFetch("ifmap", 0, fetch_words))
    if write_words:
        fetches.append(TileFetch("ofmap", 0, write_words, is_write=True))
    return FoldSpec(
        fold_row=index,
        fold_col=0,
        start_cycle=index * cycles,
        cycles=cycles,
        rows_used=4,
        cols_used=4,
        fetches=tuple(fetches),
    )


class TestIdealBackend:
    def test_transfer_time(self):
        backend = IdealBandwidthBackend(bandwidth_words=10)
        done = backend.complete_fetches((TileFetch("ifmap", 0, 100),), issue_cycle=0)
        assert done == 10

    def test_bus_serialises_batches(self):
        backend = IdealBandwidthBackend(bandwidth_words=10)
        backend.complete_fetches((TileFetch("ifmap", 0, 100),), 0)
        done = backend.complete_fetches((TileFetch("ifmap", 0, 100),), 0)
        assert done == 20

    def test_latency_added_to_reads(self):
        backend = IdealBandwidthBackend(bandwidth_words=10, latency_cycles=7)
        done = backend.complete_fetches((TileFetch("ifmap", 0, 100),), 0)
        assert done == 17

    def test_empty_fetch_free(self):
        backend = IdealBandwidthBackend(bandwidth_words=10)
        assert backend.complete_fetches((), 5) == 5

    def test_word_accounting(self):
        backend = IdealBandwidthBackend(bandwidth_words=10)
        backend.complete_fetches(
            (TileFetch("ifmap", 0, 30), TileFetch("ofmap", 0, 20, is_write=True)), 0
        )
        assert backend.total_read_words == 30
        assert backend.total_write_words == 20

    def test_bad_bandwidth(self):
        with pytest.raises(MemoryModelError):
            IdealBandwidthBackend(bandwidth_words=0)


class TestDoubleBufferTimeline:
    def test_empty_schedule(self):
        timeline = DoubleBufferMemory(IdealBandwidthBackend(10)).run([])
        assert timeline.total_cycles == 0

    def test_cold_start_only_when_bandwidth_ample(self):
        # Fetch takes 5 cycles, compute 100: prefetch always wins.
        memory = DoubleBufferMemory(IdealBandwidthBackend(10))
        specs = [_spec(i, cycles=100, fetch_words=50) for i in range(4)]
        timeline = memory.run(specs)
        assert timeline.cold_start_cycles == 5
        assert timeline.stall_cycles == 0
        assert timeline.total_cycles == 5 + 400

    def test_bandwidth_bound_stalls(self):
        # Fetch takes 100 cycles, compute 10: memory bound.
        memory = DoubleBufferMemory(IdealBandwidthBackend(1))
        specs = [_spec(i, cycles=10, fetch_words=100) for i in range(3)]
        timeline = memory.run(specs)
        assert timeline.stall_cycles > 0
        assert timeline.total_cycles > timeline.compute_cycles

    def test_compute_cycles_preserved(self):
        memory = DoubleBufferMemory(IdealBandwidthBackend(1))
        specs = [_spec(i, cycles=10, fetch_words=100) for i in range(3)]
        timeline = memory.run(specs)
        assert timeline.compute_cycles == 30

    def test_stall_fraction(self):
        timeline = MemoryTimeline(
            compute_cycles=50, total_cycles=100, stall_cycles=30, cold_start_cycles=20
        )
        assert timeline.stall_fraction == pytest.approx(0.5)

    def test_keep_timings(self):
        memory = DoubleBufferMemory(IdealBandwidthBackend(10))
        specs = [_spec(i) for i in range(3)]
        timeline = memory.run(specs, keep_timings=True)
        assert len(timeline.fold_timings) == 3
        # Fold starts strictly increase by at least the fold length.
        starts = [t.compute_start for t in timeline.fold_timings]
        assert all(b - a >= 100 for a, b in zip(starts, starts[1:]))

    def test_start_cycle_offsets_timeline(self):
        memory = DoubleBufferMemory(IdealBandwidthBackend(10))
        specs = [_spec(i) for i in range(2)]
        base = memory.run(specs)
        memory2 = DoubleBufferMemory(IdealBandwidthBackend(10))
        shifted = memory2.run(specs, start_cycle=1000)
        # Layer-relative metrics identical regardless of global offset.
        assert shifted.total_cycles == base.total_cycles
        assert shifted.cold_start_cycles == base.cold_start_cycles

    def test_shared_backend_across_layers_no_cold_start_blowup(self):
        backend = IdealBandwidthBackend(10)
        memory = DoubleBufferMemory(backend)
        first = memory.run([_spec(i) for i in range(3)], start_cycle=0)
        second = memory.run(
            [_spec(i) for i in range(3)], start_cycle=first.total_cycles
        )
        assert second.cold_start_cycles <= first.cold_start_cycles + 5

    def test_writes_share_the_bus(self):
        read_only = DoubleBufferMemory(IdealBandwidthBackend(1)).run(
            [_spec(i, cycles=10, fetch_words=50) for i in range(3)]
        )
        with_writes = DoubleBufferMemory(IdealBandwidthBackend(1)).run(
            [_spec(i, cycles=10, fetch_words=50, write_words=50) for i in range(3)]
        )
        assert with_writes.total_cycles > read_only.total_cycles
