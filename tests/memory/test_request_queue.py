"""Unit tests for the finite request queues."""

import pytest

from repro.errors import MemoryModelError
from repro.memory.request_queue import RequestQueue


class TestRequestQueue:
    def test_accepts_until_full(self):
        queue = RequestQueue(capacity=2)
        assert queue.push(0, 10) == 0
        assert queue.push(0, 20) == 0
        # Third request at cycle 0 must wait for the first completion.
        assert queue.push(0, 30) == 10

    def test_stall_cycles_accumulate(self):
        queue = RequestQueue(capacity=1)
        queue.push(0, 100)
        queue.push(0, 200)
        assert queue.total_stall_cycles == 100

    def test_completions_free_slots(self):
        queue = RequestQueue(capacity=1)
        queue.push(0, 5)
        # At cycle 6 the entry has retired; no stall.
        assert queue.push(6, 10) == 6
        assert queue.total_stall_cycles == 0

    def test_occupancy(self):
        queue = RequestQueue(capacity=4)
        queue.push(0, 10)
        queue.push(0, 20)
        assert queue.occupancy_at(5) == 2
        assert queue.occupancy_at(15) == 1
        assert queue.occupancy_at(25) == 0

    def test_earliest_issue_when_free(self):
        queue = RequestQueue(capacity=2)
        assert queue.earliest_issue(7) == 7

    def test_drain_time(self):
        queue = RequestQueue(capacity=4)
        queue.push(0, 10)
        queue.push(0, 30)
        assert queue.drain_time() == 30

    def test_drain_time_empty(self):
        assert RequestQueue(capacity=1).drain_time() == 0

    def test_peak_occupancy(self):
        queue = RequestQueue(capacity=4)
        for _ in range(3):
            queue.push(0, 100)
        assert queue.peak_occupancy == 3

    def test_total_enqueued(self):
        queue = RequestQueue(capacity=4)
        queue.push(0, 1)
        queue.push(0, 2)
        assert queue.total_enqueued == 2

    def test_reset(self):
        queue = RequestQueue(capacity=1)
        queue.push(0, 100)
        queue.reset()
        assert queue.push(0, 50) == 0

    def test_bad_capacity(self):
        with pytest.raises(MemoryModelError):
            RequestQueue(capacity=0)

    def test_completion_before_issue_rejected(self):
        queue = RequestQueue(capacity=1)
        with pytest.raises(MemoryModelError):
            queue.push(10, 5)

    def test_backpressure_ordering(self):
        # With capacity 2 and slow completions, issue times serialize.
        queue = RequestQueue(capacity=2)
        issues = [queue.push(0, 100 + i * 10) for i in range(4)]
        assert issues == [0, 0, 100, 110]
