"""Grid-engine equivalence: one config-batched pass == per-config runs.

:func:`repro.dram.engine_grid.resolve_plan_grid` resolves every
batched-engine DRAM config of a grid in one vectorized pass per line
batch (queue/bank/channel state carries a leading config axis).  Its
results must be *bit-exact* to one ``Simulator.run`` per config — same
timelines, same backpressure/drain accounting, same DRAM statistics —
across mixed technologies, queue depths, channel and bank counts,
address mappings and issue rates, including degenerate 1-config grids.

The smoke test is deliberately sub-second and non-``slow`` so the fast
tier-1 lane exercises the grid engine on every run, not just the fuzz.
"""

import random

from test_dram_fanout_equivalence import (
    _assert_results_equal,
    _random_arch,
    _random_grid,
    _random_topology,
)

from repro.config.system import (
    ArchitectureConfig,
    DramConfig,
    RunConfig,
    SystemConfig,
)
from repro.core.simulator import Simulator
from repro.dram.engine_batched import BatchedEngine
from repro.dram.engine_grid import resolve_plan_grid
from repro.dram.fanout import _build_line_batches, _grid_groups
from repro.topology.layer import ConvLayer
from repro.topology.topology import Topology


def _batched_grid(rng: random.Random, arch: ArchitectureConfig):
    """A random grid filtered to the configs one grid pass would cover."""
    grid = _random_grid(rng, arch)
    word = arch.word_bytes
    return [
        config
        for config in grid
        if config.dram.enabled
        and config.dram.engine == "batched"
        and config.arch.word_bytes == word
    ]


def test_two_config_grid_smoke():
    """Fast lane: a 2-config channel grid is bit-equal to two solo runs."""
    topology = Topology(
        "smoke",
        [
            ConvLayer(
                "conv",
                ifmap_h=14,
                ifmap_w=14,
                filter_h=3,
                filter_w=3,
                channels=4,
                num_filters=8,
            )
        ],
    )
    arch = ArchitectureConfig(array_rows=8, array_cols=8, dataflow="ws")
    configs = [
        SystemConfig(
            arch=arch,
            dram=DramConfig(enabled=True, technology="ddr4", channels=channels),
            run=RunConfig(run_name=f"smoke_ch{channels}"),
        )
        for channels in (1, 2)
    ]
    independent = [Simulator(config).run(topology) for config in configs]
    plan = Simulator(configs[0]).plan(topology)
    batches = _build_line_batches(plan, arch.word_bytes)
    grid = resolve_plan_grid(plan, configs, batches)
    _assert_results_equal(grid, independent, "smoke")
    for solo, batched in zip(independent, grid):
        assert batched.dram_stats == solo.dram_stats
        for solo_layer, grid_layer in zip(solo.layers, batched.layers):
            assert grid_layer.timeline == solo_layer.timeline


def test_randomized_grids_are_bit_exact():
    checked = 0
    for trial in range(16):
        rng = random.Random(52_000 + 19 * trial)
        topology = _random_topology(rng)
        arch = _random_arch(rng)
        configs = _batched_grid(rng, arch)
        if len(configs) < 2:
            continue
        independent = [Simulator(config).run(topology) for config in configs]
        plan = Simulator(configs[0]).plan(topology)
        batches = _build_line_batches(plan, arch.word_bytes)
        grid = resolve_plan_grid(plan, configs, batches)
        _assert_results_equal(grid, independent, trial)
        checked += 1
    assert checked >= 4


def test_forced_vector_dispatch_is_bit_exact(monkeypatch):
    """Drive the grid *vector* path on small batches.

    The natural dispatch sends small fuzz batches down the per-config
    scalar fallback; lowering the threshold and disabling the
    single-stream fast path forces the config-batched pass itself —
    the code under test — onto the same traffic.
    """
    monkeypatch.setattr(BatchedEngine, "vector_threshold", 8)
    monkeypatch.setattr(BatchedEngine, "single_stream_fast_path", False)
    checked = 0
    for trial in range(8):
        rng = random.Random(64_000 + 23 * trial)
        topology = _random_topology(rng)
        arch = _random_arch(rng)
        configs = _batched_grid(rng, arch)
        if len(configs) < 2:
            continue
        independent = [Simulator(config).run(topology) for config in configs]
        plan = Simulator(configs[0]).plan(topology)
        batches = _build_line_batches(plan, arch.word_bytes)
        grid = resolve_plan_grid(plan, configs, batches)
        _assert_results_equal(grid, independent, trial)
        checked += 1
    assert checked >= 3


def test_degenerate_single_config_grid():
    """A 1-config grid is legal and identical to the solo run."""
    rng = random.Random(71)
    topology = _random_topology(rng)
    arch = _random_arch(rng)
    config = SystemConfig(
        arch=arch,
        dram=DramConfig(enabled=True, technology="ddr4", channels=2),
        run=RunConfig(run_name="solo"),
    )
    solo = Simulator(config).run(topology)
    plan = Simulator(config).plan(topology)
    batches = _build_line_batches(plan, arch.word_bytes)
    [grid] = resolve_plan_grid(plan, [config], batches)
    assert grid == solo


def test_grid_groups_select_only_shared_batched_configs():
    """Only word sizes with >= 2 batched DRAM configs form grid groups."""
    arch = ArchitectureConfig(array_rows=8, array_cols=8, dataflow="ws")
    batched = lambda name, **kwargs: SystemConfig(  # noqa: E731
        arch=arch,
        dram=DramConfig(enabled=True, technology="ddr4", **kwargs),
        run=RunConfig(run_name=name),
    )
    configs = [
        batched("a", channels=1),
        batched("b", channels=2),
        batched("c", channels=4, engine="reference"),
        SystemConfig(arch=arch, dram=DramConfig(enabled=False)),
    ]
    groups = _grid_groups(configs)
    assert groups == {arch.word_bytes: [0, 1]}
    # Drop one batched member: the lone survivor gains nothing from the
    # config axis, so no group forms at all.
    assert _grid_groups(configs[1:]) == {}
