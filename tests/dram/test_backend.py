"""Unit tests for the DRAM memory backend (tile fetches -> lines)."""

import pytest

from repro.core.compute_sim import TileFetch
from repro.dram.backend import DramBackend
from repro.dram.dram_sim import RamulatorLite
from repro.errors import DramError


def _backend(**overrides):
    defaults = dict(
        read_queue_entries=128,
        write_queue_entries=128,
        word_bytes=2,
    )
    defaults.update(overrides)
    dram = RamulatorLite(technology="ddr4", channels=overrides.pop("channels", 1))
    defaults.pop("channels", None)
    return DramBackend(dram, **defaults)


class TestCompleteFetches:
    def test_line_count(self):
        backend = _backend()
        # 64 words x 2 B = 128 B = 2 lines.
        backend.complete_fetches((TileFetch("ifmap", 0, 64),), 0)
        assert backend.total_lines_read == 2

    def test_write_lines_counted_separately(self):
        backend = _backend()
        backend.complete_fetches(
            (TileFetch("ofmap", 0, 64, is_write=True),), 0
        )
        assert backend.total_lines_written == 2
        assert backend.total_lines_read == 0

    def test_completion_monotone_with_size(self):
        small = _backend().complete_fetches((TileFetch("ifmap", 0, 32),), 0)
        large = _backend().complete_fetches((TileFetch("ifmap", 0, 32_000),), 0)
        assert large > small

    def test_empty_fetch_is_free(self):
        backend = _backend()
        assert backend.complete_fetches((TileFetch("ifmap", 0, 0),), 7) == 7

    def test_issue_clock_never_goes_backwards(self):
        backend = _backend()
        backend.complete_fetches((TileFetch("ifmap", 0, 1000),), 100)
        # Issuing "earlier" respects the already-advanced front-end clock.
        done = backend.complete_fetches((TileFetch("ifmap", 2000, 1000),), 0)
        assert done > 100

    def test_word_bytes_validation(self):
        with pytest.raises(DramError):
            DramBackend(RamulatorLite(), word_bytes=0)


class TestQueueBackpressure:
    def test_small_queue_slower(self):
        fetch = (TileFetch("ifmap", 0, 50_000),)
        small = _backend(read_queue_entries=4).complete_fetches(fetch, 0)
        large = _backend(read_queue_entries=512).complete_fetches(fetch, 0)
        assert small >= large

    def test_backpressure_recorded(self):
        backend = _backend(read_queue_entries=2)
        backend.complete_fetches((TileFetch("ifmap", 0, 50_000),), 0)
        assert backend.read_queue.total_stall_cycles > 0
        assert backend.stall_cycles_from_backpressure > 0

    def test_drain_includes_writes(self):
        backend = _backend()
        done_reads = backend.complete_fetches(
            (
                TileFetch("ifmap", 0, 32),
                TileFetch("ofmap", 0, 50_000, is_write=True),
            ),
            0,
        )
        assert backend.drain() >= done_reads


class TestOperandSeparation:
    def test_operand_regions_map_to_different_addresses(self):
        backend = _backend()
        backend.complete_fetches((TileFetch("ifmap", 0, 32),), 0)
        lines_before = backend.total_lines_read
        backend.complete_fetches((TileFetch("filter", 0, 32),), 0)
        assert backend.total_lines_read == lines_before + 1

    def test_interleaved_operands_contend_on_banks(self):
        # Alternating ifmap/filter fetches touch different regions; the
        # model still serialises them on the shared front-end and bus.
        backend = _backend()
        done1 = backend.complete_fetches((TileFetch("ifmap", 0, 320),), 0)
        done2 = backend.complete_fetches((TileFetch("filter", 0, 320),), 0)
        assert done2 > done1
