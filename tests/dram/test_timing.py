"""Unit tests for DRAM timing presets."""

import pytest

from repro.dram.timing import DramTiming, available_timing_presets, get_timing_preset
from repro.errors import DramError


class TestPresets:
    def test_all_presets_valid(self):
        for name in available_timing_presets():
            timing = get_timing_preset(name)
            assert timing.t_rcd >= 1
            assert timing.row_bytes >= 64

    def test_paper_technologies_present(self):
        # Section II-C lists the Ramulator standards we mirror.
        for tech in ("ddr3", "ddr4", "lpddr4", "gddr5", "hbm", "wio2"):
            assert get_timing_preset(tech) is not None

    def test_case_insensitive(self):
        assert get_timing_preset("DDR4").name == get_timing_preset("ddr4").name

    def test_unknown_rejected(self):
        with pytest.raises(DramError):
            get_timing_preset("ddr6")

    def test_ddr4_2400_bandwidth(self):
        timing = get_timing_preset("ddr4")
        # 16 B/cycle at 1.2 GHz ~ 19.2 GB/s.
        assert timing.peak_bandwidth_gbps == pytest.approx(19.2, rel=0.01)

    def test_latency_ladder(self):
        timing = get_timing_preset("ddr4")
        assert timing.t_cl < timing.row_miss_latency < timing.row_conflict_latency


class TestDramTimingValidation:
    def _kwargs(self, **overrides):
        base = dict(
            name="x",
            tck_ns=1.0,
            t_rcd=10,
            t_rp=10,
            t_cl=10,
            t_cwl=8,
            t_ras=24,
            t_ccd=4,
            t_wr=10,
            t_burst=4,
            row_bytes=2048,
            bus_bytes_per_cycle=16,
        )
        base.update(overrides)
        return base

    def test_valid(self):
        DramTiming(**self._kwargs())

    @pytest.mark.parametrize("field", ["t_rcd", "t_rp", "t_cl", "t_burst", "row_bytes"])
    def test_nonpositive_rejected(self, field):
        with pytest.raises(DramError):
            DramTiming(**self._kwargs(**{field: 0}))

    def test_bad_tck(self):
        with pytest.raises(DramError):
            DramTiming(**self._kwargs(tck_ns=0))

    def test_cycles_from_ns(self):
        timing = DramTiming(**self._kwargs(tck_ns=0.5))
        assert timing.cycles_from_ns(1.2) == 3

    def test_cycles_from_negative_ns(self):
        with pytest.raises(DramError):
            DramTiming(**self._kwargs()).cycles_from_ns(-1)
