"""Randomized cross-engine equivalence: BatchedEngine == ReferenceEngine.

The batched engine's vector passes must be *bit-exact* to the scalar
reference — the correctness bar every shipped benchmark CSV rests on.
This fuzz drives both engines with identical randomized traffic
(operand mixes, read/write splits, queue depths small enough to
saturate, channel counts, address mappings, technologies, issue rates)
and asserts identical completion cycles, DRAM statistics and queue
statistics, across the scalar fast path, the vector path, and the
mixed regime.
"""

import random

import pytest

from repro.core.compute_sim import TileFetch
from repro.dram.backend import DramBackend
from repro.dram.dram_sim import RamulatorLite

MAPPINGS = ("ro_ba_ra_co_ch", "ro_ba_ra_ch_co", "ro_co_ra_ba_ch", "ch_ro_ba_ra_co")
TECHNOLOGIES = ("ddr3", "ddr4", "lpddr4", "gddr5", "hbm", "hbm2", "wio2")
OPERANDS = ("ifmap", "filter", "ofmap")


def _random_backend_pair(rng: random.Random, force_path: int):
    dram_kwargs = dict(
        technology=rng.choice(TECHNOLOGIES),
        channels=rng.choice((1, 1, 2, 3, 4, 8)),
        ranks_per_channel=rng.choice((1, 1, 2)),
        banks_per_rank=rng.choice((2, 4, 16)),
        capacity_gb_per_channel=rng.choice((0.0625, 0.25, 0.5)),
        address_mapping=rng.choice(MAPPINGS),
    )
    queue_kwargs = dict(
        read_queue_entries=rng.choice((1, 2, 3, 5, 16, 128, 300)),
        write_queue_entries=rng.choice((1, 2, 4, 17, 128)),
        word_bytes=rng.choice((1, 2, 4)),
        max_issue_per_cycle=rng.choice((1, 2, 4, 7)),
    )
    reference = DramBackend(
        RamulatorLite(**dram_kwargs), engine="reference", **queue_kwargs
    )
    batched = DramBackend(RamulatorLite(**dram_kwargs), engine="batched", **queue_kwargs)
    # 0: everything vectorized, 1: mixed, 2: everything scalar.
    batched.engine.vector_threshold = (1, 40, 10**9)[force_path]
    return reference, batched


def _random_fetches(rng: random.Random) -> tuple[TileFetch, ...]:
    fetches = []
    for _ in range(rng.randint(0, 4)):
        size = rng.choice(
            (0, rng.randint(1, 40), rng.randint(1, 5_000), rng.randint(1, 50_000))
        )
        fetches.append(
            TileFetch(
                rng.choice(OPERANDS),
                rng.randrange(0, 4_000_000),
                size,
                is_write=rng.random() < 0.4,
            )
        )
    return tuple(fetches)


def _assert_equivalent(reference: DramBackend, batched: DramBackend, context):
    assert reference.dram_stats() == batched.dram_stats(), context
    assert reference.drain() == batched.drain(), context
    assert reference.total_lines_read == batched.total_lines_read, context
    assert reference.total_lines_written == batched.total_lines_written, context
    for ref_q, bat_q in (
        (reference.read_queue, batched.read_queue),
        (reference.write_queue, batched.write_queue),
    ):
        assert ref_q.total_enqueued == bat_q.total_enqueued, (context, ref_q.name)
        assert ref_q.total_stall_cycles == bat_q.total_stall_cycles, (
            context,
            ref_q.name,
        )
        assert ref_q.peak_occupancy == bat_q.peak_occupancy, (context, ref_q.name)


@pytest.mark.parametrize("force_path", (0, 1, 2), ids=("vector", "mixed", "scalar"))
def test_randomized_traffic_is_bit_exact(force_path):
    for trial in range(25):
        rng = random.Random(7_000 + 31 * trial + force_path)
        reference, batched = _random_backend_pair(rng, force_path)
        cycle = 0
        for batch_index in range(rng.randint(1, 10)):
            fetches = _random_fetches(rng)
            cycle += rng.randrange(0, 5_000)
            ready_ref = reference.complete_fetches(fetches, cycle)
            ready_bat = batched.complete_fetches(fetches, cycle)
            assert ready_ref == ready_bat, (trial, batch_index)
        _assert_equivalent(reference, batched, trial)


def test_single_stream_bursts_are_bit_exact():
    """The closed-form single-stream fast path vs the reference.

    Prefetch-shaped traffic — one contiguous read stream per batch,
    spaced so earlier reads have retired — is exactly the regime the
    fast path claims; interleave it with occasional disqualifying
    batches (writes, multi-stream, tight spacing) so the guards and the
    regular paths hand state back and forth.
    """
    for trial in range(15):
        rng = random.Random(1_300 + trial)
        dram_kwargs = dict(
            technology=rng.choice(TECHNOLOGIES),
            channels=1,
            banks_per_rank=rng.choice((2, 4, 16)),
            address_mapping=rng.choice(MAPPINGS),
        )
        queue_kwargs = dict(
            read_queue_entries=rng.choice((8, 32, 128)),
            max_issue_per_cycle=rng.choice((1, 2, 4)),
        )
        reference = DramBackend(
            RamulatorLite(**dram_kwargs), engine="reference", **queue_kwargs
        )
        batched = DramBackend(
            RamulatorLite(**dram_kwargs), engine="batched", **queue_kwargs
        )
        assert batched.engine.single_stream_fast_path
        cycle = 0
        base = 0
        for _ in range(40):
            if rng.random() < 0.8:  # the prefetch shape
                fetches = (TileFetch("ifmap", base, rng.randint(1, 4000)),)
                cycle += rng.randrange(500, 20_000)
            else:  # disqualify: mixed streams / writes / tight spacing
                fetches = (
                    TileFetch("ifmap", base, rng.randint(1, 2000)),
                    TileFetch("ofmap", base, rng.randint(1, 2000), is_write=True),
                )
                cycle += rng.randrange(0, 50)
            base += rng.randrange(0, 100_000)
            assert reference.complete_fetches(fetches, cycle) == batched.complete_fetches(
                fetches, cycle
            ), trial
        _assert_equivalent(reference, batched, trial)


def test_fast_path_disabled_matches_enabled():
    """The fast path is a pure optimization: toggling it moves nothing."""
    for trial in range(6):
        rng = random.Random(60 + trial)
        engines = []
        for enabled in (True, False):
            backend = DramBackend(
                RamulatorLite(technology="ddr4", channels=1), engine="batched"
            )
            backend.engine.single_stream_fast_path = enabled
            engines.append(backend)
        cycle = 0
        for _ in range(30):
            fetches = (TileFetch("ifmap", rng.randrange(0, 10**6), rng.randint(1, 3000)),)
            cycle += rng.randrange(0, 30_000)
            assert engines[0].complete_fetches(fetches, cycle) == engines[
                1
            ].complete_fetches(fetches, cycle)
        _assert_equivalent(engines[0], engines[1], trial)


def test_saturated_queues_stall_identically():
    """Tiny queues force constant backpressure — the hardest regime."""
    for trial in range(8):
        rng = random.Random(42 + trial)
        dram_kwargs = dict(channels=rng.choice((1, 2)), technology="ddr4")
        queue_kwargs = dict(
            read_queue_entries=rng.choice((1, 2, 4)),
            write_queue_entries=rng.choice((1, 2)),
            max_issue_per_cycle=4,
        )
        pair = [
            DramBackend(RamulatorLite(**dram_kwargs), engine=name, **queue_kwargs)
            for name in ("reference", "batched")
        ]
        pair[1].engine.vector_threshold = 1
        fetches = (
            TileFetch("ifmap", 0, 30_000),
            TileFetch("ofmap", 0, 20_000, is_write=True),
        )
        assert pair[0].complete_fetches(fetches, 0) == pair[1].complete_fetches(
            fetches, 0
        )
        assert pair[0].stall_cycles_from_backpressure > 0
        _assert_equivalent(pair[0], pair[1], trial)


def test_dense_run_identical_through_simulator():
    """Engine choice must not move a single cycle of a full dense run."""
    import dataclasses

    from repro.config.system import ArchitectureConfig, DramConfig, SystemConfig
    from repro.core.simulator import Simulator
    from repro.topology.models import resnet18

    topology = resnet18(scale=16).first_layers(4)
    base = SystemConfig(
        arch=ArchitectureConfig(dataflow="ws", ifmap_sram_kb=32, filter_sram_kb=32,
                                ofmap_sram_kb=32),
        dram=DramConfig(enabled=True, channels=2, read_queue_entries=16,
                        write_queue_entries=16),
    )
    results = {}
    for engine in ("reference", "batched"):
        config = base.replace(dram=dataclasses.replace(base.dram, engine=engine))
        run = Simulator(config).run(topology)
        results[engine] = run
    ref, bat = results["reference"], results["batched"]
    assert ref.total_cycles == bat.total_cycles
    assert ref.dram_stats == bat.dram_stats
    for layer_ref, layer_bat in zip(ref.layers, bat.layers):
        assert layer_ref.timeline.total_cycles == layer_bat.timeline.total_cycles
        assert layer_ref.backpressure_stall_cycles == layer_bat.backpressure_stall_cycles
        assert layer_ref.drain_cycles == layer_bat.drain_cycles
