"""Unit tests for the RamulatorLite front-end."""

import pytest

from repro.dram.address import LINE_BYTES
from repro.dram.dram_sim import RamulatorLite
from repro.errors import DramError


def _dram(**overrides):
    defaults = dict(technology="ddr4", channels=1, banks_per_rank=4)
    defaults.update(overrides)
    return RamulatorLite(**defaults)


class TestSubmit:
    def test_completion_after_issue(self):
        dram = _dram()
        done = dram.submit(0, cycle=10)
        assert done > 10

    def test_sequential_stream_hits_rows(self):
        dram = _dram()
        for line in range(64):
            dram.submit(line * LINE_BYTES, cycle=line * 10)
        stats = dram.aggregate_stats()
        assert stats.row_hits > stats.row_misses + stats.row_conflicts

    def test_random_stride_conflicts(self):
        dram = _dram()
        # Jump a whole row every access within one bank: conflicts.
        row_bytes = dram.timing.row_bytes
        banks = 4
        stride = row_bytes * banks  # same bank, next row (channel fixed)
        for i in range(32):
            dram.submit(i * stride, cycle=i * 100)
        stats = dram.aggregate_stats()
        assert stats.row_conflicts > stats.row_hits

    def test_negative_cycle_rejected(self):
        with pytest.raises(DramError):
            _dram().submit(0, cycle=-1)

    def test_read_latency_at_least_cas(self):
        dram = _dram()
        done = dram.submit(0, cycle=0)
        assert done >= dram.timing.t_rcd + dram.timing.t_cl + dram.timing.t_burst


class TestChannels:
    def test_channel_parallelism_improves_throughput(self):
        def run(channels):
            dram = _dram(channels=channels)
            last = 0
            for line in range(256):
                last = max(last, dram.submit(line * LINE_BYTES, cycle=0))
            return last

        assert run(4) < run(1)

    def test_stats_per_channel(self):
        dram = _dram(channels=2)
        dram.submit(0, 0)
        dram.submit(LINE_BYTES, 0)  # second channel under line interleaving
        assert dram.channel_stats(0).requests == 1
        assert dram.channel_stats(1).requests == 1

    def test_bad_channels(self):
        with pytest.raises(DramError):
            _dram(channels=0)


class TestStats:
    def test_read_write_split(self):
        dram = _dram()
        dram.submit(0, 0, is_write=False)
        dram.submit(LINE_BYTES * 2, 50, is_write=True)
        stats = dram.aggregate_stats()
        assert stats.reads == 1
        assert stats.writes == 1
        assert stats.requests == 2

    def test_average_read_latency(self):
        dram = _dram()
        done = dram.submit(0, 0)
        stats = dram.aggregate_stats()
        assert stats.average_read_latency == pytest.approx(done)

    def test_bytes_transferred(self):
        dram = _dram()
        for i in range(10):
            dram.submit(i * LINE_BYTES, i)
        assert dram.aggregate_stats().bytes_transferred == 10 * LINE_BYTES

    def test_throughput_positive(self):
        dram = _dram()
        for i in range(100):
            dram.submit(i * LINE_BYTES, i)
        stats = dram.aggregate_stats()
        assert stats.throughput_gbps(dram.timing.tck_ns) > 0

    def test_throughput_bounded_by_peak(self):
        dram = _dram()
        for i in range(1000):
            dram.submit(i * LINE_BYTES, 0)
        stats = dram.aggregate_stats()
        assert stats.throughput_gbps(dram.timing.tck_ns) <= dram.timing.peak_bandwidth_gbps * 1.01

    def test_empty_stats(self):
        stats = _dram().aggregate_stats()
        assert stats.requests == 0
        assert stats.row_hit_rate == 0.0
        assert stats.throughput_gbps(1.0) == 0.0

    def test_reset_stats(self):
        dram = _dram()
        dram.submit(0, 0)
        dram.reset_stats()
        assert dram.aggregate_stats().requests == 0
