"""Unit tests for DRAM address mapping."""

import pytest

from repro.dram.address import LINE_BYTES, AddressMapper, DecodedAddress
from repro.errors import DramError


def _mapper(**overrides):
    defaults = dict(
        mapping="ro_ba_ra_co_ch",
        channels=2,
        ranks=1,
        banks=4,
        row_bytes=1024,
        capacity_bytes_per_channel=1 << 20,
    )
    defaults.update(overrides)
    return AddressMapper(**defaults)


class TestAddressMapper:
    def test_channel_interleaving_on_lines(self):
        # Default mapping: channel bits lowest -> consecutive lines
        # alternate channels.
        mapper = _mapper()
        a = mapper.decode(0)
        b = mapper.decode(LINE_BYTES)
        assert a.channel == 0
        assert b.channel == 1

    def test_same_line_same_coords(self):
        mapper = _mapper()
        assert mapper.decode(0) == mapper.decode(LINE_BYTES - 1)

    def test_column_progression(self):
        mapper = _mapper()
        # Two channels: lines 0,2,4.. land on channel 0 with columns 0,1,2..
        first = mapper.decode(0)
        second = mapper.decode(2 * LINE_BYTES)
        assert second.channel == first.channel
        assert second.column == first.column + 1

    def test_row_wraps_at_capacity(self):
        mapper = _mapper(capacity_bytes_per_channel=1 << 14)
        huge = mapper.decode(1 << 30)
        assert 0 <= huge.row < mapper.rows

    def test_columns_per_row(self):
        mapper = _mapper(row_bytes=1024)
        assert mapper.columns == 1024 // LINE_BYTES

    def test_alternative_mapping_order(self):
        # Column in the low bits: consecutive lines stay in one channel.
        mapper = _mapper(mapping="ro_ba_ra_ch_co")
        a = mapper.decode(0)
        b = mapper.decode(LINE_BYTES)
        assert a.channel == b.channel
        assert b.column == a.column + 1

    def test_bank_field_decodes(self):
        mapper = _mapper(mapping="ro_co_ra_ch_ba", banks=4)
        banks = {mapper.decode(i * LINE_BYTES).bank for i in range(4)}
        assert banks == {0, 1, 2, 3}

    def test_negative_address_rejected(self):
        with pytest.raises(DramError):
            _mapper().decode(-1)

    def test_bad_mapping_string(self):
        with pytest.raises(DramError):
            _mapper(mapping="ro_ba_co")

    def test_bad_row_bytes(self):
        with pytest.raises(DramError):
            _mapper(row_bytes=100)

    def test_lines_in_range(self):
        mapper = _mapper()
        assert list(mapper.lines_in_range(0, 1)) == [0]
        assert list(mapper.lines_in_range(0, LINE_BYTES + 1)) == [0, 1]
        assert list(mapper.lines_in_range(10, 0)) == []

    def test_decoded_address_fields(self):
        decoded = DecodedAddress(channel=1, rank=0, bank=2, row=3, column=4)
        assert decoded.bank == 2
