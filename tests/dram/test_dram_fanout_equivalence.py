"""Randomized DRAM fan-out equivalence: grouped == independent.

``simulate_many_dram`` must be *bit-exact* to one ``Simulator.run`` per
config — same timelines, same backpressure/drain accounting, same DRAM
statistics — across mixed grids of engines, channel counts, queue
depths, technologies, address mappings, issue rates and word sizes
(configs sharing a word size share one decoded line stream), with
DRAM-disabled ideal-bandwidth points mixed in, serially and across a
worker pool.  Batched-engine configs sharing a word size resolve
through one config-batched ``GridBatchedEngine`` pass (see
``tests/dram/test_grid_engine_equivalence.py`` for the engine-level
fuzz); the grids here mix in reference engines and disabled points so
the grouped and per-config paths are exercised side by side.
"""

import dataclasses
import random

import pytest

from repro.config.system import (
    ArchitectureConfig,
    DramConfig,
    RunConfig,
    SystemConfig,
)
from repro.core.simulator import Simulator, clear_compute_plan_cache
from repro.dram.fanout import simulate_many_dram
from repro.errors import DramError
from repro.topology.layer import ConvLayer, GemmLayer
from repro.topology.topology import Topology

MAPPINGS = ("ro_ba_ra_co_ch", "ro_ba_ra_ch_co", "ro_co_ra_ba_ch", "ch_ro_ba_ra_co")
TECHNOLOGIES = ("ddr3", "ddr4", "lpddr4", "gddr5", "hbm2")


def _random_topology(rng: random.Random) -> Topology:
    layers = []
    for index in range(rng.randint(1, 3)):
        if rng.random() < 0.5:
            fh, fw = rng.randint(1, 3), rng.randint(1, 3)
            layers.append(
                ConvLayer(
                    f"conv{index}",
                    ifmap_h=fh + rng.randint(2, 14),
                    ifmap_w=fw + rng.randint(2, 14),
                    filter_h=fh,
                    filter_w=fw,
                    channels=rng.randint(1, 8),
                    num_filters=rng.randint(1, 24),
                    stride_h=rng.randint(1, 2),
                    stride_w=rng.randint(1, 2),
                )
            )
        else:
            layers.append(
                GemmLayer(
                    f"gemm{index}",
                    m=rng.randint(1, 48),
                    n=rng.randint(1, 48),
                    k=rng.randint(1, 48),
                )
            )
    return Topology(f"fuzz_{rng.randrange(10**6)}", layers)


def _random_arch(rng: random.Random) -> ArchitectureConfig:
    size = rng.choice((4, 8, 16))
    return ArchitectureConfig(
        array_rows=size,
        array_cols=size,
        dataflow=rng.choice(("os", "ws", "is")),
        ifmap_sram_kb=rng.choice((1, 2, 64)),
        filter_sram_kb=rng.choice((1, 2, 64)),
        ofmap_sram_kb=rng.choice((1, 2, 64)),
        word_bytes=2,
    )


def _word_size_variant(arch: ArchitectureConfig, word_bytes: int) -> ArchitectureConfig:
    """Change the word size while keeping the SRAM *word* capacity fixed.

    Scaling the kilobyte knobs with ``word_bytes`` keeps the fold
    schedule (and hence the plan signature) identical, while the
    fetch-to-line chop — the decoded line stream — changes.
    """
    scale = word_bytes // arch.word_bytes
    return dataclasses.replace(
        arch,
        word_bytes=word_bytes,
        ifmap_sram_kb=arch.ifmap_sram_kb * scale,
        filter_sram_kb=arch.filter_sram_kb * scale,
        ofmap_sram_kb=arch.ofmap_sram_kb * scale,
    )


def _random_grid(rng: random.Random, arch: ArchitectureConfig) -> list[SystemConfig]:
    configs = []
    for index in range(rng.randint(2, 6)):
        point_arch = arch
        if rng.random() < 0.25:
            point_arch = _word_size_variant(arch, rng.choice((4, 8)))
        if rng.random() < 0.15:
            dram = DramConfig(enabled=False)
        else:
            dram = DramConfig(
                enabled=True,
                technology=rng.choice(TECHNOLOGIES),
                channels=rng.choice((1, 1, 2, 4)),
                ranks_per_channel=rng.choice((1, 2)),
                banks_per_rank=rng.choice((2, 4, 16)),
                read_queue_entries=rng.choice((1, 4, 16, 128)),
                write_queue_entries=rng.choice((2, 8, 128)),
                address_mapping=rng.choice(MAPPINGS),
                issue_per_cycle=rng.choice((1, 2, 4)),
                engine=rng.choice(("reference", "batched")),
            )
        configs.append(
            SystemConfig(
                arch=point_arch,
                dram=dram,
                run=RunConfig(run_name=f"grid_{index}"),
            )
        )
    return configs


def _assert_results_equal(fanout, independent, context):
    assert len(fanout) == len(independent), context
    for grouped, solo in zip(fanout, independent):
        assert grouped == solo, (context, solo.run_name)


def test_randomized_grids_are_bit_exact():
    for trial in range(12):
        rng = random.Random(9_100 + 17 * trial)
        topology = _random_topology(rng)
        arch = _random_arch(rng)
        configs = _random_grid(rng, arch)
        plan = Simulator(configs[0]).plan(topology)
        fanout = simulate_many_dram(plan, configs)
        independent = [Simulator(config).run(topology) for config in configs]
        _assert_results_equal(fanout, independent, trial)


def test_grid_engaged_fanout_matches_independent():
    """Trials where the config-batched grid pass actually engages stay exact.

    ``test_randomized_grids_are_bit_exact`` draws grids where the grid
    engine may or may not form a group; this variant keeps only trials
    with at least one multi-config group, so the grid path inside
    ``simulate_many_dram`` is provably on the line being compared.
    """
    from repro.dram.fanout import _grid_groups

    engaged = 0
    for trial in range(14):
        rng = random.Random(23_500 + 11 * trial)
        topology = _random_topology(rng)
        arch = _random_arch(rng)
        configs = _random_grid(rng, arch)
        groups = _grid_groups(configs)
        if not groups:
            continue
        plan = Simulator(configs[0]).plan(topology)
        fanout = simulate_many_dram(plan, configs)
        independent = [Simulator(config).run(topology) for config in configs]
        _assert_results_equal(fanout, independent, ("grid", trial))
        engaged += 1
    assert engaged >= 4


def test_parallel_fanout_matches_serial():
    rng = random.Random(515)
    topology = _random_topology(rng)
    arch = _random_arch(rng)
    configs = _random_grid(rng, arch)
    plan = Simulator(configs[0]).plan(topology)
    serial = simulate_many_dram(plan, configs, workers=1)
    parallel = simulate_many_dram(plan, configs, workers=2)
    _assert_results_equal(parallel, serial, "workers=2")
    independent = [Simulator(config).run(topology) for config in configs]
    _assert_results_equal(parallel, independent, "workers=2 vs independent")


def test_memoized_plans_do_not_leak_across_architectures():
    """The per-process plan cache keys on every schedule-relevant knob."""
    clear_compute_plan_cache()
    rng = random.Random(77)
    topology = _random_topology(rng)
    small = SystemConfig(
        arch=ArchitectureConfig(array_rows=4, array_cols=4, dataflow="ws"),
        dram=DramConfig(enabled=True),
    )
    large = SystemConfig(
        arch=ArchitectureConfig(array_rows=16, array_cols=16, dataflow="ws"),
        dram=DramConfig(enabled=True),
    )
    first = Simulator(small).run(topology)
    second = Simulator(large).run(topology)
    assert first.total_compute_cycles != second.total_compute_cycles
    # Re-running either config reproduces its own result exactly.
    assert Simulator(small).run(topology) == first
    assert Simulator(large).run(topology) == second


def test_signature_mismatch_rejected():
    rng = random.Random(3)
    topology = _random_topology(rng)
    arch = _random_arch(rng)
    config = SystemConfig(arch=arch, dram=DramConfig(enabled=True))
    plan = Simulator(config).plan(topology)
    other = SystemConfig(
        arch=dataclasses.replace(arch, array_rows=arch.array_rows * 2),
        dram=DramConfig(enabled=True),
    )
    with pytest.raises(DramError):
        simulate_many_dram(plan, [config, other])


def test_empty_grid_is_empty():
    rng = random.Random(4)
    topology = _random_topology(rng)
    config = SystemConfig(arch=_random_arch(rng))
    plan = Simulator(config).plan(topology)
    assert simulate_many_dram(plan, []) == []


def test_store_backed_fanout_is_bit_exact_cold_and_warm(tmp_path):
    """Randomized grids through an artifact store: cold populates, warm serves.

    Both passes must stay bit-exact to independent per-config runs —
    the store may change *where* the decoded line streams come from,
    never what they contain.
    """
    from repro.store.artifact_store import ArtifactStore

    store = ArtifactStore(tmp_path / "store")
    for trial in range(6):
        rng = random.Random(41_000 + 13 * trial)
        topology = _random_topology(rng)
        arch = _random_arch(rng)
        configs = _random_grid(rng, arch)
        plan = Simulator(configs[0]).plan(topology)
        independent = [Simulator(config).run(topology) for config in configs]
        cold = simulate_many_dram(plan, configs, store=store)
        _assert_results_equal(cold, independent, ("cold", trial))
        warm = simulate_many_dram(plan, configs, store=store)
        _assert_results_equal(warm, independent, ("warm", trial))
    # The warm passes actually hit: every line-batch artifact the cold
    # passes persisted was served back at least once.
    assert store.hits > 0
    assert store.hits >= store.misses


def test_store_backed_fanout_matches_active_store_seam(tmp_path):
    """Explicit ``store=`` and the installed active store agree."""
    from repro.store.artifact_store import ArtifactStore, set_active_store

    rng = random.Random(606)
    topology = _random_topology(rng)
    arch = _random_arch(rng)
    configs = _random_grid(rng, arch)
    plan = Simulator(configs[0]).plan(topology)
    reference = simulate_many_dram(plan, configs)

    explicit_store = ArtifactStore(tmp_path / "explicit")
    explicit = simulate_many_dram(plan, configs, store=explicit_store)
    _assert_results_equal(explicit, reference, "explicit store")

    active = ArtifactStore(tmp_path / "active")
    previous = set_active_store(active)
    try:
        ambient = simulate_many_dram(plan, configs)
    finally:
        set_active_store(previous)
    _assert_results_equal(ambient, reference, "active store")
    assert active.misses > 0 or not any(c.dram.enabled for c in configs)
