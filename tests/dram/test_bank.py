"""Unit tests for the per-bank state machine."""

from repro.dram.bank import CONFLICT, HIT, MISS, BankState
from repro.dram.timing import get_timing_preset

TIMING = get_timing_preset("ddr4")


class TestBankAccessCategories:
    def test_first_access_is_miss(self):
        bank = BankState()
        _, category = bank.access(0, row=5, is_write=False, timing=TIMING)
        assert category == MISS

    def test_same_row_hits(self):
        bank = BankState()
        bank.access(0, row=5, is_write=False, timing=TIMING)
        _, category = bank.access(100, row=5, is_write=False, timing=TIMING)
        assert category == HIT

    def test_different_row_conflicts(self):
        bank = BankState()
        bank.access(0, row=5, is_write=False, timing=TIMING)
        _, category = bank.access(100, row=9, is_write=False, timing=TIMING)
        assert category == CONFLICT


class TestBankLatencies:
    def test_miss_latency(self):
        bank = BankState()
        data_start, _ = bank.access(0, row=1, is_write=False, timing=TIMING)
        assert data_start == TIMING.t_rcd + TIMING.t_cl

    def test_hit_latency(self):
        bank = BankState()
        bank.access(0, row=1, is_write=False, timing=TIMING)
        late = 1000  # long after the bank is ready
        data_start, _ = bank.access(late, row=1, is_write=False, timing=TIMING)
        assert data_start == late + TIMING.t_cl

    def test_conflict_pays_precharge(self):
        bank = BankState()
        bank.access(0, row=1, is_write=False, timing=TIMING)
        late = 1000
        data_start, _ = bank.access(late, row=2, is_write=False, timing=TIMING)
        assert data_start == late + TIMING.t_rp + TIMING.t_rcd + TIMING.t_cl

    def test_conflict_respects_tras(self):
        bank = BankState()
        bank.access(0, row=1, is_write=False, timing=TIMING)
        # Immediately conflicting: precharge must wait for tRAS.
        data_start, category = bank.access(1, row=2, is_write=False, timing=TIMING)
        assert category == CONFLICT
        assert data_start >= TIMING.t_ras + TIMING.t_rp + TIMING.t_rcd + TIMING.t_cl

    def test_back_to_back_hits_respect_tccd(self):
        bank = BankState()
        bank.access(0, row=1, is_write=False, timing=TIMING)
        first, _ = bank.access(1000, row=1, is_write=False, timing=TIMING)
        second, _ = bank.access(1000, row=1, is_write=False, timing=TIMING)
        assert second - first >= TIMING.t_ccd

    def test_write_uses_cwl(self):
        bank = BankState()
        bank.access(0, row=1, is_write=False, timing=TIMING)
        data_start, _ = bank.access(1000, row=1, is_write=True, timing=TIMING)
        assert data_start == 1000 + TIMING.t_cwl

    def test_write_recovery_delays_next_access(self):
        bank = BankState()
        bank.access(0, row=1, is_write=True, timing=TIMING)
        after_write = bank.ready_cycle
        bank2 = BankState()
        bank2.access(0, row=1, is_write=False, timing=TIMING)
        after_read = bank2.ready_cycle
        assert after_write - after_read == TIMING.t_wr

    def test_open_row_tracked(self):
        bank = BankState()
        bank.access(0, row=7, is_write=False, timing=TIMING)
        assert bank.open_row == 7
