"""Unit tests for the memory-datapath engine seam."""

import pytest

from repro.core.compute_sim import TileFetch
from repro.dram.backend import DramBackend
from repro.dram.dram_sim import RamulatorLite
from repro.dram.engine import (
    AVAILABLE_ENGINES,
    LineRequestBatch,
    LineStream,
    ReferenceEngine,
    make_engine,
)
from repro.dram.engine_batched import BatchedEngine
from repro.errors import DramError


class TestLineRequestBatch:
    def test_from_fetches_counts_lines(self):
        # 64 words x 2 B = 128 B = 2 lines.
        batch = LineRequestBatch.from_fetches((TileFetch("ifmap", 0, 64),), 2)
        assert batch.total_lines == 2
        assert batch.read_lines == 2
        assert batch.write_lines == 0

    def test_from_fetches_skips_empty(self):
        batch = LineRequestBatch.from_fetches(
            (TileFetch("ifmap", 0, 0), TileFetch("ofmap", 0, 32, is_write=True)), 2
        )
        assert len(batch.streams) == 1
        assert batch.write_lines == 1

    def test_operands_map_to_distinct_regions(self):
        word_bytes = 2
        fetches = tuple(TileFetch(op, 0, 32) for op in ("ifmap", "filter", "ofmap"))
        batch = LineRequestBatch.from_fetches(fetches, word_bytes)
        firsts = [stream.first_line for stream in batch.streams]
        assert len(set(firsts)) == 3

    def test_unaligned_span_rounds_to_line_boundaries(self):
        # 1 word starting mid-line still occupies one whole line.
        batch = LineRequestBatch.from_fetches((TileFetch("ifmap", 3, 1),), 2)
        assert batch.total_lines == 1

    def test_round_robin_interleaves_and_drops_exhausted(self):
        batch = LineRequestBatch(
            streams=(
                LineStream(0, 1, False),
                LineStream(100, 3, True),
                LineStream(200, 2, False),
            )
        )
        seq = list(batch.iter_round_robin())
        assert seq == [
            (0, False),
            (100, True),
            (200, False),
            (101, True),
            (201, False),
            (102, True),
        ]

    def test_negative_stream_rejected(self):
        with pytest.raises(DramError):
            LineStream(-1, 4)


class TestMakeEngine:
    def test_reference(self):
        engine = make_engine("reference", RamulatorLite())
        assert isinstance(engine, ReferenceEngine)

    def test_batched(self):
        engine = make_engine("batched", RamulatorLite())
        assert isinstance(engine, BatchedEngine)

    def test_unknown_rejected(self):
        with pytest.raises(DramError):
            make_engine("warp-drive", RamulatorLite())

    def test_available_engines_all_constructible(self):
        for name in AVAILABLE_ENGINES:
            make_engine(name, RamulatorLite())


@pytest.mark.parametrize("name", AVAILABLE_ENGINES)
class TestEngineProtocol:
    def test_empty_batch_advances_clock_only(self, name):
        engine = make_engine(name, RamulatorLite())
        result = engine.process_batch(LineRequestBatch(streams=()), 7)
        assert result.ready_cycle == 7
        assert result.lines_read == 0
        assert engine.drain() == 0

    def test_reads_complete_after_issue(self, name):
        engine = make_engine(name, RamulatorLite())
        batch = LineRequestBatch(streams=(LineStream(0, 100, False),))
        result = engine.process_batch(batch, 10)
        assert result.ready_cycle > 10
        assert result.lines_read == 100
        stats = engine.aggregate_stats()
        assert stats.reads == 100
        assert stats.first_request_cycle == 10

    def test_writes_gate_drain_not_ready(self, name):
        engine = make_engine(name, RamulatorLite())
        batch = LineRequestBatch(streams=(LineStream(0, 50, True),))
        result = engine.process_batch(batch, 0)
        assert result.lines_written == 50
        assert engine.drain() > 0

    def test_negative_cycle_rejected(self, name):
        engine = make_engine(name, RamulatorLite())
        with pytest.raises(DramError):
            engine.process_batch(LineRequestBatch(streams=()), -1)


class TestBackendEngineSelection:
    def test_default_is_batched(self):
        backend = DramBackend(RamulatorLite())
        assert isinstance(backend.engine, BatchedEngine)

    def test_engine_instance_accepted(self):
        engine = ReferenceEngine(RamulatorLite())
        backend = DramBackend(RamulatorLite(), engine=engine)
        assert backend.engine is engine

    def test_backend_queue_views(self):
        backend = DramBackend(RamulatorLite(), read_queue_entries=7)
        assert backend.read_queue.capacity == 7
        assert backend.stall_cycles_from_backpressure == 0

    def test_dram_stats_via_seam(self):
        backend = DramBackend(RamulatorLite())
        backend.complete_fetches((TileFetch("ifmap", 0, 320),), 0)
        stats = backend.dram_stats()
        assert stats.reads == backend.total_lines_read == 10
