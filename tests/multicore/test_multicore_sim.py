"""Unit tests for the multi tensor-core simulator."""

import pytest

from repro.core.dataflow import Dataflow, analytical_runtime
from repro.errors import ConfigError
from repro.multicore.multicore_sim import CoreSpec, MultiCoreSimulator
from repro.multicore.noc import NopLink
from repro.multicore.partition import PartitionScheme
from repro.multicore.simd import SimdUnit
from repro.topology.layer import GemmLayer
from repro.topology.models import toy_gemm


def _layer(m=256, n=256, k=256):
    return GemmLayer("g", m=m, n=n, k=k)


class TestHomogeneousGrid:
    def test_grid_size_checked(self):
        with pytest.raises(ConfigError):
            MultiCoreSimulator(
                cores=[CoreSpec(8, 8)], partitions_row=2, partitions_col=2, dataflow="os"
            )

    def test_multicore_faster_than_single(self):
        single = analytical_runtime(_layer().to_gemm(), Dataflow.OUTPUT_STATIONARY, 16, 16)
        grid = MultiCoreSimulator.homogeneous(2, 2, 16, 16, "os")
        result = grid.simulate_layer(_layer())
        assert result.latency_cycles < single

    def test_latency_is_max_of_cores(self):
        grid = MultiCoreSimulator.homogeneous(2, 2, 16, 16, "os")
        result = grid.simulate_layer(_layer())
        assert result.latency_cycles == max(c.finish_cycles for c in result.cores)

    def test_uniform_cores_finish_together(self):
        grid = MultiCoreSimulator.homogeneous(2, 2, 16, 16, "os")
        result = grid.simulate_layer(_layer())
        finishes = {c.finish_cycles for c in result.cores}
        assert len(finishes) == 1

    def test_all_schemes_run(self):
        for scheme in PartitionScheme:
            grid = MultiCoreSimulator.homogeneous(2, 2, 16, 16, "os", scheme=scheme)
            assert grid.simulate_layer(_layer()).latency_cycles > 0

    def test_simulate_topology(self):
        grid = MultiCoreSimulator.homogeneous(2, 2, 8, 8, "os")
        results = grid.simulate_topology(toy_gemm())
        assert len(results) == 2
        assert grid.total_latency(toy_gemm()) == sum(r.latency_cycles for r in results)


class TestSharedL2:
    def test_l2_footprint_deduplicated(self):
        grid = MultiCoreSimulator.homogeneous(2, 2, 16, 16, "os")
        result = grid.simulate_layer(_layer())
        assert result.l2_footprint_words < result.l1_footprint_words

    def test_l2_fits_flag(self):
        big = MultiCoreSimulator.homogeneous(2, 2, 16, 16, "os", l2_sram_kb=1 << 20)
        tiny = MultiCoreSimulator.homogeneous(2, 2, 16, 16, "os", l2_sram_kb=1)
        assert big.simulate_layer(_layer()).l2_fits
        assert not tiny.simulate_layer(_layer()).l2_fits

    def test_l2_required_kb(self):
        grid = MultiCoreSimulator.homogeneous(2, 2, 16, 16, "os")
        result = grid.simulate_layer(_layer())
        assert result.l2_required_kb == pytest.approx(
            result.l2_footprint_words * 2 / 1024
        )


class TestHeterogeneousCores:
    def test_hetero_cores_finish_at_different_times(self):
        cores = [CoreSpec(8, 8), CoreSpec(32, 32), CoreSpec(8, 8), CoreSpec(32, 32)]
        grid = MultiCoreSimulator(
            cores=cores, partitions_row=2, partitions_col=2, dataflow="os"
        )
        result = grid.simulate_layer(_layer())
        assert len({c.finish_cycles for c in result.cores}) > 1

    def test_simd_adds_postprocessing(self):
        with_simd = MultiCoreSimulator.homogeneous(
            2, 2, 16, 16, "os", simd=SimdUnit(lanes=16)
        )
        without = MultiCoreSimulator.homogeneous(2, 2, 16, 16, "os")
        layer = _layer()
        assert (
            with_simd.simulate_layer(layer).latency_cycles
            > without.simulate_layer(layer).latency_cycles
        )

    def test_wider_simd_cheaper(self):
        narrow = MultiCoreSimulator.homogeneous(2, 2, 16, 16, "os", simd=SimdUnit(lanes=4))
        wide = MultiCoreSimulator.homogeneous(2, 2, 16, 16, "os", simd=SimdUnit(lanes=256))
        layer = _layer()
        assert (
            wide.simulate_layer(layer).latency_cycles
            <= narrow.simulate_layer(layer).latency_cycles
        )


class TestNonUniformPartitioning:
    def _grid(self, nonuniform):
        cores = [
            CoreSpec(16, 16, nop=NopLink(hops=h, latency_per_hop=2000))
            for h in (0, 1, 2, 12)
        ]
        return MultiCoreSimulator(
            cores=cores,
            partitions_row=2,
            partitions_col=2,
            dataflow="os",
            nonuniform=nonuniform,
        )

    def test_nonuniform_not_slower(self):
        layer = _layer()
        uniform = self._grid(nonuniform=False).simulate_layer(layer)
        balanced = self._grid(nonuniform=True).simulate_layer(layer)
        assert balanced.latency_cycles <= uniform.latency_cycles

    def test_distant_core_gets_less_work(self):
        result = self._grid(nonuniform=True).simulate_layer(_layer())
        shares = [c.work_share for c in result.cores]
        assert shares[3] < shares[0]

    def test_shares_recorded(self):
        result = self._grid(nonuniform=False).simulate_layer(_layer())
        assert sum(c.work_share for c in result.cores) == pytest.approx(1.0)
