"""Unit tests for the SIMD / vector unit model."""

import pytest

from repro.errors import ConfigError
from repro.multicore.simd import DEFAULT_OP_LATENCY, SimdUnit


class TestSimdUnit:
    def test_cycles_scale_with_elements(self):
        unit = SimdUnit(lanes=16)
        assert unit.cycles(16) == 1
        assert unit.cycles(17) == 2
        assert unit.cycles(160) == 10

    def test_zero_elements_free(self):
        assert SimdUnit(lanes=8).cycles(0) == 0

    def test_latency_per_element(self):
        slow = SimdUnit(lanes=16, latency_per_element=4.0)
        assert slow.cycles(16) == 4

    def test_op_table_scales(self):
        unit = SimdUnit(lanes=16)
        assert unit.cycles(16, op="softmax") == DEFAULT_OP_LATENCY["softmax"]
        assert unit.cycles(16, op="relu") == 1

    def test_unknown_op_uses_base(self):
        unit = SimdUnit(lanes=16)
        assert unit.cycles(16, op="mystery") == unit.cycles(16)

    def test_wider_unit_faster(self):
        narrow = SimdUnit(lanes=8)
        wide = SimdUnit(lanes=128)
        assert wide.cycles(1024) < narrow.cycles(1024)

    def test_minimum_one_cycle(self):
        assert SimdUnit(lanes=1024).cycles(1) == 1

    def test_bad_lanes(self):
        with pytest.raises(ConfigError):
            SimdUnit(lanes=0)

    def test_bad_latency(self):
        with pytest.raises(ConfigError):
            SimdUnit(lanes=4, latency_per_element=0)

    def test_negative_elements(self):
        with pytest.raises(ConfigError):
            SimdUnit(lanes=4).cycles(-1)
