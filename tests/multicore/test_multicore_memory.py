"""Multi-core traffic routed through the shared memory-datapath seam."""

from repro.dram.backend import DramBackend
from repro.dram.dram_sim import RamulatorLite
from repro.multicore.multicore_sim import MultiCoreSimulator
from repro.topology.layer import GemmLayer

LAYER = GemmLayer(name="gemm", m=256, n=256, k=256)


def _grid(memory_backend=None):
    return MultiCoreSimulator.homogeneous(
        num_cores_row=2,
        num_cores_col=2,
        array_rows=16,
        array_cols=16,
        dataflow="os",
    ) if memory_backend is None else MultiCoreSimulator(
        cores=MultiCoreSimulator.homogeneous(2, 2, 16, 16, "os").cores,
        partitions_row=2,
        partitions_col=2,
        dataflow="os",
        memory_backend=memory_backend,
    )


class TestWithoutBackend:
    def test_dram_cycles_zero(self):
        result = _grid().simulate_layer(LAYER)
        assert all(core.dram_cycles == 0 for core in result.cores)


class TestWithSharedBackend:
    def test_cores_wait_for_operands(self):
        backend = DramBackend(RamulatorLite(technology="ddr4", channels=1))
        result = _grid(backend).simulate_layer(LAYER)
        assert all(core.dram_cycles > 0 for core in result.cores)
        # Finish time includes the memory wait.
        core = result.cores[0]
        assert core.finish_cycles == (
            core.compute_cycles + core.nop_cycles + core.simd_cycles + core.dram_cycles
        )

    def test_shared_memory_contention_serializes_cores(self):
        backend = DramBackend(RamulatorLite(technology="ddr4", channels=1))
        result = _grid(backend).simulate_layer(LAYER)
        waits = [core.dram_cycles for core in result.cores]
        # Later cores' DMA sees a busier DRAM: waits are non-decreasing.
        assert waits == sorted(waits)
        assert waits[-1] > waits[0]

    def test_more_channels_reduce_wait(self):
        slow = _grid(
            DramBackend(RamulatorLite(technology="ddr4", channels=1))
        ).simulate_layer(LAYER)
        fast = _grid(
            DramBackend(RamulatorLite(technology="ddr4", channels=8))
        ).simulate_layer(LAYER)
        assert fast.latency_cycles <= slow.latency_cycles

    def test_contention_persists_across_layers(self):
        backend = DramBackend(RamulatorLite(technology="ddr4", channels=1))
        grid = _grid(backend)
        first = grid.simulate_layer(LAYER)
        second = grid.simulate_layer(LAYER)
        # The shared clock advanced: the backend kept serving traffic.
        assert backend.total_lines_read > 0
        assert second.latency_cycles >= 1
        assert first.cores[0].dram_cycles > 0
