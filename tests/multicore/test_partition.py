"""Unit tests for partitioning schemes, footprints, and search."""

import pytest

from repro.core.dataflow import Dataflow, map_gemm
from repro.errors import MappingError
from repro.multicore.partition import (
    PartitionScheme,
    best_partition,
    enumerate_partitions,
    l1_footprint_words,
    l2_footprint_words,
    partition_runtime,
    partition_shape,
    partition_tradeoff,
)
from repro.topology.layer import GemmShape

SHAPE = GemmShape(m=1000, n=1000, k=1000)


class TestSchemeParsing:
    def test_parse(self):
        assert PartitionScheme.parse("spatial") is PartitionScheme.SPATIAL
        assert PartitionScheme.parse("SPATIOTEMPORAL_1") is PartitionScheme.SPATIOTEMPORAL_1

    def test_parse_unknown(self):
        with pytest.raises(MappingError):
            PartitionScheme.parse("temporal")


class TestFootprints:
    def test_spatial_footprint_formula(self):
        mapping = map_gemm(SHAPE, Dataflow.OUTPUT_STATIONARY)
        words = l1_footprint_words(mapping, PartitionScheme.SPATIAL, 2, 4)
        sr, sc, t = mapping.sr, mapping.sc, mapping.t
        assert words == sr * t * 4 + t * sc * 2 + sr * sc

    def test_st1_duplicates_outputs_across_pc(self):
        mapping = map_gemm(SHAPE, Dataflow.OUTPUT_STATIONARY)
        words = l1_footprint_words(mapping, PartitionScheme.SPATIOTEMPORAL_1, 2, 4)
        sr, sc, t = mapping.sr, mapping.sc, mapping.t
        assert words == sr * t + t * sc * 2 + sr * sc * 4

    def test_st2_duplicates_outputs_across_pr(self):
        mapping = map_gemm(SHAPE, Dataflow.OUTPUT_STATIONARY)
        words = l1_footprint_words(mapping, PartitionScheme.SPATIOTEMPORAL_2, 2, 4)
        sr, sc, t = mapping.sr, mapping.sc, mapping.t
        assert words == sr * t * 4 + t * sc + sr * sc * 2

    def test_l2_dedup_is_smallest(self):
        mapping = map_gemm(SHAPE, Dataflow.OUTPUT_STATIONARY)
        l2 = l2_footprint_words(mapping)
        for scheme in PartitionScheme:
            assert l2 <= l1_footprint_words(mapping, scheme, 4, 4)

    def test_single_core_footprints_match_l2(self):
        mapping = map_gemm(SHAPE, Dataflow.OUTPUT_STATIONARY)
        for scheme in PartitionScheme:
            assert l1_footprint_words(mapping, scheme, 1, 1) == l2_footprint_words(mapping)

    def test_bad_grid(self):
        mapping = map_gemm(SHAPE, Dataflow.OUTPUT_STATIONARY)
        with pytest.raises(MappingError):
            l1_footprint_words(mapping, PartitionScheme.SPATIAL, 0, 4)


class TestPartitionSearch:
    def test_enumerate_counts_factor_pairs(self):
        choices = enumerate_partitions(
            SHAPE, Dataflow.OUTPUT_STATIONARY, PartitionScheme.SPATIAL, 16, 16, 16
        )
        # 16 = 1x16, 2x8, 4x4, 8x2, 16x1.
        assert len(choices) == 5
        assert all(c.num_cores == 16 for c in choices)

    def test_best_by_cycles(self):
        best = best_partition(
            SHAPE, Dataflow.OUTPUT_STATIONARY, PartitionScheme.SPATIAL, 16, 16, 16, "cycles"
        )
        all_choices = enumerate_partitions(
            SHAPE, Dataflow.OUTPUT_STATIONARY, PartitionScheme.SPATIAL, 16, 16, 16
        )
        assert best.runtime_cycles == min(c.runtime_cycles for c in all_choices)

    def test_best_by_footprint(self):
        best = best_partition(
            SHAPE, Dataflow.OUTPUT_STATIONARY, PartitionScheme.SPATIAL, 16, 16, 16, "footprint"
        )
        all_choices = enumerate_partitions(
            SHAPE, Dataflow.OUTPUT_STATIONARY, PartitionScheme.SPATIAL, 16, 16, 16
        )
        assert best.l1_footprint == min(c.l1_footprint for c in all_choices)

    def test_bad_objective(self):
        with pytest.raises(MappingError):
            best_partition(
                SHAPE, Dataflow.OUTPUT_STATIONARY, PartitionScheme.SPATIAL, 16, 16, 16, "power"
            )

    def test_tradeoff_covers_all_schemes(self):
        tradeoff = partition_tradeoff(SHAPE, Dataflow.OUTPUT_STATIONARY, 16, 16, 16)
        assert set(tradeoff) == set(PartitionScheme)

    def test_partitioning_reduces_runtime(self):
        mapping = map_gemm(SHAPE, Dataflow.OUTPUT_STATIONARY)
        single = partition_runtime(mapping, PartitionScheme.SPATIAL, 16, 16, 1, 1)
        for scheme in PartitionScheme:
            multi = partition_runtime(mapping, scheme, 16, 16, 4, 4)
            assert multi < single

    def test_spatiotemporal_beats_spatial_on_footprint_at_equal_cycles(self):
        """Figure 3a's point: among compute-optimised points, the
        spatio-temporal schemes reach (nearly) the same cycles with a
        smaller memory footprint for temporally-dominated GEMMs."""
        shape = GemmShape(m=64, n=64, k=100_000)
        tradeoff = partition_tradeoff(
            shape, Dataflow.OUTPUT_STATIONARY, 16, 16, 16, objective="cycles"
        )
        spatial = tradeoff[PartitionScheme.SPATIAL]
        st_best = min(
            (tradeoff[PartitionScheme.SPATIOTEMPORAL_1], tradeoff[PartitionScheme.SPATIOTEMPORAL_2]),
            key=lambda c: c.l1_footprint,
        )
        assert st_best.l1_footprint < spatial.l1_footprint
        assert st_best.runtime_cycles <= spatial.runtime_cycles * 1.01


class TestPartitionShape:
    def test_spatial_os_splits_m_and_n(self):
        sub = partition_shape(SHAPE, Dataflow.OUTPUT_STATIONARY, PartitionScheme.SPATIAL, 2, 4)
        assert (sub.m, sub.n, sub.k) == (500, 250, 1000)

    def test_spatial_ws_splits_k_and_m(self):
        sub = partition_shape(SHAPE, Dataflow.WEIGHT_STATIONARY, PartitionScheme.SPATIAL, 2, 4)
        assert (sub.m, sub.n, sub.k) == (250, 1000, 500)

    def test_st1_os_splits_m_and_k(self):
        sub = partition_shape(
            SHAPE, Dataflow.OUTPUT_STATIONARY, PartitionScheme.SPATIOTEMPORAL_1, 2, 4
        )
        assert (sub.m, sub.n, sub.k) == (500, 1000, 250)

    def test_st2_os_splits_k_and_n(self):
        sub = partition_shape(
            SHAPE, Dataflow.OUTPUT_STATIONARY, PartitionScheme.SPATIOTEMPORAL_2, 2, 4
        )
        assert (sub.m, sub.n, sub.k) == (1000, 250, 500)

    def test_ceiling_shares(self):
        sub = partition_shape(
            GemmShape(m=10, n=10, k=10), Dataflow.OUTPUT_STATIONARY, PartitionScheme.SPATIAL, 3, 3
        )
        assert (sub.m, sub.n) == (4, 4)
