"""Unit tests for the NoP model and non-uniform partitioning."""

import pytest

from repro.errors import ConfigError
from repro.multicore.noc import (
    NopLink,
    finish_time_nonuniform,
    finish_time_uniform,
    nonuniform_shares,
)


class TestNopLink:
    def test_base_latency(self):
        assert NopLink(hops=3, latency_per_hop=4).base_latency == 12

    def test_transfer_cycles(self):
        link = NopLink(hops=2, latency_per_hop=5, words_per_cycle=2)
        assert link.transfer_cycles(100) == 10 + 50

    def test_zero_words_free(self):
        assert NopLink(hops=5).transfer_cycles(0) == 0

    def test_zero_hops(self):
        assert NopLink(hops=0).transfer_cycles(10) == 10

    def test_bad_values(self):
        with pytest.raises(ConfigError):
            NopLink(hops=-1)
        with pytest.raises(ConfigError):
            NopLink(hops=1).transfer_cycles(-5)


class TestNonuniformShares:
    def test_uniform_latencies_give_equal_shares(self):
        shares = nonuniform_shares([5, 5, 5, 5], total_work_cycles=1000)
        assert shares == pytest.approx([0.25] * 4)

    def test_shares_sum_to_one(self):
        shares = nonuniform_shares([0, 10, 20, 40], total_work_cycles=1000)
        assert sum(shares) == pytest.approx(1.0)

    def test_farther_cores_get_less(self):
        """The paper's Section III-D: distant chiplets receive less work."""
        shares = nonuniform_shares([0, 10, 20, 40], total_work_cycles=1000)
        assert shares == sorted(shares, reverse=True)

    def test_finish_times_equalised(self):
        lats = [0, 10, 20, 40]
        work = 1000
        shares = nonuniform_shares(lats, work)
        finishes = [s * work + l for s, l in zip(shares, lats) if s > 0]
        assert max(finishes) - min(finishes) < 1e-6

    def test_hopeless_core_dropped(self):
        # A core whose NoP latency exceeds the balanced finish time gets 0.
        shares = nonuniform_shares([0, 0, 10_000], total_work_cycles=100)
        assert shares[2] == 0.0
        assert sum(shares) == pytest.approx(1.0)

    def test_nonuniform_beats_uniform(self):
        lats = [0, 8, 16, 64]
        work = 400
        assert finish_time_nonuniform(lats, work) <= finish_time_uniform(lats, work)

    def test_uniform_formula(self):
        assert finish_time_uniform([0, 10], 100) == 60

    def test_bad_inputs(self):
        with pytest.raises(ConfigError):
            nonuniform_shares([], 100)
        with pytest.raises(ConfigError):
            nonuniform_shares([1], 0)
        with pytest.raises(ConfigError):
            nonuniform_shares([-1], 100)
