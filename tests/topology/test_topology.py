"""Unit tests for the Topology container and CSV io."""

import pytest

from repro.errors import TopologyError
from repro.topology.layer import ConvLayer, GemmLayer
from repro.topology.topology import Topology


def _conv(name="c1", **kw):
    defaults = dict(
        name=name, ifmap_h=8, ifmap_w=8, filter_h=3, filter_w=3, channels=4, num_filters=8
    )
    defaults.update(kw)
    return ConvLayer(**defaults)


class TestTopologyContainer:
    def test_iteration_order(self):
        topo = Topology("t", [_conv("a"), _conv("b")])
        assert [layer.name for layer in topo] == ["a", "b"]

    def test_len_and_indexing(self):
        topo = Topology("t", [_conv("a"), _conv("b")])
        assert len(topo) == 2
        assert topo[1].name == "b"

    def test_layer_named(self):
        topo = Topology("t", [_conv("a"), _conv("b")])
        assert topo.layer_named("b").name == "b"
        with pytest.raises(TopologyError):
            topo.layer_named("zzz")

    def test_duplicate_names_rejected(self):
        with pytest.raises(TopologyError):
            Topology("t", [_conv("a"), _conv("a")])

    def test_empty_rejected(self):
        with pytest.raises(TopologyError):
            Topology("t", [])

    def test_subset(self):
        topo = Topology("t", [_conv("a"), _conv("b"), _conv("c")])
        sub = topo.subset(["c", "a"])
        assert [layer.name for layer in sub] == ["c", "a"]

    def test_first_layers(self):
        topo = Topology("t", [_conv("a"), _conv("b"), _conv("c")])
        assert len(topo.first_layers(2)) == 2

    def test_first_layers_bad_count(self):
        with pytest.raises(TopologyError):
            Topology("t", [_conv("a")]).first_layers(0)

    def test_total_macs(self):
        topo = Topology("t", [GemmLayer("g", m=2, n=3, k=4)])
        assert topo.total_macs() == 24

    def test_with_sparsity_string(self):
        topo = Topology("t", [_conv("a"), GemmLayer("g", m=4, n=4, k=8)])
        sparse = topo.with_sparsity("2:4")
        assert all(layer.sparsity is not None for layer in sparse)
        assert sparse[0].sparsity.n == 2


class TestCsvIo:
    def test_conv_round_trip(self, tmp_path):
        topo = Topology("t", [_conv("a"), _conv("b", stride_h=2, stride_w=2)])
        path = tmp_path / "t.csv"
        topo.to_csv(path)
        loaded = Topology.from_csv(path)
        assert len(loaded) == 2
        assert loaded[1].stride_h == 2

    def test_gemm_round_trip(self, tmp_path):
        topo = Topology("t", [GemmLayer("g1", m=4, n=5, k=6)])
        path = tmp_path / "t.csv"
        topo.to_csv(path)
        loaded = Topology.from_csv(path)
        assert loaded[0].m == 4
        assert loaded[0].k == 6

    def test_sparsity_column_round_trip(self, tmp_path):
        topo = Topology("t", [_conv("a")]).with_sparsity("1:4")
        path = tmp_path / "t.csv"
        topo.to_csv(path)
        loaded = Topology.from_csv(path)
        assert str(loaded[0].sparsity) == "1:4"

    def test_scale_sim_classic_format(self, tmp_path):
        # The classic SCALE-Sim topology dialect with trailing comma.
        path = tmp_path / "classic.csv"
        path.write_text(
            "Layer name, IFMAP Height, IFMAP Width, Filter Height, Filter Width,"
            " Channels, Num Filter, Strides,\n"
            "Conv1, 227, 227, 11, 11, 3, 96, 4,\n"
        )
        topo = Topology.from_csv(path)
        assert topo[0].name == "Conv1"
        assert topo[0].stride_h == 4

    def test_mixed_topology_to_conv_csv_rejected(self, tmp_path):
        topo = Topology("t", [_conv("a"), GemmLayer("g", m=2, n=2, k=2)])
        with pytest.raises(TopologyError):
            topo.to_csv(tmp_path / "t.csv")

    def test_bad_row_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("Layer name, M, N, K\nonly_name\n")
        with pytest.raises(TopologyError):
            Topology.from_csv(path)

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(TopologyError):
            Topology.from_csv(path)
