"""Unit tests for layer dataclasses and GEMM lowering."""

import pytest

from repro.errors import SparsityError, TopologyError
from repro.topology.layer import ConvLayer, GemmLayer, GemmShape, SparsityRatio


class TestSparsityRatio:
    def test_parse(self):
        ratio = SparsityRatio.parse("2:4")
        assert (ratio.n, ratio.m) == (2, 4)

    def test_density(self):
        assert SparsityRatio(1, 4).density == 0.25

    def test_dense(self):
        assert SparsityRatio(4, 4).is_dense

    def test_advantageous_boundary(self):
        # Paper IV-A2: useful sparsity requires N <= M/2.
        assert SparsityRatio(2, 4).is_computationally_advantageous
        assert not SparsityRatio(3, 4).is_computationally_advantageous

    def test_str_round_trip(self):
        assert str(SparsityRatio.parse("1:8")) == "1:8"

    def test_n_greater_than_m_rejected(self):
        with pytest.raises(SparsityError):
            SparsityRatio(5, 4)

    def test_bad_parse(self):
        with pytest.raises(SparsityError):
            SparsityRatio.parse("2-4")
        with pytest.raises(SparsityError):
            SparsityRatio.parse("a:b")


class TestGemmShape:
    def test_macs(self):
        assert GemmShape(2, 3, 4).macs == 24

    def test_operand_words_follow_w_mk_x_kn_convention(self):
        shape = GemmShape(m=2, n=3, k=5)
        assert shape.filter_words == 10  # W is M x K
        assert shape.ifmap_words == 15  # X is K x N
        assert shape.ofmap_words == 6

    def test_total_operand_words(self):
        shape = GemmShape(2, 3, 5)
        assert shape.total_operand_words == 10 + 15 + 6

    @pytest.mark.parametrize("m,n,k", [(0, 1, 1), (1, 0, 1), (1, 1, 0)])
    def test_nonpositive_dims_rejected(self, m, n, k):
        with pytest.raises(TopologyError):
            GemmShape(m, n, k)


class TestConvLayer:
    def _layer(self, **kwargs):
        defaults = dict(
            name="c",
            ifmap_h=8,
            ifmap_w=8,
            filter_h=3,
            filter_w=3,
            channels=4,
            num_filters=16,
        )
        defaults.update(kwargs)
        return ConvLayer(**defaults)

    def test_ofmap_dims_valid_conv(self):
        layer = self._layer()
        assert (layer.ofmap_h, layer.ofmap_w) == (6, 6)

    def test_ofmap_dims_with_stride(self):
        layer = self._layer(stride_h=2, stride_w=2)
        assert (layer.ofmap_h, layer.ofmap_w) == (3, 3)

    def test_window_size(self):
        assert self._layer().window_size == 3 * 3 * 4

    def test_to_gemm_convention(self):
        # M = filters, N = ofmap pixels, K = window (paper Table II).
        gemm = self._layer().to_gemm()
        assert gemm.m == 16
        assert gemm.n == 36
        assert gemm.k == 36

    def test_footprints(self):
        layer = self._layer()
        assert layer.ifmap_words == 8 * 8 * 4
        assert layer.filter_words == 36 * 16
        assert layer.ofmap_words == 36 * 16

    def test_filter_larger_than_ifmap_rejected(self):
        with pytest.raises(TopologyError):
            self._layer(filter_h=9)

    def test_bad_dimension_rejected(self):
        with pytest.raises(TopologyError):
            self._layer(channels=0)


class TestGemmLayer:
    def test_identity_lowering(self):
        layer = GemmLayer("g", m=5, n=6, k=7)
        gemm = layer.to_gemm()
        assert (gemm.m, gemm.n, gemm.k) == (5, 6, 7)

    def test_operand_words(self):
        layer = GemmLayer("g", m=5, n=6, k=7)
        assert layer.ifmap_words == 42
        assert layer.filter_words == 35
        assert layer.ofmap_words == 30

    def test_sparsity_annotation(self):
        layer = GemmLayer("g", m=4, n=4, k=4, sparsity=SparsityRatio(2, 4))
        assert layer.sparsity.density == 0.5

    def test_bad_dims(self):
        with pytest.raises(TopologyError):
            GemmLayer("g", m=0, n=1, k=1)
