"""Unit tests for the built-in model zoo."""

import pytest

from repro.errors import TopologyError
from repro.topology.layer import ConvLayer, GemmLayer
from repro.topology.models import available_models, get_model


class TestModelZoo:
    def test_all_models_construct(self):
        for name in available_models():
            topo = get_model(name)
            assert len(topo) >= 1

    def test_unknown_model(self):
        with pytest.raises(TopologyError):
            get_model("vgg99")

    def test_resnet18_structure(self):
        topo = get_model("resnet18")
        assert topo[0].name == "conv1"
        assert isinstance(topo[0], ConvLayer)
        assert topo[0].stride_h == 2
        assert isinstance(topo.layer_named("fc"), GemmLayer)
        assert len(topo) == 18

    def test_resnet18_conv1_gemm_shape(self):
        gemm = get_model("resnet18")[0].to_gemm()
        assert gemm.m == 64  # filters
        assert gemm.k == 7 * 7 * 3  # window
        assert gemm.n == 109 * 109  # (224-7)//2+1 squared

    def test_vit_base_block_layers(self):
        topo = get_model("vit_base", blocks=1)
        names = [layer.name for layer in topo]
        assert names == [
            "block0_qkv",
            "block0_attn_qk",
            "block0_attn_v",
            "block0_proj",
            "block0_ff1",
            "block0_ff2",
        ]

    def test_vit_base_ff_dimensions(self):
        topo = get_model("vit_base", blocks=1)
        ff1 = topo.layer_named("block0_ff1")
        assert (ff1.m, ff1.n, ff1.k) == (3072, 197, 768)

    def test_vit_sizes_ordered(self):
        small = get_model("vit_s", blocks=1).total_macs()
        base = get_model("vit_base", blocks=1).total_macs()
        large = get_model("vit_l", blocks=1).total_macs()
        assert small < base < large

    def test_scale_shrinks_macs(self):
        full = get_model("resnet18").total_macs()
        scaled = get_model("resnet18", scale=8).total_macs()
        assert scaled < full / 10

    def test_scale_keeps_kernel_feasible(self):
        # Even at extreme scale, filters must fit in the ifmap.
        topo = get_model("resnet18", scale=64)
        for layer in topo:
            if isinstance(layer, ConvLayer):
                assert layer.filter_h <= layer.ifmap_h

    def test_toy_models_ignore_scale_kwarg(self):
        assert len(get_model("toy_gemm", scale=4)) == 2

    def test_vit_ff_is_figure8_workload(self):
        topo = get_model("vit_ff")
        assert [layer.name for layer in topo] == ["ff1", "ff2"]

    def test_alexnet_first_layer_stride(self):
        assert get_model("alexnet")[0].stride_h == 4

    def test_rcnn_has_roi_head(self):
        topo = get_model("rcnn")
        assert isinstance(topo.layer_named("roi_fc6"), GemmLayer)
