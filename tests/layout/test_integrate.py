"""Unit tests for layout-dataflow integration (Figures 12/13 machinery)."""

import pytest

from repro.core.dataflow import Dataflow
from repro.errors import LayoutError
from repro.layout.integrate import evaluate_layout_slowdown
from repro.topology.layer import ConvLayer, GemmLayer


def _conv():
    return ConvLayer(
        name="c", ifmap_h=12, ifmap_w=12, filter_h=3, filter_w=3, channels=16, num_filters=16
    )


def _gemm():
    return GemmLayer("g", m=48, n=64, k=32)


class TestEvaluateLayoutSlowdown:
    @pytest.mark.parametrize("dataflow", ["os", "ws", "is"])
    def test_runs_for_all_dataflows_conv(self, dataflow):
        result = evaluate_layout_slowdown(_conv(), dataflow, 8, 8, 4, 64, max_folds=2)
        assert result.cycles_evaluated > 0
        assert result.slowdown >= -1.0

    @pytest.mark.parametrize("dataflow", ["os", "ws", "is"])
    def test_runs_for_all_dataflows_gemm(self, dataflow):
        result = evaluate_layout_slowdown(_gemm(), dataflow, 8, 8, 4, 64, max_folds=2)
        assert result.cycles_evaluated > 0

    def test_more_banks_not_worse(self):
        """The paper's key observation: at fixed total bandwidth, more
        banks consistently reduce the slowdown."""
        slowdowns = [
            evaluate_layout_slowdown(_conv(), "ws", 8, 8, banks, 64, max_folds=4).slowdown
            for banks in (1, 4, 16)
        ]
        assert slowdowns[0] >= slowdowns[1] >= slowdowns[2]

    def test_dataflow_enum_accepted(self):
        result = evaluate_layout_slowdown(
            _conv(), Dataflow.OUTPUT_STATIONARY, 8, 8, 4, 64, max_folds=1
        )
        assert result.dataflow is Dataflow.OUTPUT_STATIONARY

    def test_bandwidth_divisibility_checked(self):
        with pytest.raises(LayoutError):
            evaluate_layout_slowdown(_conv(), "ws", 8, 8, 3, 64)

    def test_max_folds_bounds_work(self):
        small = evaluate_layout_slowdown(_conv(), "ws", 8, 8, 4, 64, max_folds=1)
        large = evaluate_layout_slowdown(_conv(), "ws", 8, 8, 4, 64, max_folds=4)
        assert small.cycles_evaluated < large.cycles_evaluated

    def test_result_metadata(self):
        result = evaluate_layout_slowdown(_conv(), "ws", 8, 8, 4, 64, max_folds=1)
        assert result.layer_name == "c"
        assert result.num_banks == 4
        assert result.total_bandwidth == 64
        assert result.evaluator == "vectorized"

    def test_default_traces_full_layer(self):
        capped = evaluate_layout_slowdown(_conv(), "ws", 8, 8, 4, 64, max_folds=4)
        full = evaluate_layout_slowdown(_conv(), "ws", 8, 8, 4, 64)
        assert full.cycles_evaluated > capped.cycles_evaluated


class TestEvaluatorSeam:
    @pytest.mark.parametrize("dataflow", ["os", "ws", "is"])
    def test_evaluators_bit_exact_through_integration(self, dataflow):
        """The seam's two implementations agree on whole-layer results."""
        results = [
            evaluate_layout_slowdown(
                _conv(), dataflow, 8, 8, 4, 64, max_folds=3, evaluator=name
            )
            for name in ("reference", "vectorized")
        ]
        ref, vec = results
        assert ref.layout_cycles == vec.layout_cycles
        assert ref.bandwidth_cycles == vec.bandwidth_cycles
        assert ref.cycles_evaluated == vec.cycles_evaluated
        assert ref.slowdown == vec.slowdown
        assert (ref.evaluator, vec.evaluator) == ("reference", "vectorized")

    def test_gemm_layers_bit_exact(self):
        results = [
            evaluate_layout_slowdown(
                _gemm(), "ws", 8, 8, 4, 64, max_folds=3, evaluator=name
            )
            for name in ("reference", "vectorized")
        ]
        assert results[0].slowdown == results[1].slowdown

    def test_unknown_evaluator_rejected(self):
        with pytest.raises(LayoutError):
            evaluate_layout_slowdown(_conv(), "ws", 8, 8, 4, 64, evaluator="turbo")
