"""Unit tests for layout specification and index math (Figure 11)."""

import numpy as np
import pytest

from repro.errors import LayoutError
from repro.layout.spec import LayoutSpec, TensorView


class TestTensorView:
    def test_coords_channel_fastest(self):
        view = TensorView(c_dim=4, h_dim=2, w_dim=3)
        c, h, w = view.coords(np.array([0, 1, 4, 12]))
        assert c.tolist() == [0, 1, 0, 0]
        assert w.tolist() == [0, 0, 1, 0]
        assert h.tolist() == [0, 0, 0, 1]

    def test_num_elements(self):
        assert TensorView(4, 2, 3).num_elements == 24

    def test_for_matrix_balanced(self):
        view = TensorView.for_matrix(rows=64, cols=100)
        assert view.c_dim == 100
        assert view.h_dim * view.w_dim == 64

    def test_for_matrix_prime_rows(self):
        view = TensorView.for_matrix(rows=97, cols=8)
        assert view.h_dim * view.w_dim == 97

    def test_bad_dims(self):
        with pytest.raises(LayoutError):
            TensorView(0, 1, 1)

    def test_negative_offsets_rejected(self):
        with pytest.raises(LayoutError):
            TensorView(2, 2, 2).coords(np.array([-1]))


class TestLayoutSpecIndexMath:
    """Checks against the paper's worked example: C64 H8 W8 tensor,
    layout C64 H8 W8 -> W2 H4 C16 (c1=16, h1=4, w1=2), 16 banks of
    width 4 -> line capacity 128 elements."""

    def _spec(self):
        return LayoutSpec(
            view=TensorView(c_dim=64, h_dim=8, w_dim=8),
            c1_step=16,
            h1_step=4,
            w1_step=2,
            num_banks=16,
            bandwidth_per_bank=8,
        )

    def test_line_elements(self):
        assert self._spec().line_elements == 16 * 4 * 2

    def test_num_lines_covers_tensor(self):
        spec = self._spec()
        assert spec.num_lines == (64 // 16) * (8 // 4) * (8 // 2)

    def test_element_zero_maps_to_origin(self):
        line, col, bank = self._spec().locate(np.array([0]))
        assert (line[0], col[0], bank[0]) == (0, 0, 0)

    def test_line_id_formula(self):
        spec = self._spec()
        view = spec.view
        # Element (c=16, h=0, w=0): line = (16//16) * 2 * 4 = 8.
        offset = 0 * view.w_dim * view.c_dim + 0 * view.c_dim + 16  # (h*W + w)*C + c
        line, _, _ = spec.locate(np.array([offset]))
        assert line[0] == (16 // 16) * 2 * 4

    def test_col_id_formula(self):
        spec = self._spec()
        # Element (c=3, h=2, w=1): col = 1*4*16 + 2*16 + 3 = 99.
        offset = (2 * 8 + 1) * 64 + 3
        _, col, bank = spec.locate(np.array([offset]))
        assert col[0] == 99
        assert bank[0] == 99 // 8

    def test_consecutive_channels_share_bank_lines(self):
        spec = self._spec()
        offsets = np.arange(8)  # c = 0..7 at (h=0, w=0)
        line, _, bank = spec.locate(offsets)
        assert len(np.unique(line)) == 1
        assert len(np.unique(bank)) == 1

    def test_total_bandwidth(self):
        assert self._spec().total_bandwidth == 16 * 8

    def test_line_capacity_check(self):
        with pytest.raises(LayoutError):
            LayoutSpec(
                view=TensorView(64, 8, 8),
                c1_step=64,
                h1_step=8,
                w1_step=8,
                num_banks=2,
                bandwidth_per_bank=4,
            )


class TestDefaultLayout:
    def test_default_fills_with_channels_first(self):
        view = TensorView(c_dim=64, h_dim=8, w_dim=8)
        spec = LayoutSpec.default_for(view, num_banks=4, bandwidth_per_bank=16)
        assert spec.c1_step == 64
        assert spec.line_elements <= 64

    def test_default_small_channel_count(self):
        view = TensorView(c_dim=3, h_dim=32, w_dim=32)
        spec = LayoutSpec.default_for(view, num_banks=4, bandwidth_per_bank=16)
        assert spec.c1_step == 3
        assert spec.h1_step > 1  # spills into spatial dims

    def test_default_is_valid(self):
        for banks in (1, 2, 8):
            spec = LayoutSpec.default_for(TensorView(16, 8, 8), banks, 8)
            assert spec.line_elements <= banks * 8
