"""Randomized fan-out equivalence: one trace pass == N independent calls.

``evaluate_layout_slowdown_many`` must be *bit-identical* to running
``evaluate_layout_slowdown`` once per configuration — for mixed grids
(bank counts, bandwidths, ports, explicit layouts, row-buffer depths,
both evaluators), across multiple folds (cross-fold LRU state rides on
the shared artifacts), and regardless of how configurations share (or
don't share) inter-line steps.  The artifact layer itself
(``FoldDemand`` / ``add_fold_demand``) is fuzzed against
``add_demand_matrix`` for both evaluator implementations.
"""

import random

import numpy as np
import pytest

from repro.core.dataflow import Dataflow
from repro.layout.conflict import build_fold_demand, make_conflict_evaluator
from repro.layout.integrate import (
    LayoutEvalConfig,
    evaluate_layout_slowdown,
    evaluate_layout_slowdown_many,
)
from repro.layout.spec import LayoutSpec, TensorView
from repro.topology.layer import ConvLayer, GemmLayer


def _conv(rng: random.Random) -> ConvLayer:
    return ConvLayer(
        name="c",
        ifmap_h=rng.randint(6, 14),
        ifmap_w=rng.randint(6, 14),
        filter_h=3,
        filter_w=3,
        channels=rng.choice((4, 8, 16)),
        num_filters=rng.choice((8, 16)),
    )


def _gemm(rng: random.Random) -> GemmLayer:
    return GemmLayer(
        "g", m=rng.randint(16, 48), n=rng.randint(16, 64), k=rng.randint(8, 40)
    )


def _random_grid(rng: random.Random, view: TensorView) -> list[LayoutEvalConfig]:
    configs: list[LayoutEvalConfig] = []
    for _ in range(rng.randint(2, 7)):
        num_banks = rng.choice((1, 2, 4, 8))
        bandwidth = num_banks * rng.choice((1, 2, 4, 8, 16))
        layout = None
        if rng.random() < 0.25:
            capacity = bandwidth
            c1 = rng.randint(1, max(1, min(view.c_dim, capacity)))
            h1 = rng.randint(1, max(1, capacity // c1))
            w1 = rng.randint(1, max(1, capacity // (c1 * h1)))
            layout = LayoutSpec(
                view=view,
                c1_step=c1,
                h1_step=h1,
                w1_step=w1,
                num_banks=num_banks,
                bandwidth_per_bank=bandwidth // num_banks,
            )
        configs.append(
            LayoutEvalConfig(
                num_banks=num_banks,
                total_bandwidth_words=bandwidth,
                ports_per_bank=rng.choice((1, 1, 2)),
                layout=layout,
                evaluator=rng.choice(("vectorized", "vectorized", "reference")),
                row_buffers_per_bank=rng.choice((1, 2, 4)),
            )
        )
    return configs


def _view_for(layer) -> TensorView:
    if isinstance(layer, ConvLayer):
        return TensorView(layer.channels, layer.ifmap_h, layer.ifmap_w)
    return TensorView.for_matrix(layer.k, layer.n)


def test_fanout_is_bit_identical_to_independent_calls():
    """Mixed config grids over full multi-fold traces, both evaluators."""
    for trial in range(12):
        rng = random.Random(31_000 + 7 * trial)
        layer = _conv(rng) if rng.random() < 0.6 else _gemm(rng)
        dataflow = rng.choice(("ws", "is", "os"))
        array = rng.choice((4, 8))
        view = _view_for(layer)
        configs = _random_grid(rng, view)
        max_folds = rng.choice((None, None, 2, 5))

        many = evaluate_layout_slowdown_many(
            layer, dataflow, array, array, configs, max_folds=max_folds
        )
        independent = [
            evaluate_layout_slowdown(
                layer,
                dataflow,
                array,
                array,
                cfg.num_banks,
                cfg.total_bandwidth_words,
                ports_per_bank=cfg.ports_per_bank,
                layout=cfg.layout,
                max_folds=max_folds,
                evaluator=cfg.evaluator,
            )
            for cfg in configs
        ]
        # row_buffers_per_bank is not exposed by the single-call API;
        # compare those configs against a 4-deep independent grid run.
        for m, i, cfg in zip(many, independent, configs):
            if cfg.row_buffers_per_bank == 4:
                assert m == i, (trial, cfg)
            else:
                assert m.cycles_evaluated == i.cycles_evaluated, (trial, cfg)
                assert m.bandwidth_cycles == i.bandwidth_cycles, (trial, cfg)

        # Non-default row-buffer depths: a 1-config fan-out is the
        # independent call for that depth; grids must agree with it.
        deep = [cfg for cfg in configs if cfg.row_buffers_per_bank != 4]
        if deep:
            singles = [
                evaluate_layout_slowdown_many(
                    layer, dataflow, array, array, [cfg], max_folds=max_folds
                )[0]
                for cfg in deep
            ]
            grid = [m for m, cfg in zip(many, configs) if cfg.row_buffers_per_bank != 4]
            assert grid == singles, trial


def test_fanout_parallel_matches_serial():
    rng = random.Random(777)
    layer = _conv(rng)
    view = _view_for(layer)
    configs = _random_grid(rng, view)
    serial = evaluate_layout_slowdown_many(layer, "ws", 8, 8, configs)
    parallel = evaluate_layout_slowdown_many(layer, "ws", 8, 8, configs, workers=3)
    assert serial == parallel


def test_fanout_preserves_config_order_and_metadata():
    rng = random.Random(5)
    layer = _gemm(rng)
    configs = [
        LayoutEvalConfig(num_banks=1, total_bandwidth_words=8),
        LayoutEvalConfig(num_banks=8, total_bandwidth_words=64, evaluator="reference"),
        LayoutEvalConfig(num_banks=2, total_bandwidth_words=16),
    ]
    results = evaluate_layout_slowdown_many(layer, Dataflow.WEIGHT_STATIONARY, 4, 4, configs)
    assert [r.num_banks for r in results] == [1, 8, 2]
    assert [r.total_bandwidth for r in results] == [8, 64, 16]
    assert [r.evaluator for r in results] == ["vectorized", "reference", "vectorized"]
    assert results[0].dataflow is Dataflow.WEIGHT_STATIONARY


def test_fanout_empty_grid():
    assert evaluate_layout_slowdown_many(_gemm(random.Random(1)), "ws", 4, 4, []) == []


def test_fold_demand_feed_matches_matrix_feed():
    """add_fold_demand == add_demand_matrix, both evaluators, chunked."""
    for trial in range(15):
        rng = random.Random(52_000 + trial)
        view = TensorView(rng.randint(1, 16), rng.randint(1, 10), rng.randint(1, 10))
        num_banks = rng.choice((1, 2, 4))
        bandwidth = rng.randint(1, 6)
        layout = LayoutSpec.default_for(
            view, num_banks=num_banks, bandwidth_per_bank=bandwidth
        )
        for name in ("reference", "vectorized"):
            direct = make_conflict_evaluator(name, layout, 16, row_buffers_per_bank=2)
            via_artifact = make_conflict_evaluator(
                name, layout, 16, row_buffers_per_bank=2
            )
            for _ in range(rng.randint(1, 4)):
                rows, ports = rng.randint(1, 30), rng.randint(1, 6)
                base = rng.choice((0, 1000))
                demand = np.full((rows, ports), -1, dtype=np.int64)
                mask = np.random.default_rng(trial).random((rows, ports)) < 0.7
                demand[mask] = (
                    np.random.default_rng(trial + 1).integers(
                        0, 2 * view.num_elements, mask.sum()
                    )
                    + base
                )
                direct_costs = direct.add_demand_matrix(
                    demand, base_offset=base, return_costs=True
                )
                artifact_costs = via_artifact.add_fold_demand(
                    build_fold_demand(demand, base_offset=base), return_costs=True
                )
                assert direct_costs == artifact_costs, (trial, name)
            assert direct.total_layout_cycles == via_artifact.total_layout_cycles
            assert direct.total_bandwidth_cycles == via_artifact.total_bandwidth_cycles
            assert direct.total_requests == via_artifact.total_requests
            assert direct.cycles_evaluated == via_artifact.cycles_evaluated


def test_fanout_validates_bandwidth_divisibility():
    from repro.errors import LayoutError

    layer = _gemm(random.Random(2))
    with pytest.raises(LayoutError):
        evaluate_layout_slowdown_many(
            layer,
            "ws",
            4,
            4,
            [LayoutEvalConfig(num_banks=3, total_bandwidth_words=64)],
        )


def test_mixed_view_layouts_never_share_decodes():
    """Explicit layouts with different views must not share a key LUT.

    Regression: the shared-decode grouping once keyed only on inter-line
    steps, silently priming one view's decode into another's evaluator.
    """
    layer = GemmLayer("g", m=24, n=16, k=8)
    view_a = TensorView.for_matrix(layer.k, layer.n)
    view_b = TensorView(2, 8, 8)  # same num_elements, different shape
    assert view_a.num_elements == view_b.num_elements
    configs = [
        LayoutEvalConfig(
            num_banks=2,
            total_bandwidth_words=8,
            layout=LayoutSpec(
                view=view, c1_step=2, h1_step=2, w1_step=1,
                num_banks=2, bandwidth_per_bank=4,
            ),
        )
        for view in (view_a, view_b)
    ]
    many = evaluate_layout_slowdown_many(layer, "ws", 4, 4, configs)
    independent = [
        evaluate_layout_slowdown(
            layer, "ws", 4, 4, 2, 8, layout=cfg.layout
        )
        for cfg in configs
    ]
    assert many == independent


def test_store_backed_fanout_is_bit_identical_cold_and_warm(tmp_path):
    """Randomized grids with the fold-demand stream store-backed.

    A cold store materialises and persists each layer's fold-demand
    stream; a warm store serves it from disk.  Both must be
    bit-identical to the storeless fan-out (and hence, transitively, to
    independent calls).
    """
    from repro.store.artifact_store import ArtifactStore, set_active_store

    store = ArtifactStore(tmp_path / "store")
    for trial in range(6):
        rng = random.Random(52_000 + 11 * trial)
        layer = _conv(rng) if rng.random() < 0.5 else _gemm(rng)
        dataflow = rng.choice(("ws", "is", "os"))
        array = rng.choice((4, 8))
        configs = _random_grid(rng, _view_for(layer))
        max_folds = rng.choice((None, 3))

        reference = evaluate_layout_slowdown_many(
            layer, dataflow, array, array, configs, max_folds=max_folds
        )
        previous = set_active_store(store)
        try:
            cold = evaluate_layout_slowdown_many(
                layer, dataflow, array, array, configs, max_folds=max_folds
            )
            warm = evaluate_layout_slowdown_many(
                layer, dataflow, array, array, configs, max_folds=max_folds
            )
        finally:
            set_active_store(previous)
        assert cold == reference, trial
        assert warm == reference, trial
    # Each trial's second pass served its stream from disk.
    assert store.hits >= 6
