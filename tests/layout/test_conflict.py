"""Unit tests for bank-conflict evaluation.

Every behavioural test is parametrized over both evaluator
implementations (``reference`` scalar LRUs and ``vectorized`` offline
stack distances) — the seam guarantees they are interchangeable.
"""

import numpy as np
import pytest

from repro.errors import LayoutError
from repro.layout.conflict import BankConflictEvaluator, make_conflict_evaluator
from repro.layout.spec import LayoutSpec, TensorView

EVALUATORS = ("reference", "vectorized")


def _spec(num_banks=4, bandwidth_per_bank=4, ports=1):
    return LayoutSpec(
        view=TensorView(c_dim=16, h_dim=8, w_dim=8),
        c1_step=16,
        h1_step=1,
        w1_step=1,
        num_banks=num_banks,
        bandwidth_per_bank=bandwidth_per_bank,
        ports_per_bank=ports,
    )


def _evaluator(name="reference", num_banks=4, bandwidth_per_bank=4, ports=1,
               bw_model=16, row_buffers=4):
    return make_conflict_evaluator(
        name,
        _spec(num_banks=num_banks, bandwidth_per_bank=bandwidth_per_bank, ports=ports),
        bandwidth_model_words=bw_model,
        row_buffers_per_bank=row_buffers,
    )


@pytest.mark.parametrize("name", EVALUATORS)
class TestCycleCosts:
    def test_single_line_costs_one(self, name):
        ev = _evaluator(name)
        cost = ev.cost_of_cycle(np.arange(4))  # c=0..3: same line, bank 0
        assert cost.layout_cycles == 1

    def test_conflicting_lines_in_one_bank(self, name):
        ev = _evaluator(name)
        # Elements at (h=0) and (h=1) in channel 0: different lines, both
        # map column 0 -> same bank -> 2 accesses on 1 port.
        offsets = np.array([0, 16 * 8])  # (h*W + w)*C + c with C=16, W=8
        cost = ev.cost_of_cycle(offsets)
        assert cost.layout_cycles == 2

    def test_ports_reduce_conflicts(self, name):
        ev = _evaluator(name, ports=2)
        offsets = np.array([0, 16 * 8])
        assert ev.cost_of_cycle(offsets).layout_cycles == 1

    def test_spread_across_banks_parallel(self, name):
        ev = _evaluator(name)
        # Four elements in four different banks of the same line.
        offsets = np.array([0, 4, 8, 12])
        assert ev.cost_of_cycle(offsets).layout_cycles == 1

    def test_bandwidth_model_cost(self, name):
        ev = _evaluator(name, bw_model=4)
        cost = ev.cost_of_cycle(np.arange(8))
        assert cost.bandwidth_cycles == 2

    def test_empty_cycle(self, name):
        cost = _evaluator(name).cost_of_cycle(np.array([], dtype=np.int64))
        assert cost.requests == 0
        assert cost.layout_cycles == 1
        assert cost.bandwidth_cycles == 1

    def test_repeated_offsets_within_cycle_count_once(self, name):
        ev = _evaluator(name)
        # The same element requested by every port still opens one line.
        cost = ev.cost_of_cycle(np.array([5, 5, 5, 5, 5]))
        assert cost.requests == 5  # bandwidth model pays for all requests
        assert cost.layout_cycles == 1


@pytest.mark.parametrize("name", EVALUATORS)
class TestAccumulation:
    def test_slowdown_zero_when_equal(self, name):
        ev = _evaluator(name)
        for _ in range(10):
            ev.add_cycle(np.arange(4))
        assert ev.slowdown == pytest.approx(0.0)

    def test_positive_slowdown_with_conflicts(self, name):
        ev = _evaluator(name)
        # Rotate through fresh lines each cycle so the bank's row
        # buffers never help: 3 new lines in one bank per cycle.
        for h in range(0, 8, 3):
            offsets = np.array([(h + d) * 8 * 16 for d in range(3)]) % (16 * 8 * 8)
            ev.add_cycle(offsets)
        assert ev.slowdown > 0

    def test_row_buffer_reuse_across_cycles(self, name):
        ev = _evaluator(name)
        offsets = np.array([0, 16 * 8])  # two lines, same bank
        first = ev.add_cycle(offsets)
        second = ev.add_cycle(offsets)  # both lines now open
        assert first.layout_cycles == 2
        assert second.layout_cycles == 1

    def test_row_buffer_capacity_evicts(self, name):
        ev = _evaluator(name, row_buffers=1)
        a = np.array([0])
        b = np.array([16 * 8])  # same bank, different line
        ev.add_cycle(a)
        ev.add_cycle(b)  # evicts line of `a`
        assert ev.add_cycle(a).layout_cycles == 1  # cold again, 1 new line

    def test_single_row_buffer_thrashes(self, name):
        ev = _evaluator(name, row_buffers=1)
        offsets = np.array([0, 16 * 8])  # two lines, same bank, 1 buffer
        first = ev.add_cycle(offsets)
        second = ev.add_cycle(offsets)  # both lines cold again every cycle
        assert first.layout_cycles == 2
        assert second.layout_cycles == 2

    def test_bad_row_buffers(self, name):
        with pytest.raises(LayoutError):
            _evaluator(name, row_buffers=0)

    def test_negative_slowdown_when_lines_consolidate(self, name):
        # 32 requests in one line: layout serves in 1 cycle; the flat BW
        # model (16 words/cycle) needs 2.
        spec = LayoutSpec(
            view=TensorView(c_dim=32, h_dim=8, w_dim=8),
            c1_step=32,
            h1_step=1,
            w1_step=1,
            num_banks=8,
            bandwidth_per_bank=4,
        )
        ev = make_conflict_evaluator(name, spec, bandwidth_model_words=16)
        for _ in range(10):
            ev.add_cycle(np.arange(32))
        assert ev.slowdown < 0

    def test_add_demand_matrix_counts_bubbles(self, name):
        ev = _evaluator(name)
        demand = np.full((5, 4), -1, dtype=np.int64)
        demand[0, :] = [0, 1, 2, 3]
        ev.add_demand_matrix(demand)
        assert ev.cycles_evaluated == 5

    def test_all_bubble_rows_cost_one_each(self, name):
        ev = _evaluator(name)
        demand = np.full((7, 3), -1, dtype=np.int64)
        costs = ev.add_demand_matrix(demand, return_costs=True)
        assert [c.requests for c in costs] == [0] * 7
        assert ev.total_layout_cycles == 7
        assert ev.total_bandwidth_cycles == 7
        assert ev.total_requests == 0
        assert ev.cycles_evaluated == 7

    def test_demand_matrix_base_offset(self, name):
        ev = _evaluator(name)
        demand = np.array([[1000, 1001]], dtype=np.int64)
        ev.add_demand_matrix(demand, base_offset=1000)
        assert ev.total_requests == 2

    def test_demand_matrix_returns_cost_stream(self, name):
        ev = _evaluator(name)
        demand = np.array([[0, 1], [-1, -1], [16 * 8, 2 * 16 * 8]], dtype=np.int64)
        costs = ev.add_demand_matrix(demand, return_costs=True)
        assert len(costs) == 3
        assert costs[0].layout_cycles == 1  # one open line
        assert costs[1].requests == 0
        assert costs[2].layout_cycles == 2  # two new lines in one bank

    def test_bad_bandwidth_model(self, name):
        spec = LayoutSpec(
            view=TensorView(4, 4, 4), c1_step=4, h1_step=1, w1_step=1,
            num_banks=1, bandwidth_per_bank=4,
        )
        with pytest.raises(LayoutError):
            make_conflict_evaluator(name, spec, bandwidth_model_words=0)


class TestSeam:
    def test_factory_names(self):
        from repro.layout.conflict import AVAILABLE_LAYOUT_EVALUATORS
        from repro.layout.conflict_vectorized import VectorizedConflictEvaluator

        assert set(AVAILABLE_LAYOUT_EVALUATORS) == {"reference", "vectorized"}
        assert type(make_conflict_evaluator("reference", _spec(), 16)) is BankConflictEvaluator
        assert isinstance(
            make_conflict_evaluator("vectorized", _spec(), 16),
            VectorizedConflictEvaluator,
        )

    def test_factory_rejects_unknown(self):
        with pytest.raises(LayoutError):
            make_conflict_evaluator("nope", _spec(), 16)
