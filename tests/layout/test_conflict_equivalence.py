"""Randomized cross-evaluator equivalence: vectorized == reference.

The vectorized evaluator's offline stack-distance passes must be
*bit-exact* to the scalar per-cycle LRU reference — the correctness bar
Figures 12/13 rest on.  This fuzz drives both evaluators with identical
randomized demand streams (layouts, bank counts, port widths, buffer
depths, bubble rows, repeated offsets, wrapped offsets, base offsets,
multi-chunk state carry) and asserts identical per-cycle ``CycleCost``
streams, accumulated totals and slowdowns.
"""

import random

import numpy as np
import pytest

from repro.layout.conflict import BankConflictEvaluator, make_conflict_evaluator
from repro.layout.conflict_vectorized import VectorizedConflictEvaluator
from repro.layout.spec import LayoutSpec, TensorView


def _random_layout(rng: random.Random) -> LayoutSpec:
    view = TensorView(rng.randint(1, 24), rng.randint(1, 12), rng.randint(1, 12))
    num_banks = rng.choice((1, 1, 2, 3, 4, 8, 16))
    bandwidth = rng.randint(1, 8)
    capacity = num_banks * bandwidth
    c1 = rng.randint(1, max(1, min(view.c_dim, capacity)))
    h1 = rng.randint(1, max(1, capacity // c1))
    w1 = rng.randint(1, max(1, capacity // (c1 * h1)))
    return LayoutSpec(
        view=view,
        c1_step=c1,
        h1_step=h1,
        w1_step=w1,
        num_banks=num_banks,
        bandwidth_per_bank=bandwidth,
        ports_per_bank=rng.choice((1, 1, 2, 3)),
    )


def _random_demand(rng: random.Random, num_elements: int) -> np.ndarray:
    rows = rng.randint(1, 40)
    ports = rng.randint(1, 8)
    demand = np.full((rows, ports), -1, dtype=np.int64)
    streaming = rng.random() < 0.5
    for i in range(rows):
        for j in range(ports):
            if rng.random() < 0.7:
                if streaming:
                    demand[i, j] = (i * ports + j * 3) % num_elements
                else:
                    demand[i, j] = rng.randrange(0, 2 * num_elements)
    if rng.random() < 0.3:  # repeated offsets within one cycle
        demand[rng.randrange(rows), :] = demand[rng.randrange(rows), 0]
    if rng.random() < 0.3:  # all-bubble rows
        demand[rng.randrange(rows), :] = -1
    return demand


def _assert_equivalent(reference, vectorized, context):
    assert reference.total_layout_cycles == vectorized.total_layout_cycles, context
    assert reference.total_bandwidth_cycles == vectorized.total_bandwidth_cycles, context
    assert reference.total_requests == vectorized.total_requests, context
    assert reference.cycles_evaluated == vectorized.cycles_evaluated, context
    assert reference.slowdown == vectorized.slowdown, context


def test_randomized_demand_is_bit_exact():
    for trial in range(60):
        rng = random.Random(9_000 + 17 * trial)
        layout = _random_layout(rng)
        bandwidth_model = rng.randint(1, 32)
        row_buffers = rng.choice((1, 2, 4, 7))
        reference = make_conflict_evaluator(
            "reference", layout, bandwidth_model, row_buffers_per_bank=row_buffers
        )
        vectorized = make_conflict_evaluator(
            "vectorized", layout, bandwidth_model, row_buffers_per_bank=row_buffers
        )
        assert isinstance(vectorized, VectorizedConflictEvaluator)
        for chunk in range(rng.randint(1, 5)):
            base = rng.choice((0, 0, 1000))
            demand = _random_demand(rng, layout.view.num_elements)
            shifted = np.where(demand >= 0, demand + base, -1)
            ref_costs = reference.add_demand_matrix(
                shifted, base_offset=base, return_costs=True
            )
            vec_costs = vectorized.add_demand_matrix(
                shifted, base_offset=base, return_costs=True
            )
            assert ref_costs == vec_costs, (trial, chunk)
        _assert_equivalent(reference, vectorized, trial)


def test_single_cycle_api_is_bit_exact():
    """add_cycle / cost_of_cycle must carry LRU state identically."""
    for trial in range(20):
        rng = random.Random(400 + trial)
        layout = _random_layout(rng)
        reference = BankConflictEvaluator(layout, 16, row_buffers_per_bank=2)
        vectorized = VectorizedConflictEvaluator(layout, 16, row_buffers_per_bank=2)
        for _ in range(30):
            offsets = np.array(
                [
                    rng.randrange(0, layout.view.num_elements)
                    for _ in range(rng.randint(0, 9))
                ],
                dtype=np.int64,
            )
            assert reference.add_cycle(offsets) == vectorized.add_cycle(offsets)
        _assert_equivalent(reference, vectorized, trial)


def test_dense_residual_fallback_is_bit_exact():
    """Force the offline merge-count path (the >4096-residual regime)."""
    rng = random.Random(77)
    layout = LayoutSpec(
        view=TensorView(4, 32, 32),
        c1_step=4,
        h1_step=1,
        w1_step=1,
        num_banks=2,
        bandwidth_per_bank=2,
    )
    reference = BankConflictEvaluator(layout, 8, row_buffers_per_bank=2)
    vectorized = VectorizedConflictEvaluator(layout, 8, row_buffers_per_bank=2)
    # Shuffled revisits of a small working set create deep, repeat-heavy
    # windows that defeat both cheap tiers.
    pool = list(range(0, layout.view.num_elements, 3))
    demand = np.full((600, 12), -1, dtype=np.int64)
    for i in range(demand.shape[0]):
        rng.shuffle(pool)
        demand[i, :] = pool[:12]
    ref_costs = reference.add_demand_matrix(demand, return_costs=True)
    vec_costs = vectorized.add_demand_matrix(demand, return_costs=True)
    assert ref_costs == vec_costs
    _assert_equivalent(reference, vectorized, "dense-residual")


def test_sparse_residual_threshold_crossing():
    """Both residual strategies agree around the 4096-query cutover."""
    rng = random.Random(5)
    layout = LayoutSpec(
        view=TensorView(2, 16, 16),
        c1_step=2,
        h1_step=1,
        w1_step=1,
        num_banks=1,
        bandwidth_per_bank=2,
    )
    for rows in (50, 400):
        reference = BankConflictEvaluator(layout, 4, row_buffers_per_bank=1)
        vectorized = VectorizedConflictEvaluator(layout, 4, row_buffers_per_bank=1)
        demand = np.array(
            [
                [rng.randrange(0, layout.view.num_elements) for _ in range(6)]
                for _ in range(rows)
            ],
            dtype=np.int64,
        )
        assert reference.add_demand_matrix(
            demand, return_costs=True
        ) == vectorized.add_demand_matrix(demand, return_costs=True)
        _assert_equivalent(reference, vectorized, rows)


def test_make_conflict_evaluator_rejects_unknown():
    layout = _random_layout(random.Random(0))
    with pytest.raises(Exception):
        make_conflict_evaluator("turbo", layout, 16)
