"""Concurrent shared-directory caching: ResultCache + ArtifactStore.

Two runners (or two stores, or a process hammer) sharing one directory
with overlapping keys must never expose a corrupt payload, and each
instance's hit/miss counters must stay exact — the atomic-write +
guarded-read discipline both classes share is what these tests pin.
"""

import multiprocessing
import pickle

from repro.config.system import RunConfig, SystemConfig
from repro.core.simulator import clear_compute_plan_cache
from repro.run.sweep import Axis, ResultCache, SweepRunner, SweepSpec
from repro.store.artifact_store import ArtifactStore
from repro.topology.models import toy_gemm
from repro.utils.pool import pool_context


def _base() -> SystemConfig:
    return SystemConfig(run=RunConfig(run_name="unit_shared"))


def _spec(name: str = "shared") -> SweepSpec:
    return SweepSpec(
        base=_base(),
        axes=[Axis("arch.dataflow", ("os", "ws"))],
        topologies=[toy_gemm()],
        name=name,
    )


def test_two_runners_share_a_cache_directory(tmp_path):
    cache_dir = tmp_path / "cache"
    first = SweepRunner(cache=ResultCache(cache_dir))
    second = SweepRunner(cache=ResultCache(cache_dir))

    cold = first.run(_spec())
    warm = second.run(_spec())

    assert (first.cache.hits, first.cache.misses) == (0, 2)
    assert (second.cache.hits, second.cache.misses) == (2, 0)
    assert all(result.from_cache for result in warm)
    for a, b in zip(cold, warm):
        assert a.run_result == b.run_result


def test_two_stores_share_a_directory(tmp_path):
    store_dir = tmp_path / "store"
    first = SweepRunner(store=ArtifactStore(store_dir))
    second = SweepRunner(store=ArtifactStore(store_dir))

    # The in-process plan LRU sits above the store; clear it so every
    # lookup actually reaches the shared directory.
    clear_compute_plan_cache()
    cold = first.run(_spec())
    clear_compute_plan_cache()
    warm = second.run(_spec("shared_again"))  # new run names, same artifacts
    clear_compute_plan_cache()

    # The first runner populated the store (its lookups all missed);
    # the second served every artifact from disk without a single miss.
    assert first.store.misses > 0 and first.store.hits == 0
    assert second.store.hits == first.store.misses and second.store.misses == 0
    for a, b in zip(cold, warm):
        assert a.total_cycles == b.total_cycles
        assert a.total_stall_cycles == b.total_stall_cycles


def _hammer_store(args):
    """One hammer process: write + read overlapping keys repeatedly."""
    directory, worker = args
    store = ArtifactStore(directory)
    outcomes = []
    for round_index in range(20):
        key = store.key("hammer", {"round": round_index % 5})
        payload = {"round": round_index % 5, "blob": list(range(200))}
        store.put("hammer", key, payload)
        seen = store.get("hammer", key)
        # Concurrent writers race, but every visible payload is complete
        # and correct: all writers store the same value for a key.
        outcomes.append(seen == payload)
    return worker, all(outcomes), store.hits + store.misses


def test_store_survives_multiprocess_hammer(tmp_path):
    directory = tmp_path / "store"
    with pool_context().Pool(processes=4) as pool:
        results = pool.map(_hammer_store, [(str(directory), i) for i in range(4)])
    assert sorted(worker for worker, _, _ in results) == [0, 1, 2, 3]
    assert all(ok for _, ok, _ in results)
    assert all(lookups == 20 for _, _, lookups in results)
    # Every surviving file unpickles cleanly.
    files = list(directory.glob("hammer/*.pkl"))
    assert len(files) == 5
    for path in files:
        assert pickle.loads(path.read_bytes())["blob"] == list(range(200))


def _hammer_cache(args):
    directory, worker = args
    cache = ResultCache(directory)
    ok = True
    for round_index in range(10):
        key = f"key_{round_index % 3}"
        payload = {"round": round_index % 3, "worker-agnostic": True}
        cache.put(key, payload)
        fresh = ResultCache(directory)  # force a disk read, not memory
        ok = ok and fresh.get(key) == payload
    return worker, ok


def test_result_cache_survives_multiprocess_hammer(tmp_path):
    directory = tmp_path / "cache"
    with pool_context().Pool(processes=4) as pool:
        results = pool.map(_hammer_cache, [(str(directory), i) for i in range(4)])
    assert all(ok for _, ok in results)


def test_result_cache_corrupt_entry_is_a_miss_and_repaired(tmp_path):
    cache = ResultCache(tmp_path)
    cache.put("k", {"v": 1})
    other = ResultCache(tmp_path)
    (tmp_path / "k.pkl").write_bytes(b"\x80\x04 not a pickle")
    assert other.get("k") is None
    assert (other.hits, other.misses) == (0, 1)
    assert not (tmp_path / "k.pkl").exists()
    cache.put("k", {"v": 2})  # repair
    assert ResultCache(tmp_path).get("k") == {"v": 2}
