"""Unit tests for the content-addressed artifact store (repro.store).

The round-trip tests double as the fast-lane smoke for the store: each
mid-level artifact kind the sweep persists — per-layer compute
schedules, fold-demand streams, decoded line batches — goes through a
tmpdir store and comes back equal, in well under a second.
"""

import pickle

import pytest

from repro.config.presets import get_preset
from repro.core.dataflow import Dataflow
from repro.core.simulator import (
    Simulator,
    layer_compute,
    layer_compute_store_key,
    plan_store_key,
)
from repro.dram.fanout import _build_line_batches
from repro.layout.integrate import _fold_demand_stream, fold_demand_store_key
from repro.store.artifact_store import (
    STORE_SCHEMA_VERSION,
    ArtifactStore,
    active_store,
    canonical_artifact,
    content_address,
    dump_pickle_atomic,
    load_pickle_guarded,
    set_active_store,
)
from repro.topology.models import toy_conv, toy_gemm


@pytest.fixture(autouse=True)
def _no_leaked_store():
    """No test here may leave a process-wide store installed."""
    assert active_store() is None
    yield
    assert active_store() is None


# ------------------------------------------------------------------ keys


def test_content_address_is_stable_and_sorted():
    a = content_address("kind", {"b": 2, "a": 1})
    b = content_address("kind", {"a": 1, "b": 2})
    assert a == b
    assert len(a) == 64 and int(a, 16) >= 0


def test_content_address_separates_kind_and_payload():
    assert content_address("x", {"v": 1}) != content_address("y", {"v": 1})
    assert content_address("x", {"v": 1}) != content_address("x", {"v": 2})


def test_content_address_salted_by_schema_version():
    # The schema version participates in every key: bumping it must
    # invalidate all existing store directories at once.
    blob = content_address("kind", {"v": 1})
    assert STORE_SCHEMA_VERSION  # non-empty by construction
    assert blob == content_address("kind", {"v": 1})


def test_canonical_artifact_tags_dataclasses_with_kind():
    conv = toy_conv()[0]
    gemm = toy_gemm()[0]
    assert canonical_artifact(conv)["__kind__"] == type(conv).__name__
    assert canonical_artifact(gemm)["__kind__"] == type(gemm).__name__
    assert canonical_artifact(7) == 7


def test_layer_store_keys_differ_across_layers_and_knobs():
    layer = toy_conv()[0]
    base = layer_compute_store_key(layer, Dataflow.OUTPUT_STATIONARY, 8, 8, 1024, 1024, 1024)
    assert base == layer_compute_store_key(layer, Dataflow.OUTPUT_STATIONARY, 8, 8, 1024, 1024, 1024)
    assert base != layer_compute_store_key(layer, Dataflow.WEIGHT_STATIONARY, 8, 8, 1024, 1024, 1024)
    assert base != layer_compute_store_key(layer, Dataflow.OUTPUT_STATIONARY, 16, 8, 1024, 1024, 1024)
    other = toy_gemm()[0]
    assert base != layer_compute_store_key(other, Dataflow.OUTPUT_STATIONARY, 8, 8, 1024, 1024, 1024)


def test_fold_demand_key_includes_cap():
    layer = toy_conv()[0]
    full = fold_demand_store_key(layer, Dataflow.OUTPUT_STATIONARY, 8, 8, None)
    capped = fold_demand_store_key(layer, Dataflow.OUTPUT_STATIONARY, 8, 8, 4)
    assert full != capped


# ----------------------------------------------------------- store basics


def test_store_get_put_roundtrip_and_counters(tmp_path):
    store = ArtifactStore(tmp_path / "store")
    key = store.key("demo", {"v": 1})
    assert store.get("demo", key) is None
    store.put("demo", key, {"payload": [1, 2, 3]})
    assert store.get("demo", key) == {"payload": [1, 2, 3]}
    assert (store.hits, store.misses) == (1, 1)
    assert store.path("demo", key).exists()


def test_store_get_or_build_builds_once(tmp_path):
    store = ArtifactStore(tmp_path)
    calls = []

    def build():
        calls.append(1)
        return "built"

    key = store.key("demo", {"v": 2})
    assert store.get_or_build("demo", key, build) == "built"
    assert store.get_or_build("demo", key, build) == "built"
    assert len(calls) == 1
    assert (store.hits, store.misses) == (1, 1)


def test_corrupt_artifact_counts_as_miss_and_is_unlinked(tmp_path):
    store = ArtifactStore(tmp_path)
    key = store.key("demo", {"v": 3})
    store.put("demo", key, "good")
    path = store.path("demo", key)
    path.write_bytes(b"\x80\x04 truncated garbage")
    assert store.get("demo", key) is None
    assert not path.exists()  # repaired: next put recreates it
    store.put("demo", key, "good again")
    assert store.get("demo", key) == "good again"


def test_load_pickle_guarded_handles_missing_and_empty(tmp_path):
    assert load_pickle_guarded(tmp_path / "absent.pkl") is None
    empty = tmp_path / "empty.pkl"
    empty.touch()
    assert load_pickle_guarded(empty) is None
    assert not empty.exists()


def test_dump_pickle_atomic_leaves_no_temp_files(tmp_path):
    target = tmp_path / "artifact.pkl"
    dump_pickle_atomic(target, list(range(10)))
    assert pickle.loads(target.read_bytes()) == list(range(10))
    assert [p.name for p in tmp_path.iterdir()] == ["artifact.pkl"]


def test_set_active_store_returns_previous(tmp_path):
    first = ArtifactStore(tmp_path / "a")
    second = ArtifactStore(tmp_path / "b")
    assert set_active_store(first) is None
    try:
        assert set_active_store(second) is first
        assert active_store() is second
    finally:
        set_active_store(None)


# ------------------------------------------- artifact-kind round trips


def _with_store(store):
    """Context-manager-free install/restore helper for these tests."""

    class _Scope:
        def __enter__(self):
            self.previous = set_active_store(store)
            return store

        def __exit__(self, *exc):
            set_active_store(self.previous)

    return _Scope()


def test_layer_compute_roundtrips_through_store(tmp_path):
    layer = toy_conv()[0]
    args = (layer, Dataflow.OUTPUT_STATIONARY, 8, 8, 4096, 4096, 4096)
    layer_compute.cache_clear()
    reference = layer_compute(*args)

    store = ArtifactStore(tmp_path)
    with _with_store(store):
        layer_compute.cache_clear()
        cold = layer_compute(*args)  # miss: builds and persists
        layer_compute.cache_clear()
        warm = layer_compute(*args)  # hit: loads from disk
    layer_compute.cache_clear()
    assert store.misses == 1 and store.hits == 1
    assert cold == reference
    assert warm == reference


def test_fold_demand_roundtrips_through_store(tmp_path):
    layer = toy_conv()[0]
    args = (layer, Dataflow.OUTPUT_STATIONARY, 8, 8, None)
    reference = list(_fold_demand_stream(*args))

    store = ArtifactStore(tmp_path)
    with _with_store(store):
        cold = list(_fold_demand_stream(*args))
        warm = list(_fold_demand_stream(*args))
    assert store.misses == 1 and store.hits == 1
    assert len(cold) == len(reference) > 0
    for a, b, c in zip(reference, cold, warm):
        assert a.cycles == b.cycles == c.cycles
        assert (a.cycle_index == b.cycle_index).all()
        assert (a.cycle_index == c.cycle_index).all()
        assert (a.offsets == b.offsets).all() and (a.offsets == c.offsets).all()


def test_line_batches_roundtrip_through_store(tmp_path):
    config = get_preset("google_tpu_v2")
    topology = toy_conv()
    plan = Simulator(config).plan(topology)
    assert plan.store_key  # Simulator.plan stamps the content address
    reference = _build_line_batches(plan, config.arch.word_bytes)

    store = ArtifactStore(tmp_path)
    key = store.key(
        "line_batches",
        {"plan": plan.store_key, "word_bytes": config.arch.word_bytes},
    )
    cold = store.get_or_build(
        "line_batches", key, lambda: _build_line_batches(plan, config.arch.word_bytes)
    )
    warm = store.get_or_build(
        "line_batches", key, lambda: pytest.fail("warm run must not rebuild")
    )
    assert store.misses == 1 and store.hits == 1
    for built, loaded in ((cold, reference), (warm, reference)):
        assert len(built) == len(loaded)
        for layer_a, layer_b in zip(built, loaded):
            assert len(layer_a) == len(layer_b)


def test_plan_store_key_tracks_inputs():
    config = get_preset("scale_sim_v2_default")
    topology = toy_conv()
    key = plan_store_key(topology, config.arch)
    assert key == plan_store_key(topology, config.arch)
    assert key != plan_store_key(toy_gemm(), config.arch)
    other = get_preset("eyeriss_like")
    assert key != plan_store_key(topology, other.arch)
