"""Unit tests for N:M sparsity patterns."""

import numpy as np
import pytest

from repro.errors import SparsityError
from repro.sparsity.pattern import SparsePattern, layerwise_pattern, rowwise_pattern
from repro.topology.layer import SparsityRatio
from repro.utils.rng import make_rng


class TestLayerwisePattern:
    def test_density_matches_ratio(self):
        pattern = layerwise_pattern(8, 16, SparsityRatio(2, 4))
        assert pattern.density == pytest.approx(0.5)

    def test_nnz_per_block_uniform(self):
        pattern = layerwise_pattern(4, 8, SparsityRatio(1, 4))
        assert (pattern.nnz_per_block == 1).all()

    def test_dense_ratio(self):
        pattern = layerwise_pattern(4, 8, SparsityRatio(4, 4))
        assert pattern.density == 1.0

    def test_partial_last_block_clamped(self):
        # cols=10, M=4 -> last block holds 2 elements; N=3 clamps to 2.
        pattern = layerwise_pattern(2, 10, SparsityRatio(3, 4))
        assert pattern.nnz_per_block[0, -1] == 2

    def test_row_nnz(self):
        pattern = layerwise_pattern(3, 8, SparsityRatio(2, 4))
        assert (pattern.row_nnz() == 4).all()

    def test_num_blocks(self):
        assert layerwise_pattern(2, 10, SparsityRatio(1, 4)).num_blocks == 3


class TestRowwisePattern:
    def test_respects_half_m_cap(self):
        # Paper IV-A2: randomized N stays <= M/2.
        pattern = rowwise_pattern(100, 32, block_size=8, rng=make_rng(1))
        assert int(pattern.nnz_per_block.max()) <= 4

    def test_rows_differ(self):
        pattern = rowwise_pattern(100, 32, block_size=8, rng=make_rng(1))
        assert len(np.unique(pattern.row_nnz())) > 1

    def test_same_n_within_row(self):
        pattern = rowwise_pattern(10, 32, block_size=8, rng=make_rng(1))
        # All full blocks of a row share that row's N.
        full_blocks = pattern.nnz_per_block[:, :-1]
        assert (full_blocks == full_blocks[:, :1]).all()

    def test_deterministic_with_seed(self):
        a = rowwise_pattern(20, 16, 4, make_rng(5)).nnz_per_block
        b = rowwise_pattern(20, 16, 4, make_rng(5)).nnz_per_block
        assert (a == b).all()

    def test_custom_max_n(self):
        pattern = rowwise_pattern(50, 16, block_size=8, rng=make_rng(0), max_n=1)
        assert int(pattern.nnz_per_block.max()) <= 1

    def test_block_size_one_rejected(self):
        with pytest.raises(SparsityError):
            rowwise_pattern(4, 8, block_size=1, rng=make_rng(0))

    def test_bad_max_n(self):
        with pytest.raises(SparsityError):
            rowwise_pattern(4, 8, block_size=4, rng=make_rng(0), max_n=9)


class TestSparsePatternValidation:
    def test_mask_matches_counts(self):
        pattern = layerwise_pattern(4, 8, SparsityRatio(2, 4))
        mask = pattern.to_mask()
        assert mask.shape == (4, 8)
        assert int(mask.sum()) == pattern.total_nnz

    def test_mask_first_n_convention(self):
        pattern = layerwise_pattern(1, 4, SparsityRatio(2, 4))
        mask = pattern.to_mask()[0]
        assert mask.tolist() == [True, True, False, False]

    def test_bad_shape_rejected(self):
        with pytest.raises(SparsityError):
            SparsePattern(rows=2, cols=8, block_size=4, nnz_per_block=np.zeros((3, 2), dtype=np.int32))

    def test_overfull_block_rejected(self):
        bad = np.full((2, 2), 5, dtype=np.int32)
        with pytest.raises(SparsityError):
            SparsePattern(rows=2, cols=8, block_size=4, nnz_per_block=bad)

    def test_compressed_row_length(self):
        pattern = layerwise_pattern(2, 8, SparsityRatio(1, 4))
        assert (pattern.compressed_row_length() == 2).all()
