"""Unit tests for SPARSE_REPORT.csv emission."""

from repro.sparsity.report import write_sparse_report
from repro.sparsity.sparse_compute import SparseComputeSimulator
from repro.topology.layer import GemmLayer, SparsityRatio
from repro.utils.csvio import read_csv_rows


class TestSparseReport:
    def _results(self):
        sim = SparseComputeSimulator(8, 8)
        layers = [
            GemmLayer("a", m=16, n=16, k=32, sparsity=SparsityRatio(1, 4)),
            GemmLayer("b", m=16, n=16, k=32, sparsity=SparsityRatio(2, 4)),
        ]
        return [sim.simulate_layer(layer, with_fold_specs=False) for layer in layers]

    def test_writes_file(self, tmp_path):
        path = write_sparse_report(self._results(), tmp_path)
        assert path.name == "SPARSE_REPORT.csv"
        rows = read_csv_rows(path)
        assert len(rows) == 3  # header + 2 layers

    def test_header_has_paper_columns(self, tmp_path):
        path = write_sparse_report(self._results(), tmp_path)
        header = read_csv_rows(path)[0]
        assert "SparsityRepresentation" in header
        assert "OriginalFilterStorage(kB)" in header
        assert "NewFilterStorage(kB)" in header

    def test_sparser_layer_smaller_storage(self, tmp_path):
        path = write_sparse_report(self._results(), tmp_path)
        rows = read_csv_rows(path)
        header = rows[0]
        idx = header.index("NewFilterStorage(kB)")
        assert float(rows[1][idx]) < float(rows[2][idx])
