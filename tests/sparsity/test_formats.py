"""Unit tests for compressed storage formats (Figure 6 semantics)."""

import pytest

from repro.errors import SparsityError
from repro.sparsity.formats import (
    blocked_ellpack_storage,
    csc_storage,
    csr_storage,
    dense_storage,
    storage_for_representation,
)
from repro.sparsity.pattern import layerwise_pattern
from repro.topology.layer import SparsityRatio


class TestDenseStorage:
    def test_bits(self):
        est = dense_storage(4, 8, word_bits=16)
        assert est.data_bits == 4 * 8 * 16
        assert est.metadata_bits == 0

    def test_bytes_and_kb(self):
        est = dense_storage(64, 64, word_bits=16)
        assert est.total_bytes == 64 * 64 * 2
        assert est.total_kb == pytest.approx(8.0)

    def test_bad_word_bits(self):
        with pytest.raises(SparsityError):
            dense_storage(4, 4, word_bits=0)


class TestBlockedEllpack:
    def test_figure6_metadata_bits(self):
        # Block size 4 -> log2(4) = 2 metadata bits per non-zero.
        pattern = layerwise_pattern(4, 16, SparsityRatio(2, 4))
        est = blocked_ellpack_storage(pattern, word_bits=16)
        assert est.metadata_bits == pattern.total_nnz * 2

    def test_data_bits_are_nnz_words(self):
        pattern = layerwise_pattern(4, 16, SparsityRatio(1, 4))
        est = blocked_ellpack_storage(pattern, word_bits=16)
        assert est.data_bits == pattern.total_nnz * 16

    def test_compression_monotone_in_sparsity(self):
        dense_est = dense_storage(64, 64)
        sizes = []
        for n in (1, 2, 3, 4):
            pattern = layerwise_pattern(64, 64, SparsityRatio(n, 4))
            sizes.append(blocked_ellpack_storage(pattern).total_bits)
        assert sizes == sorted(sizes)
        assert sizes[-1] > dense_est.total_bits * 0.9  # 4:4 ~ dense + metadata

    def test_2_4_halves_data(self):
        pattern = layerwise_pattern(64, 64, SparsityRatio(2, 4))
        est = blocked_ellpack_storage(pattern)
        dense_est = dense_storage(64, 64)
        assert est.data_bits == dense_est.data_bits // 2


class TestCsrCsc:
    def test_csr_has_pointers_and_indices(self):
        pattern = layerwise_pattern(8, 32, SparsityRatio(2, 4))
        est = csr_storage(pattern)
        assert est.metadata_bits > 0
        assert est.representation == "csr"

    def test_csc_differs_from_csr_for_rectangular(self):
        pattern = layerwise_pattern(4, 256, SparsityRatio(2, 4))
        assert csr_storage(pattern).metadata_bits != csc_storage(pattern).metadata_bits

    def test_ellpack_metadata_cheaper_than_csr(self):
        # In-block indices (2 bits) beat full column indices (log2 cols).
        pattern = layerwise_pattern(64, 1024, SparsityRatio(2, 4))
        assert (
            blocked_ellpack_storage(pattern).metadata_bits
            < csr_storage(pattern).metadata_bits
        )


class TestDispatchAndRatios:
    def test_dispatch(self):
        pattern = layerwise_pattern(4, 16, SparsityRatio(2, 4))
        for rep in ("csr", "csc", "ellpack_block"):
            assert storage_for_representation(rep, pattern).representation == rep

    def test_unknown_representation(self):
        pattern = layerwise_pattern(4, 16, SparsityRatio(2, 4))
        with pytest.raises(SparsityError):
            storage_for_representation("coo", pattern)

    def test_compression_ratio(self):
        pattern = layerwise_pattern(64, 64, SparsityRatio(1, 4))
        dense_est = dense_storage(64, 64)
        ratio = blocked_ellpack_storage(pattern).compression_ratio(dense_est)
        # 1:4 keeps 25% of data + 2/16 metadata -> ~3.5x saving.
        assert 3.0 < ratio < 4.0
