"""Unit tests for the sparse WS compute model."""

import pytest

from repro.core.compute_sim import ComputeSimulator
from repro.errors import SparsityError
from repro.sparsity.pattern import layerwise_pattern
from repro.sparsity.sparse_compute import SparseComputeSimulator
from repro.topology.layer import GemmLayer, SparsityRatio


def _layer(n_ratio="2:4", m=32, n=40, k=64):
    return GemmLayer("g", m=m, n=n, k=k, sparsity=SparsityRatio.parse(n_ratio))


class TestDenseEquivalence:
    def test_dense_ratio_matches_dense_simulator(self):
        layer = _layer("4:4")
        sparse = SparseComputeSimulator(8, 8).simulate_layer(layer)
        dense = ComputeSimulator(8, 8, "ws").simulate_layer(layer, with_fold_specs=False)
        assert sparse.sparse_compute_cycles == dense.compute_cycles
        assert sparse.dense_compute_cycles == dense.compute_cycles

    def test_unannotated_layer_treated_dense(self):
        layer = GemmLayer("g", m=16, n=16, k=32)
        result = SparseComputeSimulator(8, 8).simulate_layer(layer)
        assert result.speedup == pytest.approx(1.0)


class TestLayerwiseSpeedup:
    @pytest.mark.parametrize("ratio,expected_keff", [("1:4", 16), ("2:4", 32), ("4:4", 64)])
    def test_effective_k(self, ratio, expected_keff):
        layer = _layer(ratio)
        result = SparseComputeSimulator(8, 8).simulate_layer(layer)
        # K=64: cycles scale with ceil(K_eff / 8) row folds.
        per_fold = 2 * 8 + 8 + 40 - 2
        fcols = 4  # M=32 on C=8
        assert result.sparse_compute_cycles == per_fold * (expected_keff // 8) * fcols

    def test_speedup_ordering(self):
        speeds = [
            SparseComputeSimulator(8, 8).simulate_layer(_layer(r)).speedup
            for r in ("1:4", "2:4", "3:4", "4:4")
        ]
        assert speeds == sorted(speeds, reverse=True)
        assert speeds[-1] == pytest.approx(1.0)

    def test_sparsity_never_slows_down(self):
        for ratio in ("1:8", "2:4", "3:4"):
            result = SparseComputeSimulator(8, 8).simulate_layer(_layer(ratio))
            assert result.sparse_compute_cycles <= result.dense_compute_cycles


class TestRowwise:
    def test_rowwise_faster_than_dense(self):
        layer = GemmLayer("g", m=64, n=32, k=128)
        result = SparseComputeSimulator(8, 8, seed=3).simulate_layer(
            layer, rowwise=True, block_size=8
        )
        # Random N <= M/2 -> at least ~2x fewer weight rows streamed.
        assert result.sparse_compute_cycles < result.dense_compute_cycles

    def test_rowwise_deterministic(self):
        layer = GemmLayer("g", m=64, n=32, k=128)
        a = SparseComputeSimulator(8, 8, seed=3).simulate_layer(layer, rowwise=True, block_size=8)
        b = SparseComputeSimulator(8, 8, seed=3).simulate_layer(layer, rowwise=True, block_size=8)
        assert a.sparse_compute_cycles == b.sparse_compute_cycles

    def test_lockstep_tile_maximum(self):
        # A tile's K_eff is its worst row: one dense row in an otherwise
        # sparse tile forces dense-like cycles for that tile.
        layer = GemmLayer("g", m=8, n=16, k=32)
        pattern = layerwise_pattern(8, 32, SparsityRatio(1, 4))
        pattern.nnz_per_block[0, :] = 4  # row 0 fully dense
        result = SparseComputeSimulator(8, 8).simulate_layer(layer, pattern=pattern)
        dense = result.dense_compute_cycles
        assert result.sparse_compute_cycles == dense  # single tile, max = K


class TestStorageAndSpecs:
    def test_storage_attached(self):
        result = SparseComputeSimulator(8, 8).simulate_layer(_layer("2:4"))
        assert result.compressed_storage.total_bits < result.dense_storage.total_bits
        assert result.storage_saving > 1.5

    def test_fold_specs_cycles_sum(self):
        result = SparseComputeSimulator(8, 8).simulate_layer(_layer("2:4"))
        assert sum(s.cycles for s in result.fold_specs) == result.sparse_compute_cycles

    def test_fold_specs_filter_traffic_compressed(self):
        sparse = SparseComputeSimulator(8, 8).simulate_layer(_layer("1:4"))
        dense = SparseComputeSimulator(8, 8).simulate_layer(_layer("4:4"))
        sparse_filter = sum(
            f.num_words for s in sparse.fold_specs for f in s.fetches if f.operand == "filter"
        )
        dense_filter = sum(
            f.num_words for s in dense.fold_specs for f in s.fetches if f.operand == "filter"
        )
        assert sparse_filter < dense_filter / 2

    def test_without_fold_specs(self):
        result = SparseComputeSimulator(8, 8).simulate_layer(
            _layer(), with_fold_specs=False
        )
        assert result.fold_specs == []

    def test_pattern_shape_mismatch_rejected(self):
        pattern = layerwise_pattern(4, 4, SparsityRatio(2, 4))
        with pytest.raises(SparsityError):
            SparseComputeSimulator(8, 8).simulate_layer(_layer(), pattern=pattern)

    def test_bad_array(self):
        with pytest.raises(SparsityError):
            SparseComputeSimulator(0, 8)


class TestBlockSizeStudy:
    def test_larger_blocks_give_finer_control(self):
        """Figure 8's insight: with bigger M you can express lower N/M."""
        layer = GemmLayer("g", m=32, n=32, k=256)
        cycles_small_m = SparseComputeSimulator(8, 8).simulate_layer(
            GemmLayer("g", m=32, n=32, k=256, sparsity=SparsityRatio(1, 4))
        ).sparse_compute_cycles
        cycles_large_m = SparseComputeSimulator(8, 8).simulate_layer(
            GemmLayer("g", m=32, n=32, k=256, sparsity=SparsityRatio(1, 32))
        ).sparse_compute_cycles
        assert cycles_large_m < cycles_small_m
