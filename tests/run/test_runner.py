"""Unit tests for the one-call simulation driver."""

import pytest

from repro.config.system import (
    ArchitectureConfig,
    EnergyConfig,
    LayoutConfig,
    SparsityConfig,
    SystemConfig,
)
from repro.run.runner import run_simulation
from repro.topology.models import toy_conv, toy_gemm


def _config(**sections):
    base = SystemConfig(arch=ArchitectureConfig(array_rows=8, array_cols=8, dataflow="ws"))
    return base.replace(**sections) if sections else base


class TestRunSimulation:
    def test_basic_run_no_reports(self):
        outputs = run_simulation(_config(), toy_conv(), write_reports=False)
        assert outputs.total_cycles > 0
        assert outputs.report_paths == []
        assert outputs.energy_report is None

    def test_reports_written(self, tmp_path):
        outputs = run_simulation(_config(), toy_conv(), output_dir=tmp_path)
        assert len(outputs.report_paths) == 3
        for path in outputs.report_paths:
            assert path.exists()

    def test_layout_feature(self, tmp_path):
        cfg = _config(layout=LayoutConfig(enabled=True, num_banks=4,
                                          bandwidth_per_bank_words=16))
        outputs = run_simulation(cfg, toy_conv(), output_dir=tmp_path)
        assert len(outputs.layout_results) == len(toy_conv())
        assert all(r.evaluator == "vectorized" for r in outputs.layout_results)
        names = [p.name for p in outputs.report_paths]
        assert "LAYOUT_REPORT.csv" in names

    def test_layout_evaluator_knob_is_consumed(self):
        """config.layout.evaluator selects the evaluator, bit-exactly."""
        results = {}
        for name in ("reference", "vectorized"):
            cfg = _config(
                layout=LayoutConfig(
                    enabled=True, num_banks=2, bandwidth_per_bank_words=16,
                    evaluator=name,
                )
            )
            outputs = run_simulation(cfg, toy_conv(), write_reports=False)
            results[name] = outputs.layout_results
        for ref, vec in zip(results["reference"], results["vectorized"]):
            assert (ref.evaluator, vec.evaluator) == ("reference", "vectorized")
            assert ref.slowdown == vec.slowdown
            assert ref.layout_cycles == vec.layout_cycles

    def test_layout_disabled_by_default(self):
        outputs = run_simulation(_config(), toy_conv(), write_reports=False)
        assert outputs.layout_results == []

    def test_energy_feature(self, tmp_path):
        cfg = _config(energy=EnergyConfig(enabled=True))
        outputs = run_simulation(cfg, toy_conv(), output_dir=tmp_path)
        assert outputs.energy_report is not None
        assert outputs.total_energy_mj > 0
        assert outputs.edp > 0
        names = [p.name for p in outputs.report_paths]
        assert "ENERGY_REPORT.csv" in names
        assert "architecture.yaml" in names
        assert "action_counts.yaml" in names

    def test_sparsity_feature(self, tmp_path):
        cfg = _config(sparsity=SparsityConfig(sparsity_support=True))
        topo = toy_gemm().with_sparsity("2:4")
        outputs = run_simulation(cfg, topo, output_dir=tmp_path)
        assert len(outputs.sparse_results) == len(topo)
        assert any(p.name == "SPARSE_REPORT.csv" for p in outputs.report_paths)
        for result in outputs.sparse_results:
            assert result.sparse_compute_cycles < result.dense_compute_cycles

    def test_rowwise_sparsity_feature(self, tmp_path):
        cfg = _config(
            sparsity=SparsityConfig(
                sparsity_support=True, optimized_mapping=True, block_size=4
            )
        )
        outputs = run_simulation(cfg, toy_gemm(), output_dir=tmp_path, write_reports=False)
        assert outputs.sparse_results
        assert all(r.block_size == 4 for r in outputs.sparse_results)

    def test_edp_zero_without_energy(self):
        outputs = run_simulation(_config(), toy_conv(), write_reports=False)
        assert outputs.edp == 0.0
        assert outputs.total_energy_mj == 0.0

    def test_output_dir_uses_run_name(self, tmp_path):
        outputs = run_simulation(_config(), toy_conv(), output_dir=tmp_path)
        run_name = outputs.config.run.run_name
        assert all(run_name in str(p) for p in outputs.report_paths)
