"""Crash-recovery integration test: a real worker dies mid-unit.

The full distributed story end to end, with no in-process shortcuts:

1. a sweep producer spools units and polls for results
   (``run_local_worker=False`` — it executes nothing itself);
2. a real external worker subprocess (``scale-sim-repro worker``) claims
   a unit and — thanks to an armed stall fault — wedges inside it with a
   live lease;
3. SIGKILL takes the worker out, exactly like an OOM kill would: no
   cleanup, the claim and lease sidecar left behind;
4. a second worker subprocess reclaims the orphaned unit (dead same-host
   owner — no TTL wait) and finishes the batch;
5. the producer, which never learned any of this happened, stitches a
   sweep report byte-identical to a serial fault-free run.
"""

import json
import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.config.system import RunConfig, SystemConfig
from repro.core.report import write_sweep_report
from repro.run.executors import QueueExecutor
from repro.run.sweep import Axis, SweepRunner, SweepSpec
from repro.topology.models import toy_gemm

_SRC = Path(__file__).resolve().parents[2] / "src"


def _spec() -> SweepSpec:
    return SweepSpec(
        base=SystemConfig(run=RunConfig(run_name="unit_crash_recovery")),
        axes=[Axis("arch.dataflow", ("os", "ws"))],
        topologies=[toy_gemm()],
        name="crash_recovery",
    )


def _worker_env(fault_plan: list[dict] | None = None) -> dict:
    env = dict(os.environ, PYTHONPATH=str(_SRC))
    env.pop("REPRO_FAULT_PLAN", None)
    if fault_plan is not None:
        env["REPRO_FAULT_PLAN"] = json.dumps(fault_plan)
    return env


def _spawn_worker(spool: Path, env: dict) -> subprocess.Popen:
    return subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.run.cli",
            "worker",
            "--spool",
            str(spool),
            "--poll",
            "0.05",
        ],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )


def _wait_for(predicate, timeout: float, message: str) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.05)
    raise AssertionError(f"timed out waiting for {message}")


@pytest.mark.timeout(240)
def test_sigkilled_worker_is_reclaimed_and_sweep_is_byte_identical(tmp_path):
    reference = SweepRunner().run(_spec())
    reference_csv = write_sweep_report(reference, tmp_path / "reference.csv")

    spool = tmp_path / "spool"
    executor = QueueExecutor(
        spool,
        run_local_worker=False,
        poll_interval=0.05,
        timeout=180.0,
        max_attempts=3,
        lease_ttl=60.0,  # recovery must come from pid-death, not TTL decay
    )
    runner = SweepRunner(executor=executor)
    results: list = []
    errors: list = []

    def produce() -> None:
        try:
            results.extend(runner.run(_spec()))
        except Exception as exc:  # pragma: no cover - surfaced below
            errors.append(exc)

    producer = threading.Thread(target=produce)
    producer.start()
    doomed = None
    rescuer = None
    try:
        # Worker 1 claims the first unit and wedges inside it for longer
        # than this whole test is allowed to take.
        doomed = _spawn_worker(
            spool,
            _worker_env([{"kind": "stall", "unit": 0, "attempt": 1, "seconds": 300}]),
        )
        _wait_for(
            lambda: any(spool.glob("*/*.lease.json")),
            timeout=60.0,
            message="worker 1 to claim a unit and write its lease",
        )
        os.kill(doomed.pid, signal.SIGKILL)
        doomed.wait(timeout=30.0)

        # Worker 2 (no faults) reclaims the orphan and drains the batch.
        rescuer = _spawn_worker(spool, _worker_env())
        producer.join(timeout=180.0)
        assert not producer.is_alive(), "producer never collected all units"
    finally:
        for proc in (doomed, rescuer):
            if proc is not None and proc.poll() is None:
                proc.kill()
                proc.wait(timeout=30.0)
        producer.join(timeout=10.0)

    assert not errors, errors
    recovered_csv = write_sweep_report(results, tmp_path / "recovered.csv")
    assert recovered_csv.read_bytes() == reference_csv.read_bytes()
