"""The shipped configs/ and topologies/ files must stay loadable and
consistent with the built-in presets and model zoo."""

from pathlib import Path

import pytest

from repro.config.parser import load_config, parse_config_text, serialize_config
from repro.config.presets import get_preset
from repro.run.cli import main
from repro.topology.models import get_model
from repro.topology.topology import Topology

REPO = Path(__file__).parent.parent.parent
CONFIGS = sorted((REPO / "configs").glob("*.cfg"))
TOPOLOGIES = sorted((REPO / "topologies").glob("*.csv"))


class TestShippedConfigs:
    @pytest.mark.parametrize("path", CONFIGS, ids=lambda p: p.stem)
    def test_loads(self, path):
        config = load_config(path)
        assert config.run.run_name == path.stem

    def test_tpu_config_matches_preset(self):
        shipped = load_config(REPO / "configs" / "google_tpu_v2.cfg")
        preset = get_preset("google_tpu_v2")
        assert shipped.arch.array_rows == preset.arch.array_rows
        assert shipped.dram.technology == preset.dram.technology
        assert shipped.dram.read_queue_entries == preset.dram.read_queue_entries

    def test_sparse_config_enables_rowwise(self):
        config = load_config(REPO / "configs" / "sparse_32x32.cfg")
        assert config.sparsity.sparsity_support
        assert config.sparsity.optimized_mapping
        assert config.sparsity.block_size == 4

    @pytest.mark.parametrize("path", CONFIGS, ids=lambda p: p.stem)
    def test_round_trips_through_serializer(self, path):
        config = load_config(path)
        assert parse_config_text(serialize_config(config)) == config


class TestShippedTopologies:
    @pytest.mark.parametrize("path", TOPOLOGIES, ids=lambda p: p.stem)
    def test_loads(self, path):
        topo = Topology.from_csv(path)
        assert len(topo) >= 1

    def test_resnet18_conv_matches_zoo(self):
        shipped = Topology.from_csv(REPO / "topologies" / "resnet18_conv.csv")
        zoo = [l for l in get_model("resnet18") if hasattr(l, "ifmap_h")]
        assert len(shipped) == len(zoo)
        assert shipped[0].to_gemm() == zoo[0].to_gemm()

    def test_vit_base_matches_zoo(self):
        shipped = Topology.from_csv(REPO / "topologies" / "vit_base.csv")
        zoo = get_model("vit_base", blocks=1)
        assert [l.name for l in shipped] == [l.name for l in zoo]


class TestCliWithShippedFiles:
    def test_config_plus_topology(self, tmp_path, capsys):
        code = main(
            [
                "-c",
                str(REPO / "configs" / "scale_sim_v2_default.cfg"),
                "-t",
                str(REPO / "topologies" / "vit_s.csv"),
                "-p",
                str(tmp_path),
                "--no-reports",
            ]
        )
        assert code == 0
        assert "total cycles:" in capsys.readouterr().out
