"""Unit tests for the executor fault-tolerance layer.

Covers the pieces individually — envelopes, retries, quarantine, lease
reclaim, batch reaping, sweep failure policies — while
``test_fault_injection_fuzz.py`` and ``test_crash_recovery.py`` exercise
them end to end under randomised and process-killing schedules.
"""

import multiprocessing
import os
import socket
import time

import pytest

from repro.config.system import RunConfig, SystemConfig
from repro.core.report import write_failure_report, write_sweep_report
from repro.errors import ConfigError, ExecutionError
from repro.run import faults
from repro.run.executors import (
    QUARANTINE_DIRNAME,
    PoolExecutor,
    QueueExecutor,
    ResultEnvelope,
    SerialExecutor,
    TaskRecord,
    UnitFailure,
    _backoff_seconds,
    _lease_path,
    _result_path,
    _spool_task_paths,
    _write_lease,
    process_spool,
    reap_dead_batches,
    reclaim_expired,
)
from repro.run.sweep import Axis, SweepFailure, SweepRunner, SweepSpec
from repro.store.artifact_store import dump_json_atomic, dump_pickle_atomic
from repro.topology.models import toy_gemm


def _base() -> SystemConfig:
    return SystemConfig(run=RunConfig(run_name="unit_fault_tolerance"))


def _spec(**kwargs) -> SweepSpec:
    defaults = dict(
        base=_base(),
        axes=[Axis("arch.dataflow", ("os", "ws"))],
        topologies=[toy_gemm()],
        name="unit_ft",
    )
    defaults.update(kwargs)
    return SweepSpec(**defaults)


def _double(unit, workers=1):
    """Module-level mapped function so every executor can pickle it."""
    return unit * 2


def _return_none(unit, workers=1):
    return None


def _poison(unit, workers=1):
    raise ValueError(f"poison unit {unit!r}")


def _fast_queue(spool, **kwargs):
    defaults = dict(poll_interval=0.01, timeout=30.0, backoff_base=0.001)
    defaults.update(kwargs)
    return QueueExecutor(spool, **defaults)


def _dead_pid() -> int:
    """A pid guaranteed dead: a child that already exited."""
    proc = multiprocessing.Process(target=_noop)
    proc.start()
    proc.join()
    return proc.pid


def _noop():
    pass


# ----------------------------------------------------------- envelopes


def test_envelope_unwrap_success_and_failure():
    assert ResultEnvelope(ok=True, value=41).unwrap() == 41
    try:
        raise ValueError("boom")
    except ValueError as exc:
        failure = UnitFailure.from_exception(exc, attempt=2)
    envelope = ResultEnvelope(ok=False, failure=failure, attempt=2)
    with pytest.raises(ExecutionError, match="after 2 attempt"):
        envelope.unwrap()
    # The original exception rides along and is chained on raise.
    assert isinstance(failure.exception(), ValueError)
    assert "boom" in failure.traceback_text


def test_falsy_payloads_are_still_done(tmp_path):
    # Regression: the pre-envelope queue protocol treated a result that
    # unpickled to None as "not written yet" and polled until timeout.
    executor = _fast_queue(tmp_path, timeout=10.0)
    assert executor.map_units(_return_none, [1, 2]) == [None, None]
    assert executor.map_units(_double, [0]) == [0]  # falsy but real


def test_backoff_is_exponential_and_capped():
    assert _backoff_seconds(0.05, 1) == 0.05
    assert _backoff_seconds(0.05, 2) == 0.1
    assert _backoff_seconds(0.05, 20) == 5.0  # BACKOFF_CAP


# ------------------------------------------------------------- retries


def test_serial_executor_retries_transient_fault():
    executor = SerialExecutor(max_attempts=3, backoff_base=0.001)
    with faults.armed([faults.FaultSpec(kind="raise", unit=0, attempt=1)]):
        envelopes = executor.map_units_enveloped(_double, [5, 6])
    assert [env.value for env in envelopes] == [10, 12]
    assert envelopes[0].attempt == 2  # first attempt faulted
    assert envelopes[1].attempt == 1


def test_pool_executor_retries_transient_fault():
    executor = PoolExecutor(2, max_attempts=3, backoff_base=0.001)
    with faults.armed([faults.FaultSpec(kind="raise", unit=1, attempt=1)]):
        assert executor.map_units(_double, [1, 2, 3]) == [2, 4, 6]


def test_queue_executor_recovers_torn_result_write(tmp_path):
    executor = _fast_queue(tmp_path, max_attempts=3)
    with faults.armed([faults.FaultSpec(kind="corrupt", unit=0, attempt=1)]):
        assert executor.map_units(_double, [5, 6, 7]) == [10, 12, 14]
    assert list(tmp_path.iterdir()) == []  # spool fully retired


def test_serial_executor_exhausts_attempt_budget():
    executor = SerialExecutor(max_attempts=2, backoff_base=0.001)
    envelopes = executor.map_units_enveloped(_poison, [9])
    assert not envelopes[0].ok
    assert envelopes[0].failure.attempts == 2
    assert envelopes[0].failure.error_class == "ValueError"
    with pytest.raises(ExecutionError) as exc_info:
        envelopes[0].unwrap()
    assert isinstance(exc_info.value.__cause__, ValueError)
    # map_units stays the bare executable-spec loop: raw exception.
    with pytest.raises(ValueError, match="poison"):
        executor.map_units(_poison, [9])


# ---------------------------------------------------------- quarantine


def test_queue_executor_quarantines_exhausted_units(tmp_path):
    executor = _fast_queue(tmp_path, max_attempts=2)
    with pytest.raises(ExecutionError, match="poison"):
        executor.map_units(_poison, [3])
    quarantine = tmp_path / QUARANTINE_DIRNAME
    parked = sorted(quarantine.glob("*.task.pkl"))
    assert len(parked) == 1 and "unit_000000" in parked[0].name
    traceback_text = parked[0].with_name(
        parked[0].name[: -len(".task.pkl")] + ".traceback.txt"
    ).read_text()
    assert "ValueError" in traceback_text and "attempts: 2" in traceback_text
    # Only the quarantine survives; the batch dir itself is retired.
    assert [p.name for p in tmp_path.iterdir()] == [QUARANTINE_DIRNAME]


def test_quarantined_units_are_not_rerun(tmp_path):
    executor = _fast_queue(tmp_path, max_attempts=1)
    with pytest.raises(ExecutionError):
        executor.map_units(_poison, [1])
    # A later pass over the same spool must not pick parked tasks up.
    assert process_spool(tmp_path) == 0


# ------------------------------------------------------- lease reclaim


def test_reclaim_expired_takes_over_dead_workers_claim(tmp_path):
    batch = tmp_path / f"batch_{os.getpid()}_0001"
    batch.mkdir()
    (task_path,) = _spool_task_paths(batch, 1)
    record = TaskRecord(fn=_double, unit=21, attempt=1)
    claim = task_path.with_name(task_path.name + ".claim.12345")
    dump_pickle_atomic(claim, record)
    now = time.time()
    dump_json_atomic(
        _lease_path(claim),
        {
            "owner_pid": _dead_pid(),
            "owner_host": socket.gethostname(),
            "claimed_at": now,
            "heartbeat_at": now,  # fresh heartbeat: death alone must expire it
            "lease_ttl": 300.0,
            "attempt": 1,
        },
    )
    assert reclaim_expired(tmp_path) == 1
    assert not claim.exists() and not _lease_path(claim).exists()
    # The task is claimable again, as the *next* attempt.
    assert process_spool(tmp_path) == 1
    envelope = _read_result(task_path)
    assert envelope.ok and envelope.value == 42
    assert envelope.attempt == 2


def test_reclaim_respects_live_lease(tmp_path):
    batch = tmp_path / f"batch_{os.getpid()}_0001"
    batch.mkdir()
    (task_path,) = _spool_task_paths(batch, 1)
    claim = task_path.with_name(task_path.name + ".claim.12345")
    dump_pickle_atomic(claim, TaskRecord(fn=_double, unit=1))
    _write_lease(claim, attempt=1, ttl=300.0)  # this process, fresh heartbeat
    assert reclaim_expired(tmp_path) == 0
    assert claim.exists()


def test_reclaim_falls_back_to_mtime_without_sidecar(tmp_path):
    batch = tmp_path / f"batch_{os.getpid()}_0001"
    batch.mkdir()
    (task_path,) = _spool_task_paths(batch, 1)
    claim = task_path.with_name(task_path.name + ".claim.12345")
    dump_pickle_atomic(claim, TaskRecord(fn=_double, unit=2))
    old = time.time() - 3600.0
    os.utime(claim, (old, old))
    assert reclaim_expired(tmp_path, lease_ttl=60.0) == 1
    assert task_path.exists()


def _read_result(task_path):
    import pickle

    return pickle.loads(_result_path(task_path).read_bytes())


# ------------------------------------------------- cleanup and reaping


def test_cleanup_removes_stale_claims_and_batch_dir(tmp_path):
    # Regression: _cleanup used to unlink only tasks and results, so a
    # leftover claim (a stalled duplicate worker) kept the batch dir —
    # and the spool — growing forever.
    executor = _fast_queue(tmp_path)
    batch = executor._new_batch_dir()
    task_paths = _spool_task_paths(batch, 2)
    for task_path in task_paths:
        dump_pickle_atomic(task_path, TaskRecord(fn=_double, unit=0))
    claim = task_paths[0].with_name(task_paths[0].name + ".claim.999")
    dump_pickle_atomic(claim, TaskRecord(fn=_double, unit=0))
    _write_lease(claim, attempt=1, ttl=300.0)
    executor._cleanup(batch, task_paths)
    assert not batch.exists()


def test_reap_dead_batches(tmp_path):
    dead = tmp_path / f"batch_{_dead_pid()}_0001"
    dead.mkdir()
    (dead / "unit_000000.task.pkl").write_bytes(b"x")
    live = tmp_path / f"batch_{os.getpid()}_0001"
    live.mkdir()
    (live / "unit_000000.task.pkl").write_bytes(b"x")
    empty = tmp_path / "batch_garbage"
    empty.mkdir()
    quarantine = tmp_path / QUARANTINE_DIRNAME
    quarantine.mkdir()
    (quarantine / "evidence.txt").write_text("keep me")
    assert reap_dead_batches(tmp_path) == 2  # dead producer + empty dir
    assert not dead.exists() and not empty.exists()
    assert live.exists() and quarantine.exists()


def test_process_spool_reap_flag(tmp_path):
    dead = tmp_path / f"batch_{_dead_pid()}_0001"
    dead.mkdir()
    (dead / "unit_000000.result.pkl").write_bytes(b"x")
    assert process_spool(tmp_path, reap=True) == 0
    assert not dead.exists()


def test_legacy_tuple_tasks_keep_raw_results(tmp_path):
    # Pre-envelope producers spool bare (fn, unit) tuples and read raw
    # payloads back; the protocol upgrade must not break them.
    batch = tmp_path / f"batch_{os.getpid()}_0001"
    batch.mkdir()
    (task_path,) = _spool_task_paths(batch, 1)
    dump_pickle_atomic(task_path, (_double, 8))
    assert process_spool(tmp_path) == 1
    assert _read_result(task_path) == 16
    assert not list(batch.glob("*.lease.json"))  # no lease for legacy tasks


# ------------------------------------------------ sweep failure policy


def test_runner_validates_failure_policy_and_max_attempts(tmp_path):
    with pytest.raises(ConfigError, match="failure_policy"):
        SweepRunner(failure_policy="shrug")
    with pytest.raises(ConfigError, match="max_attempts"):
        SweepRunner(executor=SerialExecutor(), max_attempts=5)
    runner = SweepRunner(max_attempts=5)
    assert runner.executor.max_attempts == 5


def test_sweep_raise_policy_chains_original_fault():
    plan = [faults.FaultSpec(kind="raise", unit=0, attempt=a) for a in (1, 2)]
    runner = SweepRunner(max_attempts=2)
    with faults.armed(plan):
        with pytest.raises(ExecutionError) as exc_info:
            runner.run(_spec())
    assert isinstance(exc_info.value.__cause__, faults.FaultInjected)


def test_sweep_degrade_policy_matches_fault_free_rows(tmp_path):
    spec = _spec()
    reference = SweepRunner().run(spec)
    reference_csv = write_sweep_report(reference, tmp_path / "ref.csv")

    plan = [faults.FaultSpec(kind="raise", unit=0, attempt=a) for a in (1, 2)]
    runner = SweepRunner(failure_policy="degrade", max_attempts=2)
    with faults.armed(plan):
        results = runner.run(_spec())

    # One point survives, one fails; the surviving row is byte-identical.
    assert len(results) == 1 and len(runner.last_failures) == 1
    degraded_csv = write_sweep_report(results, tmp_path / "deg.csv")
    reference_lines = reference_csv.read_text().splitlines()
    degraded_lines = degraded_csv.read_text().splitlines()
    assert degraded_lines[0] == reference_lines[0]
    assert all(line in reference_lines for line in degraded_lines[1:])

    failure = runner.last_failures[0]
    assert failure.error_class == "FaultInjected"
    assert failure.attempts == 2
    assert failure.index == 0
    assert "FaultInjected" in failure.traceback_text


def test_sweep_degrade_successes_are_cached_for_rerun():
    plan = [faults.FaultSpec(kind="raise", unit=0, attempt=a) for a in (1, 2)]
    runner = SweepRunner(failure_policy="degrade", max_attempts=2)
    with faults.armed(plan):
        first = runner.run(_spec())
    assert len(first) == 1
    # Disarmed re-run through the same runner: the surviving point comes
    # from cache, only the failed one re-simulates, and nothing fails.
    second = runner.run(_spec())
    assert len(second) == 2 and runner.last_failures == []
    assert any(result.from_cache for result in second)


def test_write_failure_report_roundtrip(tmp_path):
    failures = [
        SweepFailure(
            index=3,
            topology_name="toy_gemm",
            assignment=(("arch.dataflow", "ws"),),
            config=_base(),
            attempts=2,
            error_class="ValueError",
            message="boom",
            traceback_text="Traceback line one\nValueError: boom\n",
        )
    ]
    path = write_failure_report(failures, tmp_path / "failures.csv")
    lines = path.read_text().splitlines()
    assert lines[0] == "PointID,Topology,Assignment,Attempts,ErrorClass,Error"
    assert "arch.dataflow=ws" in lines[1]
    assert "ValueError" in lines[1]
    assert "\n" not in lines[1]  # traceback flattened to one cell
    empty = write_failure_report([], tmp_path / "empty.csv")
    assert empty.read_text().splitlines() == [lines[0]]
