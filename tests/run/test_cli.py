"""Unit tests for the CLI."""

import pytest

from repro.run.cli import build_parser, main


class TestArgumentParsing:
    def test_preset_and_model(self):
        args = build_parser().parse_args(
            ["--preset", "scale_sim_v2_default", "--model", "toy_gemm"]
        )
        assert args.preset == "scale_sim_v2_default"
        assert args.model == "toy_gemm"

    def test_config_and_topology(self):
        args = build_parser().parse_args(["-c", "x.cfg", "-t", "net.csv"])
        assert args.config == "x.cfg"
        assert args.topology == "net.csv"

    def test_source_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--model", "toy_gemm"])

    def test_mutually_exclusive_sources(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["-c", "x.cfg", "--preset", "scale_sim_v2_default", "--model", "toy_gemm"]
            )


class TestMain:
    def test_preset_model_run(self, tmp_path, capsys):
        code = main(
            ["--preset", "scale_sim_v2_default", "--model", "toy_gemm", "-p", str(tmp_path)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "total cycles:" in out
        assert "COMPUTE_REPORT" in out

    def test_no_reports_flag(self, tmp_path, capsys):
        code = main(
            [
                "--preset",
                "scale_sim_v2_default",
                "--model",
                "toy_gemm",
                "-p",
                str(tmp_path),
                "--no-reports",
            ]
        )
        assert code == 0
        assert "report:" not in capsys.readouterr().out

    def test_config_file_and_topology_csv(self, tmp_path, capsys):
        cfg = tmp_path / "c.cfg"
        cfg.write_text("[general]\nrun_name = cli_test\n")
        topo = tmp_path / "t.csv"
        topo.write_text("Layer name, M, N, K\ng1, 8, 8, 8\n")
        code = main(["-c", str(cfg), "-t", str(topo), "-p", str(tmp_path), "--no-reports"])
        assert code == 0
        assert "cli_test" in capsys.readouterr().out

    def test_scaled_model(self, tmp_path, capsys):
        code = main(
            [
                "--preset",
                "scale_sim_v2_default",
                "--model",
                "resnet18",
                "--scale",
                "16",
                "-p",
                str(tmp_path),
                "--no-reports",
            ]
        )
        assert code == 0
        assert "resnet18" in capsys.readouterr().out

    def test_layout_evaluator_flag_parses(self):
        args = build_parser().parse_args(
            [
                "--preset",
                "scale_sim_v2_default",
                "--model",
                "toy_gemm",
                "--layout-evaluator",
                "reference",
            ]
        )
        assert args.layout_evaluator == "reference"

    def test_layout_evaluator_rejects_unknown(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                [
                    "--preset",
                    "scale_sim_v2_default",
                    "--model",
                    "toy_gemm",
                    "--layout-evaluator",
                    "turbo",
                ]
            )

    def test_layout_evaluator_override_runs(self, tmp_path, capsys):
        code = main(
            [
                "--preset",
                "scale_sim_v2_default",
                "--model",
                "toy_gemm",
                "-p",
                str(tmp_path),
                "--no-reports",
                "--layout-evaluator",
                "reference",
            ]
        )
        assert code == 0
        assert "total cycles:" in capsys.readouterr().out

    def test_energy_output_for_energy_preset(self, tmp_path, capsys):
        code = main(
            [
                "--preset",
                "eyeriss_like",
                "--model",
                "toy_gemm",
                "-p",
                str(tmp_path),
                "--no-reports",
            ]
        )
        assert code == 0
        assert "energy:" in capsys.readouterr().out
