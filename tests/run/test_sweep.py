"""Unit tests for the sweep-execution subsystem (repro.run.sweep)."""

import pytest

from repro.config.system import (
    ArchitectureConfig,
    EnergyConfig,
    RunConfig,
    SystemConfig,
)
from repro.core.report import write_sweep_report
from repro.errors import ConfigError, ReportError
from repro.run.cli import main
from repro.run.sweep import (
    Axis,
    ResultCache,
    SweepRunner,
    SweepSpec,
    apply_override,
    content_key,
    single_point,
)
from repro.topology.models import toy_conv, toy_gemm


def _base() -> SystemConfig:
    return SystemConfig(run=RunConfig(run_name="unit_sweep"))


def _spec(**kwargs) -> SweepSpec:
    defaults = dict(
        base=_base(),
        axes=[Axis("arch.dataflow", ("os", "ws"))],
        topologies=[toy_gemm()],
        name="unit",
    )
    defaults.update(kwargs)
    return SweepSpec(**defaults)


class TestAxis:
    def test_fields_default_to_name(self):
        axis = Axis("dram.channels", (1, 2))
        assert axis.fields == ("dram.channels",)

    def test_multi_field_axis(self):
        axis = Axis("array", (8, 16), fields=("arch.array_rows", "arch.array_cols"))
        assert axis.fields == ("arch.array_rows", "arch.array_cols")

    def test_empty_values_rejected(self):
        with pytest.raises(ConfigError):
            Axis("dram.channels", ())

    def test_undotted_field_rejected(self):
        with pytest.raises(ConfigError):
            Axis("channels", (1, 2))

    def test_run_section_not_sweepable(self):
        with pytest.raises(ConfigError):
            Axis("run.run_name", ("a", "b"))


class TestApplyOverride:
    def test_sets_nested_field(self):
        config = apply_override(_base(), "dram.channels", 4)
        assert config.dram.channels == 4
        assert config.arch == _base().arch

    def test_unknown_field_rejected(self):
        with pytest.raises(ConfigError):
            apply_override(_base(), "dram.bogus", 1)

    def test_invalid_value_fails_at_construction(self):
        with pytest.raises(ConfigError):
            apply_override(_base(), "dram.channels", 0)


class TestSweepSpecExpand:
    def test_point_count_is_cross_product(self):
        spec = _spec(
            axes=[Axis("arch.dataflow", ("os", "ws", "is")), Axis("dram.channels", (1, 2))],
            topologies=[toy_gemm(), toy_conv()],
        )
        assert spec.num_points == 12
        assert len(spec.expand()) == 12

    def test_ordering_topology_outer_last_axis_fastest(self):
        spec = _spec(
            axes=[Axis("arch.dataflow", ("os", "ws")), Axis("dram.channels", (1, 2))],
            topologies=[toy_gemm(), toy_conv()],
        )
        points = spec.expand()
        assert [p.topology.name for p in points[:4]] == ["toy_gemm"] * 4
        assert [p.assignment for p in points[:4]] == [
            (("arch.dataflow", "os"), ("dram.channels", 1)),
            (("arch.dataflow", "os"), ("dram.channels", 2)),
            (("arch.dataflow", "ws"), ("dram.channels", 1)),
            (("arch.dataflow", "ws"), ("dram.channels", 2)),
        ]
        assert points[4].topology.name == "toy_conv"

    def test_multi_field_axis_applies_to_all_fields(self):
        spec = _spec(axes=[Axis("array", (8, 16), fields=("arch.array_rows", "arch.array_cols"))])
        points = spec.expand()
        assert [(p.config.arch.array_rows, p.config.arch.array_cols) for p in points] == [
            (8, 8),
            (16, 16),
        ]

    def test_mapping_axes_accepted(self):
        spec = _spec(axes={"dram.channels": (1, 2, 4)})
        assert [p.config.dram.channels for p in spec.expand()] == [1, 2, 4]

    def test_run_names_unique_and_prefixed(self):
        points = _spec().expand()
        names = [p.config.run.run_name for p in points]
        assert len(set(names)) == len(names)
        assert all(name.startswith("unit_") for name in names)

    def test_empty_axes_is_one_point_per_topology(self):
        spec = _spec(axes=[], topologies=[toy_gemm(), toy_conv()])
        assert [p.assignment for p in spec.expand()] == [(), ()]

    def test_no_topologies_rejected(self):
        with pytest.raises(ConfigError):
            _spec(topologies=[])

    def test_duplicate_axis_rejected(self):
        with pytest.raises(ConfigError):
            _spec(axes=[Axis("dram.channels", (1,)), Axis("dram.channels", (2,))])


class TestContentKey:
    def test_stable_for_equal_inputs(self):
        assert content_key(_base(), toy_gemm()) == content_key(_base(), toy_gemm())

    def test_differs_across_configs_and_topologies(self):
        base = _base()
        assert content_key(base, toy_gemm()) != content_key(
            apply_override(base, "dram.channels", 2), toy_gemm()
        )
        assert content_key(base, toy_gemm()) != content_key(base, toy_conv())

    def test_ignores_run_metadata(self):
        renamed = _base().replace(run=RunConfig(run_name="other", output_dir="elsewhere"))
        assert content_key(_base(), toy_gemm()) == content_key(renamed, toy_gemm())


class TestSweepRunner:
    def test_results_in_grid_order_with_run_names(self):
        results = SweepRunner().run(_spec())
        assert [r.index for r in results] == [0, 1]
        assert [r.assignment_dict["arch.dataflow"] for r in results] == ["os", "ws"]
        assert all(r.run_result.run_name == r.config.run.run_name for r in results)
        assert all(r.total_cycles > 0 for r in results)

    def test_worker_count_edge_cases_agree_with_serial(self):
        spec = _spec(
            axes=[Axis("arch.dataflow", ("os", "ws", "is")), Axis("dram.channels", (1, 2))],
            topologies=[toy_gemm(), toy_conv()],
        )
        serial = SweepRunner(workers=1).run(spec)
        for workers in (2, 16):
            parallel = SweepRunner(workers=workers).run(spec)
            assert [r.total_cycles for r in parallel] == [r.total_cycles for r in serial]
            assert [r.total_stall_cycles for r in parallel] == [
                r.total_stall_cycles for r in serial
            ]
            assert [r.assignment for r in parallel] == [r.assignment for r in serial]

    def test_parallel_csv_bitwise_identical_to_serial(self, tmp_path):
        spec = _spec(
            base=_base().replace(energy=EnergyConfig(enabled=True)),
            axes=[Axis("array", (8, 16), fields=("arch.array_rows", "arch.array_cols"))],
            topologies=[toy_gemm(), toy_conv()],
        )
        serial_csv = write_sweep_report(
            SweepRunner(workers=1).run(spec), tmp_path / "serial.csv"
        )
        parallel_csv = write_sweep_report(
            SweepRunner(workers=4).run(spec), tmp_path / "parallel.csv"
        )
        assert serial_csv.read_bytes() == parallel_csv.read_bytes()

    def test_repeated_sweep_hits_cache(self):
        cache = ResultCache()
        spec = _spec()
        first = SweepRunner(cache=cache).run(spec)
        assert all(not r.from_cache for r in first)
        assert (cache.hits, cache.misses) == (0, 2)
        second = SweepRunner(cache=cache).run(spec)
        assert all(r.from_cache for r in second)
        assert (cache.hits, cache.misses) == (2, 2)
        assert [r.total_cycles for r in second] == [r.total_cycles for r in first]

    def test_changed_config_misses_cache(self):
        cache = ResultCache()
        SweepRunner(cache=cache).run(_spec())
        SweepRunner(cache=cache).run(
            _spec(base=apply_override(_base(), "arch.bandwidth_words", 99))
        )
        assert cache.hits == 0
        assert cache.misses == 4

    def test_duplicate_points_simulated_once(self):
        # A genuinely duplicated axis value: both points have identical
        # content, so only the first is simulated.
        spec = _spec(axes=[Axis("arch.dataflow", ("os", "os"))])
        cache = ResultCache()
        results = SweepRunner(cache=cache).run(spec)
        assert len(cache) == 1
        assert [r.from_cache for r in results] == [False, True]
        assert results[0].total_cycles == results[1].total_cycles
        # Counters agree with the per-point labels: one simulated miss,
        # one duplicate served as a hit.
        assert (cache.hits, cache.misses) == (1, 1)

    def test_disk_cache_persists_across_instances(self, tmp_path):
        spec = _spec()
        SweepRunner(cache=ResultCache(tmp_path / "cache")).run(spec)
        cache = ResultCache(tmp_path / "cache")
        results = SweepRunner(cache=cache).run(spec)
        assert all(r.from_cache for r in results)
        assert cache.misses == 0

    def test_invalid_worker_count_rejected(self):
        with pytest.raises(ConfigError):
            SweepRunner(workers=0)

    def test_single_point_helper(self):
        result = single_point(_base(), toy_gemm())
        assert result.index == 0
        assert result.topology_name == "toy_gemm"
        assert result.total_cycles > 0

    def test_sparse_only_sweep_skips_dense(self):
        base = apply_override(_base(), "sparsity.sparsity_support", True)
        [result] = SweepRunner().run(_spec(base=base, axes=[], simulate_dense=False))
        assert result.total_cycles == 0  # dense pass skipped
        assert result.sparse_compute_cycles > 0
        # The dense flag is part of the content hash: the two variants
        # of the same point must not share cache entries.
        assert content_key(base, toy_gemm(), True) != content_key(base, toy_gemm(), False)

    def test_energy_and_sparsity_payloads(self):
        base = _base().replace(energy=EnergyConfig(enabled=True))
        base = apply_override(base, "sparsity.sparsity_support", True)
        [result] = SweepRunner().run(_spec(base=base, axes=[]))
        assert result.energy_report is not None
        assert result.energy_mj > 0
        assert result.edp == result.total_cycles * result.energy_mj
        assert result.sparse_compute_cycles > 0


class TestSweepReport:
    def test_empty_results_rejected(self, tmp_path):
        with pytest.raises(ReportError):
            write_sweep_report([], tmp_path / "empty.csv")

    def test_header_includes_axis_columns(self, tmp_path):
        results = SweepRunner().run(_spec())
        path = write_sweep_report(results, tmp_path / "report.csv")
        header = path.read_text().splitlines()[0]
        assert header.startswith("PointID,Topology,arch.dataflow,TotalCycles")


class TestSweepCli:
    def test_sweep_subcommand(self, tmp_path, capsys):
        code = main(
            [
                "sweep",
                "--preset",
                "scale_sim_v2_default",
                "--model",
                "toy_gemm",
                "--set",
                "arch.dataflow=os,ws",
                "--workers",
                "2",
                "-p",
                str(tmp_path),
                "--name",
                "cli_unit",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "cli_unit (2 points, 2 workers)" in out
        assert (tmp_path / "cli_unit_report.csv").exists()

    def test_sweep_cache_dir_reuse(self, tmp_path, capsys):
        argv = [
            "sweep",
            "--preset",
            "scale_sim_v2_default",
            "--model",
            "toy_gemm",
            "--set",
            "dram.channels=1,2",
            "-p",
            str(tmp_path),
            "--cache-dir",
            str(tmp_path / "cache"),
        ]
        assert main(argv) == 0
        capsys.readouterr()
        assert main(argv) == 0
        assert "cache:    2 hits / 0 misses" in capsys.readouterr().out

    def test_grouping_summary_line(self, tmp_path, capsys):
        code = main(
            [
                "sweep",
                "--preset",
                "scale_sim_v2_default",
                "--model",
                "toy_gemm",
                "--set",
                "dram.channels=1,2",
                "-p",
                str(tmp_path),
                "--name",
                "cli_group",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        # dram.* is a groupable axis class: both points share one unit.
        assert "grouping: 2 points -> 1 simulation unit" in out

    def test_bad_axis_option_exits(self, tmp_path):
        with pytest.raises(SystemExit):
            main(
                [
                    "sweep",
                    "--preset",
                    "scale_sim_v2_default",
                    "--model",
                    "toy_gemm",
                    "--set",
                    "dram.channels",
                    "-p",
                    str(tmp_path),
                ]
            )


class TestLayoutFanoutGrouping:
    """Sweep points differing only in layout.* ride one trace pass."""

    def _layout_spec(self, **kwargs) -> SweepSpec:
        import dataclasses

        from repro.config.system import LayoutConfig

        base = _base().replace(
            layout=LayoutConfig(enabled=True, num_banks=1, bandwidth_per_bank_words=16)
        )
        defaults = dict(
            base=base,
            axes=[Axis("layout.num_banks", (1, 2, 4))],
            topologies=[toy_conv()],
            name="layout_grid",
        )
        defaults.update(kwargs)
        return SweepSpec(**defaults)

    def test_grouped_results_match_per_point_simulation(self):
        from repro.run.sweep import _simulate_point

        spec = self._layout_spec()
        results = SweepRunner(workers=1).run(spec)
        assert len(results) == 3
        for result in results:
            solo = _simulate_point((result.config, spec.topologies[0], True))
            assert result.layout_results == solo.layout_results
            assert result.total_cycles == solo.run_result.total_cycles

    def test_grouping_unit_structure(self):
        from repro.run.sweep import _grouped_units

        spec = self._layout_spec()
        units = _grouped_units(spec.expand(), True)
        assert len(units) == 1  # one fan-out group of three points
        members, (kind, args) = units[0]
        assert kind == "group"
        assert members == [0, 1, 2]
        assert [config.layout.num_banks for config in args[0]] == [1, 2, 4]

    def test_dram_and_layout_axes_share_one_unit(self):
        from repro.run.sweep import _grouped_units

        spec = self._layout_spec(
            axes=[Axis("layout.num_banks", (1, 2)), Axis("dram.channels", (1, 2))]
        )
        units = _grouped_units(spec.expand(), True)
        # dram.* and layout.* are both groupable axis classes: the whole
        # 2x2 cross collapses into one simulation unit.
        assert [len(members) for members, _ in units] == [4]
        assert units[0][1][0] == "group"

    def test_non_groupable_axes_stay_separate(self):
        from repro.run.sweep import _grouped_units

        spec = self._layout_spec(
            axes=[Axis("layout.num_banks", (1, 2)), Axis("arch.bandwidth_words", (10, 20))]
        )
        units = _grouped_units(spec.expand(), True)
        # Two arch.* values -> two groups of two layout points.
        assert sorted(len(members) for members, _ in units) == [2, 2]

    def test_layout_disabled_points_still_group(self):
        from repro.run.sweep import _grouped_units

        # layout.* differences with the study disabled still share one
        # compute plan (the dense run reads neither section).
        spec = _spec(axes=[Axis("layout.num_banks", (1, 2))])
        units = _grouped_units(spec.expand(), True)
        assert [len(members) for members, _ in units] == [2]
        results = SweepRunner(workers=1).run(spec)
        assert results[0].total_cycles == results[1].total_cycles
        assert all(not r.layout_results for r in results)

    def test_mixed_layout_enabled_group_respects_each_point(self):
        from repro.run.sweep import _simulate_point

        # layout.enabled is itself groupable: both points share one unit,
        # but only the enabled point may carry layout results.
        for values in ((False, True), (True, False)):
            spec = self._layout_spec(axes=[Axis("layout.enabled", values)])
            results = SweepRunner(workers=1).run(spec)
            for result in results:
                solo = _simulate_point((result.config, spec.topologies[0], True))
                assert result.layout_results == solo.layout_results, values
            by_flag = {r.config.layout.enabled: r for r in results}
            assert by_flag[True].layout_results
            assert not by_flag[False].layout_results

    def test_parallel_grouped_sweep_identical_to_serial(self, tmp_path):
        spec = self._layout_spec()
        serial = SweepRunner(workers=1).run(spec)
        parallel = SweepRunner(workers=2).run(spec)
        assert [r.layout_results for r in serial] == [
            r.layout_results for r in parallel
        ]
        serial_csv = tmp_path / "serial.csv"
        parallel_csv = tmp_path / "parallel.csv"
        write_sweep_report(serial, serial_csv)
        write_sweep_report(parallel, parallel_csv)
        assert serial_csv.read_bytes() == parallel_csv.read_bytes()

    def test_grouped_points_cache_individually(self):
        spec = self._layout_spec()
        cache = ResultCache()
        SweepRunner(workers=1, cache=cache).run(spec)
        assert cache.misses == 3
        again = SweepRunner(workers=1, cache=cache).run(spec)
        assert cache.hits == 3
        assert all(result.from_cache for result in again)

    def test_layout_sweep_report_written(self, tmp_path):
        from repro.core.report import write_layout_sweep_report

        spec = self._layout_spec()
        results = SweepRunner(workers=1).run(spec)
        path = write_layout_sweep_report(results, tmp_path / "layout.csv")
        lines = path.read_text().strip().splitlines()
        # header + 3 points x layers rows
        layers = len(results[0].layout_results)
        assert len(lines) == 1 + 3 * layers
        assert lines[0].startswith("PointID,LayerID,LayerName")

    def test_layout_report_refuses_empty(self, tmp_path):
        from repro.core.report import write_layout_sweep_report

        results = SweepRunner(workers=1).run(_spec())
        with pytest.raises(ReportError):
            write_layout_sweep_report(results, tmp_path / "layout.csv")


class TestDramFanoutGrouping:
    """Sweep points differing only in dram.* ride one compute plan."""

    def _dram_spec(self, **kwargs) -> SweepSpec:
        from repro.config.system import DramConfig

        base = _base().replace(dram=DramConfig(enabled=True, channels=1))
        defaults = dict(
            base=base,
            axes=[Axis("dram.channels", (1, 2, 4))],
            topologies=[toy_conv()],
            name="dram_grid",
        )
        defaults.update(kwargs)
        return SweepSpec(**defaults)

    def test_dram_axis_collapses_to_one_unit(self):
        from repro.run.sweep import _grouped_units

        units = _grouped_units(self._dram_spec().expand(), True)
        assert len(units) == 1
        members, (kind, args) = units[0]
        assert kind == "group"
        assert members == [0, 1, 2]
        assert [config.dram.channels for config in args[0]] == [1, 2, 4]

    def test_grouped_results_match_per_point_simulation(self):
        from repro.run.sweep import _simulate_point

        spec = self._dram_spec(
            axes=[
                Axis("dram.channels", (1, 2)),
                Axis(
                    "queue",
                    (4, 128),
                    fields=("dram.read_queue_entries", "dram.write_queue_entries"),
                ),
                Axis("dram.engine", ("batched", "reference")),
            ]
        )
        results = SweepRunner(workers=1).run(spec)
        assert len(results) == 8
        for result in results:
            solo = _simulate_point((result.config, spec.topologies[0], True))
            assert result.run_result.total_cycles == solo.run_result.total_cycles
            assert result.run_result.layers[0].timeline == (
                solo.run_result.layers[0].timeline
            )
            assert result.run_result.dram_stats == solo.run_result.dram_stats

    def test_engines_agree_inside_one_group(self):
        spec = self._dram_spec(axes=[Axis("dram.engine", ("reference", "batched"))])
        reference, batched = SweepRunner(workers=1).run(spec)
        assert reference.total_cycles == batched.total_cycles
        assert reference.run_result.dram_stats == batched.run_result.dram_stats

    def test_mixed_enabled_and_ideal_points_group(self):
        spec = self._dram_spec(axes=[Axis("dram.enabled", (False, True))])
        ideal, dram = SweepRunner(workers=1).run(spec)
        assert ideal.run_result.dram_stats is None
        assert dram.run_result.dram_stats is not None
        assert ideal.total_cycles != dram.total_cycles

    def test_energy_follows_the_memory_config(self):
        from repro.run.sweep import _simulate_point

        spec = self._dram_spec(
            base=self._dram_spec().base.replace(energy=EnergyConfig(enabled=True))
        )
        results = SweepRunner(workers=1).run(spec)
        energies = [result.energy_mj for result in results]
        assert all(energy > 0 for energy in energies)
        for result in results:
            solo = _simulate_point((result.config, spec.topologies[0], True))
            assert result.energy_mj == solo.energy_report.total_mj

    def test_grouped_points_cache_individually(self):
        cache = ResultCache()
        spec = self._dram_spec()
        SweepRunner(workers=1, cache=cache).run(spec)
        assert cache.misses == 3
        again = SweepRunner(workers=1, cache=cache).run(spec)
        assert cache.hits == 3
        assert all(result.from_cache for result in again)

    def test_parallel_grouped_sweep_csv_identical_to_serial(self, tmp_path):
        spec = self._dram_spec(topologies=[toy_gemm(), toy_conv()])
        serial_csv = write_sweep_report(
            SweepRunner(workers=1).run(spec), tmp_path / "serial.csv"
        )
        parallel_csv = write_sweep_report(
            SweepRunner(workers=3).run(spec), tmp_path / "parallel.csv"
        )
        assert serial_csv.read_bytes() == parallel_csv.read_bytes()

    def test_last_grouping_reports_collapse(self):
        runner = SweepRunner(workers=1)
        assert runner.last_grouping is None
        runner.run(self._dram_spec())
        assert runner.last_grouping == (3, 1)
        # A fully cached re-run simulates nothing.
        runner.run(self._dram_spec())
        assert runner.last_grouping == (0, 0)


class TestSweepCliLayoutReport:
    def test_layout_axis_sweep_writes_layout_report(self, tmp_path, capsys):
        from repro.config.parser import save_config
        from repro.config.system import LayoutConfig

        config = _base().replace(
            layout=LayoutConfig(enabled=True, num_banks=1, bandwidth_per_bank_words=16)
        )
        cfg_path = tmp_path / "layout_on.cfg"
        save_config(config, cfg_path)
        code = main(
            [
                "sweep",
                "-c",
                str(cfg_path),
                "--model",
                "toy_conv",
                "--set",
                "layout.num_banks=1,2",
                "-p",
                str(tmp_path),
                "--name",
                "cli_layout",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        report = tmp_path / "cli_layout_layout_report.csv"
        assert report.exists()
        assert str(report) in out
        assert report.read_text().startswith("PointID,LayerID,LayerName,Dataflow")


class TestArtifactStoreIntegration:
    """SweepRunner(store=...) must never change results — only reuse work."""

    def _report_bytes(self, tmp_path, name, store=None):
        from repro.core.simulator import clear_compute_plan_cache

        clear_compute_plan_cache()
        runner = SweepRunner(store=store)
        spec = SweepSpec(
            base=_base(),
            axes=[Axis("arch.dataflow", ("os", "ws")), Axis("dram.channels", (1, 2))],
            topologies=[toy_gemm(), toy_conv()],
            name="store_equiv",
        )
        results = runner.run(spec)
        path = tmp_path / f"{name}.csv"
        write_sweep_report(results, path)
        return path.read_bytes()

    def test_report_csv_identical_with_and_without_store(self, tmp_path):
        from repro.store.artifact_store import ArtifactStore

        reference = self._report_bytes(tmp_path, "no_store")
        store = ArtifactStore(tmp_path / "store")
        cold = self._report_bytes(tmp_path, "cold", store=store)
        assert store.misses > 0  # the cold run populated the store
        warm = self._report_bytes(tmp_path, "warm", store=store)
        assert store.hits > 0  # the warm run actually served from it
        assert cold == reference
        assert warm == reference

    def test_store_survives_pool_workers(self, tmp_path):
        from repro.core.simulator import clear_compute_plan_cache
        from repro.store.artifact_store import ArtifactStore

        store = ArtifactStore(tmp_path / "store")
        spec = _spec(axes=[Axis("arch.dataflow", ("os", "ws", "is"))])
        reference = SweepRunner().run(_spec(axes=[Axis("arch.dataflow", ("os", "ws", "is"))]))
        # Fork workers inherit the warm in-process plan LRU; clear it so
        # their lookups actually reach (and populate) the shared store.
        clear_compute_plan_cache()
        results = SweepRunner(workers=2, store=store).run(spec)
        for got, want in zip(results, reference):
            assert got.run_result == want.run_result
        # Workers persisted artifacts even though their counters are lost.
        assert list((tmp_path / "store").glob("layer_compute/*.pkl"))

    def test_active_store_restored_after_unit(self, tmp_path):
        from repro.store.artifact_store import ArtifactStore, active_store

        assert active_store() is None
        SweepRunner(store=ArtifactStore(tmp_path)).run(_spec())
        assert active_store() is None


class TestCliExecutorAndStore:
    def _argv(self, tmp_path, *extra):
        return [
            "sweep",
            "--preset",
            "scale_sim_v2_default",
            "--model",
            "toy_gemm",
            "--set",
            "dram.channels=1,2",
            "-p",
            str(tmp_path),
            *extra,
        ]

    def test_store_dir_prints_stats_and_reuses(self, tmp_path, capsys):
        from repro.core.simulator import clear_compute_plan_cache

        argv = self._argv(tmp_path, "--store-dir", str(tmp_path / "store"))
        clear_compute_plan_cache()
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "store:    0 hits /" in out
        clear_compute_plan_cache()
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "store:" in out and " 0 misses" in out

    def test_executor_serial_matches_default(self, tmp_path, capsys):
        assert main(self._argv(tmp_path, "--name", "default")) == 0
        capsys.readouterr()
        assert main(self._argv(tmp_path, "--name", "serial", "--executor", "serial")) == 0
        default = (tmp_path / "default_report.csv").read_text()
        serial = (tmp_path / "serial_report.csv").read_text()
        # Reports differ only in the run-name column derived from --name.
        assert default.replace("default_", "") == serial.replace("serial_", "")

    def test_executor_queue_spools_and_matches(self, tmp_path, capsys):
        assert main(self._argv(tmp_path, "--name", "plain")) == 0
        capsys.readouterr()
        code = main(self._argv(tmp_path, "--name", "queued", "--executor", "queue"))
        assert code == 0
        assert "queued (2 points" in capsys.readouterr().out
        plain = (tmp_path / "plain_report.csv").read_text()
        queued = (tmp_path / "queued_report.csv").read_text()
        assert plain.replace("plain_", "") == queued.replace("queued_", "")

    def test_executor_pool_name(self, tmp_path, capsys):
        code = main(
            self._argv(tmp_path, "--executor", "pool", "--workers", "2", "--name", "pooled")
        )
        assert code == 0
        assert (tmp_path / "pooled_report.csv").exists()
