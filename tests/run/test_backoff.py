"""Deterministic, seedable retry jitter across executors and client.

Satellite of the service PR: every retry sleep in the system —
executor attempt backoff, queue-executor requeue delay, client
429/503 retries — flows through
:func:`repro.run.executors._backoff_seconds`, which applies equal
jitter (a uniform scale in ``[0.5, 1.0]``) from an injectable
``random.Random``.  Seeded, the whole schedule is reproducible; the
fuzz and fault-injection suites rely on that.
"""

import random

from repro.run.executors import (
    BACKOFF_CAP,
    PoolExecutor,
    QueueExecutor,
    SerialExecutor,
    _backoff_seconds,
)


def test_unjittered_backoff_is_exponential_and_capped():
    assert _backoff_seconds(0.5, 1) == 0.5
    assert _backoff_seconds(0.5, 2) == 1.0
    assert _backoff_seconds(0.5, 3) == 2.0
    assert _backoff_seconds(0.5, 10) == BACKOFF_CAP


def test_jitter_stays_in_equal_jitter_band():
    rng = random.Random(123)
    for retry in range(1, 12):
        bare = _backoff_seconds(1.0, retry)
        jittered = _backoff_seconds(1.0, retry, rng)
        assert 0.5 * bare <= jittered <= bare


def test_seeded_jitter_is_deterministic():
    first = [_backoff_seconds(1.0, n, random.Random(7)) for n in range(1, 6)]
    second = [_backoff_seconds(1.0, n, random.Random(7)) for n in range(1, 6)]
    assert first == second

    # A sequential draw from one rng differs draw to draw (it is jitter,
    # not a constant factor) but replays identically under the same seed.
    rng_a, rng_b = random.Random(7), random.Random(7)
    seq_a = [_backoff_seconds(1.0, 1, rng_a) for _ in range(5)]
    seq_b = [_backoff_seconds(1.0, 1, rng_b) for _ in range(5)]
    assert seq_a == seq_b
    assert len(set(seq_a)) > 1


def test_different_seeds_decorrelate():
    seq_a = [_backoff_seconds(1.0, 1, random.Random(1)) for _ in range(3)]
    seq_b = [_backoff_seconds(1.0, 1, random.Random(2)) for _ in range(3)]
    assert seq_a != seq_b


def test_executors_accept_backoff_seed(tmp_path):
    # The seed threads through each executor's constructor to a private
    # random.Random; two same-seed instances carry identical rng state.
    for make in (
        lambda: SerialExecutor(backoff_seed=5),
        lambda: PoolExecutor(2, backoff_seed=5),
        lambda: QueueExecutor(tmp_path / "spool", backoff_seed=5),
    ):
        first, second = make(), make()
        assert first._backoff_rng.random() == second._backoff_rng.random()


def test_seeded_serial_executor_retry_schedule_is_reproducible(monkeypatch):
    import repro.run.executors as executors_module

    def flaky_factory():
        calls = {"n": 0}

        def flaky(unit):
            calls["n"] += 1
            if calls["n"] < 3:
                raise ValueError("transient")
            return unit

        return flaky

    schedules = []
    for _ in range(2):
        sleeps: list[float] = []
        monkeypatch.setattr(executors_module.time, "sleep", sleeps.append)
        executor = SerialExecutor(max_attempts=3, backoff_seed=99)
        [envelope] = executor.map_units_enveloped(flaky_factory(), ["u"])
        assert envelope.ok and envelope.value == "u"
        schedules.append(tuple(sleeps))
    assert schedules[0] == schedules[1]
    assert len(schedules[0]) == 2  # two retries -> two jittered sleeps
