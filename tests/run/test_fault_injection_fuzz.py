"""Recovery fuzz: executors under randomised seeded fault schedules.

The invariant under test (satellite of the fault-tolerance PR): any
schedule whose faults only touch attempts *below* the attempt budget is
recoverable by construction, so the run must converge to results
bit-identical to a fault-free run — no quarantined units, no spool
residue.  Schedules that exhaust the budget must quarantine with the
last traceback parked alongside.

The ``exit`` fault kind hard-kills its host process (``os._exit``), so
it only ever runs inside sacrificial worker subprocesses — never under
an in-process worker (it would take pytest down) and never under a
``multiprocessing.Pool`` (the pool cannot survive losing a worker).
"""

import multiprocessing
import threading

import pytest

from repro.errors import ExecutionError
from repro.run import faults
from repro.run.executors import (
    QUARANTINE_DIRNAME,
    PoolExecutor,
    QueueExecutor,
    SerialExecutor,
    process_spool,
)

SEEDS = range(5)

#: Kinds safe under any executor (no process loss, no spool required).
IN_PROCESS_KINDS = ("raise", "stall")

#: Kinds the spool protocol must additionally absorb.
QUEUE_KINDS = ("raise", "stall", "corrupt")

UNITS = list(range(6))


def _triple(unit, workers=1):
    """Module-level mapped function so every executor can pickle it."""
    return unit * 3


def _fault_free():
    return [unit * 3 for unit in UNITS]


@pytest.mark.parametrize("seed", SEEDS)
def test_serial_executor_converges_under_fuzz(seed):
    plan = faults.seeded_plan(
        seed, len(UNITS), kinds=IN_PROCESS_KINDS, max_attempt=2, stall_seconds=0.01
    )
    executor = SerialExecutor(max_attempts=4, backoff_base=0.001)
    with faults.armed(plan):
        envelopes = executor.map_units_enveloped(_triple, UNITS)
    assert [env.unwrap() for env in envelopes] == _fault_free()
    assert all(env.attempt <= 3 for env in envelopes)  # recoverable plans


@pytest.mark.parametrize("seed", SEEDS)
def test_pool_executor_converges_under_fuzz(seed):
    plan = faults.seeded_plan(
        seed, len(UNITS), kinds=IN_PROCESS_KINDS, max_attempt=2, stall_seconds=0.01
    )
    executor = PoolExecutor(2, max_attempts=4, backoff_base=0.001)
    with faults.armed(plan):
        assert executor.map_units(_triple, UNITS) == _fault_free()


@pytest.mark.parametrize("seed", SEEDS)
def test_queue_executor_converges_under_fuzz(seed, tmp_path):
    plan = faults.seeded_plan(
        seed, len(UNITS), kinds=QUEUE_KINDS, max_attempt=2, stall_seconds=0.01
    )
    executor = QueueExecutor(
        tmp_path, poll_interval=0.01, timeout=60.0, max_attempts=4, backoff_base=0.001
    )
    with faults.armed(plan):
        assert executor.map_units(_triple, UNITS) == _fault_free()
    assert not (tmp_path / QUARANTINE_DIRNAME).exists()
    assert list(tmp_path.iterdir()) == []  # spool fully retired


def test_exhausted_schedule_quarantines_with_traceback(tmp_path):
    # Fault every attempt of unit 2 up to and past the budget.
    plan = [
        faults.FaultSpec(kind="raise", unit=2, attempt=attempt)
        for attempt in range(1, 5)
    ]
    executor = QueueExecutor(
        tmp_path, poll_interval=0.01, timeout=60.0, max_attempts=3, backoff_base=0.001
    )
    with faults.armed(plan):
        envelopes = executor.map_units_enveloped(_triple, UNITS)
    assert [env.ok for env in envelopes] == [True, True, False, True, True, True]
    assert envelopes[2].failure.attempts == 3
    parked = sorted((tmp_path / QUARANTINE_DIRNAME).glob("*unit_000002*"))
    names = [path.name for path in parked]
    assert any(name.endswith(".task.pkl") for name in names)
    traceback_files = [path for path in parked if path.name.endswith(".traceback.txt")]
    assert "FaultInjected" in traceback_files[0].read_text()
    # Siblings of the poison unit still converged.
    assert [env.value for env in envelopes if env.ok] == [0, 3, 9, 12, 15]


def _producer(executor, results, errors):
    try:
        results.extend(executor.map_units(_triple, UNITS))
    except Exception as exc:  # pragma: no cover - surfaced by the assert
        errors.append(exc)


def test_hard_exit_worker_is_reclaimed_by_next_worker(tmp_path):
    # A worker hard-exits mid-unit (the os._exit fault == SIGKILL/OOM):
    # its claim and lease survive it, the next worker's reclaim pass
    # notices the dead same-host owner and re-runs the unit.  The
    # producer never learns any of this happened.
    plan = [faults.FaultSpec(kind="exit", unit=0, attempt=1)]
    executor = QueueExecutor(
        tmp_path,
        run_local_worker=False,
        poll_interval=0.05,
        timeout=120.0,
        max_attempts=3,
        lease_ttl=60.0,  # reclaim must come from pid-death, not TTL decay
        backoff_base=0.001,
    )
    results: list = []
    errors: list = []
    producer = threading.Thread(target=_producer, args=(executor, results, errors))
    with faults.armed(plan):
        producer.start()
        exit_codes = []
        for _ in range(20):
            worker = multiprocessing.Process(target=process_spool, args=(tmp_path,))
            worker.start()
            worker.join(timeout=60.0)
            exit_codes.append(worker.exitcode)
            producer.join(timeout=0.2)
            if not producer.is_alive():
                break
    producer.join(timeout=120.0)
    assert not producer.is_alive()
    assert not errors
    assert results == _fault_free()
    # At least one sacrificial worker actually died the hard way.
    assert faults.HARD_EXIT_CODE in exit_codes
    assert not (tmp_path / QUARANTINE_DIRNAME).exists()
