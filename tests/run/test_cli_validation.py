"""Central CLI numeric validation: bad values fail parsing, clearly.

Satellite of the service PR: every strictly-positive numeric option —
``--workers``, ``--max-attempts``, ``--lease-ttl``, ``--poll``, and the
serve limits — goes through :func:`repro.run.cli.positive_int` /
:func:`positive_float`, so a zero or negative value dies in argparse
with a message naming the option, instead of surfacing later as a
deadlock or a silently-serial sweep.
"""

import argparse

import pytest

from repro.run.cli import (
    build_serve_parser,
    build_submit_parser,
    build_sweep_parser,
    build_worker_parser,
    positive_float,
    positive_int,
)

_SWEEP_BASE = ["--preset", "scale_sim_v2_default", "--model", "toy_gemm"]
_WORKER_BASE = ["--spool", "spool"]
_SERVE_BASE = ["--data-dir", "data"]


def test_positive_int_accepts_and_rejects():
    assert positive_int("3") == 3
    for bad in ("0", "-1", "1.5", "three"):
        with pytest.raises(argparse.ArgumentTypeError):
            positive_int(bad)


def test_positive_float_accepts_and_rejects():
    assert positive_float("0.5") == 0.5
    for bad in ("0", "-0.1", "nope"):
        with pytest.raises(argparse.ArgumentTypeError):
            positive_float(bad)
    # NaN compares false against everything: must be rejected, not let
    # through to poison a deadline computation.
    with pytest.raises(argparse.ArgumentTypeError):
        positive_float("nan")


@pytest.mark.parametrize(
    "argv",
    [
        _SWEEP_BASE + ["--workers", "0"],
        _SWEEP_BASE + ["--workers", "-2"],
        _SWEEP_BASE + ["--max-attempts", "0"],
        _SWEEP_BASE + ["--lease-ttl", "0"],
        _SWEEP_BASE + ["--lease-ttl", "-5"],
        _SWEEP_BASE + ["--scale", "0"],
    ],
)
def test_sweep_parser_rejects_non_positive_values(argv, capsys):
    with pytest.raises(SystemExit):
        build_sweep_parser().parse_args(argv)
    message = capsys.readouterr().err
    assert "expected a positive" in message


@pytest.mark.parametrize(
    "argv",
    [
        _WORKER_BASE + ["--poll", "0"],
        _WORKER_BASE + ["--poll", "-1"],
        _WORKER_BASE + ["--lease-ttl", "0"],
        _WORKER_BASE + ["--max-tasks", "0"],
    ],
)
def test_worker_parser_rejects_non_positive_values(argv, capsys):
    with pytest.raises(SystemExit):
        build_worker_parser().parse_args(argv)
    assert "expected a positive" in capsys.readouterr().err


@pytest.mark.parametrize(
    "argv",
    [
        _SERVE_BASE + ["--max-queued", "0"],
        _SERVE_BASE + ["--max-active", "0"],
        _SERVE_BASE + ["--workers", "0"],
        _SERVE_BASE + ["--max-attempts", "-1"],
        _SERVE_BASE + ["--lease-ttl", "0"],
        _SERVE_BASE + ["--drain-timeout", "0"],
    ],
)
def test_serve_parser_rejects_non_positive_values(argv, capsys):
    with pytest.raises(SystemExit):
        build_serve_parser().parse_args(argv)
    assert "expected a positive" in capsys.readouterr().err


def test_submit_parser_rejects_non_positive_values(capsys):
    base = _SWEEP_BASE
    with pytest.raises(SystemExit):
        build_submit_parser().parse_args(base + ["--poll", "0"])
    assert "expected a positive" in capsys.readouterr().err
    with pytest.raises(SystemExit):
        build_submit_parser().parse_args(base + ["--max-retries", "0"])


def test_valid_values_still_parse():
    args = build_sweep_parser().parse_args(
        _SWEEP_BASE + ["--workers", "4", "--max-attempts", "2", "--lease-ttl", "1.5"]
    )
    assert (args.workers, args.max_attempts, args.lease_ttl) == (4, 2, 1.5)
    args = build_serve_parser().parse_args(
        _SERVE_BASE + ["--max-queued", "3", "--max-active", "2"]
    )
    assert (args.max_queued, args.max_active) == (3, 2)
