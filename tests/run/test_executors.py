"""Unit tests for the pluggable sweep-execution backends (repro.run.executors)."""

import os
import pickle

import pytest

from repro.errors import ConfigError
from repro.run.executors import (
    AVAILABLE_EXECUTORS,
    Executor,
    PoolExecutor,
    QueueExecutor,
    SerialExecutor,
    _result_path,
    _spool_task_paths,
    make_executor,
    process_spool,
)
from repro.config.system import RunConfig, SystemConfig
from repro.run.sweep import Axis, SweepRunner, SweepSpec
from repro.store.artifact_store import dump_pickle_atomic
from repro.topology.models import toy_gemm


def _base() -> SystemConfig:
    return SystemConfig(run=RunConfig(run_name="unit_executors"))


def _spec(**kwargs) -> SweepSpec:
    defaults = dict(
        base=_base(),
        axes=[Axis("arch.dataflow", ("os", "ws"))],
        topologies=[toy_gemm()],
        name="unit",
    )
    defaults.update(kwargs)
    return SweepSpec(**defaults)


def _double(unit, workers=1):
    """Module-level mapped function so every executor can pickle it."""
    return unit * 2


def _double_times_workers(unit, workers=1):
    return unit * 2 * workers


def test_executor_protocol_matches_implementations(tmp_path):
    assert isinstance(SerialExecutor(), Executor)
    assert isinstance(PoolExecutor(2), Executor)
    assert isinstance(QueueExecutor(tmp_path), Executor)


def test_serial_executor_maps_in_order():
    executor = SerialExecutor()
    assert executor.workers == 1
    assert executor.map_units(_double, [1, 2, 3]) == [2, 4, 6]
    assert executor.map_units(_double, []) == []


def test_pool_executor_validates_workers():
    with pytest.raises(ConfigError):
        PoolExecutor(0)


def test_pool_executor_maps_in_order():
    executor = PoolExecutor(2)
    assert executor.map_units(_double, [1, 2, 3, 4]) == [2, 4, 6, 8]
    assert executor.map_units(_double, []) == []


def test_pool_executor_single_unit_gets_whole_budget():
    # A lone unit runs in-process and receives the full worker budget
    # (the pre-seam SweepRunner special case for one fan-out group).
    executor = PoolExecutor(4)
    assert executor.map_units(_double_times_workers, [3]) == [24]


def test_pool_executor_workers_one_is_serial():
    executor = PoolExecutor(1)
    assert executor.map_units(_double_times_workers, [1, 2]) == [2, 4]


def test_queue_executor_roundtrips_through_spool(tmp_path):
    executor = QueueExecutor(tmp_path / "spool")
    assert executor.map_units(_double, [5, 6, 7]) == [10, 12, 14]
    # Batch dirs are cleaned up after collection.
    assert list((tmp_path / "spool").iterdir()) == []


def test_queue_executor_multiple_batches(tmp_path):
    executor = QueueExecutor(tmp_path)
    assert executor.map_units(_double, [1]) == [2]
    assert executor.map_units(_double, [2, 3]) == [4, 6]


def test_queue_executor_external_worker(tmp_path):
    # Simulate a remote worker: enqueue without the local worker, drain
    # via process_spool (what the remote loop runs), then collect.
    spool = tmp_path / "spool"
    producer = QueueExecutor(spool, run_local_worker=False, timeout=10.0)
    batch_dir = producer._new_batch_dir()
    task_paths = _spool_task_paths(batch_dir, 3)
    for task_path, unit in zip(task_paths, [7, 8, 9]):
        dump_pickle_atomic(task_path, (_double, unit))
    assert process_spool(spool) == 3
    assert producer._collect(task_paths) == [14, 16, 18]


def test_process_spool_respects_max_tasks_and_claims(tmp_path):
    batch = tmp_path / f"batch_{os.getpid()}_0001"
    batch.mkdir()
    task_paths = _spool_task_paths(batch, 4)
    for task_path, unit in zip(task_paths, range(4)):
        dump_pickle_atomic(task_path, (_double, unit))
    assert process_spool(tmp_path, max_tasks=2) == 2
    assert process_spool(tmp_path) == 2  # the rest; claimed tasks stay claimed
    for index, task_path in enumerate(task_paths):
        result = pickle.loads(_result_path(task_path).read_bytes())
        assert result == index * 2


def test_process_spool_missing_dir_is_noop(tmp_path):
    assert process_spool(tmp_path / "nowhere") == 0


def test_queue_executor_timeout(tmp_path):
    executor = QueueExecutor(
        tmp_path, run_local_worker=False, poll_interval=0.01, timeout=0.05
    )
    with pytest.raises(TimeoutError, match="not completed"):
        executor.map_units(_double, [1, 2])


def test_queue_executor_validates_poll_interval(tmp_path):
    with pytest.raises(ConfigError):
        QueueExecutor(tmp_path, poll_interval=0.0)


def test_make_executor_by_name(tmp_path):
    assert set(AVAILABLE_EXECUTORS) == {"serial", "pool", "queue"}
    assert isinstance(make_executor("serial"), SerialExecutor)
    pool = make_executor("pool", workers=3)
    assert isinstance(pool, PoolExecutor) and pool.workers == 3
    queue = make_executor("queue", spool_dir=tmp_path)
    assert isinstance(queue, QueueExecutor)
    with pytest.raises(ConfigError, match="spool"):
        make_executor("queue")
    with pytest.raises(ConfigError, match="unknown executor"):
        make_executor("slurm")


# ------------------------------------------------- SweepRunner integration


def test_runner_workers_is_pool_sugar():
    serial = SweepRunner()
    assert isinstance(serial.executor, SerialExecutor)
    pooled = SweepRunner(workers=3)
    assert isinstance(pooled.executor, PoolExecutor)
    assert pooled.workers == 3


def test_runner_rejects_executor_plus_workers():
    with pytest.raises(ConfigError, match="not both"):
        SweepRunner(workers=2, executor=SerialExecutor())


def test_runner_explicit_executors_match_serial(tmp_path):
    spec = _spec()
    reference = SweepRunner().run(spec)
    for executor in (PoolExecutor(2), QueueExecutor(tmp_path / "spool")):
        results = SweepRunner(executor=executor).run(_spec())
        assert len(results) == len(reference)
        for got, want in zip(results, reference):
            assert got.total_cycles == want.total_cycles
            assert got.total_stall_cycles == want.total_stall_cycles
            assert got.run_result == want.run_result


def test_runner_queue_executor_with_groups(tmp_path):
    # dram.* axes collapse into one fan-out group; the group unit must
    # survive the spool's pickle round trip.
    spec = SweepSpec(
        base=_base(),
        axes=[Axis("dram.channels", (1, 2, 4))],
        topologies=[toy_gemm()],
        name="queue_group",
    )
    reference = SweepRunner().run(spec)
    runner = SweepRunner(executor=QueueExecutor(tmp_path))
    results = runner.run(spec)
    assert runner.last_grouping == (3, 1)
    for got, want in zip(results, reference):
        assert got.run_result == want.run_result
