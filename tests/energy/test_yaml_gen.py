"""Unit tests for Accelergy YAML artifact generation."""

from repro.config.system import ArchitectureConfig, EnergyConfig
from repro.energy.actions import ActionCounts
from repro.energy.yaml_gen import (
    ACTION_TRANSLATION,
    action_counts_description,
    architecture_description,
    write_action_counts_yaml,
    write_architecture_yaml,
)
from repro.utils.yamlio import parse_simple_yaml


class TestArchitectureYaml:
    def test_structure(self):
        desc = architecture_description(
            ArchitectureConfig(array_rows=4, array_cols=4), EnergyConfig(enabled=True)
        )
        arch = desc["architecture"]
        assert arch["version"] == "0.4"
        system = arch["subtree"][0]
        local_names = [c["name"] for c in system["local"]]
        assert local_names == ["ifmap_sram", "filter_sram", "ofmap_sram"]

    def test_pe_template(self):
        desc = architecture_description(
            ArchitectureConfig(array_rows=4, array_cols=4), EnergyConfig(enabled=True)
        )
        pe = desc["architecture"]["subtree"][0]["subtree"][0]
        assert pe["name"] == "pe[0..15]"
        names = [c["name"] for c in pe["local"]]
        assert names == ["ifmap_spad", "weights_spad", "psum_spad", "mac"]

    def test_written_file_parses(self, tmp_path):
        path = write_architecture_yaml(
            ArchitectureConfig(), EnergyConfig(enabled=True), tmp_path
        )
        parsed = parse_simple_yaml(path.read_text())
        assert "architecture" in parsed


class TestActionCountsYaml:
    def _counts(self):
        counts = ActionCounts(cycles=100)
        counts.add("ifmap_sram", "read_random", 10)
        counts.add("ifmap_sram", "read_repeat", 90)
        counts.add("mac", "mac_random", 640)
        return counts

    def test_translation_table_covers_paper_actions(self):
        # Figure 14's six action types.
        assert set(ACTION_TRANSLATION) == {
            "idle",
            "read_random",
            "read_repeat",
            "write_random",
            "write_repeat",
            "write_cst_data",
        }

    def test_repeated_access_has_zero_deltas(self):
        t = ACTION_TRANSLATION["read_repeat"]
        assert (t["data_delta"], t["address_delta"]) == (0, 0)

    def test_random_access_toggles_both_deltas(self):
        t = ACTION_TRANSLATION["read_random"]
        assert (t["data_delta"], t["address_delta"]) == (1, 1)

    def test_description_entries(self):
        desc = action_counts_description(self._counts())
        entries = desc["action_counts"]["local"]
        assert len(entries) == 3
        sram_random = [
            e for e in entries if e["name"] == "ifmap_sram" and e["action_name"] == "read_random"
        ][0]
        assert sram_random["counts"] == 10
        assert sram_random["arguments"] == {"data_delta": 1, "address_delta": 1}

    def test_untranslated_actions_have_no_arguments(self):
        desc = action_counts_description(self._counts())
        mac = [e for e in desc["action_counts"]["local"] if e["name"] == "mac"][0]
        assert "arguments" not in mac

    def test_written_file_parses(self, tmp_path):
        path = write_action_counts_yaml(self._counts(), tmp_path)
        parsed = parse_simple_yaml(path.read_text())
        assert parsed["action_counts"]["version"] == "0.4"
        assert len(parsed["action_counts"]["local"]) == 3
