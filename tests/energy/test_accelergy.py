"""Unit tests for AccelergyLite energy estimation."""

import pytest

from repro.config.system import ArchitectureConfig, EnergyConfig, SystemConfig
from repro.core.simulator import Simulator
from repro.energy.accelergy import (
    SYSTEM_STATE_REFERENCE_MW,
    AccelergyLite,
    EnergyReport,
    system_state_power_mw,
)
from repro.errors import EnergyModelError
from repro.topology.models import toy_conv, toy_gemm


def _setup(dataflow="os", rows=8, cols=8):
    arch = ArchitectureConfig(
        array_rows=rows, array_cols=cols, dataflow=dataflow, bandwidth_words=100
    )
    energy = EnergyConfig(enabled=True)
    cfg = SystemConfig(arch=arch, energy=energy)
    run = Simulator(cfg).run(toy_gemm())
    return AccelergyLite(arch, energy), run


class TestEnergyReport:
    def test_total_properties(self):
        report = EnergyReport(cycles=1000, clock_ghz=1.0, dynamic_pj=2e9, leakage_pj=1e9)
        assert report.total_pj == 3e9
        assert report.total_mj == pytest.approx(3.0)

    def test_dram_separate(self):
        report = EnergyReport(
            cycles=10, clock_ghz=1.0, dynamic_pj=100.0, leakage_pj=10.0, dram_pj=1000.0
        )
        assert report.total_pj == 110.0
        assert report.total_with_dram_pj == 1110.0

    def test_average_power(self):
        # 1000 pJ over 1000 cycles at 1 GHz = 1 mW... in W: 1e-3.
        report = EnergyReport(cycles=1000, clock_ghz=1.0, dynamic_pj=1000.0, leakage_pj=0.0)
        assert report.average_power_w == pytest.approx(1e-3)

    def test_edp(self):
        report = EnergyReport(cycles=100, clock_ghz=1.0, dynamic_pj=1e9, leakage_pj=0.0)
        assert report.edp_cycles_mj == pytest.approx(100 * 1.0)

    def test_merge(self):
        a = EnergyReport(cycles=10, clock_ghz=1.0, dynamic_pj=1.0, leakage_pj=2.0,
                         per_instance_pj={"mac": 1.0})
        b = EnergyReport(cycles=20, clock_ghz=1.0, dynamic_pj=3.0, leakage_pj=4.0,
                         per_instance_pj={"mac": 3.0, "noc": 1.0})
        merged = a.merged_with(b)
        assert merged.cycles == 30
        assert merged.dynamic_pj == 4.0
        assert merged.per_instance_pj == {"mac": 4.0, "noc": 1.0}

    def test_merge_clock_mismatch(self):
        a = EnergyReport(cycles=10, clock_ghz=1.0, dynamic_pj=1.0, leakage_pj=0.0)
        b = EnergyReport(cycles=10, clock_ghz=2.0, dynamic_pj=1.0, leakage_pj=0.0)
        with pytest.raises(EnergyModelError):
            a.merged_with(b)


class TestEstimation:
    def test_layer_energy_positive(self):
        engine, run = _setup()
        report = engine.estimate_layer(run.layers[0])
        assert report.dynamic_pj > 0
        assert report.leakage_pj > 0

    def test_run_energy_sums_layers(self):
        engine, run = _setup()
        total = engine.estimate_run(run)
        parts = [engine.estimate_layer(layer) for layer in run.layers]
        assert total.total_pj == pytest.approx(sum(p.total_pj for p in parts))

    def test_per_instance_breakdown_present(self):
        engine, run = _setup()
        report = engine.estimate_layer(run.layers[0])
        assert "mac" in report.per_instance_pj
        assert "ifmap_sram" in report.per_instance_pj

    def test_mac_energy_dominated_by_macs(self):
        engine, run = _setup()
        report = engine.estimate_layer(run.layers[0])
        assert report.per_instance_pj["mac"] > 0

    def test_bigger_array_more_leakage(self):
        _, run_small = _setup(rows=4, cols=4)
        engine_small = AccelergyLite(
            ArchitectureConfig(array_rows=4, array_cols=4), EnergyConfig(enabled=True)
        )
        engine_large = AccelergyLite(
            ArchitectureConfig(array_rows=64, array_cols=64), EnergyConfig(enabled=True)
        )
        cycles = 1000
        assert engine_large.ert.total_leakage_pj(cycles) > engine_small.ert.total_leakage_pj(cycles)

    def test_empty_run_rejected(self):
        engine, run = _setup()
        run.layers.clear()
        with pytest.raises(EnergyModelError):
            engine.estimate_run(run)

    def test_dram_energy_reported_separately(self):
        engine, run = _setup()
        report = engine.estimate_run(run)
        assert report.dram_pj > 0
        assert report.dram_pj not in (report.dynamic_pj,)


class TestSystemStates:
    """Table III: idle / active / power-gated vs PnR reference."""

    @pytest.mark.parametrize("state", ["idle", "active", "power_gating"])
    def test_within_five_percent_of_pnr(self, state):
        model = system_state_power_mw(state)
        reference = SYSTEM_STATE_REFERENCE_MW[state]
        assert abs(model - reference) / reference < 0.05

    def test_state_ordering(self):
        assert (
            system_state_power_mw("power_gating")
            < system_state_power_mw("idle")
            < system_state_power_mw("active")
        )

    def test_clock_scales_power(self):
        half = system_state_power_mw("active", clock_ghz=0.5)
        full = system_state_power_mw("active", clock_ghz=1.0)
        assert half == pytest.approx(full / 2)

    def test_bigger_design_more_power(self):
        big_arch = ArchitectureConfig(array_rows=32, array_cols=32)
        small = system_state_power_mw("active")
        big = system_state_power_mw("active", arch=big_arch)
        assert big > small

    def test_unknown_state(self):
        with pytest.raises(EnergyModelError):
            system_state_power_mw("hibernate")


class TestDataflowEnergyOrdering:
    def test_os_has_fewest_ofmap_sram_writes(self):
        """The mechanism behind Figure 15's 'OS wins energy'."""
        results = {}
        for dataflow in ("os", "ws", "is"):
            cfg = SystemConfig(
                arch=ArchitectureConfig(array_rows=8, array_cols=8, dataflow=dataflow,
                                        bandwidth_words=100),
            )
            run = Simulator(cfg).run(toy_conv())
            results[dataflow] = sum(l.compute.ofmap_sram_writes for l in run.layers)
        assert results["os"] <= results["ws"]
        assert results["os"] <= results["is"]
