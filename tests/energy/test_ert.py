"""Unit tests for ERT construction."""

import pytest

from repro.config.system import ArchitectureConfig, EnergyConfig
from repro.energy.components import ComponentLibrary
from repro.energy.ert import EnergyReferenceTable, build_ert
from repro.errors import EnergyModelError


def _ert(**arch_kw):
    defaults = dict(array_rows=8, array_cols=8)
    defaults.update(arch_kw)
    return build_ert(ArchitectureConfig(**defaults), EnergyConfig(enabled=True))


class TestBuildErt:
    def test_baseline_template_instances(self):
        ert = _ert()
        for name in (
            "mac",
            "ifmap_spad",
            "weights_spad",
            "psum_spad",
            "ifmap_sram",
            "filter_sram",
            "ofmap_sram",
            "dram",
            "noc",
        ):
            assert name in ert.entries

    def test_pe_multiplicity(self):
        ert = _ert(array_rows=4, array_cols=8)
        assert ert.multiplicity["mac"] == 32
        assert ert.multiplicity["psum_spad"] == 32

    def test_simd_optional(self):
        assert "simd" not in _ert().entries
        assert "simd" in _ert(simd_lanes=16).entries

    def test_sram_size_affects_energy(self):
        small = _ert(ifmap_sram_kb=64)
        large = _ert(ifmap_sram_kb=1024)
        assert small.entries["ifmap_sram"].energy("read_random") < large.entries[
            "ifmap_sram"
        ].energy("read_random")


class TestErtQueries:
    def test_energy_pj(self):
        ert = _ert()
        one = ert.energy_pj("mac", "mac_random", 1)
        many = ert.energy_pj("mac", "mac_random", 1000)
        assert many == pytest.approx(1000 * one)

    def test_unknown_instance(self):
        with pytest.raises(EnergyModelError):
            _ert().energy_pj("tpu", "read", 1)

    def test_negative_count(self):
        with pytest.raises(EnergyModelError):
            _ert().energy_pj("mac", "mac_random", -1)

    def test_leakage_scales_with_cycles_and_copies(self):
        ert = _ert()
        one_cycle = ert.leakage_pj("mac", 1)
        assert ert.leakage_pj("mac", 100) == pytest.approx(100 * one_cycle)
        unit = ComponentLibrary().component("mac").leakage_pj_per_cycle
        assert one_cycle == pytest.approx(64 * unit)

    def test_power_gating_reduces_leakage(self):
        ert = _ert()
        full = ert.leakage_pj("mac", 100)
        gated = ert.leakage_pj("mac", 100, gated_fraction=1.0)
        assert gated == pytest.approx(0.15 * full)

    def test_gated_fraction_range(self):
        with pytest.raises(EnergyModelError):
            _ert().leakage_pj("mac", 10, gated_fraction=1.5)

    def test_total_leakage_sums_components(self):
        ert = _ert()
        total = ert.total_leakage_pj(10)
        parts = sum(ert.leakage_pj(name, 10) for name in ert.entries)
        assert total == pytest.approx(parts)

    def test_duplicate_instance_rejected(self):
        ert = EnergyReferenceTable(technology_nm=65)
        unit = ComponentLibrary().component("mac")
        ert.add("mac", unit)
        with pytest.raises(EnergyModelError):
            ert.add("mac", unit)
