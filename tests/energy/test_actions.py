"""Unit tests for action counting."""

import pytest

from repro.config.system import ArchitectureConfig, EnergyConfig, SystemConfig
from repro.core.simulator import Simulator
from repro.energy.actions import ActionCounts, count_actions
from repro.errors import EnergyModelError
from repro.topology.models import toy_gemm


def _layer_result(dataflow="os", **energy_kw):
    cfg = SystemConfig(
        arch=ArchitectureConfig(array_rows=8, array_cols=8, dataflow=dataflow, bandwidth_words=100)
    )
    return Simulator(cfg).run(toy_gemm()).layers[0]


class TestActionCountsContainer:
    def test_add_and_get(self):
        counts = ActionCounts()
        counts.add("mac", "mac_random", 10)
        counts.add("mac", "mac_random", 5)
        assert counts.get("mac", "mac_random") == 15

    def test_get_missing_is_zero(self):
        assert ActionCounts().get("mac", "mac_random") == 0

    def test_negative_rejected(self):
        with pytest.raises(EnergyModelError):
            ActionCounts().add("mac", "mac_random", -1)

    def test_merge(self):
        a = ActionCounts(cycles=10)
        a.add("mac", "mac_random", 1)
        b = ActionCounts(cycles=20)
        b.add("mac", "mac_random", 2)
        b.add("noc", "hop", 3)
        a.merge(b)
        assert a.get("mac", "mac_random") == 3
        assert a.get("noc", "hop") == 3
        assert a.cycles == 30


class TestCountActions:
    def test_mac_random_equals_macs(self):
        """Paper VII-E: MAC_random = #PEs x cycles x utilization = MACs."""
        result = _layer_result()
        counts = count_actions(result, EnergyConfig(enabled=True))
        assert counts.get("mac", "mac_random") == result.compute.macs

    def test_pe_cycles_partition(self):
        result = _layer_result()
        counts = count_actions(result, EnergyConfig(enabled=True))
        pes = 64
        total = counts.get("mac", "mac_random") + counts.get("mac", "mac_constant")
        assert total == pes * result.total_cycles

    def test_clock_gating_switches_action(self):
        result = _layer_result()
        gated = count_actions(result, EnergyConfig(enabled=True, clock_gating=True))
        assert gated.get("mac", "mac_constant") == 0
        assert gated.get("mac", "mac_gated") > 0

    def test_spad_counts_follow_paper_rules(self):
        """weights_spad.write = filter SRAM reads, reads = MACs, etc."""
        result = _layer_result()
        counts = count_actions(result, EnergyConfig(enabled=True))
        compute = result.compute
        assert counts.get("weights_spad", "write") == compute.filter_sram_reads
        assert counts.get("weights_spad", "read") == compute.macs
        assert counts.get("ifmap_spad", "write") == compute.ifmap_sram_reads
        assert counts.get("psum_spad", "read") == compute.macs
        assert counts.get("psum_spad", "write") == compute.macs

    def test_sram_random_plus_repeat_equals_accesses(self):
        result = _layer_result()
        counts = count_actions(result, EnergyConfig(enabled=True))
        compute = result.compute
        total_reads = counts.get("ifmap_sram", "read_random") + counts.get(
            "ifmap_sram", "read_repeat"
        )
        assert total_reads == compute.ifmap_sram_reads

    def test_bigger_reuse_window_more_repeats(self):
        result = _layer_result()
        small = count_actions(result, EnergyConfig(enabled=True, row_size_words=2, bank_rows=1))
        large = count_actions(result, EnergyConfig(enabled=True, row_size_words=64, bank_rows=4))
        assert large.get("ifmap_sram", "read_repeat") > small.get("ifmap_sram", "read_repeat")
        assert large.get("ifmap_sram", "read_random") < small.get("ifmap_sram", "read_random")

    def test_idle_formula(self):
        """Paper VII-D: idle = cycles x array_size - accesses."""
        result = _layer_result()
        counts = count_actions(result, EnergyConfig(enabled=True))
        compute = result.compute
        expected = max(0, result.total_cycles * 64 - compute.ifmap_sram_reads)
        assert counts.get("ifmap_sram", "idle") == expected

    def test_dram_words(self):
        result = _layer_result()
        counts = count_actions(result, EnergyConfig(enabled=True))
        compute = result.compute
        assert counts.get("dram", "write") == compute.dram_ofmap_write_words
        assert counts.get("dram", "read") == (
            compute.dram_ifmap_words
            + compute.dram_filter_words
            + compute.dram_ofmap_readback_words
        )

    def test_noc_hops(self):
        result = _layer_result()
        counts = count_actions(result, EnergyConfig(enabled=True))
        assert counts.get("noc", "hop") == result.compute.total_sram_accesses

    def test_compute_cycles_mode(self):
        result = _layer_result()
        total_mode = count_actions(result, EnergyConfig(enabled=True), use_total_cycles=True)
        compute_mode = count_actions(result, EnergyConfig(enabled=True), use_total_cycles=False)
        assert compute_mode.cycles <= total_mode.cycles
