"""Unit tests for the component energy library."""

import pytest

from repro.energy.components import ComponentLibrary, UnitEnergy
from repro.errors import EnergyModelError


class TestUnitEnergy:
    def test_lookup(self):
        unit = UnitEnergy({"read": 1.5}, leakage_pj_per_cycle=0.1)
        assert unit.energy("read") == 1.5

    def test_unknown_action(self):
        unit = UnitEnergy({"read": 1.5})
        with pytest.raises(EnergyModelError):
            unit.energy("write")

    def test_negative_energy_rejected(self):
        with pytest.raises(EnergyModelError):
            UnitEnergy({"read": -1.0})

    def test_negative_leakage_rejected(self):
        with pytest.raises(EnergyModelError):
            UnitEnergy({"read": 1.0}, leakage_pj_per_cycle=-0.1)


class TestComponentLibrary:
    def test_expected_components_present(self):
        library = ComponentLibrary()
        for name in ("mac", "ifmap_spad", "weights_spad", "psum_spad", "sram", "dram", "noc"):
            assert name in library.names()

    def test_energy_ladder(self):
        """Orders of magnitude: spad < mac < sram < dram."""
        library = ComponentLibrary()
        spad = library.component("ifmap_spad").energy("read")
        mac = library.component("mac").energy("mac_random")
        sram = library.component("sram").energy("read_random")
        dram = library.component("dram").energy("read")
        assert spad < mac < sram < dram

    def test_repeated_access_cheaper(self):
        sram = ComponentLibrary().component("sram")
        assert sram.energy("read_repeat") < sram.energy("read_random")
        assert sram.energy("write_repeat") < sram.energy("write_random")

    def test_gated_mac_is_free_dynamically(self):
        mac = ComponentLibrary().component("mac")
        assert mac.energy("mac_gated") == 0.0
        assert mac.leakage_pj_per_cycle > 0

    def test_constant_mac_cheaper_than_random(self):
        mac = ComponentLibrary().component("mac")
        assert mac.energy("mac_constant") < mac.energy("mac_random")

    def test_technology_scaling(self):
        at65 = ComponentLibrary(65).component("mac").energy("mac_random")
        at32 = ComponentLibrary(32).component("mac").energy("mac_random")
        assert at32 < at65

    def test_unknown_component(self):
        with pytest.raises(EnergyModelError):
            ComponentLibrary().component("gpu")

    def test_bad_node(self):
        with pytest.raises(EnergyModelError):
            ComponentLibrary(0)


class TestSramScaling:
    def test_bigger_sram_costs_more_per_access(self):
        library = ComponentLibrary()
        small = library.sram_scaled(64).energy("read_random")
        large = library.sram_scaled(1024).energy("read_random")
        assert small < large

    def test_leakage_scales_linearly_with_capacity(self):
        library = ComponentLibrary()
        base = library.sram_scaled(256).leakage_pj_per_cycle
        double = library.sram_scaled(512).leakage_pj_per_cycle
        assert double == pytest.approx(2 * base)

    def test_sqrt_access_scaling(self):
        library = ComponentLibrary()
        base = library.sram_scaled(256).energy("read_random")
        quad = library.sram_scaled(1024).energy("read_random")
        assert quad == pytest.approx(2 * base)

    def test_bad_capacity(self):
        with pytest.raises(EnergyModelError):
            ComponentLibrary().sram_scaled(0)
