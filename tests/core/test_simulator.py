"""Unit tests for the end-to-end single-core Simulator."""

import pytest

from repro.config.system import ArchitectureConfig, DramConfig, SystemConfig
from repro.core.simulator import Simulator
from repro.topology.models import toy_conv, toy_gemm


def _config(**arch_kw):
    defaults = dict(array_rows=8, array_cols=8, bandwidth_words=16)
    defaults.update(arch_kw)
    return SystemConfig(arch=ArchitectureConfig(**defaults))


class TestIdealBandwidthRuns:
    def test_runs_all_layers(self):
        result = Simulator(_config()).run(toy_conv())
        assert len(result.layers) == 2
        assert result.total_cycles > 0

    def test_total_is_sum_of_layers(self):
        result = Simulator(_config()).run(toy_conv())
        assert result.total_cycles == sum(l.total_cycles for l in result.layers)

    def test_high_bandwidth_means_no_mid_run_stalls(self):
        result = Simulator(_config(bandwidth_words=10_000)).run(toy_gemm())
        for layer in result.layers:
            assert layer.stall_cycles == 0

    def test_low_bandwidth_stalls(self):
        fast = Simulator(_config(bandwidth_words=10_000)).run(toy_gemm())
        slow = Simulator(_config(bandwidth_words=1)).run(toy_gemm())
        assert slow.total_cycles > fast.total_cycles

    def test_compute_cycles_independent_of_bandwidth(self):
        fast = Simulator(_config(bandwidth_words=10_000)).run(toy_gemm())
        slow = Simulator(_config(bandwidth_words=1)).run(toy_gemm())
        assert fast.total_compute_cycles == slow.total_compute_cycles

    def test_layer_named(self):
        result = Simulator(_config()).run(toy_conv())
        assert result.layer_named("c1").layer_name == "c1"
        with pytest.raises(KeyError):
            result.layer_named("zzz")

    def test_no_dram_stats_without_dram(self):
        result = Simulator(_config()).run(toy_conv())
        assert result.dram_stats is None

    def test_cold_start_positive(self):
        result = Simulator(_config()).run(toy_conv())
        assert result.layers[0].timeline.cold_start_cycles > 0

    def test_continuous_timeline_keeps_layers_cheap(self):
        # Regression: a shared backend must not charge layer N the whole
        # runtime of layers 0..N-1 as cold start.
        result = Simulator(_config(bandwidth_words=1000)).run(toy_gemm())
        later = result.layers[-1]
        assert later.timeline.cold_start_cycles < later.compute_cycles


class TestDramRuns:
    def _dram_config(self, **dram_kw):
        dram_defaults = dict(enabled=True, technology="ddr4", channels=1)
        dram_defaults.update(dram_kw)
        return SystemConfig(
            arch=ArchitectureConfig(array_rows=8, array_cols=8),
            dram=DramConfig(**dram_defaults),
        )

    def test_dram_stats_collected(self):
        result = Simulator(self._dram_config()).run(toy_conv())
        assert result.dram_stats is not None
        assert result.dram_stats.reads > 0

    def test_dram_adds_latency_over_ideal(self):
        ideal = Simulator(_config(bandwidth_words=10_000)).run(toy_conv())
        dram = Simulator(self._dram_config()).run(toy_conv())
        assert dram.total_cycles >= ideal.total_cycles

    def test_more_channels_not_slower(self):
        one = Simulator(self._dram_config(channels=1)).run(toy_conv())
        four = Simulator(self._dram_config(channels=4)).run(toy_conv())
        assert four.total_cycles <= one.total_cycles

    def test_tiny_queue_not_faster(self):
        small = Simulator(
            self._dram_config(read_queue_entries=1, write_queue_entries=1)
        ).run(toy_conv())
        large = Simulator(
            self._dram_config(read_queue_entries=256, write_queue_entries=256)
        ).run(toy_conv())
        assert large.total_cycles <= small.total_cycles

    def test_run_layer_single(self):
        sim = Simulator(self._dram_config())
        layer_result = sim.run_layer(toy_conv()[0])
        assert layer_result.total_cycles > 0

    def test_backpressure_and_drain_surfaced_per_layer(self):
        result = Simulator(
            self._dram_config(read_queue_entries=1, write_queue_entries=1)
        ).run(toy_conv())
        # 1-entry queues stall the front-end constantly.
        assert sum(layer.backpressure_stall_cycles for layer in result.layers) > 0
        assert all(layer.drain_cycles >= 0 for layer in result.layers)

    def test_ideal_backend_reports_zero_backpressure(self):
        result = Simulator(_config()).run(toy_conv())
        assert all(layer.backpressure_stall_cycles == 0 for layer in result.layers)

    def test_engine_choice_is_bit_exact(self):
        runs = {
            engine: Simulator(self._dram_config(engine=engine)).run(toy_conv())
            for engine in ("reference", "batched")
        }
        assert runs["reference"].total_cycles == runs["batched"].total_cycles
        assert runs["reference"].dram_stats == runs["batched"].dram_stats


class TestReports:
    def test_write_reports(self, tmp_path):
        result = Simulator(_config()).run(toy_conv())
        paths = result.write_reports(tmp_path)
        assert len(paths) == 3
        for path in paths:
            assert path.exists()
            assert path.read_text().count("\n") == len(result.layers) + 1

    def test_backpressure_and_drain_columns_present(self, tmp_path):
        config = SystemConfig(
            arch=ArchitectureConfig(array_rows=8, array_cols=8),
            dram=DramConfig(enabled=True, read_queue_entries=1, write_queue_entries=1),
        )
        result = Simulator(config).run(toy_conv())
        result.write_reports(tmp_path)
        detailed = (tmp_path / result.run_name / "DETAILED_ACCESS_REPORT.csv").read_text()
        header = detailed.splitlines()[0]
        assert header.endswith("DramBackpressureStallCycles,DramDrainCycles")
        bandwidth = (tmp_path / result.run_name / "BANDWIDTH_REPORT.csv").read_text()
        assert bandwidth.splitlines()[0].endswith(
            "DramBackpressureStall%,AvgDramBwInclDrain(words/cycle)"
        )


class TestComputePlanSeam:
    """The plan/resolve split behind the DRAM fan-out."""

    def _dram_config(self, **dram_kw):
        defaults = dict(enabled=True, channels=2)
        defaults.update(dram_kw)
        return SystemConfig(
            arch=ArchitectureConfig(array_rows=8, array_cols=8, bandwidth_words=16),
            dram=DramConfig(**defaults),
        )

    def test_plan_is_dram_independent(self):
        from repro.core.simulator import plan_signature

        ideal = _config()
        dram = self._dram_config()
        assert plan_signature(ideal.arch) == plan_signature(dram.arch)
        assert Simulator(ideal).plan(toy_conv()) == Simulator(dram).plan(toy_conv())

    def test_run_equals_plan_plus_resolve(self):
        from repro.core.simulator import make_memory_backend, resolve_plan

        config = self._dram_config()
        sim = Simulator(config)
        direct = sim.run(toy_conv())
        resolved = resolve_plan(
            sim.plan(toy_conv()), make_memory_backend(config), config.run.run_name
        )
        assert resolved == direct

    def test_layer_plans_memoized_within_process(self):
        from repro.core.simulator import clear_compute_plan_cache, layer_compute

        clear_compute_plan_cache()
        sim = Simulator(_config())
        first = sim.plan(toy_conv())
        misses = layer_compute.cache_info().misses
        second = sim.plan(toy_conv())
        assert layer_compute.cache_info().misses == misses
        # Identical plan objects: repeated layers are never rebuilt.
        assert all(a is b for a, b in zip(first.computes, second.computes))

    def test_plan_carries_schedule_shape(self):
        plan = Simulator(_config()).plan(toy_conv())
        assert plan.num_layers == 2
        assert plan.total_folds == sum(len(c.fold_specs) for c in plan.computes)
        assert plan.topology_name == toy_conv().name


class TestPlanCacheSizing:
    """The per-layer plan LRU is resizable (env var or runtime setter)."""

    def teardown_method(self):
        import repro.core.simulator as simulator

        simulator.set_compute_plan_cache_size(simulator.DEFAULT_PLAN_CACHE_SIZE)

    def test_default_size(self):
        import repro.core.simulator as simulator

        assert simulator.DEFAULT_PLAN_CACHE_SIZE == 64
        assert simulator.compute_plan_cache_size() in (
            64,
            simulator._initial_plan_cache_size(),
        )

    def test_runtime_resize_and_clear_keep_working(self):
        import repro.core.simulator as simulator

        simulator.set_compute_plan_cache_size(2)
        assert simulator.compute_plan_cache_size() == 2
        Simulator(_config()).plan(toy_conv())
        assert simulator.layer_compute.cache_info().currsize > 0
        simulator.clear_compute_plan_cache()
        assert simulator.layer_compute.cache_info().currsize == 0
        simulator.set_compute_plan_cache_size(None)  # unbounded
        assert simulator.compute_plan_cache_size() is None

    def test_resize_rejects_nonpositive(self):
        from repro.core.simulator import set_compute_plan_cache_size
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            set_compute_plan_cache_size(0)

    def test_env_var_controls_initial_size(self, monkeypatch):
        import repro.core.simulator as simulator

        monkeypatch.setenv("REPRO_PLAN_CACHE_SIZE", "7")
        assert simulator._initial_plan_cache_size() == 7
        monkeypatch.setenv("REPRO_PLAN_CACHE_SIZE", "not-a-number")
        assert simulator._initial_plan_cache_size() == simulator.DEFAULT_PLAN_CACHE_SIZE
        monkeypatch.setenv("REPRO_PLAN_CACHE_SIZE", "-3")
        assert simulator._initial_plan_cache_size() == simulator.DEFAULT_PLAN_CACHE_SIZE
        monkeypatch.delenv("REPRO_PLAN_CACHE_SIZE")
        assert simulator._initial_plan_cache_size() == simulator.DEFAULT_PLAN_CACHE_SIZE

    def test_tiny_cache_still_correct(self):
        import repro.core.simulator as simulator

        simulator.set_compute_plan_cache_size(1)
        sim = Simulator(_config())
        first = sim.plan(toy_conv())
        second = sim.plan(toy_conv())
        assert first.computes == second.computes
