"""Unit tests for the aggregate compute simulator."""

import pytest

from repro.core.compute_sim import ComputeSimulator, FoldSpec, TileFetch
from repro.core.dataflow import Dataflow
from repro.errors import SimulationError
from repro.topology.layer import ConvLayer, GemmLayer

ALL_DATAFLOWS = ["os", "ws", "is"]


def _gemm(m=16, n=20, k=12):
    return GemmLayer("g", m=m, n=n, k=k)


class TestSimulateLayerBasics:
    def test_cycles_match_equation(self):
        sim = ComputeSimulator(4, 4, "os")
        result = sim.simulate_layer(_gemm())
        # OS: Sr=M=16 (4 folds), Sc=N=20 (5 folds), T=K=12.
        assert result.compute_cycles == (8 + 4 + 12 - 2) * 4 * 5

    def test_fold_counts(self):
        sim = ComputeSimulator(4, 4, "ws")
        result = sim.simulate_layer(_gemm())
        # WS: Sr=K=12 -> 3 folds, Sc=M=16 -> 4 folds.
        assert (result.folds_row, result.folds_col) == (3, 4)
        assert result.total_folds == 12

    def test_string_and_enum_dataflow_agree(self):
        a = ComputeSimulator(4, 4, "ws").simulate_layer(_gemm())
        b = ComputeSimulator(4, 4, Dataflow.WEIGHT_STATIONARY).simulate_layer(_gemm())
        assert a.compute_cycles == b.compute_cycles

    def test_macs(self):
        result = ComputeSimulator(4, 4, "os").simulate_layer(_gemm())
        assert result.macs == 16 * 20 * 12

    def test_bad_array(self):
        with pytest.raises(SimulationError):
            ComputeSimulator(0, 4, "os")


class TestSramCounts:
    """Closed-form access counts (see module docstring of compute_sim)."""

    def test_ws_counts(self):
        result = ComputeSimulator(4, 4, "ws").simulate_layer(_gemm())
        m, n, k = 16, 20, 12
        fcols, frows = 4, 3
        assert result.filter_sram_reads == k * m
        assert result.ifmap_sram_reads == k * n * fcols
        assert result.ofmap_sram_writes == m * n * frows

    def test_is_counts(self):
        result = ComputeSimulator(4, 4, "is").simulate_layer(_gemm())
        m, n, k = 16, 20, 12
        frows, fcols = 3, 5  # Sr=K, Sc=N
        assert result.ifmap_sram_reads == k * n
        assert result.filter_sram_reads == k * m * fcols
        assert result.ofmap_sram_writes == m * n * frows

    def test_os_counts(self):
        result = ComputeSimulator(4, 4, "os").simulate_layer(_gemm())
        m, n, k = 16, 20, 12
        frows, fcols = 4, 5
        assert result.ifmap_sram_reads == n * k * frows
        assert result.filter_sram_reads == m * k * fcols
        assert result.ofmap_sram_writes == m * n

    def test_stationary_operand_read_once(self):
        # WS reads each filter element exactly once from SRAM.
        result = ComputeSimulator(4, 4, "ws").simulate_layer(_gemm())
        assert result.filter_sram_reads == result.shape.filter_words


class TestFoldSpecs:
    @pytest.mark.parametrize("dataflow", ALL_DATAFLOWS)
    def test_specs_cover_all_folds(self, dataflow):
        result = ComputeSimulator(4, 4, dataflow).simulate_layer(_gemm())
        assert len(result.fold_specs) == result.total_folds

    @pytest.mark.parametrize("dataflow", ALL_DATAFLOWS)
    def test_spec_cycles_sum_to_runtime(self, dataflow):
        result = ComputeSimulator(4, 4, dataflow).simulate_layer(_gemm())
        assert sum(s.cycles for s in result.fold_specs) == result.compute_cycles

    def test_without_fold_specs(self):
        result = ComputeSimulator(4, 4, "ws").simulate_layer(_gemm(), with_fold_specs=False)
        assert result.fold_specs == []
        # Closed-form DRAM totals still populated.
        assert result.dram_filter_words > 0

    def test_fetch_words_property(self):
        spec = FoldSpec(
            fold_row=0,
            fold_col=0,
            start_cycle=0,
            cycles=10,
            rows_used=4,
            cols_used=4,
            fetches=(
                TileFetch("ifmap", 0, 100),
                TileFetch("ofmap", 0, 50, is_write=True),
            ),
        )
        assert spec.fetch_words == 100
        assert spec.writeback_words == 50

    def test_bad_tile_fetch(self):
        with pytest.raises(SimulationError):
            TileFetch("weights", 0, 10)
        with pytest.raises(SimulationError):
            TileFetch("ifmap", -1, 10)


class TestDramTraffic:
    def test_ws_filter_traffic_is_compulsory(self):
        # Weights are fetched exactly once (they are stationary).
        result = ComputeSimulator(4, 4, "ws").simulate_layer(_gemm())
        assert result.dram_filter_words == pytest.approx(
            result.shape.filter_words, rel=0.1
        )

    def test_small_sram_increases_ifmap_traffic(self):
        layer = _gemm(m=64, n=64, k=64)
        big = ComputeSimulator(8, 8, "ws", ifmap_sram_words=1 << 20)
        tiny = ComputeSimulator(8, 8, "ws", ifmap_sram_words=8)
        big_words = big.simulate_layer(layer).dram_ifmap_words
        tiny_words = tiny.simulate_layer(layer).dram_ifmap_words
        assert tiny_words > big_words

    def test_small_ofmap_sram_causes_readbacks(self):
        layer = _gemm(m=64, n=64, k=64)
        big = ComputeSimulator(8, 8, "ws", ofmap_sram_words=1 << 20)
        tiny = ComputeSimulator(8, 8, "ws", ofmap_sram_words=8)
        assert big.simulate_layer(layer).dram_ofmap_readback_words == 0
        assert tiny.simulate_layer(layer).dram_ofmap_readback_words > 0

    def test_os_writes_output_once(self):
        layer = _gemm()
        result = ComputeSimulator(4, 4, "os").simulate_layer(layer)
        assert result.dram_ofmap_write_words == layer.ofmap_words
        assert result.dram_ofmap_readback_words == 0

    @pytest.mark.parametrize("dataflow", ALL_DATAFLOWS)
    def test_closed_form_matches_fold_specs(self, dataflow):
        layer = _gemm(m=32, n=48, k=24)
        sim = ComputeSimulator(8, 8, dataflow)
        with_specs = sim.simulate_layer(layer, with_fold_specs=True)
        without = sim.simulate_layer(layer, with_fold_specs=False)
        for field in ("dram_filter_words", "dram_ofmap_write_words"):
            assert getattr(without, field) == pytest.approx(
                getattr(with_specs, field), rel=0.15
            ), field

    def test_conv_uses_raw_ifmap_footprint(self):
        layer = ConvLayer(
            name="c", ifmap_h=16, ifmap_w=16, filter_h=3, filter_w=3, channels=8, num_filters=8
        )
        result = ComputeSimulator(8, 8, "ws").simulate_layer(layer)
        # DRAM sees unique data: traffic is bounded by a small multiple of
        # the raw footprint, far below the im2col-inflated SRAM reads.
        assert result.dram_ifmap_words < result.ifmap_sram_reads


class TestUtilizationMetrics:
    def test_perfect_spatial_fit(self):
        result = ComputeSimulator(4, 4, "os").simulate_layer(_gemm(m=8, n=8, k=10))
        assert result.mapping_efficiency == 1.0

    def test_ragged_fit(self):
        result = ComputeSimulator(4, 4, "os").simulate_layer(_gemm(m=5, n=8, k=10))
        assert result.mapping_efficiency < 1.0

    def test_utilization_positive(self):
        result = ComputeSimulator(4, 4, "os").simulate_layer(_gemm())
        assert 0 < result.compute_utilization < 1
